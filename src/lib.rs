//! # subgraph-mr
//!
//! A Rust reproduction of **“Enumerating Subgraph Instances Using Map-Reduce”**
//! (Afrati, Fotakis, Ullman — ICDE 2013, arXiv:1208.0615): find *all* instances
//! of a small sample graph inside a large data graph in a **single round of
//! map-reduce**, minimizing both the communication cost (edge replication to
//! reducers) and the computation cost (total reducer work).
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `subgraph-graph` | data graph (CSR + edge index), node orders, generators, I/O |
//! | [`pattern`] | `subgraph-pattern` | sample graphs, automorphism groups, decompositions, instances |
//! | [`cq`] | `subgraph-cq` | conjunctive queries with comparisons: generation, merging, cycles, evaluation |
//! | [`shares`] | `subgraph-shares` | Afrati–Ullman share optimization and reducer-count combinatorics |
//! | [`mapreduce`] | `subgraph-mapreduce` | instrumented in-process map-reduce engine: multi-round pipelines, map-side combiners |
//! | [`core`] | `subgraph-core` | the paper's algorithms behind the cost-driven `Planner`/`ExecutionPlan` API |
//!
//! Two more workspace crates sit outside the facade: `subgraph-cli` builds
//! the `subgraph` binary (`enumerate`/`count`/`explain`/`catalog`/`generate`
//! over edge-list files and generator specs — see `docs/CLI.md`), and
//! `subgraph-bench` regenerates the paper's tables and figures.
//!
//! ## Quick start
//!
//! Everything goes through one entry point: build an
//! [`EnumerationRequest`](prelude::EnumerationRequest), let the
//! [`Planner`](prelude::Planner) pick the cheapest strategy (it scores every
//! applicable algorithm on the paper's two cost measures), inspect the
//! [`ExecutionPlan`](prelude::ExecutionPlan), and execute it:
//!
//! ```
//! use subgraph_mr::prelude::*;
//!
//! // A random data graph and the "lollipop" sample graph from Figure 4.
//! let data_graph = generators::gnm(200, 1_000, 42);
//!
//! // Plan for a budget of 750 reducers. The planner compares CQ-oriented,
//! // variable-oriented and bucket-oriented processing (Section 4) and picks
//! // the cheapest — here the bucket-oriented scheme (Theorem 4.4 ordering).
//! let plan = EnumerationRequest::named("lollipop", &data_graph)
//!     .unwrap()
//!     .reducers(750)
//!     .plan()
//!     .unwrap();
//! assert_eq!(plan.strategy(), StrategyKind::BucketOriented);
//! println!("{}", plan.explain()); // shares, predicted replication & work
//!
//! // One round of map-reduce; the report unifies serial and parallel runs.
//! let report = plan.execute();
//! println!(
//!     "{} lollipops, {} key-value pairs shipped ({} predicted)",
//!     report.count(),
//!     report.communication(),
//!     plan.predicted_communication(),
//! );
//! assert_eq!(report.duplicates(), 0); // every instance exactly once
//! ```
//!
//! Need a specific algorithm (for comparisons or tests)? Force it:
//!
//! ```
//! use subgraph_mr::prelude::*;
//!
//! let data_graph = generators::gnm(100, 400, 7);
//! let forced = EnumerationRequest::named("triangle", &data_graph)
//!     .unwrap()
//!     .reducers(220)
//!     .strategy(StrategyKind::PartitionTriangles)
//!     .plan()
//!     .unwrap();
//! let report = forced.execute();
//! assert_eq!(report.duplicates(), 0);
//! ```
//!
//! A reducer budget of 1 means "no cluster": the planner then chooses among
//! the convertible serial algorithms of Sections 6–7 instead.
//!
//! ## Streaming results (graphs whose output exceeds memory)
//!
//! Collecting a `Vec<Instance>` bounds a run by its *output* size. Every
//! strategy also streams: hand the plan an
//! [`InstanceSink`](prelude::InstanceSink) and no per-instance storage is
//! allocated anywhere — counting is O(1) memory whatever the instance count:
//!
//! ```
//! use subgraph_mr::prelude::*;
//!
//! let data_graph = generators::gnm(300, 2_000, 11);
//! let plan = EnumerationRequest::named("triangle", &data_graph)
//!     .unwrap()
//!     .reducers(64)
//!     .plan()
//!     .unwrap();
//! // Count-only: a CountSink flows through the engine's sharded delivery.
//! let counted = plan.count();
//! assert!(counted.is_streamed());
//! // Same counters and count as the collect path, without the storage.
//! let collected = plan.execute();
//! assert_eq!(counted.count(), collected.count());
//! assert_eq!(counted.communication(), collected.communication());
//!
//! // Or keep just the k smallest instances, or run a callback per instance:
//! let mut sample = SampleSink::new(10);
//! plan.run_with_sink(&mut sample);
//! assert!(sample.len() <= 10);
//! ```
//!
//! See `docs/PLANNER.md` for the strategy-to-paper-section map and
//! `docs/ENGINE.md` for the Pipeline/Round/Combiner execution model, the
//! "Output sinks" section, and the metrics glossary.

pub use subgraph_core as core;
pub use subgraph_cq as cq;
pub use subgraph_graph as graph;
pub use subgraph_mapreduce as mapreduce;
pub use subgraph_pattern as pattern;
pub use subgraph_shares as shares;

/// A convenient prelude for examples and downstream users.
pub mod prelude {
    /// The planner API — the primary entry point.
    pub use subgraph_core::plan::{
        CostEstimate, EnumerationRequest, ExecutionPlan, PlanError, Planner, RunReport, SearchMode,
        Strategy, StrategyKind,
    };
    pub use subgraph_core::serial::{
        enumerate_bounded_degree, enumerate_bounded_degree_into, enumerate_by_decomposition,
        enumerate_by_decomposition_into, enumerate_generic, enumerate_generic_into,
        enumerate_odd_cycles, enumerate_odd_cycles_into, enumerate_triangles_into,
        enumerate_triangles_serial,
    };
    /// Streaming result sinks: count, collect, sample, callback, and the
    /// file-backed serializers the CLI writes through.
    pub use subgraph_core::sink::{
        CollectSink, CountSink, CsvSink, EdgeListSink, FnSink, InstanceSink, NdjsonSink,
        OutputSink, SampleSink, SerializeSink,
    };
    pub use subgraph_core::{MapReduceRun, RunStats, SerialRun, SerialStats};
    pub use subgraph_cq::{cqs_for_sample, cycle_cqs, evaluate_cqs, merge_by_orientation};
    pub use subgraph_graph::{generators, DataGraph, GraphBuilder, GraphSource, NodeId};
    pub use subgraph_mapreduce::{
        Combiner, EngineConfig, JobMetrics, Pipeline, PipelineReport, Round, RoundMetrics,
    };
    pub use subgraph_pattern::{catalog, Instance, SampleGraph};
    pub use subgraph_shares::{optimize_shares, CostExpression};
}
