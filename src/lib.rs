//! # subgraph-mr
//!
//! A Rust reproduction of **“Enumerating Subgraph Instances Using Map-Reduce”**
//! (Afrati, Fotakis, Ullman — ICDE 2013, arXiv:1208.0615): find *all* instances
//! of a small sample graph inside a large data graph in a **single round of
//! map-reduce**, minimizing both the communication cost (edge replication to
//! reducers) and the computation cost (total reducer work).
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `subgraph-graph` | data graph (CSR + edge index), node orders, generators, I/O |
//! | [`pattern`] | `subgraph-pattern` | sample graphs, automorphism groups, decompositions, instances |
//! | [`cq`] | `subgraph-cq` | conjunctive queries with comparisons: generation, merging, cycles, evaluation |
//! | [`shares`] | `subgraph-shares` | Afrati–Ullman share optimization and reducer-count combinatorics |
//! | [`mapreduce`] | `subgraph-mapreduce` | instrumented in-process single-round map-reduce engine |
//! | [`core`] | `subgraph-core` | the paper's algorithms: triangle algorithms (§2), general enumeration (§4), serial/convertible algorithms (§6–7) |
//!
//! ## Quick start
//!
//! ```
//! use subgraph_mr::graph::generators;
//! use subgraph_mr::pattern::catalog;
//! use subgraph_mr::core::enumerate::bucket_oriented_enumerate;
//! use subgraph_mr::mapreduce::EngineConfig;
//!
//! // A random data graph and the "lollipop" sample graph from Figure 4.
//! let data_graph = generators::gnm(200, 1_000, 42);
//! let sample = catalog::lollipop();
//!
//! // One round of map-reduce with 4 buckets (Section 4.5 processing).
//! let run = bucket_oriented_enumerate(&sample, &data_graph, 4, &EngineConfig::default());
//! println!(
//!     "{} lollipops, {} key-value pairs shipped, {} reducers",
//!     run.count(),
//!     run.metrics.key_value_pairs,
//!     run.metrics.reducers_used,
//! );
//! assert_eq!(run.duplicates(), 0); // every instance exactly once
//! ```

pub use subgraph_core as core;
pub use subgraph_cq as cq;
pub use subgraph_graph as graph;
pub use subgraph_mapreduce as mapreduce;
pub use subgraph_pattern as pattern;
pub use subgraph_shares as shares;

/// A convenient prelude for examples and downstream users.
pub mod prelude {
    pub use subgraph_core::enumerate::{
        bucket_oriented_enumerate, cq_oriented_enumerate, variable_oriented_enumerate,
    };
    pub use subgraph_core::serial::{
        enumerate_bounded_degree, enumerate_by_decomposition, enumerate_generic,
        enumerate_odd_cycles, enumerate_triangles_serial,
    };
    pub use subgraph_core::triangles::{
        bucket_ordered_triangles, multiway_triangles, partition_triangles,
    };
    pub use subgraph_core::{MapReduceRun, SerialRun};
    pub use subgraph_cq::{cqs_for_sample, cycle_cqs, evaluate_cqs, merge_by_orientation};
    pub use subgraph_graph::{generators, DataGraph, GraphBuilder, NodeId};
    pub use subgraph_mapreduce::EngineConfig;
    pub use subgraph_pattern::{catalog, Instance, SampleGraph};
    pub use subgraph_shares::{optimize_shares, CostExpression};
}
