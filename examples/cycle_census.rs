//! Cycle census — counts cycles C3..C7 of a random graph, comparing the
//! general CQ method (Theorem 3.1), the run-sequence CQs of Section 5, the
//! OddCycle algorithm (Algorithm 1) for the odd lengths, and the strategy the
//! planner picks for a one-round map-reduce run.
//!
//! ```text
//! cargo run --release --example cycle_census
//! ```

use subgraph_mr::cq::{cqs_for_sample, cycle_cqs, evaluate_cqs};
use subgraph_mr::graph::IdOrder;
use subgraph_mr::prelude::*;

fn main() {
    // Cycle counts explode with the average degree (the C7 census alone is
    // |C7| ≈ (2m/n)^7 / 14), so the graph is kept small enough that every
    // route below finishes in seconds.
    let graph = generators::gnm(40, 170, 2024);
    println!(
        "data graph: {} nodes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>14} {:>12} {:>14}",
        "p", "general CQs", "cycle CQs", "count(general)", "count(runs)", "OddCycle", "planned"
    );
    for p in 3..=7usize {
        let pattern = catalog::cycle(p);
        let general = cqs_for_sample(&pattern);
        let runs: Vec<_> = cycle_cqs(p).into_iter().map(|c| c.query).collect();

        let via_general = evaluate_cqs(&general, &graph, &IdOrder);
        let via_runs = evaluate_cqs(&runs, &graph, &IdOrder);
        assert_eq!(via_general.assignments, via_runs.assignments);
        assert_eq!(via_general.duplicates(), 0);
        assert_eq!(via_runs.duplicates(), 0);

        let odd = if p % 2 == 1 {
            enumerate_odd_cycles(&graph, (p - 1) / 2)
                .count()
                .to_string()
        } else {
            "-".to_string()
        };
        // Through the planner: one round of map-reduce for the smaller
        // cycles. For C7 the Theorem 3.1 family already holds 7!/14 = 360
        // conjunctive queries, so every reducer of a one-round job would
        // re-evaluate that whole family on most of the graph — there the
        // request asks for no cluster (budget 1) and the planner picks a
        // serial Section 6-7 algorithm instead (the decomposition route,
        // whose single piece for C7 is exactly the OddCycle algorithm).
        let budget = if p >= 7 { 1 } else { 64 };
        let planned = EnumerationRequest::new(pattern.clone(), &graph)
            .reducers(budget)
            .plan()
            .unwrap();
        let planned_run = planned.execute();
        assert_eq!(planned_run.count(), via_general.assignments);
        assert_eq!(planned_run.duplicates(), 0);
        println!(
            "{:>3} {:>12} {:>12} {:>14} {:>14} {:>12} {:>14}",
            p,
            general.len(),
            runs.len(),
            via_general.assignments,
            via_runs.assignments,
            odd,
            format!("{} ({})", planned_run.count(), planned.strategy()),
        );
    }

    println!(
        "\nThe run-sequence method of Section 5 needs far fewer conjunctive queries than the \
         general quotient-group method, while producing exactly the same cycles exactly once; \
         Algorithm 1 (OddCycle) confirms the odd-length counts by a completely different route."
    );

    // Show the pentagon's three queries (Example 5.3).
    println!("\nExample 5.3 — the three CQs for C5:");
    for cq in cycle_cqs(5) {
        println!(
            "  {:<8} runs {:?}: {}",
            cq.orientation,
            cq.run_lengths,
            cq.query.render()
        );
    }
}
