//! Quickstart: find every triangle and every "lollipop" of a random data graph
//! in one round of map-reduce, and check the result against the serial oracle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use subgraph_mr::prelude::*;

fn main() {
    // 1. A data graph: 2 000 nodes, 20 000 random edges.
    let data_graph = generators::gnm(2_000, 20_000, 7);
    println!(
        "data graph: {} nodes, {} edges, max degree {}",
        data_graph.num_nodes(),
        data_graph.num_edges(),
        data_graph.max_degree()
    );

    // 2. Triangles with the paper's best one-round algorithm (Section 2.3):
    //    nodes ordered by hash bucket, b buckets, communication b per edge.
    let buckets = 8;
    let triangles = bucket_ordered_triangles(&data_graph, buckets, &EngineConfig::default());
    println!(
        "\n[triangles]   found {:6}   kv pairs shipped {:8} ({} per edge)   reducers {}",
        triangles.count(),
        triangles.metrics.key_value_pairs,
        triangles.metrics.replication_per_input(),
        triangles.metrics.reducers_used
    );
    let serial = enumerate_triangles_serial(&data_graph);
    assert_eq!(triangles.count(), serial.count());
    assert_eq!(triangles.duplicates(), 0);
    println!(
        "              serial O(m^1.5) baseline agrees: {} triangles, reducer work {} vs serial {}",
        serial.count(),
        triangles.metrics.reducer_work,
        serial.work
    );

    // 3. An arbitrary sample graph: the lollipop of Figure 4, via
    //    bucket-oriented processing (Section 4.5).
    let sample = catalog::lollipop();
    let run = bucket_oriented_enumerate(&sample, &data_graph, 4, &EngineConfig::default());
    println!(
        "\n[lollipops]   found {:6}   kv pairs shipped {:8}   reducers {}   max reducer input {}",
        run.count(),
        run.metrics.key_value_pairs,
        run.metrics.reducers_used,
        run.metrics.max_reducer_input
    );
    let oracle = enumerate_generic(&sample, &data_graph);
    assert_eq!(run.count(), oracle.count());
    assert_eq!(run.duplicates(), 0);
    println!("              oracle agrees; every instance was produced exactly once");

    // 4. The conjunctive queries behind the scenes (Theorem 3.1 + Section 3.3).
    let cqs = cqs_for_sample(&sample);
    let groups = merge_by_orientation(&cqs);
    println!(
        "\n[planning]    {} node orders -> {} CQs -> {} orientation groups:",
        24,
        cqs.len(),
        groups.len()
    );
    for group in &groups {
        println!(
            "              {}  ({} member order(s))",
            group.orientation_signature(),
            group.members.len()
        );
    }
}
