//! Quickstart: plan and run triangle and "lollipop" enumeration over a random
//! data graph with the cost-driven planner, and check the results against the
//! serial oracle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use subgraph_mr::prelude::*;

fn main() {
    // 1. A data graph: 2 000 nodes, 20 000 random edges.
    let data_graph = generators::gnm(2_000, 20_000, 7);
    println!(
        "data graph: {} nodes, {} edges, max degree {}",
        data_graph.num_nodes(),
        data_graph.num_edges(),
        data_graph.max_degree()
    );

    // 2. Triangles: the planner compares Partition (Section 2.1), the plain
    //    multiway join (Section 2.2), the bucket-ordered join (Section 2.3)
    //    and the two-round cascade, then runs the cheapest.
    let plan = EnumerationRequest::named("triangle", &data_graph)
        .unwrap()
        .reducers(220)
        .plan()
        .unwrap();
    println!("\n{}", plan.explain());
    let triangles = plan.execute();
    println!(
        "[triangles]   strategy {}   found {:6}   kv pairs shipped {:8}   reducers used {}",
        triangles.strategy,
        triangles.count(),
        triangles.communication(),
        triangles.metrics.as_ref().map_or(0, |m| m.reducers_used),
    );
    let serial = enumerate_triangles_serial(&data_graph);
    assert_eq!(triangles.count(), serial.count());
    assert_eq!(triangles.duplicates(), 0);
    println!(
        "              serial O(m^1.5) baseline agrees: {} triangles, reducer work {} vs serial {}",
        serial.count(),
        triangles.work,
        serial.work
    );

    // 3. An arbitrary sample graph: the lollipop of Figure 4. The planner
    //    weighs CQ-oriented (Section 4.1), variable-oriented (Section 4.3)
    //    and bucket-oriented (Section 4.5) processing by predicted
    //    communication — Theorem 4.4's comparison, performed automatically.
    let plan = EnumerationRequest::named("lollipop", &data_graph)
        .unwrap()
        .reducers(750)
        .plan()
        .unwrap();
    println!("\n{}", plan.explain());
    let run = plan.execute();
    println!(
        "[lollipops]   strategy {}   found {:6}   kv pairs shipped {:8} (predicted {})",
        run.strategy,
        run.count(),
        run.communication(),
        plan.predicted_communication(),
    );
    let oracle = enumerate_generic(plan.request().sample(), &data_graph);
    assert_eq!(run.count(), oracle.count());
    assert_eq!(run.duplicates(), 0);
    println!("              oracle agrees; every instance was produced exactly once");

    // 4. The conjunctive queries behind the scenes (Theorem 3.1 + Section 3.3).
    let sample = catalog::lollipop();
    let cqs = cqs_for_sample(&sample);
    let groups = merge_by_orientation(&cqs);
    println!(
        "\n[planning]    {} node orders -> {} CQs -> {} orientation groups:",
        24,
        cqs.len(),
        groups.len()
    );
    for group in &groups {
        println!(
            "              {}  ({} member order(s))",
            group.orientation_signature(),
            group.members.len()
        );
    }
}
