//! Social-network motif census — the application driving Section 1.1: the
//! frequency of small sample graphs (triangles, squares, lollipops, stars)
//! says something about the stage of evolution of a community.
//!
//! A skewed Chung–Lu graph stands in for the social network; the motifs are
//! counted with the variable-oriented map-reduce strategy (Section 4.3), and
//! the report shows the communication the optimizer predicted next to what the
//! engine actually shipped.
//!
//! ```text
//! cargo run --release --example social_motifs
//! ```

use subgraph_mr::core::enumerate::variable_oriented::{plan, run_with_plan};
use subgraph_mr::prelude::*;

fn main() {
    // A 3 000-node power-law "community" with about 15 000 relationships.
    let network = generators::power_law(3_000, 15_000, 2.3, 99);
    println!(
        "community graph: {} members, {} relationships, max degree {}",
        network.num_nodes(),
        network.num_edges(),
        network.max_degree()
    );

    let reducer_budget = 256;
    let motifs: Vec<(&str, SampleGraph)> = vec![
        ("triangle (closed triad)", catalog::triangle()),
        ("square (4-cycle)", catalog::square()),
        ("lollipop (triad + follower)", catalog::lollipop()),
        ("star-4 (broadcast hub)", catalog::star(4)),
        ("path-4 (chain)", catalog::path(4)),
    ];

    println!(
        "\n{:<28} {:>10} {:>14} {:>14} {:>10} {:>9}",
        "motif", "instances", "kv predicted", "kv shipped", "reducers", "max load"
    );
    for (name, motif) in motifs {
        let job_plan = plan(&motif, reducer_budget);
        let run = run_with_plan(&network, &job_plan, &EngineConfig::default());
        let predicted = job_plan.predicted_replication * network.num_edges() as f64;
        assert_eq!(run.duplicates(), 0, "motif {name} was double counted");
        println!(
            "{:<28} {:>10} {:>14} {:>14} {:>10} {:>9}",
            name,
            run.count(),
            format!("{predicted:.0}"),
            run.metrics.key_value_pairs,
            run.metrics.reducers_used,
            run.metrics.max_reducer_input
        );
    }

    println!(
        "\nShares were optimized per motif for a budget of {reducer_budget} reducers \
         (Section 4.3); the predicted and shipped key-value counts match exactly because \
         the engine counts precisely what the cost expression models."
    );
}
