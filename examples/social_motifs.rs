//! Social-network motif census — the application driving Section 1.1: the
//! frequency of small sample graphs (triangles, squares, lollipops, stars)
//! says something about the stage of evolution of a community.
//!
//! A skewed Chung–Lu graph stands in for the social network; each motif goes
//! through the cost-driven planner, which picks the cheapest single-round
//! strategy for the reducer budget, and the report shows the communication
//! the planner predicted next to what the engine actually shipped.
//!
//! ```text
//! cargo run --release --example social_motifs
//! ```

use subgraph_mr::prelude::*;

fn main() {
    // A 2 000-node power-law "community" with about 10 000 relationships.
    // (The exponent keeps the biggest hub near degree 200: star counting is
    // Θ(m·Δ^{p−2}), so a heavier tail makes the census itself astronomical.)
    let network = generators::power_law(2_000, 10_000, 3.0, 99);
    println!(
        "community graph: {} members, {} relationships, max degree {}",
        network.num_nodes(),
        network.num_edges(),
        network.max_degree()
    );

    let reducer_budget = 256;
    let motifs: Vec<(&str, &str)> = vec![
        ("triangle (closed triad)", "triangle"),
        ("square (4-cycle)", "square"),
        ("lollipop (triad + follower)", "lollipop"),
        ("star-4 (broadcast hub)", "star4"),
        ("path-4 (chain)", "path4"),
    ];

    println!(
        "\n{:<28} {:<24} {:>10} {:>14} {:>14} {:>10} {:>9}",
        "motif", "strategy", "instances", "kv predicted", "kv shipped", "reducers", "max load"
    );
    for (label, pattern) in motifs {
        let plan = EnumerationRequest::named(pattern, &network)
            .unwrap()
            .reducers(reducer_budget)
            .plan()
            .unwrap();
        // A census only needs counts: run in count-only mode, so the
        // instances stream through a CountSink and no per-instance storage
        // exists — this is how the same code counts motifs on graphs whose
        // instance sets exceed memory.
        let run = plan.count();
        assert!(run.is_streamed());
        let metrics = run.metrics.as_ref().expect("map-reduce strategy");
        println!(
            "{:<28} {:<24} {:>10} {:>14} {:>14} {:>10} {:>9}",
            label,
            plan.strategy().to_string(),
            run.count(),
            format!("{:.0}", plan.predicted_communication()),
            metrics.key_value_pairs,
            metrics.reducers_used,
            metrics.max_reducer_input
        );
    }

    println!(
        "\nEach motif was planned for a budget of {reducer_budget} reducers: the planner \
         compared CQ-oriented, variable-oriented and bucket-oriented processing (Section 4) \
         on predicted communication and ran the winner in one round — in count-only mode, \
         streaming every instance through a CountSink instead of materializing a Vec."
    );
}
