//! Communication planner — given a sample graph and a reducer budget, print
//! the optimal shares, per-subgoal replication, predicted communication cost
//! and reducer count, exactly the planning the paper's Section 4 performs
//! before a job is launched (Examples 4.1–4.3).
//!
//! ```text
//! cargo run --release --example communication_planner -- lollipop 750
//! cargo run --release --example communication_planner -- c6 500000
//! ```

use subgraph_mr::cq::cqs_for_sample;
use subgraph_mr::pattern::catalog;
use subgraph_mr::pattern::SampleGraph;
use subgraph_mr::shares::dominance::dominated_variables;
use subgraph_mr::shares::{optimize_shares, CostExpression};

fn pattern_by_name(name: &str) -> Option<SampleGraph> {
    Some(match name {
        "triangle" => catalog::triangle(),
        "square" => catalog::square(),
        "lollipop" => catalog::lollipop(),
        "k4" => catalog::k4(),
        "star4" => catalog::star(4),
        "c5" => catalog::cycle(5),
        "c6" => catalog::cycle(6),
        "c7" => catalog::cycle(7),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("lollipop");
    let budget: f64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(750.0);
    let sample = match pattern_by_name(name) {
        Some(s) => s,
        None => {
            eprintln!("unknown pattern {name:?}; try triangle|square|lollipop|k4|star4|c5|c6|c7");
            std::process::exit(1);
        }
    };

    let cqs = cqs_for_sample(&sample);
    println!(
        "pattern {name:?}: {} nodes, {} edges, {} conjunctive queries (Theorem 3.1)",
        sample.num_nodes(),
        sample.num_edges(),
        cqs.len()
    );

    // --- Per-query planning (CQ-oriented, Section 4.1) ---------------------
    println!("\nPer-query optimization (Section 4.1), budget {budget} reducers per query:");
    for (i, cq) in cqs.iter().enumerate().take(3) {
        let mut expr = CostExpression::from_single_cq(cq);
        for v in dominated_variables(cq) {
            expr.fix_to_one(v);
        }
        let solution = optimize_shares(&expr, budget);
        println!(
            "  CQ {:>2}: shares {:?}  cost/edge {:.2}",
            i + 1,
            solution
                .shares
                .iter()
                .map(|s| (s * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            solution.cost_per_edge
        );
    }
    if cqs.len() > 3 {
        println!("  … ({} more queries)", cqs.len() - 3);
    }

    // --- Combined planning (variable-oriented, Section 4.3) ----------------
    let expr = CostExpression::from_cq_collection(&cqs);
    let solution = optimize_shares(&expr, budget);
    println!("\nCombined evaluation of all CQs (Section 4.3), budget {budget} reducers:");
    println!(
        "  shares: {:?}",
        solution
            .shares
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("  communication cost per data edge: {:.2}", solution.cost_per_edge);
    println!("  optimality gap (max spread of Lagrangian sums): {:.4}", solution.optimality_gap);
    println!("\nPer-subgoal replication at the optimum:");
    for (term, replication) in expr.replication_per_term(&solution.shares) {
        println!(
            "  edge ({}, {})  {}  -> {:.1} copies of each data edge",
            term.edge.0,
            term.edge.1,
            if term.coefficient >= 2.0 { "both orientations" } else { "one orientation " },
            replication
        );
    }
    println!(
        "\nFor a data graph with 10^9 edges this plan ships {:.3e} key-value pairs in total.",
        solution.cost_per_edge * 1e9
    );
}
