//! Communication planner — given a sample graph and a reducer budget, print
//! the full execution plan: every applicable strategy's predicted shares,
//! replication, communication and reducer work, exactly the planning the
//! paper's Section 4 performs before a job is launched (Examples 4.1–4.3).
//!
//! ```text
//! cargo run --release --example communication_planner -- lollipop 750
//! cargo run --release --example communication_planner -- c6 500000
//! ```

use subgraph_mr::prelude::*;
use subgraph_mr::shares::dominance::single_cq_expression_with_dominance;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("lollipop");
    let budget: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(750);

    // The planner needs a data-graph handle for its absolute cost columns; a
    // synthetic stand-in with a round edge count keeps them easy to read.
    let stand_in = generators::gnm(10_000, 100_000, 1);

    let plan = match EnumerationRequest::named(name, &stand_in) {
        Ok(request) => request.reducers(budget).plan(),
        Err(err) => {
            eprintln!("{err}; try triangle|square|lollipop|k4|star4|c5|c6|c7");
            std::process::exit(1);
        }
    };
    let plan = match plan {
        Ok(plan) => plan,
        Err(err) => {
            eprintln!("planning failed: {err}");
            std::process::exit(1);
        }
    };

    // The chosen strategy plus the ranked candidate table.
    println!("{}", plan.explain());

    // The share-optimization details behind the variable-oriented candidate
    // (Section 4.3), as in Examples 4.1-4.3.
    let sample = plan.request().sample().clone();
    let cqs = cqs_for_sample(&sample);
    println!(
        "pattern {name:?}: {} nodes, {} edges, {} conjunctive queries (Theorem 3.1)",
        sample.num_nodes(),
        sample.num_edges(),
        cqs.len()
    );

    println!("\nPer-query optimization (Section 4.1), budget {budget} reducers per query:");
    for (i, cq) in cqs.iter().enumerate().take(3) {
        let expr = single_cq_expression_with_dominance(cq);
        let solution = optimize_shares(&expr, budget as f64);
        println!(
            "  CQ {:>2}: shares {:?}  cost/edge {:.2}",
            i + 1,
            solution
                .shares
                .iter()
                .map(|s| (s * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            solution.cost_per_edge
        );
    }
    if cqs.len() > 3 {
        println!("  … ({} more queries)", cqs.len() - 3);
    }

    let expr = CostExpression::from_cq_collection(&cqs);
    let solution = optimize_shares(&expr, budget as f64);
    println!("\nCombined evaluation of all CQs (Section 4.3), budget {budget} reducers:");
    println!(
        "  shares: {:?}",
        solution
            .shares
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  communication cost per data edge: {:.2}",
        solution.cost_per_edge
    );
    println!(
        "  optimality gap (max spread of Lagrangian sums): {:.4}",
        solution.optimality_gap
    );
    println!("\nPer-subgoal replication at the optimum:");
    for (term, replication) in expr.replication_per_term(&solution.shares) {
        println!(
            "  edge ({}, {})  {}  -> {:.1} copies of each data edge",
            term.edge.0,
            term.edge.1,
            if term.coefficient >= 2.0 {
                "both orientations"
            } else {
                "one orientation "
            },
            replication
        );
    }
    println!(
        "\nFor a data graph with 10^9 edges the chosen plan ships {:.3e} key-value pairs in total.",
        plan.predicted_replication() * 1e9
    );
}
