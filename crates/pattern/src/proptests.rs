//! Property-style tests for sample graphs and their group theory, exercised
//! over deterministic seeded sweeps of random sample graphs.

use crate::automorphism::{
    all_permutations, apply_to_ordering, automorphism_group, order_representatives,
};
use crate::decompose::decompose;
use crate::sample::{PatternNode, SampleGraph};
use std::collections::HashSet;
use subgraph_graph::rng::Rng;

/// Random sample graph with `3..=6` nodes: every node pair flips a coin.
fn arbitrary_sample(seed: u64) -> SampleGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let p = rng.gen_range(3..7);
    let mut sample = SampleGraph::empty(p);
    for u in 0..p as PatternNode {
        for v in (u + 1)..p as PatternNode {
            if rng.gen_bool(0.5) {
                sample.add_edge(u, v);
            }
        }
    }
    sample
}

#[test]
fn automorphism_group_divides_factorial() {
    for seed in 0..64 {
        let sample = arbitrary_sample(seed);
        let p = sample.num_nodes();
        let factorial: usize = (1..=p).product();
        let autos = automorphism_group(&sample);
        assert!(!autos.is_empty(), "seed {seed}");
        // Lagrange: the group order divides |S_p|.
        assert_eq!(factorial % autos.len(), 0, "seed {seed} {sample:?}");
    }
}

#[test]
fn representatives_partition_all_orderings() {
    for seed in 64..128 {
        let sample = arbitrary_sample(seed);
        let p = sample.num_nodes();
        let factorial: usize = (1..=p).product();
        let autos = automorphism_group(&sample);
        let reps = order_representatives(&sample);
        assert_eq!(reps.len() * autos.len(), factorial, "seed {seed}");
        let mut covered = HashSet::new();
        for rep in &reps {
            for mu in &autos {
                assert!(
                    covered.insert(apply_to_ordering(mu, rep)),
                    "seed {seed}: ordering covered twice"
                );
            }
        }
        assert_eq!(covered.len(), factorial, "seed {seed}");
    }
}

#[test]
fn decomposition_covers_nodes_and_is_convertible() {
    for seed in 128..192 {
        let sample = arbitrary_sample(seed);
        let d = decompose(&sample);
        let mut covered: Vec<PatternNode> =
            d.pieces.iter().flat_map(|piece| piece.nodes()).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), sample.num_nodes(), "seed {seed}");
        assert_eq!(
            d.alpha + d.beta_times_two,
            sample.num_nodes(),
            "seed {seed}"
        );
        assert!(d.is_convertible(sample.num_nodes()), "seed {seed}");
    }
}

#[test]
fn all_permutations_are_bijections() {
    for p in 1usize..6 {
        for perm in all_permutations(p) {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            let expected: Vec<PatternNode> = (0..p as PatternNode).collect();
            assert_eq!(sorted, expected);
        }
    }
}
