//! Property-based tests for sample graphs and their group theory.

use crate::automorphism::{all_permutations, apply_to_ordering, automorphism_group, order_representatives};
use crate::decompose::decompose;
use crate::sample::{PatternNode, SampleGraph};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random small sample graph with `3..=6` nodes.
fn arbitrary_sample() -> impl Strategy<Value = SampleGraph> {
    (3usize..=6).prop_flat_map(|p| {
        let pairs: Vec<(PatternNode, PatternNode)> = (0..p as PatternNode)
            .flat_map(|u| ((u + 1)..p as PatternNode).map(move |v| (u, v)))
            .collect();
        let num_pairs = pairs.len();
        prop::collection::vec(prop::bool::ANY, num_pairs).prop_map(move |mask| {
            let chosen: Vec<(PatternNode, PatternNode)> = pairs
                .iter()
                .zip(mask.iter())
                .filter(|(_, &keep)| keep)
                .map(|(&e, _)| e)
                .collect();
            SampleGraph::from_edges(p, &chosen)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn automorphism_group_divides_factorial(sample in arbitrary_sample()) {
        let p = sample.num_nodes();
        let factorial: usize = (1..=p).product();
        let autos = automorphism_group(&sample);
        prop_assert!(!autos.is_empty());
        // Lagrange: the group order divides |S_p|.
        prop_assert_eq!(factorial % autos.len(), 0);
    }

    #[test]
    fn representatives_partition_all_orderings(sample in arbitrary_sample()) {
        let p = sample.num_nodes();
        let factorial: usize = (1..=p).product();
        let autos = automorphism_group(&sample);
        let reps = order_representatives(&sample);
        prop_assert_eq!(reps.len() * autos.len(), factorial);
        let mut covered = HashSet::new();
        for rep in &reps {
            for mu in &autos {
                prop_assert!(covered.insert(apply_to_ordering(mu, rep)));
            }
        }
        prop_assert_eq!(covered.len(), factorial);
    }

    #[test]
    fn decomposition_covers_nodes_and_is_convertible(sample in arbitrary_sample()) {
        let d = decompose(&sample);
        let mut covered: Vec<PatternNode> = d.pieces.iter().flat_map(|piece| piece.nodes()).collect();
        covered.sort_unstable();
        covered.dedup();
        prop_assert_eq!(covered.len(), sample.num_nodes());
        prop_assert_eq!(d.alpha + d.beta_times_two, sample.num_nodes());
        prop_assert!(d.is_convertible(sample.num_nodes()));
    }

    #[test]
    fn all_permutations_are_bijections(p in 1usize..6) {
        for perm in all_permutations(p) {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            let expected: Vec<PatternNode> = (0..p as PatternNode).collect();
            prop_assert_eq!(sorted, expected);
        }
    }
}
