//! Inline sample-graph specifications: `a-b,b-c,c-a`.
//!
//! The catalog covers the patterns the paper names, but users (and the serve
//! query API) need ad-hoc patterns without editing the catalog. A *spec* is a
//! comma-separated list of undirected edges, each `u-v` where `u` and `v` are
//! node labels. Labels are arbitrary identifiers (letters, digits, `_`);
//! nodes are numbered by first appearance, so `a-b,b-c,c-a` and `x-y,y-z,z-x`
//! both denote the triangle with nodes `0,1,2`.
//!
//! Rules, chosen to fail loudly rather than guess:
//!
//! * at least one edge (a spec cannot describe isolated nodes);
//! * self-loops (`a-a`) are rejected — sample graphs are simple;
//! * duplicate edges (in either orientation) are rejected, since a repeated
//!   edge in a hand-typed spec is almost certainly a typo;
//! * at most [`MAX_PATTERN_NODES`] distinct labels.

use crate::sample::{PatternNode, SampleGraph, MAX_PATTERN_NODES};
use std::fmt;

/// Errors from parsing an inline pattern spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec is empty or contains an empty edge token (`a-b,,c-d`).
    EmptyEdge,
    /// An edge token is not of the form `label-label`.
    MalformedEdge(String),
    /// An edge joins a label to itself.
    SelfLoop(String),
    /// The same undirected edge appears twice.
    DuplicateEdge(String),
    /// More than [`MAX_PATTERN_NODES`] distinct labels.
    TooManyNodes(usize),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyEdge => write!(f, "pattern spec has an empty edge token"),
            SpecError::MalformedEdge(tok) => {
                write!(f, "cannot parse edge {tok:?}: expected label-label")
            }
            SpecError::SelfLoop(label) => {
                write!(f, "self-loop {label:?}-{label:?}: sample graphs are simple")
            }
            SpecError::DuplicateEdge(tok) => write!(f, "duplicate edge {tok:?}"),
            SpecError::TooManyNodes(n) => write!(
                f,
                "spec names {n} nodes; sample graphs are limited to {MAX_PATTERN_NODES}"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses an inline edge-list spec such as `a-b,b-c,c-a` into a
/// [`SampleGraph`], numbering nodes by first appearance.
pub fn parse_spec(spec: &str) -> Result<SampleGraph, SpecError> {
    let mut labels: Vec<&str> = Vec::new();
    let mut edges: Vec<(PatternNode, PatternNode)> = Vec::new();
    let mut seen: Vec<(PatternNode, PatternNode)> = Vec::new();
    for token in spec.split(',') {
        let token = token.trim();
        if token.is_empty() {
            return Err(SpecError::EmptyEdge);
        }
        let (a, b) = token
            .split_once('-')
            .ok_or_else(|| SpecError::MalformedEdge(token.to_string()))?;
        let (a, b) = (a.trim(), b.trim());
        if a.is_empty() || b.is_empty() {
            return Err(SpecError::MalformedEdge(token.to_string()));
        }
        if !is_label(a) || !is_label(b) {
            return Err(SpecError::MalformedEdge(token.to_string()));
        }
        if a == b {
            return Err(SpecError::SelfLoop(a.to_string()));
        }
        let u = match labels.iter().position(|&l| l == a) {
            Some(i) => i as PatternNode,
            None => {
                labels.push(a);
                (labels.len() - 1) as PatternNode
            }
        };
        let v = match labels.iter().position(|&l| l == b) {
            Some(i) => i as PatternNode,
            None => {
                labels.push(b);
                (labels.len() - 1) as PatternNode
            }
        };
        if labels.len() > MAX_PATTERN_NODES {
            return Err(SpecError::TooManyNodes(labels.len()));
        }
        let canon = if u < v { (u, v) } else { (v, u) };
        if seen.contains(&canon) {
            return Err(SpecError::DuplicateEdge(token.to_string()));
        }
        seen.push(canon);
        edges.push(canon);
    }
    if edges.is_empty() {
        return Err(SpecError::EmptyEdge);
    }
    Ok(SampleGraph::from_edges(labels.len(), &edges))
}

/// True iff `s` is a valid node label: identifiers made of ASCII
/// alphanumerics and `_`.
fn is_label(s: &str) -> bool {
    s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// True if `s` merely *looks like* a spec (contains a `-` between non-empty
/// halves). Used to decide whether a failed catalog lookup should surface a
/// spec parse error instead of "unknown pattern".
pub fn looks_like_spec(s: &str) -> bool {
    s.contains('-')
}

/// Normalizes the contents of a *pattern file* into a one-line inline spec:
/// `#` starts a comment (to end of line), blank lines and empty tokens are
/// skipped, and edges may be separated by commas, whitespace, or newlines —
/// so a file can list one edge per line like an edge-list file. The result
/// feeds the same strict [`parse_spec`] as a hand-typed spec (a file holding
/// a single catalog name like `triangle` normalizes to itself).
///
/// This is deliberately *not* applied to command-line specs: the file
/// dialect is free-form, while a hand-typed `a-b,,c-a` keeps its strict
/// empty-edge error. Callers apply it exactly where file contents enter
/// (`--pattern-file`, or serve queries whose pattern text contains newlines
/// or comments).
pub fn normalize_spec_text(text: &str) -> String {
    let mut tokens: Vec<&str> = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        tokens.extend(
            line.split(|c: char| c == ',' || c.is_whitespace())
                .map(str::trim)
                .filter(|t| !t.is_empty()),
        );
    }
    tokens.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_spec() {
        let s = parse_spec("a-b,b-c,c-a").unwrap();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 3);
        assert!(s.is_regular());
    }

    #[test]
    fn labels_numbered_by_first_appearance() {
        let s = parse_spec("x-y,y-z").unwrap();
        // x=0, y=1, z=2: a path with middle node 1.
        assert_eq!(s.degree(1), 2);
        assert_eq!(s.degree(0), 1);
        assert_eq!(s.degree(2), 1);
    }

    #[test]
    fn label_names_do_not_matter() {
        assert_eq!(parse_spec("a-b,b-c,c-a"), parse_spec("x-y,y-z,z-x"));
    }

    #[test]
    fn numeric_and_underscore_labels() {
        let s = parse_spec("0-1,1-2,hub_a-0,hub_a-1,hub_a-2").unwrap();
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.degree(3), 3); // hub_a
    }

    #[test]
    fn whitespace_around_tokens_is_tolerated() {
        let s = parse_spec(" a-b , b-c ").unwrap();
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(parse_spec(""), Err(SpecError::EmptyEdge));
        assert_eq!(parse_spec("a-b,,c-d"), Err(SpecError::EmptyEdge));
        assert!(matches!(parse_spec("ab"), Err(SpecError::MalformedEdge(_))));
        assert!(matches!(parse_spec("a-"), Err(SpecError::MalformedEdge(_))));
        assert!(matches!(
            parse_spec("a b-c"),
            Err(SpecError::MalformedEdge(_))
        ));
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        assert!(matches!(parse_spec("a-a"), Err(SpecError::SelfLoop(_))));
        assert!(matches!(
            parse_spec("a-b,b-a"),
            Err(SpecError::DuplicateEdge(_))
        ));
        assert!(matches!(
            parse_spec("a-b,a-b"),
            Err(SpecError::DuplicateEdge(_))
        ));
    }

    #[test]
    fn rejects_too_many_nodes() {
        // A star with 17 nodes: centre plus 16 leaves.
        let spec: Vec<String> = (0..17).map(|i| format!("c-l{i}")).collect();
        assert!(matches!(
            parse_spec(&spec.join(",")),
            Err(SpecError::TooManyNodes(_))
        ));
    }

    #[test]
    fn spec_detection() {
        assert!(looks_like_spec("a-b,b-c"));
        assert!(looks_like_spec("pentagon-with-chord"));
        assert!(!looks_like_spec("triangle"));
    }

    #[test]
    fn pattern_file_text_normalizes_to_an_inline_spec() {
        let file = "# the triangle, one edge per line\na-b\nb-c  # closing edge next\n\nc-a\n";
        assert_eq!(normalize_spec_text(file), "a-b,b-c,c-a");
        assert_eq!(
            parse_spec(&normalize_spec_text(file)),
            parse_spec("a-b,b-c,c-a")
        );
        // Mixed separators and stray blanks are all equivalent.
        assert_eq!(normalize_spec_text("a-b, b-c\tc-a"), "a-b,b-c,c-a");
        assert_eq!(normalize_spec_text("  a-b ,, b-c  "), "a-b,b-c");
        // A catalog name (or nothing at all) passes through unchanged.
        assert_eq!(normalize_spec_text("triangle\n"), "triangle");
        assert_eq!(normalize_spec_text("# only comments\n\n"), "");
        // Normalization never repairs *bad edges*: the strict parser still
        // rejects what survives.
        assert!(parse_spec(&normalize_spec_text("a-a\n")).is_err());
    }

    #[test]
    fn errors_render_usefully() {
        let e = parse_spec("a-a").unwrap_err().to_string();
        assert!(e.contains("self-loop"), "{e}");
        let e = parse_spec("oops").unwrap_err().to_string();
        assert!(e.contains("oops"), "{e}");
    }
}
