//! Named sample graphs used throughout the paper.
//!
//! Every pattern the paper analyses is available by name through
//! [`by_name`] — fixed figures (`triangle`, `square`, `lollipop`,
//! `pentagon-with-chord`, `bowtie-bridge`) and parameterized families
//! (`c5`/`cycle5`, `k4`/`clique4`, `star5`, `path4`, `hypercube3`). This is
//! the vocabulary of [`EnumerationRequest::named`] in `subgraph-core` and of
//! the `subgraph` CLI's `--pattern` flag; `subgraph catalog` renders the
//! [`entries`] table.
//!
//! ```
//! use subgraph_pattern::catalog;
//!
//! let lollipop = catalog::by_name("lollipop").unwrap();
//! assert_eq!(lollipop.num_nodes(), 4);
//! assert_eq!(lollipop.num_edges(), 4);
//!
//! // The same patterns, with their metadata, as a browsable table:
//! let entries = catalog::entries();
//! let triangle = entries.iter().find(|e| e.name == "triangle").unwrap();
//! assert_eq!(triangle.automorphisms(), 6); // |Aut(K3)| = 3!
//! ```
//!
//! [`EnumerationRequest::named`]: https://docs.rs/subgraph-core

use crate::automorphism::automorphism_group;
use crate::sample::{PatternNode, SampleGraph};

/// The triangle `K_3` (Section 2).
pub fn triangle() -> SampleGraph {
    SampleGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
}

/// The square `C_4` with the node naming of Figure 3:
/// `0 = W, 1 = X, 2 = Y, 3 = Z`, edges W–X, X–Y, Y–Z, W–Z.
pub fn square() -> SampleGraph {
    SampleGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
}

/// The "lollipop" of Figure 4: a triangle `X, Y, Z` with a pendant node `W`
/// attached to `X`. Node naming: `0 = W, 1 = X, 2 = Y, 3 = Z`.
pub fn lollipop() -> SampleGraph {
    SampleGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)])
}

/// The cycle `C_p` with nodes `0..p` in cyclic order (Figure 8). Requires `p ≥ 3`.
pub fn cycle(p: usize) -> SampleGraph {
    assert!(p >= 3, "cycles need at least 3 nodes");
    let mut s = SampleGraph::empty(p);
    for v in 0..p {
        s.add_edge(v as PatternNode, ((v + 1) % p) as PatternNode);
    }
    s
}

/// The complete graph `K_p`.
pub fn clique(p: usize) -> SampleGraph {
    let mut s = SampleGraph::empty(p);
    for u in 0..p {
        for v in (u + 1)..p {
            s.add_edge(u as PatternNode, v as PatternNode);
        }
    }
    s
}

/// The path with `p` nodes and `p − 1` edges.
pub fn path(p: usize) -> SampleGraph {
    let mut s = SampleGraph::empty(p);
    for v in 1..p {
        s.add_edge((v - 1) as PatternNode, v as PatternNode);
    }
    s
}

/// The star with centre `0` and `p − 1` leaves (the Θ(mΔ^{p−2}) example of §7.3).
pub fn star(p: usize) -> SampleGraph {
    assert!(p >= 2);
    let mut s = SampleGraph::empty(p);
    for v in 1..p {
        s.add_edge(0, v as PatternNode);
    }
    s
}

/// The hypercube `Q_d` on `2^d` nodes (a regular sample graph mentioned after
/// Theorem 4.1). Requires `2^d ≤ 16`.
pub fn hypercube(d: usize) -> SampleGraph {
    let p = 1usize << d;
    let mut s = SampleGraph::empty(p);
    for u in 0..p {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if v > u {
                s.add_edge(u as PatternNode, v as PatternNode);
            }
        }
    }
    s
}

/// `C_5` with one chord: an example of a graph containing an odd Hamilton
/// cycle "plus additional edges" (Theorem 7.1).
pub fn pentagon_with_chord() -> SampleGraph {
    let mut s = cycle(5);
    s.add_edge(0, 2);
    s
}

/// Two triangles sharing no node, joined by a single bridge edge — an example
/// of a decomposable sample graph for Theorem 7.2.
pub fn bowtie_bridge() -> SampleGraph {
    SampleGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
}

/// The 4-clique `K_4` (used in decomposition and share examples).
pub fn k4() -> SampleGraph {
    clique(4)
}

/// One browsable catalog pattern: the name [`by_name`] resolves, the sample
/// graph itself and a one-line description with its paper pointer.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// The name [`by_name`] resolves (for families, a representative member —
    /// `c5` stands for every `cN`).
    pub name: &'static str,
    /// Where the pattern appears in the paper, in one line.
    pub description: &'static str,
    /// The sample graph.
    pub sample: SampleGraph,
}

impl CatalogEntry {
    /// Size of the automorphism group `|Aut(S)|` (computed exhaustively —
    /// patterns are tiny). The number of conjunctive queries Theorem 3.1
    /// assigns the pattern is `p! / |Aut(S)|`.
    pub fn automorphisms(&self) -> usize {
        automorphism_group(&self.sample).len()
    }

    /// The Theorem 3.1 conjunctive-query count `p! / |Aut(S)|`.
    pub fn order_classes(&self) -> usize {
        let p = self.sample.num_nodes();
        (1..=p).product::<usize>() / self.automorphisms()
    }
}

/// The browsable pattern catalog: every fixed pattern plus one representative
/// member of each parameterized family, with names [`by_name`] resolves.
/// This is the list the `subgraph catalog` CLI subcommand prints and the
/// pattern sweep the CLI parity checks run over.
pub fn entries() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "triangle",
            description: "K3, the running example of Sections 1-2",
            sample: triangle(),
        },
        CatalogEntry {
            name: "square",
            description: "C4 with the node naming of Figure 3",
            sample: square(),
        },
        CatalogEntry {
            name: "lollipop",
            description: "triangle with a pendant node (Figure 4)",
            sample: lollipop(),
        },
        CatalogEntry {
            name: "pentagon-with-chord",
            description: "C5 plus a chord: odd Hamilton cycle plus edges (Theorem 7.1)",
            sample: pentagon_with_chord(),
        },
        CatalogEntry {
            name: "bowtie-bridge",
            description: "two triangles joined by a bridge, decomposable (Theorem 7.2)",
            sample: bowtie_bridge(),
        },
        CatalogEntry {
            name: "c5",
            description: "the cycle family cN / cycleN (Figure 8), shown at N = 5",
            sample: cycle(5),
        },
        CatalogEntry {
            name: "k4",
            description: "the clique family kN / cliqueN, shown at N = 4",
            sample: clique(4),
        },
        CatalogEntry {
            name: "star5",
            description: "the star family starN (the Θ(mΔ^{p-2}) example of §7.3), N = 5",
            sample: star(5),
        },
        CatalogEntry {
            name: "path4",
            description: "the path family pathN, shown at N = 4",
            sample: path(4),
        },
        CatalogEntry {
            name: "hypercube3",
            description: "the hypercube family hypercubeD (regular, Theorem 4.1), D = 3",
            sample: hypercube(3),
        },
    ]
}

/// Looks a catalog pattern up by name, the form the planner's request builder
/// accepts. Fixed names: `triangle`, `square`, `lollipop`,
/// `pentagon-with-chord`, `bowtie-bridge`. Parameterized families: `cN` or
/// `cycleN` (cycle), `kN` or `cliqueN` (clique), `starN`, `pathN`,
/// `hypercubeD` — e.g. `c5`, `k4`, `star6`.
pub fn by_name(name: &str) -> Option<SampleGraph> {
    let fixed = match name {
        "triangle" => Some(triangle()),
        "square" => Some(square()),
        "lollipop" => Some(lollipop()),
        "pentagon-with-chord" => Some(pentagon_with_chord()),
        "bowtie-bridge" => Some(bowtie_bridge()),
        _ => None,
    };
    if fixed.is_some() {
        return fixed;
    }
    type Family = (&'static str, fn(usize) -> SampleGraph, usize);
    let parameterized: &[Family] = &[
        ("cycle", cycle, 3),
        ("c", cycle, 3),
        ("clique", clique, 2),
        ("k", clique, 2),
        ("star", star, 2),
        ("path", path, 2),
        ("hypercube", hypercube, 1),
    ];
    for &(prefix, build, min) in parameterized {
        if let Some(rest) = name.strip_prefix(prefix) {
            if let Ok(p) = rest.parse::<usize>() {
                // Every family parameter is bounded by the pattern-node limit
                // (a hypercube dimension even more tightly), so reject huge
                // parameters before computing 2^p — `1 << p` would overflow.
                if p > crate::sample::MAX_PATTERN_NODES {
                    continue;
                }
                let nodes = if prefix == "hypercube" {
                    1usize << p
                } else {
                    p
                };
                if p >= min && nodes <= crate::sample::MAX_PATTERN_NODES {
                    return Some(build(p));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes() {
        assert_eq!(triangle().num_edges(), 3);
        assert_eq!(square().num_edges(), 4);
        assert_eq!(lollipop().num_edges(), 4);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(clique(5).num_edges(), 10);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(star(6).num_edges(), 5);
        assert_eq!(hypercube(3).num_edges(), 12);
        assert_eq!(pentagon_with_chord().num_edges(), 6);
        assert_eq!(bowtie_bridge().num_edges(), 7);
    }

    #[test]
    fn regular_members_are_regular() {
        assert!(triangle().is_regular());
        assert!(square().is_regular());
        assert!(cycle(7).is_regular());
        assert!(clique(4).is_regular());
        assert!(hypercube(2).is_regular());
        assert!(!lollipop().is_regular());
        assert!(!star(4).is_regular());
    }

    #[test]
    fn lollipop_structure_matches_figure_4() {
        let l = lollipop();
        // W(0) only touches X(1); X touches everything; Y(2) and Z(3) touch X and each other.
        assert_eq!(l.degree(0), 1);
        assert_eq!(l.degree(1), 3);
        assert_eq!(l.degree(2), 2);
        assert_eq!(l.degree(3), 2);
        assert!(l.has_edge(2, 3));
        assert!(!l.has_edge(0, 2));
    }

    #[test]
    fn cycles_have_hamilton_cycles() {
        for p in 3..8 {
            assert!(cycle(p).find_hamilton_cycle().is_some());
        }
        assert!(path(5).find_hamilton_cycle().is_none());
    }

    #[test]
    fn by_name_resolves_fixed_and_parameterized_patterns() {
        assert_eq!(by_name("triangle"), Some(triangle()));
        assert_eq!(by_name("lollipop"), Some(lollipop()));
        assert_eq!(by_name("c5"), Some(cycle(5)));
        assert_eq!(by_name("cycle6"), Some(cycle(6)));
        assert_eq!(by_name("k4"), Some(clique(4)));
        assert_eq!(by_name("star5"), Some(star(5)));
        assert_eq!(by_name("path4"), Some(path(4)));
        assert_eq!(by_name("hypercube3"), Some(hypercube(3)));
        assert_eq!(by_name("c2"), None); // below the family minimum
        assert_eq!(by_name("hypercube9"), None); // exceeds MAX_PATTERN_NODES
        assert_eq!(by_name("hypercube64"), None); // must not overflow the shift
        assert_eq!(by_name("hypercube9999"), None);
        assert_eq!(by_name("nonsense"), None);
    }

    #[test]
    fn every_entry_name_resolves_to_its_own_sample() {
        let entries = entries();
        assert!(entries.len() >= 10);
        for entry in &entries {
            let resolved = by_name(entry.name)
                .unwrap_or_else(|| panic!("entry {:?} must resolve via by_name", entry.name));
            assert_eq!(resolved, entry.sample, "entry {:?}", entry.name);
            assert!(!entry.description.is_empty());
        }
    }

    #[test]
    fn entry_automorphism_counts_match_the_paper() {
        let find = |name: &str| {
            entries()
                .into_iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("no entry {name}"))
        };
        assert_eq!(find("triangle").automorphisms(), 6); // 3!
        assert_eq!(find("square").automorphisms(), 8); // dihedral D4
        assert_eq!(find("lollipop").automorphisms(), 2); // swap Y, Z
        assert_eq!(find("lollipop").order_classes(), 12); // Figure 5's 12 CQs
        assert_eq!(find("k4").automorphisms(), 24); // 4!
        assert_eq!(find("c5").automorphisms(), 10); // dihedral D5
        assert_eq!(find("star5").automorphisms(), 24); // leaves permute: 4!
        assert_eq!(find("hypercube3").automorphisms(), 48);
    }

    #[test]
    fn hypercube_is_bipartite_regular() {
        let q3 = hypercube(3);
        assert_eq!(q3.num_nodes(), 8);
        for v in q3.nodes() {
            assert_eq!(q3.degree(v), 3);
        }
    }
}
