//! Named sample graphs used throughout the paper.

use crate::sample::{PatternNode, SampleGraph};

/// The triangle `K_3` (Section 2).
pub fn triangle() -> SampleGraph {
    SampleGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
}

/// The square `C_4` with the node naming of Figure 3:
/// `0 = W, 1 = X, 2 = Y, 3 = Z`, edges W–X, X–Y, Y–Z, W–Z.
pub fn square() -> SampleGraph {
    SampleGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
}

/// The "lollipop" of Figure 4: a triangle `X, Y, Z` with a pendant node `W`
/// attached to `X`. Node naming: `0 = W, 1 = X, 2 = Y, 3 = Z`.
pub fn lollipop() -> SampleGraph {
    SampleGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)])
}

/// The cycle `C_p` with nodes `0..p` in cyclic order (Figure 8). Requires `p ≥ 3`.
pub fn cycle(p: usize) -> SampleGraph {
    assert!(p >= 3, "cycles need at least 3 nodes");
    let mut s = SampleGraph::empty(p);
    for v in 0..p {
        s.add_edge(v as PatternNode, ((v + 1) % p) as PatternNode);
    }
    s
}

/// The complete graph `K_p`.
pub fn clique(p: usize) -> SampleGraph {
    let mut s = SampleGraph::empty(p);
    for u in 0..p {
        for v in (u + 1)..p {
            s.add_edge(u as PatternNode, v as PatternNode);
        }
    }
    s
}

/// The path with `p` nodes and `p − 1` edges.
pub fn path(p: usize) -> SampleGraph {
    let mut s = SampleGraph::empty(p);
    for v in 1..p {
        s.add_edge((v - 1) as PatternNode, v as PatternNode);
    }
    s
}

/// The star with centre `0` and `p − 1` leaves (the Θ(mΔ^{p−2}) example of §7.3).
pub fn star(p: usize) -> SampleGraph {
    assert!(p >= 2);
    let mut s = SampleGraph::empty(p);
    for v in 1..p {
        s.add_edge(0, v as PatternNode);
    }
    s
}

/// The hypercube `Q_d` on `2^d` nodes (a regular sample graph mentioned after
/// Theorem 4.1). Requires `2^d ≤ 16`.
pub fn hypercube(d: usize) -> SampleGraph {
    let p = 1usize << d;
    let mut s = SampleGraph::empty(p);
    for u in 0..p {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if v > u {
                s.add_edge(u as PatternNode, v as PatternNode);
            }
        }
    }
    s
}

/// `C_5` with one chord: an example of a graph containing an odd Hamilton
/// cycle "plus additional edges" (Theorem 7.1).
pub fn pentagon_with_chord() -> SampleGraph {
    let mut s = cycle(5);
    s.add_edge(0, 2);
    s
}

/// Two triangles sharing no node, joined by a single bridge edge — an example
/// of a decomposable sample graph for Theorem 7.2.
pub fn bowtie_bridge() -> SampleGraph {
    SampleGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
}

/// The 4-clique `K_4` (used in decomposition and share examples).
pub fn k4() -> SampleGraph {
    clique(4)
}

/// Looks a catalog pattern up by name, the form the planner's request builder
/// accepts. Fixed names: `triangle`, `square`, `lollipop`,
/// `pentagon-with-chord`, `bowtie-bridge`. Parameterized families: `cN` or
/// `cycleN` (cycle), `kN` or `cliqueN` (clique), `starN`, `pathN`,
/// `hypercubeD` — e.g. `c5`, `k4`, `star6`.
pub fn by_name(name: &str) -> Option<SampleGraph> {
    let fixed = match name {
        "triangle" => Some(triangle()),
        "square" => Some(square()),
        "lollipop" => Some(lollipop()),
        "pentagon-with-chord" => Some(pentagon_with_chord()),
        "bowtie-bridge" => Some(bowtie_bridge()),
        _ => None,
    };
    if fixed.is_some() {
        return fixed;
    }
    type Family = (&'static str, fn(usize) -> SampleGraph, usize);
    let parameterized: &[Family] = &[
        ("cycle", cycle, 3),
        ("c", cycle, 3),
        ("clique", clique, 2),
        ("k", clique, 2),
        ("star", star, 2),
        ("path", path, 2),
        ("hypercube", hypercube, 1),
    ];
    for &(prefix, build, min) in parameterized {
        if let Some(rest) = name.strip_prefix(prefix) {
            if let Ok(p) = rest.parse::<usize>() {
                // Every family parameter is bounded by the pattern-node limit
                // (a hypercube dimension even more tightly), so reject huge
                // parameters before computing 2^p — `1 << p` would overflow.
                if p > crate::sample::MAX_PATTERN_NODES {
                    continue;
                }
                let nodes = if prefix == "hypercube" {
                    1usize << p
                } else {
                    p
                };
                if p >= min && nodes <= crate::sample::MAX_PATTERN_NODES {
                    return Some(build(p));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes() {
        assert_eq!(triangle().num_edges(), 3);
        assert_eq!(square().num_edges(), 4);
        assert_eq!(lollipop().num_edges(), 4);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(clique(5).num_edges(), 10);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(star(6).num_edges(), 5);
        assert_eq!(hypercube(3).num_edges(), 12);
        assert_eq!(pentagon_with_chord().num_edges(), 6);
        assert_eq!(bowtie_bridge().num_edges(), 7);
    }

    #[test]
    fn regular_members_are_regular() {
        assert!(triangle().is_regular());
        assert!(square().is_regular());
        assert!(cycle(7).is_regular());
        assert!(clique(4).is_regular());
        assert!(hypercube(2).is_regular());
        assert!(!lollipop().is_regular());
        assert!(!star(4).is_regular());
    }

    #[test]
    fn lollipop_structure_matches_figure_4() {
        let l = lollipop();
        // W(0) only touches X(1); X touches everything; Y(2) and Z(3) touch X and each other.
        assert_eq!(l.degree(0), 1);
        assert_eq!(l.degree(1), 3);
        assert_eq!(l.degree(2), 2);
        assert_eq!(l.degree(3), 2);
        assert!(l.has_edge(2, 3));
        assert!(!l.has_edge(0, 2));
    }

    #[test]
    fn cycles_have_hamilton_cycles() {
        for p in 3..8 {
            assert!(cycle(p).find_hamilton_cycle().is_some());
        }
        assert!(path(5).find_hamilton_cycle().is_none());
    }

    #[test]
    fn by_name_resolves_fixed_and_parameterized_patterns() {
        assert_eq!(by_name("triangle"), Some(triangle()));
        assert_eq!(by_name("lollipop"), Some(lollipop()));
        assert_eq!(by_name("c5"), Some(cycle(5)));
        assert_eq!(by_name("cycle6"), Some(cycle(6)));
        assert_eq!(by_name("k4"), Some(clique(4)));
        assert_eq!(by_name("star5"), Some(star(5)));
        assert_eq!(by_name("path4"), Some(path(4)));
        assert_eq!(by_name("hypercube3"), Some(hypercube(3)));
        assert_eq!(by_name("c2"), None); // below the family minimum
        assert_eq!(by_name("hypercube9"), None); // exceeds MAX_PATTERN_NODES
        assert_eq!(by_name("hypercube64"), None); // must not overflow the shift
        assert_eq!(by_name("hypercube9999"), None);
        assert_eq!(by_name("nonsense"), None);
    }

    #[test]
    fn hypercube_is_bipartite_regular() {
        let q3 = hypercube(3);
        assert_eq!(q3.num_nodes(), 8);
        for v in q3.nodes() {
            assert_eq!(q3.degree(v), 3);
        }
    }
}
