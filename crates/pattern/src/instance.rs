//! Canonical representation of one instance of the sample graph in the data graph.
//!
//! The paper counts *instances*: subgraphs of the data graph `G` isomorphic to
//! the sample graph `S`. Two different assignments of pattern nodes to data
//! nodes that are related by an automorphism of `S` describe the same
//! instance; the canonical representation therefore forgets the assignment and
//! keeps only the set of data-graph edges making up the copy of `S`. This is
//! exactly the object the "discovered exactly once" invariant is about.

use crate::sample::SampleGraph;
use subgraph_graph::NodeId;

/// One instance of a sample graph in a data graph, in canonical form.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Instance {
    /// Sorted, de-duplicated data-graph nodes in the image.
    nodes: Vec<NodeId>,
    /// Sorted canonical edges `(lo, hi)` of the image subgraph.
    edges: Vec<(NodeId, NodeId)>,
}

impl Instance {
    /// Builds the canonical instance from an assignment `assignment[pattern node] = data node`.
    ///
    /// # Panics
    /// Panics if the assignment maps two pattern nodes to the same data node
    /// (instances are injective) or its length differs from the pattern size.
    pub fn from_assignment(sample: &SampleGraph, assignment: &[NodeId]) -> Self {
        assert_eq!(
            assignment.len(),
            sample.num_nodes(),
            "assignment length must equal the pattern size"
        );
        let mut nodes = assignment.to_vec();
        nodes.sort_unstable();
        for pair in nodes.windows(2) {
            assert_ne!(
                pair[0], pair[1],
                "instances must map pattern nodes injectively"
            );
        }
        let mut edges: Vec<(NodeId, NodeId)> = sample
            .edges()
            .iter()
            .map(|&(u, v)| {
                let a = assignment[u as usize];
                let b = assignment[v as usize];
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        Instance { nodes, edges }
    }

    /// Builds an instance directly from an edge set (used by algorithms that
    /// assemble instances from pieces rather than from a full assignment).
    pub fn from_edge_set(edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = edges
            .into_iter()
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut nodes: Vec<NodeId> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        Instance { nodes, edges }
    }

    /// The sorted data-graph nodes of the instance.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The sorted canonical edges of the instance.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn automorphic_assignments_collapse_to_one_instance() {
        let triangle = catalog::triangle();
        let a = Instance::from_assignment(&triangle, &[10, 20, 30]);
        let b = Instance::from_assignment(&triangle, &[30, 10, 20]);
        let c = Instance::from_assignment(&triangle, &[20, 30, 10]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.nodes(), &[10, 20, 30]);
        assert_eq!(a.edges(), &[(10, 20), (10, 30), (20, 30)]);
    }

    #[test]
    fn different_node_sets_are_different_instances() {
        let triangle = catalog::triangle();
        let a = Instance::from_assignment(&triangle, &[1, 2, 3]);
        let b = Instance::from_assignment(&triangle, &[1, 2, 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn same_nodes_different_edges_are_different_instances() {
        // In K4 the node set {0,1,2,3} carries three distinct squares.
        let square = catalog::square();
        let a = Instance::from_assignment(&square, &[0, 1, 2, 3]);
        let b = Instance::from_assignment(&square, &[0, 2, 1, 3]);
        assert_eq!(a.nodes(), b.nodes());
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn non_injective_assignment_rejected() {
        let triangle = catalog::triangle();
        let _ = Instance::from_assignment(&triangle, &[1, 1, 2]);
    }

    #[test]
    fn from_edge_set_canonicalizes() {
        let a = Instance::from_edge_set([(5, 2), (2, 5), (7, 2)]);
        assert_eq!(a.edges(), &[(2, 5), (2, 7)]);
        assert_eq!(a.nodes(), &[2, 5, 7]);
    }
}
