//! Sample ("pattern") graphs and the group theory the paper builds on.
//!
//! A *sample graph* `S` is the small graph (p nodes, typically 3–8) whose
//! instances we enumerate inside the large data graph `G`. This crate provides:
//!
//! * [`SampleGraph`] — a compact representation of `S` suitable for exhaustive
//!   analysis (p is assumed small, at most [`sample::MAX_PATTERN_NODES`]).
//! * [`catalog`] — the named sample graphs the paper uses: triangle, square
//!   (Fig. 3), lollipop (Fig. 4), cycles `C_p` (Fig. 8), cliques, stars, paths
//!   and hypercubes.
//! * [`automorphism`] — the automorphism group `Aut(S)` computed by brute force
//!   over the symmetric group `S_p`, plus the coset representatives of
//!   `S_p / Aut(S)` that Theorem 3.1 turns into conjunctive queries.
//! * [`decompose`] — decompositions of `S` into node-disjoint pieces that are
//!   single edges, odd-length Hamilton-cycle subgraphs, or isolated nodes, as
//!   required by Theorem 7.2 for worst-case-optimal serial algorithms.
//! * [`instance`] — canonical representation of one instance of `S` inside the
//!   data graph, used to verify the paper's central "each instance exactly
//!   once" invariant.
//! * [`spec`] — inline edge-list specs (`a-b,b-c,c-a`) so ad-hoc patterns can
//!   be given on the command line or in a serve query without extending the
//!   catalog.

pub mod automorphism;
pub mod catalog;
pub mod decompose;
pub mod instance;
pub mod sample;
pub mod spec;

pub use automorphism::{automorphism_group, order_representatives, Permutation};
pub use instance::Instance;
pub use sample::{PatternNode, SampleGraph};
pub use spec::{normalize_spec_text, parse_spec, SpecError};

#[cfg(test)]
mod proptests;
