//! The sample graph `S`: a small simple graph analysed exhaustively.

use std::fmt;

/// Index of a node of the sample graph (a "variable" once we move to
/// conjunctive queries). Pattern nodes are `0..p`.
pub type PatternNode = u8;

/// Maximum number of nodes a sample graph may have.
///
/// Every analysis in this workspace (automorphism groups, order
/// representatives, cycle run-sequences) is exhaustive over permutations or
/// subsets of the pattern nodes, which is exactly what the paper does: sample
/// graphs are "typically very small" (Section 3, Remark). Sixteen keeps `p!`
/// far from overflow while being well beyond any pattern in the paper.
pub const MAX_PATTERN_NODES: usize = 16;

/// A simple undirected sample graph on `p ≤ MAX_PATTERN_NODES` nodes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SampleGraph {
    num_nodes: usize,
    /// Adjacency bitmask per node: bit `j` of `adj[i]` is set iff `{i, j}` is an edge.
    adj: Vec<u16>,
    /// Canonical edge list, each edge once with the smaller index first.
    edges: Vec<(PatternNode, PatternNode)>,
}

impl SampleGraph {
    /// Creates a sample graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= MAX_PATTERN_NODES,
            "sample graphs are limited to {MAX_PATTERN_NODES} nodes"
        );
        SampleGraph {
            num_nodes,
            adj: vec![0; num_nodes],
            edges: Vec::new(),
        }
    }

    /// Creates a sample graph from an explicit edge list.
    pub fn from_edges(num_nodes: usize, edges: &[(PatternNode, PatternNode)]) -> Self {
        let mut s = SampleGraph::empty(num_nodes);
        for &(u, v) in edges {
            s.add_edge(u, v);
        }
        s
    }

    /// Adds the undirected edge `{u, v}`. Adding an existing edge is a no-op.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range nodes.
    pub fn add_edge(&mut self, u: PatternNode, v: PatternNode) {
        assert_ne!(u, v, "sample graphs are simple: no self loops");
        assert!((u as usize) < self.num_nodes && (v as usize) < self.num_nodes);
        if self.has_edge(u, v) {
            return;
        }
        self.adj[u as usize] |= 1 << v;
        self.adj[v as usize] |= 1 << u;
        let e = if u < v { (u, v) } else { (v, u) };
        self.edges.push(e);
        self.edges.sort_unstable();
    }

    /// Number of nodes `p`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges of the sample graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over the nodes `0..p`.
    pub fn nodes(&self) -> impl Iterator<Item = PatternNode> {
        0..self.num_nodes as PatternNode
    }

    /// Canonical edge list (smaller node index first, lexicographically sorted).
    pub fn edges(&self) -> &[(PatternNode, PatternNode)] {
        &self.edges
    }

    /// True iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: PatternNode, v: PatternNode) -> bool {
        u != v
            && (u as usize) < self.num_nodes
            && (v as usize) < self.num_nodes
            && (self.adj[u as usize] >> v) & 1 == 1
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: PatternNode) -> usize {
        self.adj[v as usize].count_ones() as usize
    }

    /// Neighbours of node `v`, in increasing index order.
    pub fn neighbors(&self, v: PatternNode) -> Vec<PatternNode> {
        (0..self.num_nodes as PatternNode)
            .filter(|&u| self.has_edge(v, u))
            .collect()
    }

    /// True if every node has the same degree `d` (Theorem 4.1 applies).
    pub fn is_regular(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        let d = self.degree(0);
        self.nodes().all(|v| self.degree(v) == d)
    }

    /// True iff the graph is connected (isolated single node counts as connected;
    /// the empty graph is vacuously connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![0 as PatternNode];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for u in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.num_nodes
    }

    /// The subgraph induced by `nodes`, with nodes relabelled `0..nodes.len()`
    /// in the order given. Returns the relabelled graph and the mapping from
    /// new index to old index.
    pub fn induced_subgraph(&self, nodes: &[PatternNode]) -> (SampleGraph, Vec<PatternNode>) {
        let mut sub = SampleGraph::empty(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    sub.add_edge(i as PatternNode, j as PatternNode);
                }
            }
        }
        (sub, nodes.to_vec())
    }

    /// Checks whether `perm` (a bijection `old → new` given as `perm[old] = new`)
    /// is an automorphism of this sample graph.
    pub fn is_automorphism(&self, perm: &[PatternNode]) -> bool {
        if perm.len() != self.num_nodes {
            return false;
        }
        self.edges
            .iter()
            .all(|&(u, v)| self.has_edge(perm[u as usize], perm[v as usize]))
    }

    /// True if the nodes listed (in order) form a Hamilton cycle of this graph,
    /// i.e. consecutive nodes and the wrap-around pair are all edges.
    pub fn is_hamilton_cycle(&self, order: &[PatternNode]) -> bool {
        if order.len() != self.num_nodes || self.num_nodes < 3 {
            return false;
        }
        (0..order.len()).all(|i| self.has_edge(order[i], order[(i + 1) % order.len()]))
    }

    /// Searches exhaustively for a Hamilton cycle; returns one if it exists.
    /// Exponential in `p`, which is fine for sample graphs.
    pub fn find_hamilton_cycle(&self) -> Option<Vec<PatternNode>> {
        if self.num_nodes < 3 {
            return None;
        }
        let mut order: Vec<PatternNode> = self.nodes().collect();
        // Fix the first node to avoid rotations; permute the rest.
        fn permute(
            s: &SampleGraph,
            order: &mut Vec<PatternNode>,
            k: usize,
        ) -> Option<Vec<PatternNode>> {
            if k == order.len() {
                if s.is_hamilton_cycle(order) {
                    return Some(order.clone());
                }
                return None;
            }
            for i in k..order.len() {
                order.swap(k, i);
                if s.has_edge(order[k - 1], order[k]) {
                    if let Some(found) = permute(s, order, k + 1) {
                        return Some(found);
                    }
                }
                order.swap(k, i);
            }
            None
        }
        permute(self, &mut order, 1)
    }
}

impl fmt::Debug for SampleGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SampleGraph(p={}, edges={:?})",
            self.num_nodes, self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> SampleGraph {
        SampleGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_accessors() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
        assert!(t.has_edge(0, 2));
        assert!(t.has_edge(2, 0));
        assert!(!t.has_edge(0, 0));
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut s = SampleGraph::empty(3);
        s.add_edge(0, 1);
        s.add_edge(1, 0);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut s = SampleGraph::empty(2);
        s.add_edge(1, 1);
    }

    #[test]
    fn regularity_and_connectivity() {
        assert!(triangle().is_regular());
        assert!(triangle().is_connected());
        let path = SampleGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!path.is_regular());
        assert!(path.is_connected());
        let disconnected = SampleGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!disconnected.is_connected());
        assert!(disconnected.is_regular());
    }

    #[test]
    fn induced_subgraph_keeps_edges() {
        let square = SampleGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (sub, map) = square.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn automorphism_check() {
        let t = triangle();
        assert!(t.is_automorphism(&[1, 2, 0]));
        let path = SampleGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(path.is_automorphism(&[2, 1, 0]));
        assert!(!path.is_automorphism(&[1, 0, 2]));
    }

    #[test]
    fn hamilton_cycle_detection() {
        let square = SampleGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert!(square.is_hamilton_cycle(&[0, 1, 2, 3]));
        assert!(!square.is_hamilton_cycle(&[0, 2, 1, 3]));
        assert!(square.find_hamilton_cycle().is_some());
        let star = SampleGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(star.find_hamilton_cycle().is_none());
    }

    #[test]
    #[should_panic]
    fn too_many_nodes_rejected() {
        let _ = SampleGraph::empty(MAX_PATTERN_NODES + 1);
    }
}
