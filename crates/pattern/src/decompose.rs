//! Decomposition of sample graphs into the pieces required by Theorem 7.2.
//!
//! Theorem 7.2: if the sample graph `S` can be partitioned (node-disjointly)
//! into `q` isolated nodes, pairs of nodes connected by an edge, and subgraphs
//! containing an odd-length Hamilton cycle, then `S` has a
//! `(q, (p − q)/2)`-algorithm — a serial algorithm running in `O(n^q m^{(p−q)/2})`
//! that is always convertible. The fewer isolated nodes, the better (trading
//! `n²` for `m` always pays), so the search below minimizes `q`.

use crate::sample::{PatternNode, SampleGraph};

/// One piece of a decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Piece {
    /// A single node not covered by any edge or cycle piece.
    IsolatedNode(PatternNode),
    /// Two nodes joined by an edge of `S`.
    Edge(PatternNode, PatternNode),
    /// A set of nodes (odd size ≥ 3) whose induced subgraph contains a
    /// Hamilton cycle; the nodes are listed in Hamilton-cycle order.
    OddCycle(Vec<PatternNode>),
}

impl Piece {
    /// The nodes covered by the piece.
    pub fn nodes(&self) -> Vec<PatternNode> {
        match self {
            Piece::IsolatedNode(v) => vec![*v],
            Piece::Edge(u, v) => vec![*u, *v],
            Piece::OddCycle(nodes) => nodes.clone(),
        }
    }
}

/// A full decomposition of a sample graph, together with the running-time
/// exponents of the serial algorithm it yields (Theorem 7.2): the algorithm
/// runs in `O(n^alpha · m^beta)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Decomposition {
    /// The node-disjoint pieces covering all of `S`.
    pub pieces: Vec<Piece>,
    /// Exponent of `n`: the number of isolated nodes `q`.
    pub alpha: usize,
    /// Twice this is `p − q`; exponent of `m` is `(p − q)/2`.
    pub beta_times_two: usize,
}

impl Decomposition {
    /// The exponent of `m` as a floating-point value `(p − q)/2`.
    pub fn beta(&self) -> f64 {
        self.beta_times_two as f64 / 2.0
    }

    /// True iff the decomposition yields a convertible algorithm for a
    /// `p`-node pattern, i.e. `alpha + 2·beta ≥ p` (Theorem 6.1). By
    /// construction this always holds with equality.
    pub fn is_convertible(&self, p: usize) -> bool {
        self.alpha + self.beta_times_two >= p
    }
}

/// Finds a decomposition of `sample` into isolated nodes, edges and
/// odd-Hamilton-cycle subgraphs that minimizes the number of isolated nodes.
///
/// The search is exhaustive over partitions of the (small) node set: it always
/// succeeds because in the worst case every node can be isolated.
pub fn decompose(sample: &SampleGraph) -> Decomposition {
    let p = sample.num_nodes();
    let all: Vec<PatternNode> = sample.nodes().collect();
    let mut best: Option<Vec<Piece>> = None;
    let mut best_isolated = usize::MAX;
    let mut pieces: Vec<Piece> = Vec::new();
    search(
        sample,
        &all,
        0u32,
        &mut pieces,
        0,
        &mut best,
        &mut best_isolated,
    );
    let pieces = best.expect("the all-isolated decomposition always exists");
    let q = pieces
        .iter()
        .filter(|piece| matches!(piece, Piece::IsolatedNode(_)))
        .count();
    Decomposition {
        pieces,
        alpha: q,
        beta_times_two: p - q,
    }
}

/// Recursive exact search: `used` is a bitmask of already-covered nodes.
fn search(
    sample: &SampleGraph,
    all: &[PatternNode],
    used: u32,
    pieces: &mut Vec<Piece>,
    isolated_so_far: usize,
    best: &mut Option<Vec<Piece>>,
    best_isolated: &mut usize,
) {
    if isolated_so_far >= *best_isolated {
        return; // cannot improve
    }
    // First uncovered node drives the branching; this avoids revisiting the
    // same partition in different piece orders.
    let next = all.iter().copied().find(|&v| used & (1 << v) == 0);
    let v = match next {
        None => {
            if isolated_so_far < *best_isolated {
                *best_isolated = isolated_so_far;
                *best = Some(pieces.clone());
            }
            return;
        }
        Some(v) => v,
    };

    // Option 1: cover v by an odd-cycle piece. Enumerate odd-size subsets
    // containing v whose induced subgraph has a Hamilton cycle.
    let remaining: Vec<PatternNode> = all
        .iter()
        .copied()
        .filter(|&u| used & (1 << u) == 0 && u != v)
        .collect();
    let r = remaining.len();
    for mask in 0u32..(1 << r) {
        let subset_size = mask.count_ones() as usize + 1;
        if subset_size < 3 || subset_size.is_multiple_of(2) {
            continue;
        }
        let mut subset = vec![v];
        for (i, &u) in remaining.iter().enumerate() {
            if mask & (1 << i) != 0 {
                subset.push(u);
            }
        }
        let (induced, map) = sample.induced_subgraph(&subset);
        if let Some(cycle) = induced.find_hamilton_cycle() {
            let cycle_nodes: Vec<PatternNode> = cycle.iter().map(|&i| map[i as usize]).collect();
            let mut new_used = used;
            for &u in &subset {
                new_used |= 1 << u;
            }
            pieces.push(Piece::OddCycle(cycle_nodes));
            search(
                sample,
                all,
                new_used,
                pieces,
                isolated_so_far,
                best,
                best_isolated,
            );
            pieces.pop();
        }
    }

    // Option 2: cover v by an edge to a later uncovered neighbour.
    for &u in &remaining {
        if sample.has_edge(v, u) {
            pieces.push(Piece::Edge(v, u));
            search(
                sample,
                all,
                used | (1 << v) | (1 << u),
                pieces,
                isolated_so_far,
                best,
                best_isolated,
            );
            pieces.pop();
        }
    }

    // Option 3: leave v isolated.
    pieces.push(Piece::IsolatedNode(v));
    search(
        sample,
        all,
        used | (1 << v),
        pieces,
        isolated_so_far + 1,
        best,
        best_isolated,
    );
    pieces.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn isolated_count(d: &Decomposition) -> usize {
        d.alpha
    }

    #[test]
    fn triangle_is_a_single_odd_cycle() {
        let d = decompose(&catalog::triangle());
        assert_eq!(isolated_count(&d), 0);
        assert_eq!(d.beta(), 1.5);
        assert!(d.is_convertible(3));
        assert!(matches!(d.pieces.as_slice(), [Piece::OddCycle(c)] if c.len() == 3));
    }

    #[test]
    fn square_decomposes_into_two_edges() {
        let d = decompose(&catalog::square());
        assert_eq!(isolated_count(&d), 0);
        assert_eq!(d.beta(), 2.0);
        assert_eq!(
            d.pieces
                .iter()
                .filter(|piece| matches!(piece, Piece::Edge(_, _)))
                .count(),
            2
        );
    }

    #[test]
    fn lollipop_decomposes_without_isolated_nodes() {
        // Lollipop = triangle {X,Y,Z} + pendant W attached to X. W pairs with X
        // via the edge (W,X) and {Y,Z} is an edge, or the triangle is kept and
        // W is isolated; the optimum has q = 0 using two edges.
        let d = decompose(&catalog::lollipop());
        assert_eq!(isolated_count(&d), 0);
        assert_eq!(d.beta(), 2.0);
    }

    #[test]
    fn pentagon_is_one_odd_cycle() {
        let d = decompose(&catalog::cycle(5));
        assert_eq!(isolated_count(&d), 0);
        assert_eq!(d.beta(), 2.5);
        assert!(matches!(d.pieces.as_slice(), [Piece::OddCycle(c)] if c.len() == 5));
    }

    #[test]
    fn even_cycle_uses_edges() {
        let d = decompose(&catalog::cycle(6));
        assert_eq!(isolated_count(&d), 0);
        assert_eq!(d.beta(), 3.0);
    }

    #[test]
    fn star_forces_isolated_nodes() {
        // A 4-node star (centre + 3 leaves) can cover the centre with one leaf
        // by an edge, but the other two leaves are non-adjacent, so q = 2.
        let d = decompose(&catalog::star(4));
        assert_eq!(isolated_count(&d), 2);
        assert!(d.is_convertible(4));
    }

    #[test]
    fn k4_decomposes_into_triangle_plus_isolated_or_two_edges() {
        let d = decompose(&catalog::k4());
        assert_eq!(isolated_count(&d), 0);
        assert_eq!(d.beta(), 2.0);
    }

    #[test]
    fn single_edge_pattern() {
        let edge = SampleGraph::from_edges(2, &[(0, 1)]);
        let d = decompose(&edge);
        assert_eq!(d.alpha, 0);
        assert_eq!(d.beta(), 1.0);
        assert_eq!(d.pieces, vec![Piece::Edge(0, 1)]);
    }

    #[test]
    fn pieces_cover_every_node_exactly_once() {
        for sample in [
            catalog::triangle(),
            catalog::square(),
            catalog::lollipop(),
            catalog::cycle(7),
            catalog::star(5),
            catalog::bowtie_bridge(),
            catalog::pentagon_with_chord(),
        ] {
            let d = decompose(&sample);
            let mut covered: Vec<PatternNode> =
                d.pieces.iter().flat_map(|piece| piece.nodes()).collect();
            covered.sort_unstable();
            let expected: Vec<PatternNode> = sample.nodes().collect();
            assert_eq!(covered, expected, "pattern {sample:?}");
            assert!(d.is_convertible(sample.num_nodes()));
        }
    }

    #[test]
    fn bowtie_bridge_has_no_isolated_nodes() {
        // Two triangles joined by a bridge: decompose into the two triangles.
        let d = decompose(&catalog::bowtie_bridge());
        assert_eq!(d.alpha, 0);
        assert_eq!(d.beta(), 3.0);
        assert_eq!(
            d.pieces
                .iter()
                .filter(|piece| matches!(piece, Piece::OddCycle(_)))
                .count(),
            2
        );
    }

    use crate::sample::SampleGraph;
}
