//! Automorphism groups of sample graphs and the coset representatives of
//! `S_p / Aut(S)` used by Theorem 3.1.
//!
//! An *automorphism* is a bijection on the nodes of `S` that preserves
//! adjacency. The paper (Theorem 3.1) shows that one conjunctive query per
//! member of the quotient of the symmetric group `S_p` by `Aut(S)` suffices to
//! discover every instance of `S` exactly once. Because sample graphs are tiny
//! we compute both the group and the quotient by brute force over all `p!`
//! permutations.

use crate::sample::{PatternNode, SampleGraph};

/// A permutation of the pattern nodes, stored as `perm[old] = new`.
pub type Permutation = Vec<PatternNode>;

/// A *node order*: a sequence listing the pattern nodes from smallest to
/// largest. `order[rank] = node`. Every total order of the pattern nodes is
/// one of the `p!` permutations written this way.
pub type NodeOrdering = Vec<PatternNode>;

/// Generates every permutation of `0..p` in lexicographic order.
pub fn all_permutations(p: usize) -> Vec<Permutation> {
    let mut result = Vec::new();
    let mut current: Permutation = (0..p as PatternNode).collect();
    loop {
        result.push(current.clone());
        // Next lexicographic permutation (classic algorithm).
        let n = current.len();
        if n < 2 {
            break;
        }
        let mut i = n - 1;
        while i > 0 && current[i - 1] >= current[i] {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        let mut j = n - 1;
        while current[j] <= current[i - 1] {
            j -= 1;
        }
        current.swap(i - 1, j);
        current[i..].reverse();
    }
    result
}

/// Computes the full automorphism group of `sample` (always contains the
/// identity). Exhaustive over all `p!` permutations.
pub fn automorphism_group(sample: &SampleGraph) -> Vec<Permutation> {
    all_permutations(sample.num_nodes())
        .into_iter()
        .filter(|perm| sample.is_automorphism(perm))
        .collect()
}

/// Applies an automorphism `mu` to a node ordering, yielding the ordering in
/// which the node at rank `i` is `mu(order[i])`.
pub fn apply_to_ordering(mu: &Permutation, order: &NodeOrdering) -> NodeOrdering {
    order.iter().map(|&v| mu[v as usize]).collect()
}

/// True when `prefix` is the lexicographically smallest member of its orbit
/// under the given automorphisms: no `mu` maps it to a strictly smaller
/// prefix of the same length.
///
/// The key structural fact behind the prefix tree of
/// [`order_representatives`] (and the planner's branch-and-bound search over
/// the same tree): every prefix of a canonical (lex-smallest-in-orbit) full
/// ordering is itself canonical — if `mu(prefix) < prefix` then
/// `mu(ordering) < ordering`. Pruning non-canonical prefixes therefore loses
/// no class representative.
pub fn is_canonical_prefix(autos: &[Permutation], prefix: &[PatternNode]) -> bool {
    autos.iter().all(|mu| {
        for (i, &v) in prefix.iter().enumerate() {
            let image = mu[v as usize];
            match image.cmp(&prefix[i]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => return true,
                std::cmp::Ordering::Equal => continue,
            }
        }
        true
    })
}

/// The lexicographically smallest image of `prefix` under the group — the
/// canonical form shared by every symmetric prefix of one orbit. Two prefixes
/// have the same canonical form exactly when some automorphism maps one to
/// the other, which is what lets a search memoize per-orbit results.
pub fn canonical_prefix(autos: &[Permutation], prefix: &[PatternNode]) -> Vec<PatternNode> {
    autos
        .iter()
        .map(|mu| prefix.iter().map(|&v| mu[v as usize]).collect::<Vec<_>>())
        .min()
        .unwrap_or_else(|| prefix.to_vec())
}

/// One node ordering per equivalence class of `S_p / Aut(S)` (Theorem 3.1),
/// chosen as the lexicographically smallest member of each class. The number
/// of representatives is exactly `p! / |Aut(S)|`, and they are returned in
/// lexicographic order.
///
/// Implemented as a depth-first search over canonical prefixes (see
/// [`is_canonical_prefix`]): a prefix whose orbit contains a smaller prefix
/// cannot extend to any class representative, so whole subtrees are skipped
/// without being enumerated. The old brute force hashed all `p!` orderings
/// against the full group — `p! · |Aut|` work — which is what made planning
/// 8-node patterns pay tens of milliseconds before a single share was
/// optimized; the prefix tree touches only `O(Σ_d classes(d))` nodes.
pub fn order_representatives(sample: &SampleGraph) -> Vec<NodeOrdering> {
    representatives_for_group(sample.num_nodes(), &automorphism_group(sample))
}

/// [`order_representatives`] for a precomputed group (the planner reuses the
/// group it already needs for orbit memoization).
pub fn representatives_for_group(p: usize, autos: &[Permutation]) -> Vec<NodeOrdering> {
    let mut reps = Vec::new();
    let mut prefix: NodeOrdering = Vec::with_capacity(p);
    let mut used = vec![false; p];
    descend(p, autos, &mut prefix, &mut used, &mut reps);
    reps
}

fn descend(
    p: usize,
    autos: &[Permutation],
    prefix: &mut NodeOrdering,
    used: &mut [bool],
    reps: &mut Vec<NodeOrdering>,
) {
    if prefix.len() == p {
        reps.push(prefix.clone());
        return;
    }
    for v in 0..p as PatternNode {
        if used[v as usize] {
            continue;
        }
        prefix.push(v);
        if is_canonical_prefix(autos, prefix) {
            used[v as usize] = true;
            descend(p, autos, prefix, used, reps);
            used[v as usize] = false;
        }
        prefix.pop();
    }
}

/// Checks whether two sample graphs are isomorphic (brute force; both must be
/// small). Returns a witness mapping `perm[node of a] = node of b` if so.
pub fn isomorphism(a: &SampleGraph, b: &SampleGraph) -> Option<Permutation> {
    if a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges() {
        return None;
    }
    all_permutations(a.num_nodes()).into_iter().find(|perm| {
        a.edges()
            .iter()
            .all(|&(u, v)| b.has_edge(perm[u as usize], perm[v as usize]))
            && b.num_edges() == a.num_edges()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use std::collections::HashSet;

    #[test]
    fn permutation_enumeration_counts() {
        assert_eq!(all_permutations(0).len(), 1);
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(5).len(), 120);
    }

    #[test]
    fn permutations_are_lexicographic_and_distinct() {
        let perms = all_permutations(4);
        assert_eq!(perms.len(), 24);
        for w in perms.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn automorphism_group_sizes_match_the_paper() {
        // Square: 8 (Example 3.2). Lollipop: 2 (Section 3.3). Cycle C_p: 2p
        // (Section 5.1). Clique K_p: p!.
        assert_eq!(automorphism_group(&catalog::square()).len(), 8);
        assert_eq!(automorphism_group(&catalog::lollipop()).len(), 2);
        assert_eq!(automorphism_group(&catalog::cycle(5)).len(), 10);
        assert_eq!(automorphism_group(&catalog::cycle(6)).len(), 12);
        assert_eq!(automorphism_group(&catalog::clique(4)).len(), 24);
        assert_eq!(automorphism_group(&catalog::triangle()).len(), 6);
        assert_eq!(automorphism_group(&catalog::path(4)).len(), 2);
        assert_eq!(automorphism_group(&catalog::star(5)).len(), 24);
    }

    #[test]
    fn group_contains_identity_and_is_closed() {
        let square = catalog::square();
        let autos = automorphism_group(&square);
        let identity: Permutation = (0..4).collect();
        assert!(autos.contains(&identity));
        // Closure under composition.
        for a in &autos {
            for b in &autos {
                let composed: Permutation = (0..4).map(|i| a[b[i] as usize]).collect();
                assert!(autos.contains(&composed));
            }
        }
    }

    #[test]
    fn representative_counts_match_quotient_size() {
        // Square: 24/8 = 3 (Example 3.2). Lollipop: 24/2 = 12 (Figure 5).
        // Triangle: 6/6 = 1 (Section 2.2: a single CQ with X<Y<Z).
        // Pentagon: 120/10 = 12 (Example 5.3 discussion).
        assert_eq!(order_representatives(&catalog::square()).len(), 3);
        assert_eq!(order_representatives(&catalog::lollipop()).len(), 12);
        assert_eq!(order_representatives(&catalog::triangle()).len(), 1);
        assert_eq!(order_representatives(&catalog::cycle(5)).len(), 12);
    }

    #[test]
    fn representatives_cover_all_orderings_without_overlap() {
        let lollipop = catalog::lollipop();
        let autos = automorphism_group(&lollipop);
        let reps = order_representatives(&lollipop);
        let mut covered = HashSet::new();
        for rep in &reps {
            for mu in &autos {
                let img = apply_to_ordering(mu, rep);
                assert!(covered.insert(img), "orderings covered twice");
            }
        }
        assert_eq!(covered.len(), 24);
    }

    #[test]
    fn square_representatives_match_example_3_2() {
        // With W=0, X=1, Y=2, Z=3 the lexicographically smallest class
        // representatives are WXYZ, WXZY, WYXZ — the same classes the paper
        // picks (it lists WXYZ, WYXZ, WXZY).
        let reps = order_representatives(&catalog::square());
        assert!(reps.contains(&vec![0, 1, 2, 3]));
        assert!(reps.contains(&vec![0, 1, 3, 2]));
        assert!(reps.contains(&vec![0, 2, 1, 3]));
    }

    /// The original brute force: hash every ordering's full orbit, keep the
    /// first unseen one. Retained as the oracle for the canonical-prefix DFS.
    fn brute_force_representatives(sample: &SampleGraph) -> Vec<NodeOrdering> {
        let autos = automorphism_group(sample);
        let mut seen: HashSet<NodeOrdering> = HashSet::new();
        let mut reps = Vec::new();
        for order in all_permutations(sample.num_nodes()) {
            if seen.contains(&order) {
                continue;
            }
            for mu in &autos {
                seen.insert(apply_to_ordering(mu, &order));
            }
            reps.push(order);
        }
        reps
    }

    #[test]
    fn prefix_dfs_matches_brute_force_on_catalog() {
        for entry in catalog::entries() {
            assert_eq!(
                order_representatives(&entry.sample),
                brute_force_representatives(&entry.sample),
                "representative mismatch for {}",
                entry.name
            );
        }
    }

    #[test]
    fn representatives_are_lexicographic_orbit_minima() {
        let c5 = catalog::cycle(5);
        let autos = automorphism_group(&c5);
        let reps = order_representatives(&c5);
        for w in reps.windows(2) {
            assert!(w[0] < w[1], "representatives must come out in lex order");
        }
        for rep in &reps {
            for mu in &autos {
                assert!(apply_to_ordering(mu, rep) >= *rep);
            }
            assert!(is_canonical_prefix(&autos, rep));
            assert_eq!(canonical_prefix(&autos, rep), *rep);
        }
    }

    #[test]
    fn canonical_prefix_identifies_orbits() {
        // In the square (Aut = dihedral group of order 8), prefixes [1] and
        // [3] are both images of [0] under rotations, so all three share the
        // canonical form [0] and only [0] is canonical.
        let autos = automorphism_group(&catalog::square());
        assert!(is_canonical_prefix(&autos, &[0]));
        assert!(!is_canonical_prefix(&autos, &[1]));
        assert!(!is_canonical_prefix(&autos, &[3]));
        assert_eq!(canonical_prefix(&autos, &[1]), vec![0]);
        assert_eq!(canonical_prefix(&autos, &[3]), vec![0]);
        // [0,1] (adjacent corners) and [0,2] (opposite corners) sit in
        // different orbits: both canonical, different canonical forms.
        assert!(is_canonical_prefix(&autos, &[0, 1]));
        assert!(is_canonical_prefix(&autos, &[0, 2]));
        assert_eq!(canonical_prefix(&autos, &[0, 3]), vec![0, 1]);
    }

    #[test]
    fn isomorphism_detects_relabelled_patterns() {
        let a = catalog::square();
        let b = crate::sample::SampleGraph::from_edges(4, &[(0, 2), (2, 1), (1, 3), (0, 3)]);
        assert!(isomorphism(&a, &b).is_some());
        let c = catalog::lollipop();
        assert!(isomorphism(&a, &c).is_none());
    }

    #[test]
    fn apply_to_ordering_relabels_positions() {
        let mu: Permutation = vec![1, 2, 3, 0];
        let order: NodeOrdering = vec![0, 1, 2, 3];
        assert_eq!(apply_to_ordering(&mu, &order), vec![1, 2, 3, 0]);
    }
}
