//! Streaming output sinks: where a pipeline's final-round reducer outputs go
//! *instead of* being merged into a `Vec`.
//!
//! The paper's bucket schemes exist so that instance sets far larger than any
//! single machine's memory can be enumerated under a fixed reducer budget —
//! but a result API that returns `Vec<T>` caps every run at the *output*
//! size. An [`OutputSink`] receives each final-round output record as the
//! reduce workers produce it:
//!
//! * [`CountSink`] — counts records; O(1) memory whatever the output size.
//! * [`CollectSink`] — the legacy behaviour: collect into a `Vec<T>`.
//! * [`SampleSink`] — retains only the `k` smallest records (top-k); bounded
//!   memory and, because `Ord` decides membership, the retained set is
//!   independent of arrival order and thread count.
//! * [`FnSink`] — invokes a callback per record (export, count-by-key, ...).
//!
//! ## Parallel delivery: shards
//!
//! The engine's reduce phase is parallel, so a sink cannot be handed records
//! from several workers at once. Instead every reduce worker asks the sink
//! for a private [`SinkShard`] ([`OutputSink::new_shard`]), streams its
//! outputs into that shard as its reducers emit them, and the coordinator
//! folds the finished shards back into the sink **in worker order**
//! ([`OutputSink::fold`]) — which is what preserves the deterministic output
//! order of [`crate::EngineConfig::deterministic`] runs without a global
//! lock.
//!
//! The default shard is a [`BufferShard`] (a plain `Vec` replayed through
//! [`OutputSink::accept`] at fold time): correct for every sink, and exactly
//! the old collect behaviour. Sinks that do not need buffering — counting,
//! top-k — override [`OutputSink::new_shard`]/[`OutputSink::fold`] with a
//! constant-memory shard, which is what makes `CountSink` runs allocate no
//! per-record storage anywhere in the engine.

use std::any::Any;

/// One reduce worker's private slice of an [`OutputSink`]: created by
/// [`OutputSink::new_shard`], filled on the worker thread, handed back to the
/// owning sink via [`OutputSink::fold`].
pub trait SinkShard<T>: Send {
    /// Receives one output record, in the worker's emission order.
    fn accept(&mut self, value: T);

    /// Type-erasure escape hatch for [`OutputSink::fold`]: a sink that
    /// overrides [`OutputSink::new_shard`] downcasts the shard back to its
    /// concrete type here.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The default shard: buffers records in order and replays them through the
/// parent sink's [`OutputSink::accept`] at fold time. This is the only shard
/// that materializes its records; constant-memory sinks override
/// [`OutputSink::new_shard`] to avoid it.
pub struct BufferShard<T>(pub Vec<T>);

impl<T: Send + 'static> SinkShard<T> for BufferShard<T> {
    fn accept(&mut self, value: T) {
        self.0.push(value);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A streaming receiver for pipeline outputs. Dyn-safe: algorithms take
/// `&mut dyn OutputSink<T>` so one implementation serves every sink.
///
/// Single-threaded producers (the serial algorithms, tests) may simply call
/// [`OutputSink::accept`] per record. Parallel producers go through the
/// shard protocol described in the [module docs](self).
pub trait OutputSink<T: Send + 'static>: Send {
    /// Receives one output record.
    fn accept(&mut self, value: T);

    /// Creates an empty per-worker shard. The default buffers; override
    /// together with [`OutputSink::fold`] for constant-memory delivery.
    fn new_shard(&self) -> Box<dyn SinkShard<T>> {
        Box::new(BufferShard(Vec::new()))
    }

    /// Folds one finished worker shard back into the sink. Called by the
    /// engine coordinator once per reduce worker, in worker order. The
    /// default replays a [`BufferShard`] through [`OutputSink::accept`];
    /// sinks overriding [`OutputSink::new_shard`] must override this to
    /// downcast their own shard type.
    fn fold(&mut self, shard: Box<dyn SinkShard<T>>) {
        let buffered = shard
            .into_any()
            .downcast::<BufferShard<T>>()
            .expect("the default fold only understands the default BufferShard");
        for value in buffered.0 {
            self.accept(value);
        }
    }
}

// ---- counting --------------------------------------------------------------

/// Counts records without storing any of them. The constant-memory sink
/// behind every `count()`-mode entry point.
#[derive(Clone, Debug, Default)]
pub struct CountSink {
    count: usize,
}

impl CountSink {
    /// An empty counter.
    pub fn new() -> Self {
        CountSink::default()
    }

    /// Records accepted so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

struct CountShard(usize);

impl<T: Send + 'static> SinkShard<T> for CountShard {
    fn accept(&mut self, _value: T) {
        self.0 += 1;
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl<T: Send + 'static> OutputSink<T> for CountSink {
    fn accept(&mut self, _value: T) {
        self.count += 1;
    }

    fn new_shard(&self) -> Box<dyn SinkShard<T>> {
        Box::new(CountShard(0))
    }

    fn fold(&mut self, shard: Box<dyn SinkShard<T>>) {
        let counted = shard
            .into_any()
            .downcast::<CountShard>()
            .expect("CountSink shards are CountShards");
        self.count += counted.0;
    }
}

// ---- collecting ------------------------------------------------------------

/// Collects records into a `Vec` — the legacy result path, now spelled as a
/// sink so `Vec`-returning entry points are thin wrappers over the streaming
/// ones.
#[derive(Clone, Debug)]
pub struct CollectSink<T> {
    items: Vec<T>,
}

impl<T> CollectSink<T> {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink { items: Vec::new() }
    }

    /// The records accepted so far, in fold order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the sink and returns the collected records.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for CollectSink<T> {
    fn default() -> Self {
        CollectSink::new()
    }
}

impl<T: Send + 'static> OutputSink<T> for CollectSink<T> {
    fn accept(&mut self, value: T) {
        self.items.push(value);
    }

    fn fold(&mut self, shard: Box<dyn SinkShard<T>>) {
        // Append the whole buffer in one reserve + move instead of replaying
        // record by record.
        let mut buffered = shard
            .into_any()
            .downcast::<BufferShard<T>>()
            .expect("CollectSink uses the default BufferShard");
        self.items.append(&mut buffered.0);
    }
}

// ---- sampling (top-k) ------------------------------------------------------

/// Retains the `k` smallest records seen (by `Ord`) — a bounded-memory sample
/// whose content is a pure function of the output *multiset*, so it is
/// identical across thread counts and arrival orders.
#[derive(Clone, Debug)]
pub struct SampleSink<T: Ord> {
    capacity: usize,
    // Max-heap: the root is the largest retained record, i.e. the first to
    // evict when a smaller one arrives.
    heap: std::collections::BinaryHeap<T>,
}

impl<T: Ord> SampleSink<T> {
    /// A sink retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        SampleSink {
            capacity,
            heap: std::collections::BinaryHeap::with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Number of records currently retained (`<= capacity`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The retained records in ascending order.
    pub fn into_sorted(self) -> Vec<T> {
        self.heap.into_sorted_vec()
    }

    fn offer(&mut self, value: T) {
        if self.capacity == 0 {
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(value);
        } else if let Some(mut largest) = self.heap.peek_mut() {
            if value < *largest {
                *largest = value;
            }
        }
    }
}

struct SampleShard<T: Ord> {
    sample: SampleSink<T>,
}

impl<T: Ord + Send + 'static> SinkShard<T> for SampleShard<T> {
    fn accept(&mut self, value: T) {
        self.sample.offer(value);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl<T: Ord + Send + 'static> OutputSink<T> for SampleSink<T> {
    fn accept(&mut self, value: T) {
        self.offer(value);
    }

    fn new_shard(&self) -> Box<dyn SinkShard<T>> {
        Box::new(SampleShard {
            sample: SampleSink::new(self.capacity),
        })
    }

    fn fold(&mut self, shard: Box<dyn SinkShard<T>>) {
        let sampled = shard
            .into_any()
            .downcast::<SampleShard<T>>()
            .expect("SampleSink shards are SampleShards");
        for value in sampled.sample.heap {
            self.offer(value);
        }
    }
}

// ---- callbacks -------------------------------------------------------------

/// Invokes a callback per record. Worker shards buffer and the coordinator
/// replays them in worker order, so under a deterministic engine config the
/// callback sees the exact order the legacy `Vec` path would have returned.
pub struct FnSink<T, F: FnMut(T) + Send> {
    callback: F,
    count: usize,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, F: FnMut(T) + Send> FnSink<T, F> {
    /// Wraps `callback` as a sink.
    pub fn new(callback: F) -> Self {
        FnSink {
            callback,
            count: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of records delivered to the callback so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl<T: Send + 'static, F: FnMut(T) + Send> OutputSink<T> for FnSink<T, F> {
    fn accept(&mut self, value: T) {
        self.count += 1;
        (self.callback)(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a sink the way the engine's coordinator does: three workers,
    /// each with its own shard, folded in worker order.
    fn deliver_sharded(sink: &mut dyn OutputSink<u64>, per_worker: &[&[u64]]) {
        let shards: Vec<Box<dyn SinkShard<u64>>> = per_worker
            .iter()
            .map(|worker| {
                let mut shard = sink.new_shard();
                for &value in *worker {
                    shard.accept(value);
                }
                shard
            })
            .collect();
        for shard in shards {
            sink.fold(shard);
        }
    }

    #[test]
    fn count_sink_counts_without_buffering() {
        let mut sink = CountSink::new();
        deliver_sharded(&mut sink, &[&[1, 2, 3], &[], &[4, 5]]);
        sink.accept(6);
        assert_eq!(sink.count(), 6);
    }

    #[test]
    fn collect_sink_preserves_worker_order() {
        let mut sink = CollectSink::new();
        deliver_sharded(&mut sink, &[&[3, 1], &[2], &[9, 8]]);
        assert_eq!(sink.items(), &[3, 1, 2, 9, 8]);
        assert_eq!(sink.into_items(), vec![3, 1, 2, 9, 8]);
    }

    #[test]
    fn sample_sink_retains_the_k_smallest_whatever_the_arrival_order() {
        let mut forward = SampleSink::new(3);
        deliver_sharded(&mut forward, &[&[5, 1, 9], &[7, 2], &[8, 3]]);
        let mut backward = SampleSink::new(3);
        deliver_sharded(&mut backward, &[&[3, 8], &[2, 7], &[9, 1, 5]]);
        assert_eq!(forward.into_sorted(), vec![1, 2, 3]);
        assert_eq!(backward.into_sorted(), vec![1, 2, 3]);
    }

    #[test]
    fn sample_sink_handles_degenerate_capacities() {
        let mut empty = SampleSink::new(0);
        deliver_sharded(&mut empty, &[&[1, 2]]);
        assert!(empty.is_empty());
        let mut wide = SampleSink::new(10);
        deliver_sharded(&mut wide, &[&[2, 1]]);
        assert_eq!(wide.len(), 2);
        assert_eq!(wide.into_sorted(), vec![1, 2]);
    }

    #[test]
    fn fn_sink_sees_records_in_fold_order() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink::new(|v: u64| seen.push(v));
            deliver_sharded(&mut sink, &[&[1, 2], &[3]]);
            assert_eq!(sink.count(), 3);
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
