//! Property-style tests for the map-reduce engine, exercised over
//! deterministic seeded sweeps of random inputs (a tiny SplitMix64 keeps this
//! crate free of dependencies).

use crate::engine::{run_job, EngineConfig};
use crate::task::{MapContext, ReduceContext};
use std::collections::HashMap;

/// SplitMix64 — enough randomness for input generation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_inputs(seed: u64, max_len: usize, value_range: u64) -> Vec<u64> {
    let mut state = seed;
    let len = (splitmix(&mut state) as usize) % max_len;
    (0..len)
        .map(|_| splitmix(&mut state) % value_range)
        .collect()
}

/// Grouping semantics: the engine delivers every value to exactly one reducer
/// invocation, keyed correctly, regardless of thread count.
#[test]
fn grouping_matches_a_hashmap_reference() {
    for seed in 0..24 {
        let inputs = random_inputs(seed, 300, 200);
        let threads = 1 + (seed as usize) % 7;
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 17, *x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, usize)>| {
            ctx.emit((*k, vs.iter().sum(), vs.len()));
        };
        let (outputs, metrics) = run_job(
            &inputs,
            &mapper,
            &reducer,
            &EngineConfig::with_threads(threads),
        );

        let mut reference: HashMap<u64, (u64, usize)> = HashMap::new();
        for x in &inputs {
            let entry = reference.entry(x % 17).or_default();
            entry.0 += x;
            entry.1 += 1;
        }
        assert_eq!(outputs.len(), reference.len(), "seed {seed}");
        assert_eq!(metrics.reducers_used, reference.len(), "seed {seed}");
        assert_eq!(metrics.key_value_pairs, inputs.len(), "seed {seed}");
        for (k, sum, count) in outputs {
            let expected = reference.get(&k).copied().unwrap_or((0, 0));
            assert_eq!((sum, count), expected, "seed {seed} key {k}");
        }
    }
}

/// Communication cost equals the number of emissions, independent of the
/// number of reducers or threads.
#[test]
fn communication_cost_counts_every_emission() {
    for seed in 24..48 {
        let inputs = random_inputs(seed, 200, 100);
        let replication = 1 + (seed as usize) % 5;
        let threads = 1 + (seed as usize) % 5;
        let mapper = move |x: &u64, ctx: &mut MapContext<u64, u64>| {
            for i in 0..replication {
                ctx.emit(x.wrapping_add(i as u64 * 31), *x);
            }
        };
        let reducer = |_k: &u64, vs: &[u64], ctx: &mut ReduceContext<usize>| {
            ctx.add_work(vs.len() as u64);
            ctx.emit(vs.len());
        };
        let (_, metrics) = run_job(
            &inputs,
            &mapper,
            &reducer,
            &EngineConfig::with_threads(threads),
        );
        assert_eq!(
            metrics.key_value_pairs,
            inputs.len() * replication,
            "seed {seed}"
        );
        // Every shipped pair reaches exactly one reducer, so the reducer-side
        // work (which counts received values) equals the communication cost.
        assert_eq!(
            metrics.reducer_work as usize,
            inputs.len() * replication,
            "seed {seed}"
        );
        assert!(metrics.max_reducer_input <= metrics.key_value_pairs);
    }
}

/// Thread count never changes the multiset of outputs.
#[test]
fn outputs_are_thread_count_invariant() {
    for seed in 48..64 {
        let inputs = random_inputs(seed, 250, 500);
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 23, x * x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((*k, vs.iter().copied().max().unwrap_or(0)));
        };
        let mut baseline: Option<Vec<(u64, u64)>> = None;
        for threads in [1usize, 2, 5] {
            let (mut outputs, _) = run_job(
                &inputs,
                &mapper,
                &reducer,
                &EngineConfig::with_threads(threads),
            );
            outputs.sort_unstable();
            match &baseline {
                None => baseline = Some(outputs),
                Some(expected) => assert_eq!(&outputs, expected, "seed {seed}"),
            }
        }
    }
}
