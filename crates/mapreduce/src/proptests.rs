//! Property-style tests for the map-reduce engine, exercised over
//! deterministic seeded sweeps of random inputs (a tiny SplitMix64 keeps this
//! crate free of dependencies).

use crate::engine::EngineConfig;
use crate::metrics::JobMetrics;
use crate::pipeline::{Pipeline, Round};
use crate::task::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use std::collections::HashMap;

/// SplitMix64 — enough randomness for input generation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_inputs(seed: u64, max_len: usize, value_range: u64) -> Vec<u64> {
    let mut state = seed;
    let len = (splitmix(&mut state) as usize) % max_len;
    (0..len)
        .map(|_| splitmix(&mut state) % value_range)
        .collect()
}

/// Runs one round through the pipeline API (the non-deprecated counterpart of
/// the old `run_job` helper).
fn run_single_round<K, V, O>(
    inputs: &[u64],
    mapper: impl Mapper<u64, K, V>,
    reducer: impl Reducer<K, V, O>,
    config: &EngineConfig,
) -> (Vec<O>, JobMetrics)
where
    K: std::hash::Hash + Eq + Ord + Send + 'static,
    V: Send + 'static,
    O: Send + Clone + 'static,
{
    let (outputs, report) = Pipeline::new()
        .round(Round::new("job", mapper, reducer))
        .run(inputs, config);
    (outputs, report.rounds.into_iter().next().unwrap().metrics)
}

/// Grouping semantics: the engine delivers every value to exactly one reducer
/// invocation, keyed correctly, regardless of thread count.
#[test]
fn grouping_matches_a_hashmap_reference() {
    for seed in 0..24 {
        let inputs = random_inputs(seed, 300, 200);
        let threads = 1 + (seed as usize) % 7;
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 17, *x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, usize)>| {
            ctx.emit((*k, vs.iter().sum(), vs.len()));
        };
        let (outputs, metrics) = run_single_round(
            &inputs,
            mapper,
            reducer,
            &EngineConfig::with_threads(threads),
        );

        let mut reference: HashMap<u64, (u64, usize)> = HashMap::new();
        for x in &inputs {
            let entry = reference.entry(x % 17).or_default();
            entry.0 += x;
            entry.1 += 1;
        }
        assert_eq!(outputs.len(), reference.len(), "seed {seed}");
        assert_eq!(metrics.reducers_used, reference.len(), "seed {seed}");
        assert_eq!(metrics.key_value_pairs, inputs.len(), "seed {seed}");
        for (k, sum, count) in outputs {
            let expected = reference.get(&k).copied().unwrap_or((0, 0));
            assert_eq!((sum, count), expected, "seed {seed} key {k}");
        }
    }
}

/// Communication cost equals the number of emissions, independent of the
/// number of reducers or threads.
#[test]
fn communication_cost_counts_every_emission() {
    for seed in 24..48 {
        let inputs = random_inputs(seed, 200, 100);
        let replication = 1 + (seed as usize) % 5;
        let threads = 1 + (seed as usize) % 5;
        let mapper = move |x: &u64, ctx: &mut MapContext<u64, u64>| {
            for i in 0..replication {
                ctx.emit(x.wrapping_add(i as u64 * 31), *x);
            }
        };
        let reducer = |_k: &u64, vs: &[u64], ctx: &mut ReduceContext<usize>| {
            ctx.add_work(vs.len() as u64);
            ctx.emit(vs.len());
        };
        let (_, metrics) = run_single_round(
            &inputs,
            mapper,
            reducer,
            &EngineConfig::with_threads(threads),
        );
        assert_eq!(
            metrics.key_value_pairs,
            inputs.len() * replication,
            "seed {seed}"
        );
        // Without a combiner every emitted pair is shipped, 16 bytes each
        // (u64 key + u64 value), and reaches exactly one reducer — so the
        // reducer-side work (which counts received values) equals the
        // communication cost.
        assert_eq!(
            metrics.shuffle_records, metrics.key_value_pairs,
            "seed {seed}"
        );
        assert_eq!(
            metrics.shuffle_bytes,
            metrics.shuffle_records as u64 * 16,
            "seed {seed}"
        );
        assert_eq!(
            metrics.reducer_work as usize,
            inputs.len() * replication,
            "seed {seed}"
        );
        assert!(metrics.max_reducer_input <= metrics.key_value_pairs);
    }
}

/// Thread count never changes the multiset of outputs.
#[test]
fn outputs_are_thread_count_invariant() {
    for seed in 48..64 {
        let inputs = random_inputs(seed, 250, 500);
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 23, x * x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((*k, vs.iter().copied().max().unwrap_or(0)));
        };
        let mut baseline: Option<Vec<(u64, u64)>> = None;
        for threads in [1usize, 2, 5] {
            let (mut outputs, _) = run_single_round(
                &inputs,
                mapper,
                reducer,
                &EngineConfig::with_threads(threads),
            );
            outputs.sort_unstable();
            match &baseline {
                None => baseline = Some(outputs),
                Some(expected) => assert_eq!(&outputs, expected, "seed {seed}"),
            }
        }
    }
}

/// Runs the seed's aggregation job with the given combiner toggle and returns
/// the outputs and metrics.
fn aggregation_job(
    inputs: &[u64],
    threads: usize,
    combiner: bool,
    use_combiners: bool,
) -> (Vec<(u64, u64)>, JobMetrics) {
    let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 19, *x);
    let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    };
    let round = Round::new("sum", mapper, reducer);
    let round = if combiner {
        round.combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()])
    } else {
        round
    };
    let config = EngineConfig::with_threads(threads).combiners(use_combiners);
    let (outputs, report) = Pipeline::new().round(round).run(inputs, &config);
    (outputs, report.rounds.into_iter().next().unwrap().metrics)
}

/// Combiner-on and combiner-off runs produce identical reducer outputs —
/// including identical order in deterministic mode — for any seed and thread
/// count.
#[test]
fn combiner_on_and_off_produce_identical_reducer_outputs() {
    for seed in 64..88 {
        let inputs = random_inputs(seed, 400, 300);
        let threads = 1 + (seed as usize) % 8;
        let (with, _) = aggregation_job(&inputs, threads, true, true);
        let (without, _) = aggregation_job(&inputs, threads, false, true);
        let (bypassed, _) = aggregation_job(&inputs, threads, true, false);
        // Deterministic mode sorts reducer keys, so the outputs agree in
        // order, not just as multisets.
        assert_eq!(with, without, "seed {seed} threads {threads}");
        assert_eq!(with, bypassed, "seed {seed} threads {threads}");
    }
}

/// The combiner metric invariants of the engine:
/// `combiner_output_records <= combiner_input_records`, the shuffle ships
/// exactly the combiner output (or, without a combiner, the mapper output),
/// and the mapper-side emission count is unaffected by combining.
#[test]
fn combiner_metrics_invariants_hold() {
    for seed in 88..112 {
        let inputs = random_inputs(seed, 400, 300);
        let threads = 1 + (seed as usize) % 8;
        let (_, with) = aggregation_job(&inputs, threads, true, true);
        let (_, without) = aggregation_job(&inputs, threads, false, true);

        assert_eq!(with.key_value_pairs, inputs.len(), "seed {seed}");
        assert_eq!(
            with.combiner_input_records, with.key_value_pairs,
            "seed {seed}"
        );
        assert!(
            with.combiner_output_records <= with.combiner_input_records,
            "seed {seed}"
        );
        assert_eq!(
            with.shuffle_records, with.combiner_output_records,
            "seed {seed}"
        );
        // At most one combined record per (map shard, key) pair survives.
        assert!(with.combiner_output_records <= threads * 19, "seed {seed}");
        // Shuffle bytes price exactly the shipped records (16 bytes each).
        assert_eq!(
            with.shuffle_bytes,
            with.shuffle_records as u64 * 16,
            "seed {seed}"
        );

        assert_eq!(without.combiner_input_records, 0, "seed {seed}");
        assert_eq!(without.combiner_output_records, 0, "seed {seed}");
        assert_eq!(
            without.shuffle_records, without.key_value_pairs,
            "seed {seed}"
        );
        assert!(
            with.shuffle_records <= without.shuffle_records,
            "seed {seed}"
        );
        // Combining never changes what the reducers compute or output.
        assert_eq!(with.reducers_used, without.reducers_used, "seed {seed}");
        assert_eq!(with.outputs, without.outputs, "seed {seed}");
    }
}

/// An identity combiner is a no-op on the data: outputs, value multisets and
/// reducer work all match the combiner-less run.
#[test]
fn identity_combiner_changes_nothing() {
    for seed in 112..124 {
        let inputs = random_inputs(seed, 300, 150);
        let threads = 1 + (seed as usize) % 5;
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 11, *x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, usize)>| {
            ctx.add_work(vs.len() as u64);
            ctx.emit((*k, vs.iter().sum(), vs.len()));
        };
        let run = |with_identity: bool| {
            let round = Round::new("identity", mapper, reducer);
            let round = if with_identity {
                round.combiner(|_k: &u64, vs: Vec<u64>| vs)
            } else {
                round
            };
            Pipeline::new()
                .round(round)
                .run(&inputs, &EngineConfig::with_threads(threads))
        };
        let (with, report_with) = run(true);
        let (without, report_without) = run(false);
        assert_eq!(with, without, "seed {seed}");
        let mw = &report_with.rounds[0].metrics;
        let mo = &report_without.rounds[0].metrics;
        assert_eq!(mw.combiner_output_records, mw.combiner_input_records);
        assert_eq!(mw.shuffle_records, mo.shuffle_records, "seed {seed}");
        assert_eq!(mw.shuffle_bytes, mo.shuffle_bytes, "seed {seed}");
        assert_eq!(mw.reducer_work, mo.reducer_work, "seed {seed}");
    }
}

/// What the pre-parallel-shuffle engine measured for one round: the serial
/// reference the parallel two-phase exchange is pinned against. Chunking
/// mirrors the engine (`len.div_ceil(threads)`) so the per-map-shard combiner
/// counters agree exactly; grouping is one big `HashMap` on a single thread,
/// exactly the old coordinator loop.
struct SerialShuffleReference {
    key_value_pairs: usize,
    combiner_output_records: usize,
    shuffle_records: usize,
    shuffle_bytes: u64,
    reducers_used: usize,
    max_reducer_input: usize,
    /// Reducer outputs, sorted (the serial grouping fixes no inter-shard
    /// order, so parity is multiset equality).
    sorted_outputs: Vec<(u64, u64, usize)>,
}

fn serial_shuffle_reference(
    inputs: &[u64],
    threads: usize,
    combine: bool,
) -> SerialShuffleReference {
    let mapper = |x: &u64| vec![(x % 29, x * 3), (x % 13, x + 7)];
    let weigher = |_k: &u64, v: &u64| 8 + (v % 5) as usize; // value-dependent bytes
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let mut key_value_pairs = 0usize;
    let mut combiner_output_records = 0usize;
    let mut shuffle_bytes = 0u64;
    let mut grouped: HashMap<u64, Vec<u64>> = HashMap::new();
    for chunk in inputs.chunks(chunk_size) {
        let pairs: Vec<(u64, u64)> = chunk.iter().flat_map(mapper).collect();
        key_value_pairs += pairs.len();
        if combine {
            // Per-map-shard grouping + the summing combiner, as the old
            // engine ran it on the coordinator's behalf.
            let mut shard_groups: HashMap<u64, Vec<u64>> = HashMap::new();
            for (key, value) in pairs {
                shard_groups.entry(key).or_default().push(value);
            }
            for (key, values) in shard_groups {
                let combined: u64 = values.iter().sum();
                combiner_output_records += 1;
                shuffle_bytes += weigher(&key, &combined) as u64;
                grouped.entry(key).or_default().push(combined);
            }
        } else {
            for (key, value) in pairs {
                shuffle_bytes += weigher(&key, &value) as u64;
                grouped.entry(key).or_default().push(value);
            }
        }
    }
    let shuffle_records = if combine {
        combiner_output_records
    } else {
        key_value_pairs
    };
    let reducers_used = grouped.len();
    let max_reducer_input = grouped.values().map(|v| v.len()).max().unwrap_or(0);
    let mut sorted_outputs: Vec<(u64, u64, usize)> = grouped
        .into_iter()
        .map(|(k, vs)| (k, vs.iter().sum(), vs.len()))
        .collect();
    sorted_outputs.sort_unstable();
    SerialShuffleReference {
        key_value_pairs,
        combiner_output_records,
        shuffle_records,
        shuffle_bytes,
        reducers_used,
        max_reducer_input,
        sorted_outputs,
    }
}

/// Runs the same job on the real (parallel-shuffle) engine.
fn parallel_shuffle_run(
    inputs: &[u64],
    threads: usize,
    combine: bool,
) -> (Vec<(u64, u64, usize)>, JobMetrics) {
    let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| {
        ctx.emit(x % 29, x * 3);
        ctx.emit(x % 13, x + 7);
    };
    let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, usize)>| {
        ctx.emit((*k, vs.iter().sum(), vs.len()));
    };
    let round = Round::new("parity", mapper, reducer)
        .record_bytes(|_k: &u64, v: &u64| 8 + (v % 5) as usize);
    let round = if combine {
        round.combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()])
    } else {
        round
    };
    let (outputs, report) = Pipeline::new()
        .round(round)
        .run(inputs, &EngineConfig::with_threads(threads));
    (outputs, report.rounds.into_iter().next().unwrap().metrics)
}

/// Parity of the parallel two-phase shuffle against the old serial grouping:
/// exact `shuffle_records` / `shuffle_bytes` / `reducers_used` /
/// `max_reducer_input` counters and multiset-equal outputs, for threads
/// {1, 2, 8}, with and without a combiner.
#[test]
fn parallel_shuffle_matches_the_serial_grouping_reference() {
    for seed in 124..140 {
        let inputs = random_inputs(seed, 500, 400);
        for threads in [1usize, 2, 8] {
            for combine in [false, true] {
                let reference = serial_shuffle_reference(&inputs, threads, combine);
                let (mut outputs, metrics) = parallel_shuffle_run(&inputs, threads, combine);
                outputs.sort_unstable();
                let label = format!("seed {seed} threads {threads} combine {combine}");
                assert_eq!(outputs, reference.sorted_outputs, "{label}");
                assert_eq!(
                    metrics.key_value_pairs, reference.key_value_pairs,
                    "{label}"
                );
                assert_eq!(
                    metrics.combiner_output_records, reference.combiner_output_records,
                    "{label}"
                );
                assert_eq!(
                    metrics.shuffle_records, reference.shuffle_records,
                    "{label}"
                );
                assert_eq!(metrics.shuffle_bytes, reference.shuffle_bytes, "{label}");
                assert_eq!(metrics.reducers_used, reference.reducers_used, "{label}");
                assert_eq!(
                    metrics.max_reducer_input, reference.max_reducer_input,
                    "{label}"
                );
            }
        }
    }
}

/// Deterministic mode: the parallel shuffle repeats byte-identically at every
/// thread count, and its counters are thread-count invariant.
#[test]
fn parallel_shuffle_repeats_exactly_and_counters_ignore_thread_count() {
    for seed in 140..148 {
        let inputs = random_inputs(seed, 400, 300);
        for combine in [false, true] {
            let single = parallel_shuffle_run(&inputs, 1, combine);
            for threads in [2usize, 8] {
                let first = parallel_shuffle_run(&inputs, threads, combine);
                let second = parallel_shuffle_run(&inputs, threads, combine);
                assert_eq!(
                    first.0, second.0,
                    "seed {seed} threads {threads} combine {combine}"
                );
                // Counters that must not depend on the worker count at all.
                assert_eq!(first.1.key_value_pairs, single.1.key_value_pairs);
                assert_eq!(first.1.reducers_used, single.1.reducers_used);
                if !combine {
                    // Without a combiner the shipped totals and the reducer
                    // input sizes are invariant too (combined runs produce one
                    // record per map shard per key, so those legitimately vary
                    // with the chunking).
                    assert_eq!(first.1.max_reducer_input, single.1.max_reducer_input);
                    assert_eq!(first.1.shuffle_records, single.1.shuffle_records);
                    assert_eq!(first.1.shuffle_bytes, single.1.shuffle_bytes);
                }
            }
        }
    }
}

/// Zeroes the timing fields and the spill-only counters, leaving every count
/// that the cross-budget parity contract pins.
fn spill_invariant_counters(mut metrics: JobMetrics) -> JobMetrics {
    metrics.map_time = std::time::Duration::ZERO;
    metrics.partition_time = std::time::Duration::ZERO;
    metrics.shuffle_time = std::time::Duration::ZERO;
    metrics.reduce_time = std::time::Duration::ZERO;
    metrics.spill_read_secs = std::time::Duration::ZERO;
    metrics.spilled_bytes = 0;
    metrics.spill_runs = 0;
    metrics
}

/// The out-of-core contract: for any seeded random workload, outputs and every
/// `JobMetrics` counter (spill counters aside) are byte-identical across
/// memory budgets — a 64 KiB budget that spills heavily, a 1 MiB budget, and
/// the unbounded in-memory path.
#[test]
fn outputs_and_counters_are_invariant_across_memory_budgets() {
    for seed in 148..154 {
        let inputs = random_inputs(seed, 60_000, 1 << 20);
        let threads = 1 + (seed as usize) % 4;
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| {
            ctx.emit(x % 1987, x ^ (x >> 7));
            ctx.emit(x % 311, x.wrapping_mul(3));
        };
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, usize)>| {
            ctx.emit((
                *k,
                vs.iter().fold(0u64, |a, v| a.wrapping_add(*v)),
                vs.len(),
            ));
        };
        let run = |budget: usize| {
            let config = EngineConfig::with_threads(threads).memory_budget(budget);
            let (outputs, report) = Pipeline::new()
                .round(Round::new("budget-sweep", mapper, reducer).arena())
                .run(&inputs, &config);
            let metrics = report.rounds.into_iter().next().unwrap().metrics;
            (outputs, metrics)
        };
        let (base_out, base_metrics) = run(0);
        assert_eq!(base_metrics.spilled_bytes, 0, "seed {seed}");
        assert_eq!(base_metrics.spill_runs, 0, "seed {seed}");
        for budget in [64 << 10, 1 << 20] {
            let (outputs, metrics) = run(budget);
            assert_eq!(outputs, base_out, "seed {seed} budget {budget}");
            assert_eq!(
                spill_invariant_counters(metrics),
                spill_invariant_counters(base_metrics.clone()),
                "seed {seed} budget {budget}"
            );
        }
    }
}

/// Sanity check that the blanket `Combiner` impl for closures and an explicit
/// struct implementation are interchangeable.
#[test]
fn struct_combiners_work_like_closure_combiners() {
    struct Summing;
    impl Combiner<u64, u64> for Summing {
        fn combine(&self, _key: &u64, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }
    let inputs: Vec<u64> = (0..500).collect();
    let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 7, *x);
    let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
        ctx.emit((*k, vs.iter().sum()));
    };
    let config = EngineConfig::with_threads(4);
    let (a, _) = Pipeline::new()
        .round(Round::new("struct", mapper, reducer).combiner(Summing))
        .run(&inputs, &config);
    let (b, _) = Pipeline::new()
        .round(
            Round::new("closure", mapper, reducer)
                .combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()]),
        )
        .run(&inputs, &config);
    assert_eq!(a, b);
}
