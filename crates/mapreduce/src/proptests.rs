//! Property-based tests for the map-reduce engine.

use crate::engine::{run_job, EngineConfig};
use crate::task::{MapContext, ReduceContext};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grouping semantics: the engine delivers every value to exactly one
    /// reducer invocation, keyed correctly, regardless of thread count.
    #[test]
    fn grouping_matches_a_hashmap_reference(
        inputs in prop::collection::vec(0u64..200, 0..300),
        threads in 1usize..8,
    ) {
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 17, *x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, usize)>| {
            ctx.emit((*k, vs.iter().sum(), vs.len()));
        };
        let (outputs, metrics) =
            run_job(&inputs, &mapper, &reducer, &EngineConfig::with_threads(threads));

        let mut reference: HashMap<u64, (u64, usize)> = HashMap::new();
        for x in &inputs {
            let entry = reference.entry(x % 17).or_default();
            entry.0 += x;
            entry.1 += 1;
        }
        prop_assert_eq!(outputs.len(), reference.len());
        prop_assert_eq!(metrics.reducers_used, reference.len());
        prop_assert_eq!(metrics.key_value_pairs, inputs.len());
        for (k, sum, count) in outputs {
            let expected = reference.get(&k).copied().unwrap_or((0, 0));
            prop_assert_eq!((sum, count), expected);
        }
    }

    /// Communication cost equals the number of emissions, independent of the
    /// number of reducers or threads.
    #[test]
    fn communication_cost_counts_every_emission(
        inputs in prop::collection::vec(0u64..100, 0..200),
        replication in 1usize..6,
        threads in 1usize..6,
    ) {
        let mapper = move |x: &u64, ctx: &mut MapContext<u64, u64>| {
            for i in 0..replication {
                ctx.emit(x.wrapping_add(i as u64 * 31), *x);
            }
        };
        let reducer = |_k: &u64, vs: &[u64], ctx: &mut ReduceContext<usize>| {
            ctx.add_work(vs.len() as u64);
            ctx.emit(vs.len());
        };
        let (_, metrics) =
            run_job(&inputs, &mapper, &reducer, &EngineConfig::with_threads(threads));
        prop_assert_eq!(metrics.key_value_pairs, inputs.len() * replication);
        // Every shipped pair reaches exactly one reducer, so the reducer-side
        // work (which counts received values) equals the communication cost.
        prop_assert_eq!(metrics.reducer_work as usize, inputs.len() * replication);
        prop_assert!(metrics.max_reducer_input <= metrics.key_value_pairs);
    }

    /// Thread count never changes the multiset of outputs.
    #[test]
    fn outputs_are_thread_count_invariant(
        inputs in prop::collection::vec(0u64..500, 0..250),
    ) {
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 23, x * x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((*k, vs.iter().copied().max().unwrap_or(0)));
        };
        let mut baseline: Option<Vec<(u64, u64)>> = None;
        for threads in [1usize, 2, 5] {
            let (mut outputs, _) =
                run_job(&inputs, &mapper, &reducer, &EngineConfig::with_threads(threads));
            outputs.sort_unstable();
            match &baseline {
                None => baseline = Some(outputs),
                Some(expected) => prop_assert_eq!(&outputs, expected),
            }
        }
    }
}
