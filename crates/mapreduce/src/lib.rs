//! An in-process, single-round map-reduce engine with cost instrumentation.
//!
//! The paper analyses its algorithms on two cost measures (Section 1.2):
//!
//! 1. **Communication cost** — the number of key-value pairs shipped from the
//!    mappers to the reducers (edges of the data graph are replicated to many
//!    reducer keys).
//! 2. **Computation cost** — the total work performed by all reducers.
//!
//! This engine executes exactly the dataflow those costs describe — map every
//! input record to a multiset of `(key, value)` pairs, group by key, run one
//! reducer invocation per distinct key — and *measures* both quantities, so
//! the reproduction experiments compare the paper's formulas against observed
//! counts rather than against estimates. Reducer keys in the paper are lists
//! of bucket numbers; the engine is generic over any hashable key type.
//!
//! The engine runs mappers and reducers on a configurable number of threads
//! (`std::thread::scope` workers fed through simple sharding); it intentionally
//! does not model network transfer, spilling, or fault tolerance — none of
//! which affect the two cost measures above.

pub mod engine;
pub mod metrics;
pub mod task;

pub use engine::{run_job, shard_for_hash, EngineConfig};
pub use metrics::JobMetrics;
pub use task::{MapContext, Mapper, ReduceContext, Reducer};

#[cfg(test)]
mod proptests;
