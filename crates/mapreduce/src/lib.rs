//! An in-process map-reduce engine with multi-round pipelines, map-side
//! combiners, and cost instrumentation.
//!
//! The paper analyses its algorithms on two cost measures (Section 1.2):
//!
//! 1. **Communication cost** — the number of key-value pairs shipped from the
//!    mappers to the reducers (edges of the data graph are replicated to many
//!    reducer keys).
//! 2. **Computation cost** — the total work performed by all reducers.
//!
//! This engine executes exactly the dataflow those costs describe — map every
//! input record to a multiset of `(key, value)` pairs, group by key, run one
//! reducer invocation per distinct key — and *measures* both quantities, so
//! the reproduction experiments compare the paper's formulas against observed
//! counts rather than against estimates. Reducer keys in the paper are lists
//! of bucket numbers; the engine is generic over any hashable key type.
//!
//! Multi-round algorithms (the paper's Section 2 cascade baseline and any
//! future iterative workloads) are expressed as a [`Pipeline`] of [`Round`]s:
//! the reducer outputs of round *k* feed the mappers of round *k + 1*, and a
//! [`PipelineReport`] collects every round's [`JobMetrics`]. A round may
//! attach a map-side [`Combiner`] that pre-aggregates pairs per map shard
//! before the shuffle; the metrics then separate what the mappers *emitted*
//! (`key_value_pairs`) from what was actually *shipped* (`shuffle_records`,
//! `shuffle_bytes`).
//!
//! The engine runs mappers and reducers on a persistent [`WorkerPool`]
//! (work-stealing indexed tasks on long-lived threads; a per-round
//! `std::thread::scope` fallback remains behind
//! [`EngineConfig::scoped_threads`] as the parity baseline). The simulated
//! shuffle is a two-phase
//! parallel exchange: map workers partition their own emissions into one
//! bucket per reduce worker (hashing each key exactly once with the in-repo
//! [`hash_of`] FxHash and reusing that hash for routing and grouping), the
//! coordinator only moves bucket ownership, and reduce workers group and sort
//! their shard in parallel. The engine intentionally does not model network
//! transfer or fault tolerance — neither affects the two cost measures above.
//! It does, however, bound its own memory: past an
//! [`EngineConfig::memory_budget`] the arena shuffle spills sealed chunk runs
//! to disk and streams them back during the reduce, so peak RSS tracks the
//! budget rather than the workload while outputs stay byte-identical.
//!
//! Results leave the engine through streaming [`OutputSink`]s
//! ([`Pipeline::run_with_sink`]): the final round's reduce workers feed one
//! sink shard each, so a counting sink enumerates outputs far larger than
//! memory without the engine ever materializing them. [`Pipeline::run`] is
//! the collecting wrapper ([`CollectSink`]) over the same path.

pub(crate) mod arena;
pub mod engine;
pub mod hash;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod sink;
pub(crate) mod spill;
pub mod task;

pub use engine::{shard_for_hash, EngineConfig};
pub use hash::{hash_of, FxBuildHasher, FxHasher};
pub use metrics::JobMetrics;
pub use pipeline::{InputChunk, Pipeline, PipelineReport, Round, RoundMetrics};
pub use pool::WorkerPool;
pub use sink::{BufferShard, CollectSink, CountSink, FnSink, OutputSink, SampleSink, SinkShard};
pub use task::{Combiner, MapContext, Mapper, ReduceContext, Reducer};

#[cfg(test)]
mod proptests;
