//! Fast, dependency-free key hashing for the shuffle.
//!
//! The shuffle hot path hashes every emitted key to route it to a reduce
//! worker and to group it with the other values for the same key. The
//! standard library's default hasher (SipHash) is keyed and DoS-resistant —
//! qualities an in-process engine over trusted data does not need — and costs
//! several times more per key than a multiply-xor mix. [`FxHasher`] is an
//! in-repo port of the rustc/Firefox "FxHash" scheme: fold each word into the
//! state with a rotate, xor and multiply by a single odd constant.
//!
//! The engine upholds a **hash-once invariant**: the key hash runs exactly
//! once per emitted key-value pair, on the map worker that produced it. The
//! resulting 64-bit hash is carried alongside the record through partitioning
//! ([`crate::shard_for_hash`] reuses it for routing) and grouping (the
//! crate-internal `Prehashed` wrapper and pass-through hasher reuse it for
//! the hash-map lookups on both sides of the exchange). In debug builds the
//! engine's counted hashing path bumps a thread-local counter and every map
//! and reduce worker asserts the invariant when it finishes; the public
//! [`hash_of`] helper is uncounted, so user code can hash freely.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

/// The FxHash multiplier (a 64-bit truncation of π's digits, as used by
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A multiply-xor hasher (FxHash). Not collision-resistant against an
/// adversary — do not use for untrusted input — but 3-5x cheaper than SipHash
/// on the short keys the shuffle routes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Fold the tail length in so "ab" + "" and "a" + "b" differ.
            word[7] = tail.len() as u8;
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.fold(value as u64);
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.fold(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.fold(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.fold(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.fold(value as u64);
        self.fold((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.fold(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`] for [`FxHasher`] (stateless, so hashes are stable across
/// runs and threads — unlike `RandomState`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// The canonical key hash of the engine: one [`FxHasher`] pass over `key`.
///
/// This is the hash [`crate::shard_for_hash`] maps onto a reduce worker and
/// the grouping maps reuse verbatim. Safe to call from user mappers and
/// reducers — the debug-build hash-once accounting only counts the engine's
/// own shuffle-side invocations (see the crate-internal `hash_for_shuffle`).
#[inline]
pub fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = FxHasher::default();
    key.hash(&mut hasher);
    hasher.finish()
}

/// [`hash_of`], counted: the engine's shuffle paths hash every emitted key
/// through this wrapper exactly once, and in debug builds each call bumps the
/// per-thread counter the workers assert against. Crate-internal so user code
/// calling the public [`hash_of`] can never trip the engine's assertions.
#[inline]
pub(crate) fn hash_for_shuffle<K: Hash + ?Sized>(key: &K) -> u64 {
    #[cfg(debug_assertions)]
    debug_hash_count::bump();
    hash_of(key)
}

/// A key bundled with its precomputed [`hash_of`] value. Its `Hash` impl
/// feeds only the stored hash to the hasher, so inserting a `Prehashed<K>`
/// into a [`PrehashedMap`] never re-hashes `K` itself.
#[derive(Clone, Debug)]
pub(crate) struct Prehashed<K> {
    hash: u64,
    key: K,
}

impl<K: Hash> Prehashed<K> {
    /// Hashes `key` (the one counted [`hash_for_shuffle`] call this record
    /// will ever see) and bundles the two.
    #[inline]
    pub(crate) fn new(key: K) -> Self {
        Prehashed {
            hash: hash_for_shuffle(&key),
            key,
        }
    }
}

impl<K> Prehashed<K> {
    /// Rebundles a key with a hash computed earlier (e.g. on the map worker
    /// that emitted it).
    #[inline]
    pub(crate) fn from_parts(hash: u64, key: K) -> Self {
        Prehashed { hash, key }
    }

    /// The precomputed [`hash_of`] value.
    #[inline]
    pub(crate) fn hash(&self) -> u64 {
        self.hash
    }

    /// Borrows the key.
    #[inline]
    pub(crate) fn key(&self) -> &K {
        &self.key
    }

    /// Unwraps the key.
    #[inline]
    pub(crate) fn into_key(self) -> K {
        self.key
    }
}

impl<K: Eq> PartialEq for Prehashed<K> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // The hash comparison is a cheap early-out; equal keys always carry
        // equal hashes because both came from the same `hash_of`.
        self.hash == other.hash && self.key == other.key
    }
}

impl<K: Eq> Eq for Prehashed<K> {}

impl<K> Hash for Prehashed<K> {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A hasher that passes a single `write_u64` straight through — the partner
/// of [`Prehashed`], turning a hash-map lookup into "use the stored hash".
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PassthroughHasher {
    hash: u64,
}

impl Hasher for PassthroughHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PassthroughHasher only accepts the u64 from Prehashed");
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.hash = value;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`] for [`PassthroughHasher`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BuildPassthroughHasher;

impl BuildHasher for BuildPassthroughHasher {
    type Hasher = PassthroughHasher;

    #[inline]
    fn build_hasher(&self) -> PassthroughHasher {
        PassthroughHasher::default()
    }
}

/// The grouping map of the shuffle: keyed by [`Prehashed`] so every lookup
/// reuses the hash computed when the pair was emitted.
pub(crate) type PrehashedMap<K, V> = HashMap<Prehashed<K>, V, BuildPassthroughHasher>;

/// Creates an empty [`PrehashedMap`] with room for `capacity` keys.
pub(crate) fn prehashed_map_with_capacity<K, V>(capacity: usize) -> PrehashedMap<K, V> {
    HashMap::with_capacity_and_hasher(capacity, BuildPassthroughHasher)
}

/// Debug-build test hook: a per-thread count of the engine's counted
/// `hash_for_shuffle` invocations (the public [`hash_of`] does not count).
///
/// The engine's workers [`take`](debug_hash_count::take) the counter when they
/// start and assert the expected count when they finish — each map worker must
/// hash exactly its emitted pairs, each reduce worker must hash nothing. The
/// counter is thread-local, so concurrently running tests (or other engine
/// rounds) cannot disturb the accounting.
#[cfg(debug_assertions)]
pub mod debug_hash_count {
    use std::cell::Cell;

    thread_local! {
        static COUNT: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub(crate) fn bump() {
        COUNT.with(|count| count.set(count.get() + 1));
    }

    /// Returns the current thread's [`super::hash_of`] call count and resets
    /// it to zero.
    pub fn take() -> u64 {
        COUNT.with(|count| count.replace(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_nearby_keys_differ() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
        let distinct: std::collections::HashSet<u64> =
            (0..1000u64).map(|key| hash_of(&key)).collect();
        assert_eq!(distinct.len(), 1000, "sequential u64 keys must not collide");
    }

    #[test]
    fn byte_streams_with_different_boundaries_differ() {
        // The tail-length fold keeps short byte strings from aliasing.
        assert_ne!(hash_of("ab"), hash_of("a"));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn prehashed_reuses_the_stored_hash() {
        let prehashed = Prehashed::new(7u64);
        assert_eq!(prehashed.hash(), hash_of(&7u64));
        assert_eq!(*prehashed.key(), 7);
        let rebuilt = Prehashed::from_parts(prehashed.hash(), 7u64);
        assert_eq!(prehashed, rebuilt);
        assert_eq!(rebuilt.into_key(), 7);

        let mut map = prehashed_map_with_capacity::<u64, u32>(4);
        map.insert(Prehashed::new(1u64), 10);
        map.insert(Prehashed::new(2u64), 20);
        assert_eq!(map.get(&Prehashed::new(1u64)), Some(&10));
        assert_eq!(map.len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn debug_counter_counts_shuffle_hashes_only() {
        let _ = debug_hash_count::take();
        // The public helper never counts — user code cannot trip the engine's
        // hash-once assertions.
        for key in 0..5u64 {
            let _ = hash_of(&key);
        }
        assert_eq!(debug_hash_count::take(), 0);
        // The engine's counted path counts once per key; map operations over
        // Prehashed entries must not hash again.
        let _ = hash_for_shuffle(&7u64);
        let mut map = prehashed_map_with_capacity::<u64, u32>(4);
        map.insert(Prehashed::new(99u64), 1);
        assert_eq!(debug_hash_count::take(), 2);
        assert_eq!(debug_hash_count::take(), 0);
    }
}
