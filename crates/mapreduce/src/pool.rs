//! A persistent worker pool: the engine's execution substrate.
//!
//! Before this module existed every [`crate::Pipeline`] round paid two
//! `std::thread::scope` spawn/join cycles — once for the map phase, once for
//! the reduce phase. A long-lived process (the `subgraph serve` query
//! service, a bench sweeping thread counts, any multi-round pipeline) repeats
//! that cost per round, and on small rounds the spawn/teardown dominates the
//! useful work. A [`WorkerPool`] keeps its OS threads alive for the pool's
//! lifetime and hands them *indexed tasks* instead:
//!
//! * [`WorkerPool::run_indexed`] executes `task(0..count)` across the pool
//!   and the calling thread, returning when every index has finished. Indices
//!   are claimed from a shared atomic counter — **work stealing at task
//!   granularity** — so a skewed task list never leaves workers idle behind
//!   one straggler the way fixed per-worker chunks do.
//! * The calling thread participates: it claims indices like any worker, so
//!   a pool is never a bottleneck for callers (a pool with zero workers
//!   degrades to an inline loop), and nested `run_indexed` calls cannot
//!   deadlock — the inner caller drains its own job itself.
//! * Panics inside a task are caught per index, the first payload is kept,
//!   and the caller re-raises it after the job completes — same observable
//!   behaviour as a scoped spawn whose join propagates the panic.
//!
//! The pool also owns a `BufferPool`: a type-erased free list of `Vec`
//! allocations keyed by element layout, letting the shuffle recycle its
//! per-reduce-worker bucket vectors across rounds instead of reallocating
//! them every round (see `docs/ENGINE.md`, "Persistent worker pool").
//!
//! Engine integration: [`crate::EngineConfig`] carries an executor choice —
//! the process-global pool ([`WorkerPool::global`], the default), an explicit
//! shared pool ([`crate::EngineConfig::with_pool`], what `subgraph serve`
//! uses so concurrent queries share one set of workers), or the legacy
//! scoped-thread path ([`crate::EngineConfig::scoped_threads`], kept as the
//! parity baseline).

use std::alloc::{dealloc, Layout};
use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One queued `run_indexed` call: the caller's task closure (lifetime-erased
/// — see the safety notes on [`WorkerPool::run_indexed`]), the index counter
/// workers claim from, and the completion state the caller waits on.
struct ScopeJob {
    /// The task closure, as a raw pointer so the job may outlive the borrow
    /// *without being a dangling reference*: workers that observe the job
    /// after it drained (`next >= total`) never dereference it.
    task: *const (dyn Fn(usize) + Sync),
    /// Number of indices in the job.
    total: usize,
    /// The next unclaimed index; `fetch_add` is the work-stealing queue.
    next: AtomicUsize,
    /// Completion accounting, guarded for the `done` condvar.
    status: Mutex<JobStatus>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

struct JobStatus {
    /// Indices still executing or unclaimed.
    remaining: usize,
    /// First panic payload raised by any index, re-raised by the caller.
    panic: Option<Box<dyn Any + Send>>,
}

// SAFETY: the raw task pointer is only dereferenced for indices `< total`,
// and `run_indexed` blocks until every such index has completed before the
// closure it points to can go out of scope. The rest of the struct is
// ordinary sync primitives.
unsafe impl Send for ScopeJob {}
unsafe impl Sync for ScopeJob {}

impl ScopeJob {
    /// Runs one claimed index, catching a panic into the job status and
    /// decrementing the remaining count (signalling the caller at zero).
    fn execute(&self, index: usize) {
        // SAFETY: index < total, so the caller is still inside `run_indexed`
        // and the closure is alive (see the struct-level safety comment).
        let task = unsafe { &*self.task };
        let result = catch_unwind(AssertUnwindSafe(|| task(index)));
        let mut status = self.status.lock().expect("pool job status poisoned");
        if let Err(payload) = result {
            status.panic.get_or_insert(payload);
        }
        status.remaining -= 1;
        if status.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// The state shared between the pool handle and its worker threads.
struct PoolShared {
    /// Queued jobs, oldest first. Workers drain the front job before moving
    /// on; drained jobs are popped lazily.
    state: Mutex<PoolState>,
    /// Signalled when a job is pushed or shutdown begins.
    work: Condvar,
}

struct PoolState {
    jobs: VecDeque<Arc<ScopeJob>>,
    shutdown: bool,
}

/// A persistent pool of worker threads executing indexed task batches, plus
/// a `BufferPool` of recyclable allocations shared across rounds. See the
/// [module docs](self) for the execution model.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    buffers: Arc<BufferPool>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `workers` dedicated threads (the calling thread of every
    /// [`WorkerPool::run_indexed`] participates too, so total parallelism is
    /// `workers + 1`). `workers == 0` is valid: every job runs inline.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mr-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            buffers: Arc::new(BufferPool::new()),
            handles,
        }
    }

    /// The process-global pool, created on first use with
    /// `available_parallelism - 1` workers (the caller thread is the final
    /// execution context). This is the default executor of
    /// [`crate::EngineConfig`].
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let parallelism = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            Arc::new(WorkerPool::new(parallelism.saturating_sub(1)))
        })
    }

    /// Number of dedicated worker threads (excluding participating callers).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The pool's recyclable-allocation free list. Shared (`Arc`) so the
    /// arena shuffle's emission contexts can draw and return chunk buffers
    /// without borrowing the pool itself.
    pub(crate) fn buffers(&self) -> &Arc<BufferPool> {
        &self.buffers
    }

    /// Executes `task(i)` for every `i in 0..count`, distributing indices
    /// across the pool's workers and the calling thread, and returns once all
    /// have completed. Indices are claimed one at a time from an atomic
    /// counter, so uneven per-index cost balances automatically. If any index
    /// panics, the first payload is re-raised here after the batch finishes.
    pub fn run_indexed<F>(&self, count: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        if count == 1 || self.handles.is_empty() {
            for index in 0..count {
                task(index);
            }
            return;
        }

        let task_ptr: *const (dyn Fn(usize) + Sync + '_) = &task;
        // SAFETY: the transmute only erases the borrow's lifetime from the
        // fat pointer's type; `run_indexed` does not return until every
        // index < count has executed, so no dereference can outlive `task`.
        let task_ptr: *const (dyn Fn(usize) + Sync + 'static) = unsafe { mem::transmute(task_ptr) };
        let job = Arc::new(ScopeJob {
            task: task_ptr,
            total: count,
            next: AtomicUsize::new(0),
            status: Mutex::new(JobStatus {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.jobs.push_back(Arc::clone(&job));
        }
        self.shared.work.notify_all();

        // The caller is a worker too: claim and run indices until the
        // counter drains. This guarantees progress even if every pool worker
        // is busy with other jobs (e.g. concurrent serve queries).
        loop {
            let index = job.next.fetch_add(1, Ordering::Relaxed);
            if index >= count {
                break;
            }
            job.execute(index);
        }

        // Wait for in-flight indices claimed by pool workers.
        let panic = {
            let mut status = job.status.lock().expect("pool job status poisoned");
            while status.remaining > 0 {
                status = job.done.wait(status).expect("pool job status poisoned");
            }
            status.panic.take()
        };

        // Drop the drained job from the queue now rather than leaving it for
        // a worker to pop lazily — after this function returns, the queue
        // must not retain a pointer into our (dead) stack frame.
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.jobs.retain(|queued| !Arc::ptr_eq(queued, &job));
        }

        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// The dedicated worker threads' loop: claim the oldest job's next index,
/// run it, repeat; sleep on the condvar when no claimable work exists.
fn worker_loop(shared: &PoolShared) {
    loop {
        let (job, index) = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                let claim = state.jobs.front().map(|job| {
                    let index = job.next.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(job), index)
                });
                match claim {
                    Some((job, index)) if index < job.total => break (job, index),
                    Some(_) => {
                        // Front job fully claimed: retire it and look again.
                        state.jobs.pop_front();
                    }
                    None => {
                        state = shared.work.wait(state).expect("pool state poisoned");
                    }
                }
            }
        };
        job.execute(index);
    }
}

// ---- buffer recycling -------------------------------------------------------

/// Buffers larger than this are dropped on [`BufferPool::give`] instead of
/// retained — one pathological round must not pin memory forever.
const MAX_RECYCLED_BYTES: usize = 4 << 20;
/// At most this many buffers are retained per element-layout class.
const MAX_PER_CLASS: usize = 64;

/// One recycled `Vec` allocation: the pointer, its byte size, and alignment.
struct RawAlloc {
    ptr: *mut u8,
    bytes: usize,
    align: usize,
}

// SAFETY: a RawAlloc is an owned, unaliased heap allocation; moving it
// between threads is moving ownership of plain memory.
unsafe impl Send for RawAlloc {}

/// A type-erased free list of `Vec` allocations, keyed by element layout
/// `(size, align)`. [`BufferPool::give`] banks an emptied vector's
/// allocation; [`BufferPool::take`] revives one as an empty `Vec<T>` of any
/// type with the same element layout. This is what lets the shuffle reuse
/// its bucket vectors across rounds even though every round's key/value
/// types are round-specific generics.
pub(crate) struct BufferPool {
    classes: Mutex<HashMap<(usize, usize), Vec<RawAlloc>>>,
}

impl BufferPool {
    fn new() -> Self {
        BufferPool {
            classes: Mutex::new(HashMap::new()),
        }
    }

    /// Banks `v`'s allocation for reuse (the contents are cleared first —
    /// the vector should already be drained; clearing is the safety net that
    /// keeps `Drop` types from leaking into the raw store).
    pub(crate) fn give<T>(&self, mut v: Vec<T>) {
        v.clear();
        let size = mem::size_of::<T>();
        let capacity = v.capacity();
        let bytes = capacity * size;
        if size == 0 || capacity == 0 || bytes > MAX_RECYCLED_BYTES {
            return; // nothing worth banking (or too big to pin)
        }
        let align = mem::align_of::<T>();
        let mut classes = self.classes.lock().expect("buffer pool poisoned");
        let class = classes.entry((size, align)).or_default();
        if class.len() >= MAX_PER_CLASS {
            return; // drop `v` normally
        }
        let ptr = v.as_mut_ptr() as *mut u8;
        mem::forget(v);
        class.push(RawAlloc { ptr, bytes, align });
    }

    /// An empty `Vec<T>` — recycled when a banked allocation with `T`'s
    /// element layout exists, freshly empty otherwise.
    pub(crate) fn take<T>(&self) -> Vec<T> {
        let size = mem::size_of::<T>();
        if size == 0 {
            return Vec::new();
        }
        let align = mem::align_of::<T>();
        let recycled = {
            let mut classes = self.classes.lock().expect("buffer pool poisoned");
            classes.get_mut(&(size, align)).and_then(Vec::pop)
        };
        match recycled {
            // SAFETY: the allocation was produced by a `Vec<U>` with
            // `size_of::<U>() == size` and `align_of::<U>() == align`, so its
            // layout is `Layout::array::<T>(bytes / size)` exactly — the
            // layout `Vec<T>` will free it with. Length 0 means no element
            // of the old type is ever reinterpreted.
            Some(raw) => unsafe { Vec::from_raw_parts(raw.ptr as *mut T, 0, raw.bytes / size) },
            None => Vec::new(),
        }
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        let classes = self.classes.get_mut().expect("buffer pool poisoned");
        for ((_, _), allocs) in classes.drain() {
            for raw in allocs {
                // SAFETY: each RawAlloc owns one live global-allocator block
                // of exactly (bytes, align); nothing else frees it.
                unsafe {
                    let layout = Layout::from_size_align(raw.bytes, raw.align)
                        .expect("banked allocation layout is valid");
                    dealloc(raw.ptr, layout);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_covers_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let sum = AtomicU64::new(0);
        pool.run_indexed(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn empty_job_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(0, |_| panic!("no index should run"));
    }

    #[test]
    fn more_workers_than_indices_is_fine() {
        let pool = WorkerPool::new(8);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(3, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_jobs_reuse_the_same_pool() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let total = AtomicU64::new(0);
            pool.run_indexed(64, |i| {
                total.fetch_add((i + round) as u64, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (2016 + 64 * round) as u64);
        }
    }

    #[test]
    fn concurrent_callers_share_the_workers() {
        let pool = Arc::new(WorkerPool::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let sum = AtomicU64::new(0);
                    pool.run_indexed(200, |i| {
                        sum.fetch_add(i as u64, Ordering::Relaxed);
                    });
                    assert_eq!(sum.load(Ordering::Relaxed), 19900);
                });
            }
        });
    }

    #[test]
    fn a_panicking_index_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(16, |i| {
                if i == 7 {
                    panic!("index 7 exploded");
                }
            });
        }));
        let payload = result.expect_err("the panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("exploded"), "{message}");

        // The pool survives a panicked job.
        let ok = AtomicUsize::new(0);
        pool.run_indexed(8, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn buffer_pool_recycles_same_layout_allocations() {
        let pool = BufferPool::new();
        let mut v: Vec<u64> = Vec::with_capacity(100);
        v.push(7);
        let ptr = v.as_ptr();
        pool.give(v);
        // Same element layout (u64 and i64 share size and alignment).
        let recycled: Vec<i64> = pool.take();
        assert_eq!(recycled.capacity(), 100);
        assert!(recycled.is_empty());
        assert_eq!(recycled.as_ptr() as *const u64, ptr);
        // A different layout misses the class and gets a fresh Vec.
        let fresh: Vec<u8> = pool.take();
        assert_eq!(fresh.capacity(), 0);
        pool.give(recycled);
    }

    #[test]
    fn buffer_pool_ignores_unhelpful_buffers() {
        let pool = BufferPool::new();
        pool.give(Vec::<u64>::new()); // zero capacity
        pool.give(vec![(); 1000]); // zero-sized elements
        assert_eq!(pool.take::<u64>().capacity(), 0);
        assert_eq!(pool.take::<()>().capacity(), usize::MAX); // ZST Vec semantics
    }

    #[test]
    fn buffer_pool_clears_contents_before_banking() {
        // Drop types must be dropped at give time, not leaked into the store.
        let pool = BufferPool::new();
        let marker = Arc::new(());
        pool.give(vec![Arc::clone(&marker); 10]);
        assert_eq!(Arc::strong_count(&marker), 1, "contents dropped on give");
        let recycled: Vec<Arc<()>> = pool.take();
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= 10);
    }
}
