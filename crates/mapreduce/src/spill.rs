//! Disk spilling for the arena shuffle: the out-of-core half of the engine.
//!
//! When [`crate::EngineConfig::memory_budget`] is set, every arena round
//! creates one [`SpillRound`]: a uniquely named directory for run files plus
//! the shared accounting of how many arena-chunk bytes are resident. Map
//! workers that push the round past the budget seal their *full* chunks into
//! **run files** — one file per map shard × reduce shard × spill epoch, each a
//! sequence of length-prefixed frames (a [`subgraph_codec::write_varint`]
//! byte length followed by one sealed chunk's raw record bytes) — and return
//! the chunk buffers to the [`crate::pool::BufferPool`]. The reduce phase
//! streams each bucket's runs back frame by frame ([`RunReader`]), in epoch
//! order, *before* the bucket's resident tail, so the merged record order is
//! exactly the write order and outputs stay byte-identical to the in-memory
//! path (see `crate::arena` for the full parity argument).
//!
//! Cleanup is RAII: dropping the [`SpillRound`] removes the directory, and it
//! is dropped both on normal round completion and during a panic unwind, so
//! no run files outlive the round. I/O errors panic with the offending path
//! *and* the spill directory named; the graceful error path for an unusable
//! user-supplied directory is the fail-fast
//! [`crate::EngineConfig::validate_spill_dir`] probe at startup.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use subgraph_codec::{read_varint_from, write_varint};

/// Process-wide sequence number making concurrent rounds' spill directories
/// (and validation probes) unique; the process id keeps concurrent processes
/// sharing one `--spill-dir` apart.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// The spill directory to use for a configured base (`None` = OS temp dir).
fn base_dir(base: Option<&Path>) -> PathBuf {
    base.map(Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir)
}

/// Fail-fast writability probe behind
/// [`crate::EngineConfig::validate_spill_dir`]: creates and removes a
/// uniquely named probe directory under `base`.
pub(crate) fn validate_base_dir(base: Option<&Path>) -> Result<(), String> {
    let base = base_dir(base);
    let probe = base.join(format!(
        "subgraph-spill-probe-{}-{}",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&probe)
        .map_err(|e| format!("spill dir {} is not writable: {e}", base.display()))?;
    let _ = fs::remove_dir(&probe);
    Ok(())
}

/// One arena round's spill state: the run-file directory (removed on drop),
/// the memory budget, and the shared byte/run accounting. Created once per
/// round by the arena executor when a budget is in force and shared (`Arc`)
/// with every map worker's [`crate::arena::ArenaState`].
pub(crate) struct SpillRound {
    dir: PathBuf,
    /// The configured budget in bytes ([`crate::EngineConfig::memory_budget`]).
    pub(crate) budget: usize,
    /// Target capacity of one arena chunk under this budget — scaled down
    /// from the unbudgeted 1 MiB so chunks actually *seal* (and can spill)
    /// well before the budget is a small multiple of the chunk size.
    pub(crate) chunk_target: usize,
    /// Capacity bytes of all currently allocated arena chunks across the
    /// round's map workers. Grows when a worker opens a chunk, shrinks when
    /// sealed chunks are spilled; crossing [`SpillRound::budget`] triggers the
    /// owning worker's spill.
    pub(crate) resident: AtomicUsize,
    /// Total payload bytes written to run files
    /// ([`crate::JobMetrics::spilled_bytes`]).
    pub(crate) spilled_bytes: AtomicU64,
    /// Number of run files written ([`crate::JobMetrics::spill_runs`]).
    pub(crate) spill_runs: AtomicUsize,
}

impl SpillRound {
    /// Creates the round's uniquely named spill directory under `base` (the
    /// configured spill dir, or the OS temp dir).
    ///
    /// # Panics
    /// Panics when the directory cannot be created, naming the path — callers
    /// with user-supplied directories are expected to have run the
    /// [`validate_base_dir`] probe at startup.
    pub(crate) fn create(budget: usize, threads: usize, base: Option<&Path>) -> Self {
        let dir = base_dir(base).join(format!(
            "subgraph-spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap_or_else(|e| {
            panic!("cannot create spill dir {}: {e}", dir.display());
        });
        // Up to `threads` map workers each keep one open chunk per reduce
        // shard resident at all times, so the budget must cover roughly
        // threads² chunks before any can seal; the extra factor keeps several
        // sealed (spillable) chunks in flight between budget checks. Tiny
        // budgets degrade to 4 KiB chunks rather than failing.
        let chunk_target = (budget / (threads * threads * 4).max(1)).clamp(4 << 10, 1 << 20);
        SpillRound {
            dir,
            budget,
            chunk_target,
            resident: AtomicUsize::new(0),
            spilled_bytes: AtomicU64::new(0),
            spill_runs: AtomicUsize::new(0),
        }
    }

    /// The round's spill directory (for error messages).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one run file holding `chunks` as length-prefixed frames and
    /// returns its path. Updates the spilled-byte and run counters.
    ///
    /// # Panics
    /// Panics on any I/O error, naming the run file and the spill dir.
    pub(crate) fn write_run(
        &self,
        map_shard: usize,
        reduce_shard: usize,
        epoch: usize,
        chunks: &[Vec<u8>],
    ) -> PathBuf {
        let path = self
            .dir
            .join(format!("m{map_shard}-r{reduce_shard}-e{epoch}.run"));
        let fail = |e: std::io::Error| -> ! {
            panic!(
                "spill write failed: {e} (run file {}, spill dir {})",
                path.display(),
                self.dir.display()
            )
        };
        let file = File::create(&path).unwrap_or_else(|e| fail(e));
        let mut writer = BufWriter::new(file);
        let mut header = Vec::with_capacity(10);
        let mut payload = 0u64;
        for chunk in chunks {
            header.clear();
            write_varint(&mut header, chunk.len() as u64);
            writer.write_all(&header).unwrap_or_else(|e| fail(e));
            writer.write_all(chunk).unwrap_or_else(|e| fail(e));
            payload += chunk.len() as u64;
        }
        writer.flush().unwrap_or_else(|e| fail(e));
        self.spilled_bytes.fetch_add(payload, Ordering::Relaxed);
        self.spill_runs.fetch_add(1, Ordering::Relaxed);
        path
    }
}

impl Drop for SpillRound {
    fn drop(&mut self) {
        // Runs on normal completion and during panic unwinds alike; cleanup
        // failure must not turn either into an abort.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Streams one run file's frames back into a caller-supplied buffer, so the
/// reduce phase re-reads a spilled run with one resident chunk at a time.
pub(crate) struct RunReader {
    reader: BufReader<File>,
    path: PathBuf,
    dir: PathBuf,
}

impl RunReader {
    /// Opens a run file for streaming.
    ///
    /// # Panics
    /// Panics when the file cannot be opened, naming it and the spill dir.
    pub(crate) fn open(path: PathBuf, dir: &Path) -> Self {
        let file = File::open(&path).unwrap_or_else(|e| {
            panic!(
                "spill read failed: {e} (run file {}, spill dir {})",
                path.display(),
                dir.display()
            )
        });
        RunReader {
            reader: BufReader::new(file),
            path,
            dir: dir.to_path_buf(),
        }
    }

    /// Reads the next frame into `buf` (clearing it first). Returns `false`
    /// on a clean end of file.
    ///
    /// # Panics
    /// Panics on a truncated frame or any I/O error, naming the run file and
    /// the spill dir.
    pub(crate) fn next_frame(&mut self, buf: &mut Vec<u8>) -> bool {
        let fail = |e: std::io::Error| -> ! {
            panic!(
                "spill read failed: {e} (run file {}, spill dir {})",
                self.path.display(),
                self.dir.display()
            )
        };
        let len = match read_varint_from(&mut self.reader) {
            Ok(None) => return false,
            Ok(Some(len)) => len as usize,
            Err(e) => fail(e),
        };
        buf.clear();
        buf.resize(len, 0);
        self.reader.read_exact(buf).unwrap_or_else(|e| fail(e));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_round_trip_and_the_directory_is_removed_on_drop() {
        let spill = SpillRound::create(1 << 20, 4, None);
        let dir = spill.dir().to_path_buf();
        assert!(dir.is_dir());
        let chunks = vec![vec![1u8, 2, 3], vec![0xab; 5000], Vec::new()];
        let path = spill.write_run(2, 7, 0, &chunks);
        assert_eq!(spill.spilled_bytes.load(Ordering::Relaxed), 5003);
        assert_eq!(spill.spill_runs.load(Ordering::Relaxed), 1);

        let mut reader = RunReader::open(path, spill.dir());
        let mut buf = Vec::new();
        for chunk in &chunks {
            assert!(reader.next_frame(&mut buf));
            assert_eq!(&buf, chunk);
        }
        assert!(!reader.next_frame(&mut buf));
        drop(reader);
        drop(spill);
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn chunk_target_scales_with_the_budget() {
        // Unbudgeted-sized budgets keep the full 1 MiB chunk; tiny budgets
        // degrade to the 4 KiB floor instead of never sealing a chunk.
        let huge = SpillRound::create(usize::MAX / 2, 1, None);
        assert_eq!(huge.chunk_target, 1 << 20);
        let tiny = SpillRound::create(64 << 10, 8, None);
        assert_eq!(tiny.chunk_target, 4 << 10);
        let mid = SpillRound::create(256 << 20, 4, None);
        assert_eq!(mid.chunk_target, 1 << 20);
    }

    #[test]
    fn validate_probe_accepts_the_temp_dir_and_rejects_bogus_paths() {
        assert!(validate_base_dir(None).is_ok());
        let bogus = Path::new("/proc/definitely-not-writable/spill");
        let err = validate_base_dir(Some(bogus)).unwrap_err();
        assert!(err.contains("/proc/definitely-not-writable/spill"), "{err}");
        assert!(err.contains("not writable"), "{err}");
    }

    #[test]
    fn mid_run_truncation_names_the_file_and_dir() {
        let spill = SpillRound::create(1 << 20, 2, None);
        let path = spill.write_run(0, 0, 0, &[vec![9u8; 100]]);
        // Truncate inside the frame payload.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..10]).unwrap();
        let mut reader = RunReader::open(path.clone(), spill.dir());
        let mut buf = Vec::new();
        let panic =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reader.next_frame(&mut buf)))
                .unwrap_err();
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("spill read failed"), "{message}");
        assert!(message.contains(path.to_str().unwrap()), "{message}");
        assert!(message.contains(spill.dir().to_str().unwrap()), "{message}");
    }
}
