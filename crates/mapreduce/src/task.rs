//! Mapper and reducer traits plus their emission contexts.

use crate::arena::ArenaState;
use crate::sink::SinkShard;

/// How a [`MapContext`] stores its emissions: as plain pairs (the classic
/// executors partition them afterwards), or routed and serialized on the fly
/// into per-reduce-shard byte arenas (the arena executor — see
/// [`crate::arena`]).
enum Emissions<K, V> {
    Pairs(Vec<(K, V)>),
    Arena(ArenaState<K, V>),
}

/// Collects the key-value pairs emitted by a mapper (each emission is one
/// unit of communication cost). The engine reuses one context for all of a
/// map worker's records, so emissions accumulate instead of paying one
/// allocation per record. Whether emissions accumulate as pairs or as
/// serialized arena records is the executor's choice; mappers never see the
/// difference.
pub struct MapContext<K, V> {
    emitted: Emissions<K, V>,
}

impl<K, V> MapContext<K, V> {
    pub(crate) fn new() -> Self {
        MapContext {
            emitted: Emissions::Pairs(Vec::new()),
        }
    }

    /// A context emitting into a recycled (empty) buffer — the pooled
    /// executor's way of reusing pair-vector allocations across rounds.
    pub(crate) fn with_buffer(emitted: Vec<(K, V)>) -> Self {
        debug_assert!(emitted.is_empty());
        MapContext {
            emitted: Emissions::Pairs(emitted),
        }
    }

    /// A context that serializes emissions straight into per-shard arenas.
    pub(crate) fn with_arena(state: ArenaState<K, V>) -> Self {
        MapContext {
            emitted: Emissions::Arena(state),
        }
    }

    /// Emits one key-value pair towards the reducers.
    pub fn emit(&mut self, key: K, value: V) {
        match &mut self.emitted {
            Emissions::Pairs(pairs) => pairs.push((key, value)),
            Emissions::Arena(state) => state.emit(&key, &value),
        }
    }

    /// Number of pairs emitted into this context so far.
    pub fn emitted_len(&self) -> usize {
        match &self.emitted {
            Emissions::Pairs(pairs) => pairs.len(),
            Emissions::Arena(state) => state.emitted(),
        }
    }

    /// The emitted pairs (classic executors only).
    pub(crate) fn into_pairs(self) -> Vec<(K, V)> {
        match self.emitted {
            Emissions::Pairs(pairs) => pairs,
            Emissions::Arena(_) => unreachable!("classic executors use pair contexts"),
        }
    }

    /// The filled arenas and emission count (arena executor only).
    pub(crate) fn into_arena(self) -> (Vec<crate::arena::ArenaBucket>, usize) {
        match self.emitted {
            Emissions::Pairs(_) => unreachable!("the arena executor uses arena contexts"),
            Emissions::Arena(state) => state.into_parts(),
        }
    }
}

/// Streams reducer output into a [`SinkShard`] and tracks the reducer's
/// self-reported computation cost. The engine gives each reduce worker one
/// context for all the keys it owns; every [`ReduceContext::emit`] goes
/// straight to the worker's sink shard — a buffering shard on the legacy
/// `Vec`-collecting path, a constant-memory shard for counting sinks — so
/// the engine itself never materializes a `Vec` of final outputs.
pub struct ReduceContext<O> {
    shard: Box<dyn SinkShard<O>>,
    emitted: usize,
    work: u64,
}

impl<O> ReduceContext<O> {
    /// A context that buffers its outputs into a plain [`BufferShard`]
    /// (tests drive reducers directly through this).
    #[cfg(test)]
    pub(crate) fn buffered() -> Self
    where
        O: Send + 'static,
    {
        ReduceContext::with_shard(Box::new(crate::sink::BufferShard(Vec::new())))
    }

    /// A context that streams into the given worker shard.
    pub(crate) fn with_shard(shard: Box<dyn SinkShard<O>>) -> Self {
        ReduceContext {
            shard,
            emitted: 0,
            work: 0,
        }
    }

    /// Emits one output record.
    pub fn emit(&mut self, output: O) {
        self.emitted += 1;
        self.shard.accept(output);
    }

    /// Adds `units` to the reducer's computation-cost counter. The paper's
    /// computation cost is the total over all reducers of whatever unit the
    /// serial algorithm counts (e.g. candidate instances examined); reducers
    /// report it explicitly so that the harness can compare the parallel total
    /// against the serial baseline (Theorem 6.1).
    pub fn add_work(&mut self, units: u64) {
        self.work += units;
    }

    /// Number of outputs emitted so far.
    pub fn output_len(&self) -> usize {
        self.emitted
    }

    /// Dismantles the context: the filled shard, the work counter, and the
    /// number of emitted records.
    pub(crate) fn into_parts(self) -> (Box<dyn SinkShard<O>>, u64, usize) {
        (self.shard, self.work, self.emitted)
    }
}

/// A map function: one input record to any number of key-value pairs.
///
/// In every algorithm of the paper the input records are the edges of the data
/// graph and the mapper's only job is key assignment, so its computation cost
/// is proportional to the communication cost (Section 1.2) — the engine
/// therefore only tracks the emission count on the map side.
pub trait Mapper<I, K, V>: Sync {
    /// Maps one input record.
    fn map(&self, input: &I, ctx: &mut MapContext<K, V>);
}

/// A reduce function: one distinct key and all values grouped under it.
pub trait Reducer<K, V, O>: Sync {
    /// Reduces one key group.
    fn reduce(&self, key: &K, values: &[V], ctx: &mut ReduceContext<O>);
}

/// A map-side combiner: pre-aggregates the values a *single map shard*
/// collected for one key before they are shipped through the shuffle.
///
/// The contract is the classic MapReduce one: running the reducer on the
/// combined values must produce the same outputs as running it on the raw
/// values, for any way the engine splits the map input into shards. That
/// holds when `combine` is associative and commutative in the values (e.g.
/// partial sums, merged role bitmasks, deduplication) and the reducer does
/// not depend on the arrival order of its values.
///
/// Combiners never change *what* is computed — only how many key-value pairs
/// cross the shuffle. [`crate::JobMetrics`] reports the effect through
/// `combiner_input_records` / `combiner_output_records` and the
/// `shuffle_records` / `shuffle_bytes` counters.
pub trait Combiner<K, V>: Sync {
    /// Combines the values one map shard collected for `key` into an
    /// equivalent (usually shorter) list.
    fn combine(&self, key: &K, values: Vec<V>) -> Vec<V>;
}

/// Blanket implementation so plain closures can act as mappers.
impl<I, K, V, F> Mapper<I, K, V> for F
where
    F: Fn(&I, &mut MapContext<K, V>) + Sync,
{
    fn map(&self, input: &I, ctx: &mut MapContext<K, V>) {
        self(input, ctx)
    }
}

/// Blanket implementation so plain closures can act as reducers.
impl<K, V, O, F> Reducer<K, V, O> for F
where
    F: Fn(&K, &[V], &mut ReduceContext<O>) + Sync,
{
    fn reduce(&self, key: &K, values: &[V], ctx: &mut ReduceContext<O>) {
        self(key, values, ctx)
    }
}

/// Blanket implementation so plain closures can act as combiners.
impl<K, V, F> Combiner<K, V> for F
where
    F: Fn(&K, Vec<V>) -> Vec<V> + Sync,
{
    fn combine(&self, key: &K, values: Vec<V>) -> Vec<V> {
        self(key, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::BufferShard;

    #[test]
    fn map_context_counts_emissions() {
        let mut ctx: MapContext<u32, &str> = MapContext::new();
        ctx.emit(1, "a");
        ctx.emit(2, "b");
        assert_eq!(ctx.emitted_len(), 2);
        assert_eq!(ctx.into_pairs(), vec![(1, "a"), (2, "b")]);
    }

    #[test]
    fn reduce_context_tracks_outputs_and_work() {
        let mut ctx: ReduceContext<u64> = ReduceContext::buffered();
        ctx.emit(7);
        ctx.add_work(5);
        ctx.add_work(3);
        assert_eq!(ctx.output_len(), 1);
        let (shard, work, emitted) = ctx.into_parts();
        let buffered = shard
            .into_any()
            .downcast::<BufferShard<u64>>()
            .expect("buffered context uses a BufferShard");
        assert_eq!(buffered.0, vec![7]);
        assert_eq!(work, 8);
        assert_eq!(emitted, 1);
    }

    #[test]
    fn closures_implement_the_traits() {
        let mapper = |x: &u32, ctx: &mut MapContext<u32, u32>| ctx.emit(x % 2, *x);
        let mut ctx = MapContext::new();
        mapper.map(&5, &mut ctx);
        assert_eq!(ctx.into_pairs(), vec![(1, 5)]);

        let reducer = |_k: &u32, vs: &[u32], ctx: &mut ReduceContext<u32>| {
            ctx.emit(vs.iter().sum());
        };
        let mut rctx = ReduceContext::buffered();
        reducer.reduce(&1, &[1, 2, 3], &mut rctx);
        let (shard, _, _) = rctx.into_parts();
        let buffered = shard.into_any().downcast::<BufferShard<u32>>().unwrap();
        assert_eq!(buffered.0, vec![6]);
    }
}
