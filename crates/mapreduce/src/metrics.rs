//! Cost metrics collected while running a single map-reduce round.

use std::time::Duration;

/// Everything the paper's cost model talks about, measured on an actual run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobMetrics {
    /// Number of input records fed to the mappers (for the paper's algorithms:
    /// the number of edges `m` of the data graph).
    pub input_records: usize,
    /// Total key-value pairs emitted by all mappers — the paper's
    /// **communication cost** (Section 1.2).
    pub key_value_pairs: usize,
    /// Number of distinct keys that received at least one value, i.e. the
    /// number of reducers actually executed. The paper calls this the "number
    /// of reducers"; with the hash-ordered scheme of Section 2.3 it is much
    /// smaller than the number of possible keys.
    pub reducers_used: usize,
    /// Largest input (value count) handled by any single reducer — the skew
    /// indicator behind "the curse of the last reducer".
    pub max_reducer_input: usize,
    /// Total computation-cost units reported by the reducers via
    /// [`crate::ReduceContext::add_work`].
    pub reducer_work: u64,
    /// Total number of output records emitted by the reducers.
    pub outputs: usize,
    /// Wall-clock time of the map phase.
    pub map_time: Duration,
    /// Wall-clock time of the shuffle (grouping) phase.
    pub shuffle_time: Duration,
    /// Wall-clock time of the reduce phase.
    pub reduce_time: Duration,
}

impl JobMetrics {
    /// Communication cost per input record — the quantity the paper's
    /// per-edge replication formulas (e.g. `b`, `3b − 2`, `3b/2`) predict.
    pub fn replication_per_input(&self) -> f64 {
        if self.input_records == 0 {
            0.0
        } else {
            self.key_value_pairs as f64 / self.input_records as f64
        }
    }

    /// Mean reducer input size.
    pub fn mean_reducer_input(&self) -> f64 {
        if self.reducers_used == 0 {
            0.0
        } else {
            self.key_value_pairs as f64 / self.reducers_used as f64
        }
    }

    /// Ratio of the largest reducer input to the mean — 1.0 means perfectly
    /// balanced reducers, larger values mean skew.
    pub fn skew(&self) -> f64 {
        let mean = self.mean_reducer_input();
        if mean == 0.0 {
            0.0
        } else {
            self.max_reducer_input as f64 / mean
        }
    }

    /// Total wall-clock time of the round.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let metrics = JobMetrics {
            input_records: 100,
            key_value_pairs: 500,
            reducers_used: 50,
            max_reducer_input: 20,
            reducer_work: 1234,
            outputs: 7,
            ..JobMetrics::default()
        };
        assert!((metrics.replication_per_input() - 5.0).abs() < 1e-12);
        assert!((metrics.mean_reducer_input() - 10.0).abs() < 1e-12);
        assert!((metrics.skew() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_job_has_zero_ratios() {
        let metrics = JobMetrics::default();
        assert_eq!(metrics.replication_per_input(), 0.0);
        assert_eq!(metrics.mean_reducer_input(), 0.0);
        assert_eq!(metrics.skew(), 0.0);
        assert_eq!(metrics.total_time(), Duration::ZERO);
    }
}
