//! Cost metrics collected while running a single map-reduce round.

use std::time::Duration;

/// Everything the paper's cost model talks about, measured on an actual run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobMetrics {
    /// Number of input records fed to the mappers (for the paper's algorithms:
    /// the number of edges `m` of the data graph).
    pub input_records: usize,
    /// Total key-value pairs emitted by all mappers, *before* any map-side
    /// combining — the paper's **communication cost** (Section 1.2) for rounds
    /// without a combiner.
    pub key_value_pairs: usize,
    /// Key-value pairs fed into the map-side combiner (equals
    /// [`JobMetrics::key_value_pairs`] when a combiner ran, 0 otherwise).
    pub combiner_input_records: usize,
    /// Key-value pairs left after map-side combining (0 when no combiner ran).
    /// Always `<= combiner_input_records`.
    pub combiner_output_records: usize,
    /// Key-value pairs actually shipped through the shuffle: the combiner
    /// output when a combiner ran, the mapper emissions otherwise. This is the
    /// communication cost the cluster would really pay.
    pub shuffle_records: usize,
    /// Total payload bytes of the shuffled records, as measured by the round's
    /// record weigher (per-record key + value bytes).
    pub shuffle_bytes: u64,
    /// Number of distinct keys that received at least one value, i.e. the
    /// number of reducers actually executed. The paper calls this the "number
    /// of reducers"; with the hash-ordered scheme of Section 2.3 it is much
    /// smaller than the number of possible keys.
    pub reducers_used: usize,
    /// Largest input (value count) handled by any single reducer — the skew
    /// indicator behind "the curse of the last reducer".
    pub max_reducer_input: usize,
    /// Total computation-cost units reported by the reducers via
    /// [`crate::ReduceContext::add_work`].
    pub reducer_work: u64,
    /// Total number of output records emitted by the reducers.
    pub outputs: usize,
    /// Wall-clock time of the map phase (mapping, combining and partitioning
    /// on the map workers).
    pub map_time: Duration,
    /// Critical-path wall time of the map-side partitioning subphase: the
    /// longest time any single map worker spent combining its emissions and
    /// splitting them into per-reduce-worker buckets. Partitioning runs
    /// *inside* the map workers, so this is a slice of [`JobMetrics::map_time`],
    /// not an additional phase — [`JobMetrics::total_time`] does not add it.
    pub partition_time: Duration,
    /// Wall-clock time of the exchange: the coordinator handing each map
    /// worker's buckets to their reduce workers (pure ownership moves —
    /// grouping happens on the reduce workers and is part of
    /// [`JobMetrics::reduce_time`]).
    pub shuffle_time: Duration,
    /// Wall-clock time of the reduce phase (per-worker grouping, key sorting
    /// and reducer invocations).
    pub reduce_time: Duration,
    /// Payload bytes of sealed arena chunks written to spill run files when a
    /// [`crate::EngineConfig::memory_budget`] is in force. Exactly 0 when no
    /// spill occurred (the unbudgeted in-memory path never touches disk).
    pub spilled_bytes: u64,
    /// Number of spill run files written (one per map shard × reduce shard ×
    /// spill epoch that had sealed chunks). Exactly 0 when no spill occurred.
    pub spill_runs: usize,
    /// Critical-path wall time any single reduce worker spent reading spilled
    /// runs back from disk. Like [`JobMetrics::partition_time`] this is a
    /// slice of an existing phase ([`JobMetrics::reduce_time`]), not an
    /// additional one — [`JobMetrics::total_time`] does not add it. Exactly
    /// zero when no spill occurred.
    pub spill_read_secs: Duration,
}

impl JobMetrics {
    /// Communication cost per input record — the quantity the paper's
    /// per-edge replication formulas (e.g. `b`, `3b − 2`, `3b/2`) predict.
    pub fn replication_per_input(&self) -> f64 {
        if self.input_records == 0 {
            0.0
        } else {
            self.key_value_pairs as f64 / self.input_records as f64
        }
    }

    /// Key-value pairs actually shipped per input record — equals
    /// [`JobMetrics::replication_per_input`] for rounds without a combiner,
    /// and reflects the combiner savings otherwise.
    pub fn shuffled_per_input(&self) -> f64 {
        if self.input_records == 0 {
            0.0
        } else {
            self.shuffle_records as f64 / self.input_records as f64
        }
    }

    /// Fraction of mapper emissions the combiner removed before the shuffle
    /// (0.0 when no combiner ran or nothing was combined away).
    pub fn combiner_savings(&self) -> f64 {
        if self.combiner_input_records == 0 {
            0.0
        } else {
            1.0 - self.combiner_output_records as f64 / self.combiner_input_records as f64
        }
    }

    /// Folds another round's (or parallel job's) counters into this one:
    /// record counts, bytes, work and timings add; the skew indicator keeps
    /// the maximum.
    pub fn absorb(&mut self, other: &JobMetrics) {
        self.input_records += other.input_records;
        self.key_value_pairs += other.key_value_pairs;
        self.combiner_input_records += other.combiner_input_records;
        self.combiner_output_records += other.combiner_output_records;
        self.shuffle_records += other.shuffle_records;
        self.shuffle_bytes += other.shuffle_bytes;
        self.reducers_used += other.reducers_used;
        self.max_reducer_input = self.max_reducer_input.max(other.max_reducer_input);
        self.reducer_work += other.reducer_work;
        self.outputs += other.outputs;
        self.map_time += other.map_time;
        self.partition_time += other.partition_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.spilled_bytes += other.spilled_bytes;
        self.spill_runs += other.spill_runs;
        self.spill_read_secs += other.spill_read_secs;
    }

    /// Mean reducer input size.
    pub fn mean_reducer_input(&self) -> f64 {
        if self.reducers_used == 0 {
            0.0
        } else {
            self.key_value_pairs as f64 / self.reducers_used as f64
        }
    }

    /// Ratio of the largest reducer input to the mean — 1.0 means perfectly
    /// balanced reducers, larger values mean skew.
    pub fn skew(&self) -> f64 {
        let mean = self.mean_reducer_input();
        if mean == 0.0 {
            0.0
        } else {
            self.max_reducer_input as f64 / mean
        }
    }

    /// Total wall-clock time of the round.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let metrics = JobMetrics {
            input_records: 100,
            key_value_pairs: 500,
            combiner_input_records: 500,
            combiner_output_records: 400,
            shuffle_records: 400,
            shuffle_bytes: 6400,
            reducers_used: 50,
            max_reducer_input: 20,
            reducer_work: 1234,
            outputs: 7,
            ..JobMetrics::default()
        };
        assert!((metrics.replication_per_input() - 5.0).abs() < 1e-12);
        assert!((metrics.shuffled_per_input() - 4.0).abs() < 1e-12);
        assert!((metrics.combiner_savings() - 0.2).abs() < 1e-12);
        assert!((metrics.mean_reducer_input() - 10.0).abs() < 1e-12);
        assert!((metrics.skew() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_job_has_zero_ratios() {
        let metrics = JobMetrics::default();
        assert_eq!(metrics.replication_per_input(), 0.0);
        assert_eq!(metrics.shuffled_per_input(), 0.0);
        assert_eq!(metrics.combiner_savings(), 0.0);
        assert_eq!(metrics.mean_reducer_input(), 0.0);
        assert_eq!(metrics.skew(), 0.0);
        assert_eq!(metrics.total_time(), Duration::ZERO);
    }

    #[test]
    fn absorb_adds_counters_and_keeps_the_max_skew_indicator() {
        let mut a = JobMetrics {
            input_records: 10,
            key_value_pairs: 30,
            shuffle_records: 30,
            shuffle_bytes: 600,
            reducers_used: 4,
            max_reducer_input: 9,
            reducer_work: 100,
            outputs: 5,
            ..JobMetrics::default()
        };
        let b = JobMetrics {
            input_records: 20,
            key_value_pairs: 40,
            combiner_input_records: 40,
            combiner_output_records: 35,
            shuffle_records: 35,
            shuffle_bytes: 700,
            reducers_used: 6,
            max_reducer_input: 7,
            reducer_work: 50,
            outputs: 3,
            ..JobMetrics::default()
        };
        a.spilled_bytes = 100;
        a.spill_runs = 2;
        let b = JobMetrics {
            spilled_bytes: 50,
            spill_runs: 1,
            ..b
        };
        a.absorb(&b);
        assert_eq!(a.input_records, 30);
        assert_eq!(a.key_value_pairs, 70);
        assert_eq!(a.combiner_input_records, 40);
        assert_eq!(a.combiner_output_records, 35);
        assert_eq!(a.shuffle_records, 65);
        assert_eq!(a.shuffle_bytes, 1300);
        assert_eq!(a.reducers_used, 10);
        assert_eq!(a.max_reducer_input, 9);
        assert_eq!(a.reducer_work, 150);
        assert_eq!(a.outputs, 8);
        assert_eq!(a.spilled_bytes, 150);
        assert_eq!(a.spill_runs, 3);
    }
}
