//! The arena shuffle: flat byte buffers instead of `Vec<(K, V)>` records.
//!
//! The classic shuffle representation costs ~32 bytes per record for the
//! paper's triangle workloads (`(u64 hash, [u32; 3], Edge)` with padding)
//! *twice* — once in the map context's pair vector, once in the partitioned
//! buckets. The arena shuffle removes both: map workers serialize every
//! emission straight into one **byte arena per reduce shard** using the
//! [`ArenaCodec`] varint encoding (~10 bytes per triangle record), the
//! exchange transposes arena ownership without touching a record, and reduce
//! workers decode each arena chunk once while grouping — returning consumed
//! chunks to the [`BufferPool`] as they go, so resident memory *falls*
//! through the reduce phase instead of peaking.
//!
//! Under an [`EngineConfig::memory_budget`] the arena additionally spills:
//! when the round's resident chunk bytes cross the budget, the map worker
//! that crossed it seals its full chunks into run files (see [`crate::spill`])
//! and recycles the buffers, and the reduce phase streams each bucket's runs
//! back *before* its resident tail — run records are strictly older than
//! resident ones, so the merged order is exactly the in-memory order and the
//! merge is concatenation, not sort.
//!
//! Parity contract (pinned by `tests/pool_parity.rs` / `tests/sink_parity.rs`
//! and the acceptance sweep): outputs and every [`JobMetrics`] counter are
//! byte-identical to the classic executors — and, spill counters aside, the
//! same at every budget. The ingredients:
//!
//! * **Routing** uses the same emit-time FxHash + [`shard_for_hash`], so
//!   records land in the same reduce shard.
//! * **Grouping** uses the same `PrehashedMap` with the same capacity
//!   heuristic and the same insertion order (map-shard order, emission order
//!   within a shard — spilled runs then the resident tail preserve exactly
//!   that order), so even non-deterministic iteration order matches.
//! * **`shuffle_bytes`** is priced by the round's record weigher exactly once
//!   per record — on the reduce side, where each record is decoded —
//!   summing to the same total the classic map-side pricing produces.
//! * **Hash accounting** differs by design: the arena path hashes each key
//!   once at emit (routing) and once at decode (grouping) instead of carrying
//!   8 hash bytes per record through the exchange. The debug hash counters
//!   assert exactly that shape here.
//!
//! `partition_time` reports zero on this path: partitioning happens inside
//! the emit call, so its cost is already part of `map_time`. `spill_read_secs`
//! is likewise a slice of `reduce_time` (the critical-path run-file reads).

use crate::engine::{shard_for_hash, EngineConfig};
use crate::hash::{hash_for_shuffle, prehashed_map_with_capacity, Prehashed, PrehashedMap};
use crate::metrics::JobMetrics;
use crate::pipeline::{InputChunk, ReduceOutcome, Round, Slot};
use crate::pool::{BufferPool, WorkerPool};
use crate::sink::{OutputSink, SinkShard};
use crate::spill::{RunReader, SpillRound};
use crate::task::{MapContext, ReduceContext};
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use subgraph_codec::ArenaCodec;

/// Target byte size of one arena chunk on the unbudgeted path. Large enough
/// that glibc serves it with `mmap` (so freed chunks return to the OS
/// immediately) and that the per-chunk bookkeeping vanishes against ~100k
/// records per chunk; small enough that the reduce phase's progressive frees
/// are fine-grained and the [`BufferPool`] (4 MiB recycling cap) can bank
/// every chunk. Budgeted rounds scale this down
/// ([`SpillRound::chunk_target`]) so chunks seal — and can spill — well
/// before a small budget is exhausted.
pub(crate) const ARENA_CHUNK: usize = 1 << 20;

/// One reduce shard's byte arena on one map worker: sealed chunks of
/// back-to-back encoded `(key, value)` records, plus the run files earlier
/// sealed chunks were spilled into. A record never spans chunks.
pub(crate) struct ArenaBucket {
    chunks: Vec<Vec<u8>>,
    /// Spill run files holding this bucket's oldest chunks, in epoch (write)
    /// order. Empty on the unbudgeted path.
    runs: Vec<PathBuf>,
    records: usize,
}

impl ArenaBucket {
    fn new() -> Self {
        ArenaBucket {
            chunks: Vec::new(),
            runs: Vec::new(),
            records: 0,
        }
    }

    /// Appends one encoded record, opening a new chunk when the current one
    /// cannot hold it whole — or has already reached `chunk_target`, which is
    /// what *seals* a chunk (recycled pool buffers can be far larger than the
    /// target; without the target cap a budgeted round's chunks would never
    /// seal and nothing could spill). Returns the capacity newly reserved for
    /// the round (0 when the record fit in the open chunk) so a budgeted
    /// caller can account resident bytes.
    fn push(
        &mut self,
        record: &[u8],
        buffers: &BufferPool,
        chunk_target: usize,
        bounded: bool,
    ) -> usize {
        let fits = self.chunks.last().is_some_and(|chunk| {
            chunk.capacity() - chunk.len() >= record.len()
                && chunk.len() + record.len() <= chunk_target
        });
        let mut reserved = 0;
        if !fits {
            let want = chunk_target.max(record.len());
            let mut chunk: Vec<u8> = buffers.take();
            if chunk.capacity() < want {
                chunk.reserve_exact(want);
            } else if bounded && chunk.capacity() > want.saturating_mul(2) {
                // Under a budget the chunk's full capacity counts as
                // resident; a recycled buffer many times the target would
                // burn the budget while holding `want` bytes. Right-size it.
                chunk = Vec::with_capacity(want);
            }
            reserved = chunk.capacity();
            self.chunks.push(chunk);
        }
        let chunk = self.chunks.last_mut().expect("a chunk was just ensured");
        chunk.extend_from_slice(record);
        self.records += 1;
        reserved
    }

    /// Number of records in the bucket — the reduce side's capacity heuristic
    /// input, mirroring the classic path's `key_entries`. Spilling never
    /// decrements it: spilled records still arrive at the reducer, so the
    /// heuristic (and with it the grouping map's growth pattern) is identical
    /// at every budget.
    pub(crate) fn records(&self) -> usize {
        self.records
    }

    /// The spilled runs (epoch order) and resident chunks (write order).
    /// Decoding the runs first then the chunks replays the exact emission
    /// order.
    fn into_parts(self) -> (Vec<PathBuf>, Vec<Vec<u8>>) {
        (self.runs, self.chunks)
    }
}

/// The arena-mode emission state behind [`MapContext`]. The context type has
/// no `Hash`/[`ArenaCodec`] bounds (they would leak into every mapper
/// signature), so the two operations that need them — hashing a key and
/// encoding a record — are captured as monomorphized function pointers by
/// [`ArenaState::new`], which *is* bounded.
pub(crate) struct ArenaState<K, V> {
    buckets: Vec<ArenaBucket>,
    scratch: Vec<u8>,
    emitted: usize,
    buffers: Arc<BufferPool>,
    /// The round's shared spill state; `None` runs the pure in-memory path.
    spill: Option<Arc<SpillRound>>,
    /// This worker's logical map-shard index — names its run files.
    map_shard: usize,
    /// This worker's next spill epoch (bumped once per spill pass).
    epoch: usize,
    /// Chunk capacity to reserve: [`ARENA_CHUNK`], or the budget-scaled
    /// [`SpillRound::chunk_target`].
    chunk_target: usize,
    hash: fn(&K) -> u64,
    encode: fn(&K, &V, &mut Vec<u8>),
}

fn encode_record<K: ArenaCodec, V: ArenaCodec>(key: &K, value: &V, out: &mut Vec<u8>) {
    key.encode(out);
    value.encode(out);
}

impl<K, V> ArenaState<K, V>
where
    K: Hash + ArenaCodec,
    V: ArenaCodec,
{
    pub(crate) fn new(shards: usize, buffers: Arc<BufferPool>) -> Self {
        ArenaState {
            buckets: (0..shards).map(|_| ArenaBucket::new()).collect(),
            scratch: Vec::new(),
            emitted: 0,
            buffers,
            spill: None,
            map_shard: 0,
            epoch: 0,
            chunk_target: ARENA_CHUNK,
            hash: hash_for_shuffle::<K>,
            encode: encode_record::<K, V>,
        }
    }

    /// Attaches the round's spill state (no-op when `spill` is `None`) and
    /// records which map shard this worker is, for run-file naming.
    pub(crate) fn with_spill(mut self, spill: Option<Arc<SpillRound>>, map_shard: usize) -> Self {
        self.chunk_target = spill
            .as_ref()
            .map_or(ARENA_CHUNK, |round| round.chunk_target);
        self.spill = spill;
        self.map_shard = map_shard;
        self
    }
}

impl<K, V> ArenaState<K, V> {
    /// Routes and serializes one emission: hash the key (the counted,
    /// emit-side hash), pick the reduce shard, encode into that shard's
    /// arena. Under a budget, opening a chunk that pushes the round's
    /// resident bytes past the budget triggers a spill of this worker's
    /// sealed chunks.
    pub(crate) fn emit(&mut self, key: &K, value: &V) {
        let hash = (self.hash)(key);
        let shard = shard_for_hash(hash, self.buckets.len());
        self.scratch.clear();
        (self.encode)(key, value, &mut self.scratch);
        let reserved = self.buckets[shard].push(
            &self.scratch,
            &self.buffers,
            self.chunk_target,
            self.spill.is_some(),
        );
        self.emitted += 1;
        if reserved > 0 {
            // Budget check only on chunk open: the common emit path (record
            // fits) costs nothing extra.
            let over = match &self.spill {
                Some(spill) => {
                    spill.resident.fetch_add(reserved, Ordering::Relaxed) + reserved > spill.budget
                }
                None => false,
            };
            if over {
                self.spill_sealed();
            }
        }
    }

    /// Spills every *sealed* chunk (all but the open tail of each bucket) to
    /// one run file per non-trivial bucket, recycles the buffers, and credits
    /// the freed capacity back to the round's resident counter. Partial tails
    /// stay resident — spilling them would produce pathological one-record
    /// runs and would not change the decode order anyway.
    fn spill_sealed(&mut self) {
        let spill = Arc::clone(
            self.spill
                .as_ref()
                .expect("spill_sealed only runs under a budget"),
        );
        let mut freed = 0usize;
        let mut wrote = false;
        for (shard, bucket) in self.buckets.iter_mut().enumerate() {
            if bucket.chunks.len() < 2 {
                continue;
            }
            let tail = bucket.chunks.pop().expect("bucket has at least two chunks");
            let sealed = std::mem::take(&mut bucket.chunks);
            bucket.chunks.push(tail);
            let path = spill.write_run(self.map_shard, shard, self.epoch, &sealed);
            bucket.runs.push(path);
            for chunk in sealed {
                freed += chunk.capacity();
                self.buffers.give(chunk);
            }
            wrote = true;
        }
        if wrote {
            self.epoch += 1;
        }
        if freed > 0 {
            spill.resident.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    pub(crate) fn emitted(&self) -> usize {
        self.emitted
    }

    pub(crate) fn into_parts(self) -> (Vec<ArenaBucket>, usize) {
        (self.buckets, self.emitted)
    }
}

/// What one arena map worker hands to the exchange.
struct ArenaMapOutcome {
    /// One arena per reduce shard, indexed by [`shard_for_hash`].
    buckets: Vec<ArenaBucket>,
    /// Records emitted by the worker's mapper calls.
    emitted: usize,
}

/// Maps a batch of logical shards on the pool, one task per shard, returning
/// the outcomes in shard order. `base_shard` offsets the global map-shard
/// index (and thus spill run-file names) so the chunked executor can feed
/// waves of shards through the same code path.
fn arena_map_shards<I, K, V, O>(
    shards: &[&[I]],
    base_shard: usize,
    reduce_shards: usize,
    round: &Round<'_, I, K, V, O>,
    buffers: &Arc<BufferPool>,
    spill: &Option<Arc<SpillRound>>,
    pool: &WorkerPool,
) -> Vec<ArenaMapOutcome>
where
    I: Sync,
    K: Hash + ArenaCodec,
    V: ArenaCodec,
{
    let mapper = &*round.mapper;
    let outcome_slots: Vec<Slot<ArenaMapOutcome>> =
        (0..shards.len()).map(|_| Mutex::new(None)).collect();
    pool.run_indexed(shards.len(), |shard| {
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        let state = ArenaState::new(reduce_shards, Arc::clone(buffers))
            .with_spill(spill.clone(), base_shard + shard);
        let mut ctx = MapContext::with_arena(state);
        for record in shards[shard] {
            mapper.map(record, &mut ctx);
        }
        let (buckets, emitted) = ctx.into_arena();
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            crate::hash::debug_hash_count::take() as usize,
            emitted,
            "arena map side hashes each emitted key exactly once (routing)"
        );
        *outcome_slots[shard]
            .lock()
            .expect("arena map slot poisoned") = Some(ArenaMapOutcome { buckets, emitted });
    });
    outcome_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("arena map slot poisoned")
                .expect("every map shard completed")
        })
        .collect()
}

/// Decodes one chunk's records into the grouping map — shared by the
/// resident-chunk and spilled-run decode loops so both price, hash and group
/// identically.
fn drain_chunk<K, V, W>(
    chunk: &[u8],
    weigher: &W,
    grouped: &mut PrehashedMap<K, Vec<V>>,
    bytes: &mut u64,
    decoded: &mut usize,
) where
    K: Hash + Eq + ArenaCodec,
    V: ArenaCodec,
    W: Fn(&K, &V) -> usize + ?Sized,
{
    let mut pos = 0;
    while pos < chunk.len() {
        let key = K::decode(chunk, &mut pos);
        let value = V::decode(chunk, &mut pos);
        *bytes += weigher(&key, &value) as u64;
        let hash = hash_for_shuffle(&key);
        *decoded += 1;
        grouped
            .entry(Prehashed::from_parts(hash, key))
            .or_default()
            .push(value);
    }
}

/// The exchange + reduce back half shared by both arena executors: transpose
/// bucket ownership, then decode-while-grouping on the reduce workers —
/// spilled runs first (streamed back one frame at a time through a recycled
/// buffer), resident chunks after. Fills every reduce-side metric, including
/// the spill counters, and drops the spill round (removing its directory).
fn arena_exchange_reduce<I, K, V, O>(
    mapped: Vec<ArenaMapOutcome>,
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
    pool: &WorkerPool,
    spill: Option<Arc<SpillRound>>,
    metrics: &mut JobMetrics,
) where
    K: Hash + Eq + Ord + Send + ArenaCodec,
    V: Send + ArenaCodec,
    O: Send + 'static,
{
    let threads = config.num_threads.max(1);
    let buffers = pool.buffers();

    // ---- Exchange phase ---------------------------------------------------
    // The same transpose as the classic executors, except each moved value is
    // a byte arena (plus its run-file paths) rather than a record vector.
    let shuffle_start = Instant::now();
    let workers = mapped.len();
    let mut inboxes: Vec<Vec<ArenaBucket>> =
        (0..threads).map(|_| Vec::with_capacity(workers)).collect();
    for outcome in mapped {
        for (target, bucket) in outcome.buckets.into_iter().enumerate() {
            inboxes[target].push(bucket);
        }
    }
    metrics.shuffle_time = shuffle_start.elapsed();

    // ---- Reduce phase -----------------------------------------------------
    // Decode-while-grouping: each record is decoded exactly once, priced by
    // the round's weigher (same total as map-side pricing), hashed once for
    // the grouping lookup, and its chunk returned to the buffer pool the
    // moment it is drained. Spilled runs stream back through one recycled
    // frame buffer per worker, so re-reading a run keeps a single chunk
    // resident at a time.
    let deterministic = config.deterministic;
    let reducer = &*round.reducer;
    let weigher = &*round.record_bytes;
    let reduce_start = Instant::now();
    let reduce_slots: Vec<Slot<(ReduceOutcome<O>, u64, Duration)>> =
        (0..inboxes.len()).map(|_| Mutex::new(None)).collect();
    type ArenaReduceWork<O> = (Vec<ArenaBucket>, Box<dyn SinkShard<O>>);
    let reduce_inputs: Vec<Slot<ArenaReduceWork<O>>> = inboxes
        .into_iter()
        .map(|inbox| Mutex::new(Some((inbox, sink.new_shard()))))
        .collect();
    let spill_ref = &spill;
    pool.run_indexed(reduce_inputs.len(), |shard| {
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        let (inbox, sink_shard) = reduce_inputs[shard]
            .lock()
            .expect("arena reduce input poisoned")
            .take()
            .expect("each reduce shard is claimed once");
        // Same capacity heuristic as the classic executors: records in the
        // largest inbound bucket, capped. With capacity, hasher and insertion
        // order all equal, the grouping map iterates in the classic order.
        let capacity = inbox
            .iter()
            .map(ArenaBucket::records)
            .max()
            .unwrap_or(0)
            .min(1 << 16);
        let mut grouped: PrehashedMap<K, Vec<V>> = prehashed_map_with_capacity(capacity);
        let mut bytes = 0u64;
        let mut decoded = 0usize;
        let mut read_secs = Duration::ZERO;
        for bucket in inbox {
            let (runs, chunks) = bucket.into_parts();
            if !runs.is_empty() {
                let spill = spill_ref
                    .as_ref()
                    .expect("run files only exist under a budget");
                let mut frame: Vec<u8> = buffers.take();
                for path in runs {
                    let mut reader = RunReader::open(path, spill.dir());
                    loop {
                        let read_start = Instant::now();
                        let more = reader.next_frame(&mut frame);
                        read_secs += read_start.elapsed();
                        if !more {
                            break;
                        }
                        drain_chunk(&frame, weigher, &mut grouped, &mut bytes, &mut decoded);
                    }
                }
                buffers.give(frame);
            }
            for chunk in chunks {
                drain_chunk(&chunk, weigher, &mut grouped, &mut bytes, &mut decoded);
                buffers.give(chunk);
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            crate::hash::debug_hash_count::take() as usize,
            decoded,
            "arena reduce side hashes each decoded key exactly once (grouping)"
        );
        let mut groups: Vec<(K, Vec<V>)> = grouped
            .into_iter()
            .map(|(key, values)| (key.into_key(), values))
            .collect();
        if deterministic {
            groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        let group_count = groups.len();
        let max_input = groups.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut ctx = ReduceContext::with_shard(sink_shard);
        for (key, values) in &groups {
            reducer.reduce(key, values, &mut ctx);
        }
        let (shard_out, work, emitted) = ctx.into_parts();
        *reduce_slots[shard]
            .lock()
            .expect("arena reduce outcome poisoned") = Some((
            ReduceOutcome {
                shard: shard_out,
                emitted,
                work,
                groups: group_count,
                max_input,
            },
            bytes,
            read_secs,
        ));
    });
    let reduced: Vec<(ReduceOutcome<O>, u64, Duration)> = reduce_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("arena reduce outcome poisoned")
                .expect("every reduce shard completed")
        })
        .collect();
    metrics.reduce_time = reduce_start.elapsed();
    metrics.reducers_used = reduced.iter().map(|(outcome, _, _)| outcome.groups).sum();
    metrics.max_reducer_input = reduced
        .iter()
        .map(|(outcome, _, _)| outcome.max_input)
        .max()
        .unwrap_or(0);
    // Critical-path read time, like partition_time: the longest any single
    // reduce worker stalled on run files (a slice of reduce_time, not a new
    // phase).
    metrics.spill_read_secs = reduced
        .iter()
        .map(|(_, _, read_secs)| *read_secs)
        .max()
        .unwrap_or(Duration::ZERO);

    for (outcome, bytes, _) in reduced {
        metrics.shuffle_bytes += bytes;
        metrics.reducer_work += outcome.work;
        metrics.outputs += outcome.emitted;
        sink.fold(outcome.shard);
    }
    if let Some(spill) = spill {
        metrics.spilled_bytes = spill.spilled_bytes.load(Ordering::Relaxed);
        metrics.spill_runs = spill.spill_runs.load(Ordering::Relaxed);
        // Last owner: dropping removes the spill directory.
        drop(spill);
    }
}

/// Creates the round's spill state when a budget is configured. `None` keeps
/// the pure in-memory path (and guarantees every spill counter stays zero).
fn spill_round_for(config: &EngineConfig, threads: usize) -> Option<Arc<SpillRound>> {
    (config.memory_budget > 0).then(|| {
        Arc::new(SpillRound::create(
            config.memory_budget,
            threads,
            config.spill_dir.as_deref(),
        ))
    })
}

/// The arena executor: same two-phase exchange as the classic executors
/// (see [`crate::pipeline`]), with serialized buckets. Selected per round via
/// [`Round::arena`] when the round has codec-capable key/value types, runs on
/// the worker pool, and is skipped when a combiner is active (combined rounds
/// keep the classic representation; their buckets hold `Vec<V>` groups the
/// arena format does not model).
pub(crate) fn execute_round_arena<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
    pool: &WorkerPool,
) -> JobMetrics
where
    I: Sync,
    K: Hash + Eq + Ord + Send + ArenaCodec,
    V: Send + ArenaCodec,
    O: Send + 'static,
{
    let threads = config.num_threads.max(1);
    let buffers = pool.buffers();
    let spill = spill_round_for(config, threads);
    let mut metrics = JobMetrics {
        input_records: inputs.len(),
        ..JobMetrics::default()
    };

    // ---- Map phase --------------------------------------------------------
    // One task per logical shard, like the scoped executor: emissions are
    // routed and serialized as they happen, so there is no separate partition
    // stage (and no pair vector to accumulate into).
    let map_start = Instant::now();
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let shards: Vec<&[I]> = inputs.chunks(chunk_size).collect();
    let mapped = arena_map_shards(&shards, 0, threads, round, buffers, &spill, pool);
    metrics.map_time = map_start.elapsed();
    metrics.key_value_pairs = mapped.iter().map(|outcome| outcome.emitted).sum();
    metrics.shuffle_records = metrics.key_value_pairs;

    arena_exchange_reduce(mapped, round, config, sink, pool, spill, &mut metrics);
    metrics
}

/// The streaming arena executor: consumes an [`InputChunk`] iterator in waves
/// of `threads` chunks, so owned batches (e.g. text-source reads) are dropped
/// as soon as their wave is mapped and no stage ever holds the full input
/// resident. Each yielded chunk is one logical map shard; feeding the same
/// shard boundaries as the slice path (`len.div_ceil(threads)`) yields
/// byte-identical outputs and counters.
pub(crate) fn execute_round_arena_chunked<'s, I, K, V, O>(
    chunks: &mut dyn Iterator<Item = InputChunk<'s, I>>,
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
    pool: &WorkerPool,
) -> JobMetrics
// No explicit `'s` bounds: the lifetime must stay late-bound so this fn item
// coerces to the `for<'s>` ArenaChunkExec pointer Round::arena captures.
where
    I: Sync,
    K: Hash + Eq + Ord + Send + ArenaCodec,
    V: Send + ArenaCodec,
    O: Send + 'static,
{
    let threads = config.num_threads.max(1);
    let buffers = pool.buffers();
    let spill = spill_round_for(config, threads);
    let mut metrics = JobMetrics::default();

    // ---- Map phase (wave loop) -------------------------------------------
    let map_start = Instant::now();
    let mut mapped: Vec<ArenaMapOutcome> = Vec::new();
    loop {
        let mut wave: Vec<InputChunk<'s, I>> = Vec::with_capacity(threads);
        while wave.len() < threads {
            match chunks.next() {
                Some(chunk) => wave.push(chunk),
                None => break,
            }
        }
        if wave.is_empty() {
            break;
        }
        let slices: Vec<&[I]> = wave.iter().map(InputChunk::as_slice).collect();
        metrics.input_records += slices.iter().map(|slice| slice.len()).sum::<usize>();
        let outcomes =
            arena_map_shards(&slices, mapped.len(), threads, round, buffers, &spill, pool);
        mapped.extend(outcomes);
        // `wave` drops here: owned batches are freed before the next wave
        // streams in.
    }
    metrics.map_time = map_start.elapsed();
    metrics.key_value_pairs = mapped.iter().map(|outcome| outcome.emitted).sum();
    metrics.shuffle_records = metrics.key_value_pairs;

    arena_exchange_reduce(mapped, round, config, sink, pool, spill, &mut metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;

    #[test]
    fn bucket_seals_chunks_and_counts_records() {
        let pool = WorkerPool::new(0);
        let buffers = pool.buffers();
        let mut bucket = ArenaBucket::new();
        let record = vec![0xabu8; 600 * 1024]; // two won't share a 1 MiB chunk
        assert!(bucket.push(&record, buffers, ARENA_CHUNK, false) > 0);
        assert!(bucket.push(&record, buffers, ARENA_CHUNK, false) > 0);
        assert_eq!(bucket.records(), 2);
        let (runs, chunks) = bucket.into_parts();
        assert!(runs.is_empty());
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == record.len()));
    }

    #[test]
    fn oversized_records_get_a_dedicated_chunk() {
        let pool = WorkerPool::new(0);
        let buffers = pool.buffers();
        let mut bucket = ArenaBucket::new();
        let huge = vec![1u8; ARENA_CHUNK + 17];
        bucket.push(&huge, buffers, ARENA_CHUNK, false);
        assert_eq!(
            bucket.push(&[2u8, 3], buffers, ARENA_CHUNK, false),
            ARENA_CHUNK
        );
        let (_, chunks) = bucket.into_parts();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), huge.len());
        assert_eq!(chunks[1], vec![2, 3]);
    }

    #[test]
    fn records_that_fit_reserve_nothing() {
        let pool = WorkerPool::new(0);
        let buffers = pool.buffers();
        let mut bucket = ArenaBucket::new();
        assert!(bucket.push(&[1u8; 16], buffers, 4096, true) > 0);
        assert_eq!(bucket.push(&[2u8; 16], buffers, 4096, true), 0);
    }

    #[test]
    fn arena_state_routes_by_key_hash() {
        let pool = WorkerPool::new(0);
        let shards = 4;
        let mut state: ArenaState<u32, u32> = ArenaState::new(shards, Arc::clone(pool.buffers()));
        for key in 0..1000u32 {
            state.emit(&key, &(key * 2));
        }
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        assert_eq!(state.emitted(), 1000);
        let (buckets, emitted) = state.into_parts();
        assert_eq!(emitted, 1000);
        let total: usize = buckets.iter().map(ArenaBucket::records).sum();
        assert_eq!(total, 1000);
        // Decoding each bucket yields keys that route to that bucket.
        for (shard, bucket) in buckets.into_iter().enumerate() {
            let (runs, chunks) = bucket.into_parts();
            assert!(runs.is_empty(), "unbudgeted state never spills");
            for chunk in chunks {
                let mut pos = 0;
                while pos < chunk.len() {
                    let key = u32::decode(&chunk, &mut pos);
                    let value = u32::decode(&chunk, &mut pos);
                    assert_eq!(value, key * 2);
                    assert_eq!(shard_for_hash(crate::hash::hash_of(&key), shards), shard);
                }
            }
        }
    }

    #[test]
    fn budgeted_state_spills_sealed_chunks_and_replays_them_in_order() {
        let pool = WorkerPool::new(0);
        let shards = 2;
        // A budget a few 4 KiB chunks wide forces several spill epochs over
        // ~64 KiB of emissions.
        let spill = Arc::new(SpillRound::create(16 << 10, 1, None));
        let dir = spill.dir().to_path_buf();
        let mut state: ArenaState<u32, u32> = ArenaState::new(shards, Arc::clone(pool.buffers()))
            .with_spill(Some(Arc::clone(&spill)), 3);
        let total = 20_000u32;
        for key in 0..total {
            state.emit(&key, &(key ^ 0x5a5a));
        }
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        assert!(
            spill.spill_runs.load(Ordering::Relaxed) > 0,
            "a 16 KiB budget over ~100 KiB of records must spill"
        );
        assert!(spill.spilled_bytes.load(Ordering::Relaxed) > 0);

        // Replaying runs-then-chunks per bucket yields every record exactly
        // once, in emission order per bucket.
        let (buckets, emitted) = state.into_parts();
        assert_eq!(emitted, total as usize);
        let mut seen = 0usize;
        for bucket in buckets {
            let records = bucket.records();
            let (runs, chunks) = bucket.into_parts();
            assert!(!runs.is_empty(), "both shards spilled under this budget");
            let mut keys: Vec<u32> = Vec::new();
            let mut frame = Vec::new();
            let decode_all = |data: &[u8], keys: &mut Vec<u32>| {
                let mut pos = 0;
                while pos < data.len() {
                    let key = u32::decode(data, &mut pos);
                    let value = u32::decode(data, &mut pos);
                    assert_eq!(value, key ^ 0x5a5a);
                    keys.push(key);
                }
            };
            for path in runs {
                let mut reader = RunReader::open(path, &dir);
                while reader.next_frame(&mut frame) {
                    decode_all(&frame, &mut keys);
                }
            }
            for chunk in chunks {
                decode_all(&chunk, &mut keys);
            }
            assert_eq!(keys.len(), records);
            assert!(
                keys.windows(2).all(|pair| pair[0] < pair[1]),
                "runs-then-tail replays the per-bucket emission order"
            );
            seen += keys.len();
        }
        assert_eq!(seen, total as usize);
        drop(spill);
        assert!(!dir.exists(), "dropping the round removes its spill dir");
    }
}
