//! The arena shuffle: flat byte buffers instead of `Vec<(K, V)>` records.
//!
//! The classic shuffle representation costs ~32 bytes per record for the
//! paper's triangle workloads (`(u64 hash, [u32; 3], Edge)` with padding)
//! *twice* — once in the map context's pair vector, once in the partitioned
//! buckets. The arena shuffle removes both: map workers serialize every
//! emission straight into one **byte arena per reduce shard** using the
//! [`ArenaCodec`] varint encoding (~10 bytes per triangle record), the
//! exchange transposes arena ownership without touching a record, and reduce
//! workers decode each arena chunk once while grouping — returning consumed
//! chunks to the [`BufferPool`] as they go, so resident memory *falls*
//! through the reduce phase instead of peaking.
//!
//! Parity contract (pinned by `tests/pool_parity.rs` / `tests/sink_parity.rs`
//! and the acceptance sweep): outputs and every [`JobMetrics`] counter are
//! byte-identical to the classic executors. The ingredients:
//!
//! * **Routing** uses the same emit-time FxHash + [`shard_for_hash`], so
//!   records land in the same reduce shard.
//! * **Grouping** uses the same `PrehashedMap` with the same capacity
//!   heuristic and the same insertion order (map-shard order, emission order
//!   within a shard), so even non-deterministic iteration order matches.
//! * **`shuffle_bytes`** is priced by the round's record weigher exactly once
//!   per record — on the reduce side, where each record is decoded — summing
//!   to the same total the classic map-side pricing produces.
//! * **Hash accounting** differs by design: the arena path hashes each key
//!   once at emit (routing) and once at decode (grouping) instead of carrying
//!   8 hash bytes per record through the exchange. The debug hash counters
//!   assert exactly that shape here.
//!
//! `partition_time` reports zero on this path: partitioning happens inside
//! the emit call, so its cost is already part of `map_time`.

use crate::engine::{shard_for_hash, EngineConfig};
use crate::hash::{hash_for_shuffle, prehashed_map_with_capacity, Prehashed, PrehashedMap};
use crate::metrics::JobMetrics;
use crate::pipeline::{ReduceOutcome, Round, Slot};
use crate::pool::{BufferPool, WorkerPool};
use crate::sink::{OutputSink, SinkShard};
use crate::task::{MapContext, ReduceContext};
use std::hash::Hash;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use subgraph_codec::ArenaCodec;

/// Target byte size of one arena chunk. Large enough that glibc serves it
/// with `mmap` (so freed chunks return to the OS immediately) and that the
/// per-chunk bookkeeping vanishes against ~100k records per chunk; small
/// enough that the reduce phase's progressive frees are fine-grained and the
/// [`BufferPool`] (4 MiB recycling cap) can bank every chunk.
const ARENA_CHUNK: usize = 1 << 20;

/// One reduce shard's byte arena on one map worker: sealed chunks of
/// back-to-back encoded `(key, value)` records. A record never spans chunks.
pub(crate) struct ArenaBucket {
    chunks: Vec<Vec<u8>>,
    records: usize,
}

impl ArenaBucket {
    fn new() -> Self {
        ArenaBucket {
            chunks: Vec::new(),
            records: 0,
        }
    }

    /// Appends one encoded record, opening a new chunk when the current one
    /// cannot hold it whole.
    fn push(&mut self, record: &[u8], buffers: &BufferPool) {
        let fits = self
            .chunks
            .last()
            .is_some_and(|chunk| chunk.capacity() - chunk.len() >= record.len());
        if !fits {
            let want = ARENA_CHUNK.max(record.len());
            let mut chunk: Vec<u8> = buffers.take();
            if chunk.capacity() < want {
                chunk.reserve_exact(want);
            }
            self.chunks.push(chunk);
        }
        let chunk = self.chunks.last_mut().expect("a chunk was just ensured");
        chunk.extend_from_slice(record);
        self.records += 1;
    }

    /// Number of records in the bucket — the reduce side's capacity heuristic
    /// input, mirroring the classic path's `key_entries`.
    pub(crate) fn records(&self) -> usize {
        self.records
    }

    /// The sealed chunks, in write order.
    fn into_chunks(self) -> Vec<Vec<u8>> {
        self.chunks
    }
}

/// The arena-mode emission state behind [`MapContext`]. The context type has
/// no `Hash`/[`ArenaCodec`] bounds (they would leak into every mapper
/// signature), so the two operations that need them — hashing a key and
/// encoding a record — are captured as monomorphized function pointers by
/// [`ArenaState::new`], which *is* bounded.
pub(crate) struct ArenaState<K, V> {
    buckets: Vec<ArenaBucket>,
    scratch: Vec<u8>,
    emitted: usize,
    buffers: Arc<BufferPool>,
    hash: fn(&K) -> u64,
    encode: fn(&K, &V, &mut Vec<u8>),
}

fn encode_record<K: ArenaCodec, V: ArenaCodec>(key: &K, value: &V, out: &mut Vec<u8>) {
    key.encode(out);
    value.encode(out);
}

impl<K, V> ArenaState<K, V>
where
    K: Hash + ArenaCodec,
    V: ArenaCodec,
{
    pub(crate) fn new(shards: usize, buffers: Arc<BufferPool>) -> Self {
        ArenaState {
            buckets: (0..shards).map(|_| ArenaBucket::new()).collect(),
            scratch: Vec::new(),
            emitted: 0,
            buffers,
            hash: hash_for_shuffle::<K>,
            encode: encode_record::<K, V>,
        }
    }
}

impl<K, V> ArenaState<K, V> {
    /// Routes and serializes one emission: hash the key (the counted,
    /// emit-side hash), pick the reduce shard, encode into that shard's
    /// arena.
    pub(crate) fn emit(&mut self, key: &K, value: &V) {
        let hash = (self.hash)(key);
        let shard = shard_for_hash(hash, self.buckets.len());
        self.scratch.clear();
        (self.encode)(key, value, &mut self.scratch);
        self.buckets[shard].push(&self.scratch, &self.buffers);
        self.emitted += 1;
    }

    pub(crate) fn emitted(&self) -> usize {
        self.emitted
    }

    pub(crate) fn into_parts(self) -> (Vec<ArenaBucket>, usize) {
        (self.buckets, self.emitted)
    }
}

/// What one arena map worker hands to the exchange.
struct ArenaMapOutcome {
    /// One arena per reduce shard, indexed by [`shard_for_hash`].
    buckets: Vec<ArenaBucket>,
    /// Records emitted by the worker's mapper calls.
    emitted: usize,
}

/// The arena executor: same two-phase exchange as the classic executors
/// (see [`crate::pipeline`]), with serialized buckets. Selected per round via
/// [`Round::arena`] when the round has codec-capable key/value types, runs on
/// the worker pool, and is skipped when a combiner is active (combined rounds
/// keep the classic representation; their buckets hold `Vec<V>` groups the
/// arena format does not model).
pub(crate) fn execute_round_arena<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
    pool: &WorkerPool,
) -> JobMetrics
where
    I: Sync,
    K: Hash + Eq + Ord + Send + ArenaCodec,
    V: Send + ArenaCodec,
    O: Send + 'static,
{
    let threads = config.num_threads.max(1);
    let buffers = pool.buffers();
    let mut metrics = JobMetrics {
        input_records: inputs.len(),
        ..JobMetrics::default()
    };

    // ---- Map phase --------------------------------------------------------
    // One task per logical shard, like the scoped executor: emissions are
    // routed and serialized as they happen, so there is no separate partition
    // stage (and no pair vector to accumulate into).
    let map_start = Instant::now();
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let shards: Vec<&[I]> = inputs.chunks(chunk_size).collect();
    let mapper = &*round.mapper;
    let outcome_slots: Vec<Slot<ArenaMapOutcome>> =
        (0..shards.len()).map(|_| Mutex::new(None)).collect();
    pool.run_indexed(shards.len(), |shard| {
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        let mut ctx = MapContext::with_arena(ArenaState::new(threads, Arc::clone(buffers)));
        for record in shards[shard] {
            mapper.map(record, &mut ctx);
        }
        let (buckets, emitted) = ctx.into_arena();
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            crate::hash::debug_hash_count::take() as usize,
            emitted,
            "arena map side hashes each emitted key exactly once (routing)"
        );
        *outcome_slots[shard]
            .lock()
            .expect("arena map slot poisoned") = Some(ArenaMapOutcome { buckets, emitted });
    });
    let mapped: Vec<ArenaMapOutcome> = outcome_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("arena map slot poisoned")
                .expect("every map shard completed")
        })
        .collect();
    metrics.map_time = map_start.elapsed();
    metrics.key_value_pairs = mapped.iter().map(|outcome| outcome.emitted).sum();
    metrics.shuffle_records = metrics.key_value_pairs;

    // ---- Exchange phase ---------------------------------------------------
    // The same transpose as the classic executors, except each moved value is
    // a byte arena rather than a record vector.
    let shuffle_start = Instant::now();
    let workers = mapped.len();
    let mut inboxes: Vec<Vec<ArenaBucket>> =
        (0..threads).map(|_| Vec::with_capacity(workers)).collect();
    for outcome in mapped {
        for (target, bucket) in outcome.buckets.into_iter().enumerate() {
            inboxes[target].push(bucket);
        }
    }
    metrics.shuffle_time = shuffle_start.elapsed();

    // ---- Reduce phase -----------------------------------------------------
    // Decode-while-grouping: each record is decoded exactly once, priced by
    // the round's weigher (same total as map-side pricing), hashed once for
    // the grouping lookup, and its chunk returned to the buffer pool the
    // moment it is drained.
    let deterministic = config.deterministic;
    let reducer = &*round.reducer;
    let weigher = &*round.record_bytes;
    let reduce_start = Instant::now();
    let reduce_slots: Vec<Slot<(ReduceOutcome<O>, u64)>> =
        (0..inboxes.len()).map(|_| Mutex::new(None)).collect();
    type ArenaReduceWork<O> = (Vec<ArenaBucket>, Box<dyn SinkShard<O>>);
    let reduce_inputs: Vec<Slot<ArenaReduceWork<O>>> = inboxes
        .into_iter()
        .map(|inbox| Mutex::new(Some((inbox, sink.new_shard()))))
        .collect();
    pool.run_indexed(reduce_inputs.len(), |shard| {
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        let (inbox, sink_shard) = reduce_inputs[shard]
            .lock()
            .expect("arena reduce input poisoned")
            .take()
            .expect("each reduce shard is claimed once");
        // Same capacity heuristic as the classic executors: records in the
        // largest inbound bucket, capped. With capacity, hasher and insertion
        // order all equal, the grouping map iterates in the classic order.
        let capacity = inbox
            .iter()
            .map(ArenaBucket::records)
            .max()
            .unwrap_or(0)
            .min(1 << 16);
        let mut grouped: PrehashedMap<K, Vec<V>> = prehashed_map_with_capacity(capacity);
        let mut bytes = 0u64;
        #[cfg(debug_assertions)]
        let mut decoded = 0usize;
        for bucket in inbox {
            for chunk in bucket.into_chunks() {
                let mut pos = 0;
                while pos < chunk.len() {
                    let key = K::decode(&chunk, &mut pos);
                    let value = V::decode(&chunk, &mut pos);
                    bytes += weigher(&key, &value) as u64;
                    let hash = hash_for_shuffle(&key);
                    #[cfg(debug_assertions)]
                    {
                        decoded += 1;
                    }
                    grouped
                        .entry(Prehashed::from_parts(hash, key))
                        .or_default()
                        .push(value);
                }
                buffers.give(chunk);
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            crate::hash::debug_hash_count::take() as usize,
            decoded,
            "arena reduce side hashes each decoded key exactly once (grouping)"
        );
        let mut groups: Vec<(K, Vec<V>)> = grouped
            .into_iter()
            .map(|(key, values)| (key.into_key(), values))
            .collect();
        if deterministic {
            groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        let group_count = groups.len();
        let max_input = groups.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut ctx = ReduceContext::with_shard(sink_shard);
        for (key, values) in &groups {
            reducer.reduce(key, values, &mut ctx);
        }
        let (shard_out, work, emitted) = ctx.into_parts();
        *reduce_slots[shard]
            .lock()
            .expect("arena reduce outcome poisoned") = Some((
            ReduceOutcome {
                shard: shard_out,
                emitted,
                work,
                groups: group_count,
                max_input,
            },
            bytes,
        ));
    });
    let reduced: Vec<(ReduceOutcome<O>, u64)> = reduce_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("arena reduce outcome poisoned")
                .expect("every reduce shard completed")
        })
        .collect();
    metrics.reduce_time = reduce_start.elapsed();
    metrics.reducers_used = reduced.iter().map(|(outcome, _)| outcome.groups).sum();
    metrics.max_reducer_input = reduced
        .iter()
        .map(|(outcome, _)| outcome.max_input)
        .max()
        .unwrap_or(0);

    for (outcome, bytes) in reduced {
        metrics.shuffle_bytes += bytes;
        metrics.reducer_work += outcome.work;
        metrics.outputs += outcome.emitted;
        sink.fold(outcome.shard);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;

    #[test]
    fn bucket_seals_chunks_and_counts_records() {
        let pool = WorkerPool::new(0);
        let buffers = pool.buffers();
        let mut bucket = ArenaBucket::new();
        let record = vec![0xabu8; 600 * 1024]; // two won't share a 1 MiB chunk
        bucket.push(&record, buffers);
        bucket.push(&record, buffers);
        assert_eq!(bucket.records(), 2);
        let chunks = bucket.into_chunks();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == record.len()));
    }

    #[test]
    fn oversized_records_get_a_dedicated_chunk() {
        let pool = WorkerPool::new(0);
        let buffers = pool.buffers();
        let mut bucket = ArenaBucket::new();
        let huge = vec![1u8; ARENA_CHUNK + 17];
        bucket.push(&huge, buffers);
        bucket.push(&[2u8, 3], buffers);
        let chunks = bucket.into_chunks();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), huge.len());
        assert_eq!(chunks[1], vec![2, 3]);
    }

    #[test]
    fn arena_state_routes_by_key_hash() {
        let pool = WorkerPool::new(0);
        let shards = 4;
        let mut state: ArenaState<u32, u32> = ArenaState::new(shards, Arc::clone(pool.buffers()));
        for key in 0..1000u32 {
            state.emit(&key, &(key * 2));
        }
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        assert_eq!(state.emitted(), 1000);
        let (buckets, emitted) = state.into_parts();
        assert_eq!(emitted, 1000);
        let total: usize = buckets.iter().map(ArenaBucket::records).sum();
        assert_eq!(total, 1000);
        // Decoding each bucket yields keys that route to that bucket.
        for (shard, bucket) in buckets.into_iter().enumerate() {
            for chunk in bucket.into_chunks() {
                let mut pos = 0;
                while pos < chunk.len() {
                    let key = u32::decode(&chunk, &mut pos);
                    let value = u32::decode(&chunk, &mut pos);
                    assert_eq!(value, key * 2);
                    assert_eq!(shard_for_hash(crate::hash::hash_of(&key), shards), shard);
                }
            }
        }
    }
}
