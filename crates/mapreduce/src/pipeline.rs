//! Multi-round map-reduce pipelines with map-side combiners.
//!
//! A [`Round`] couples a [`Mapper`] and a [`Reducer`] with an optional
//! associative [`Combiner`] that pre-aggregates map output *per map shard*
//! before the shuffle, plus a record weigher that prices each shuffled pair in
//! bytes. A [`Pipeline`] chains rounds: the reducer outputs of round *k*
//! become the mapper inputs of round *k + 1* (optionally via a
//! [`Pipeline::prepare`] stage that reshapes them), and every round's measured
//! [`JobMetrics`] accumulates into a [`PipelineReport`].
//!
//! The dataflow of one round is exactly the paper's (Section 1.2): map every
//! input record to a multiset of `(key, value)` pairs, optionally combine the
//! pairs each map shard produced, group by key, run one reducer invocation per
//! distinct key. The combiner never changes what is computed — only how many
//! records (and bytes) cross the shuffle — and can be disabled globally with
//! [`EngineConfig::combiners`] to measure its effect.
//!
//! ```
//! use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
//!
//! // Two rounds: count word lengths, then histogram the counts.
//! let words = vec!["map", "reduce", "combine", "shuffle", "sort"];
//! let count_round = Round::new(
//!     "count",
//!     |w: &&str, ctx: &mut MapContext<usize, u64>| ctx.emit(w.len(), 1),
//!     |len: &usize, ones: &[u64], ctx: &mut ReduceContext<(usize, u64)>| {
//!         ctx.emit((*len, ones.iter().sum()))
//!     },
//! )
//! .combiner(|_len: &usize, ones: Vec<u64>| vec![ones.iter().sum()]);
//! let histogram_round = Round::new(
//!     "histogram",
//!     |&(_, count): &(usize, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(count, 1),
//!     |count: &u64, ones: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
//!         ctx.emit((*count, ones.iter().sum()))
//!     },
//! );
//! let (histogram, report) = Pipeline::new()
//!     .round(count_round)
//!     .round(histogram_round)
//!     .run(words, &EngineConfig::serial());
//! assert_eq!(report.num_rounds(), 2);
//! assert!(!histogram.is_empty());
//! ```

use crate::engine::{shard_for_hash, EngineConfig};
use crate::metrics::JobMetrics;
use crate::task::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::mem::size_of;
use std::time::Instant;

/// A boxed per-record byte weigher (key + value → shuffled payload bytes).
type RecordWeigher<'a, K, V> = Box<dyn Fn(&K, &V) -> usize + Sync + 'a>;

/// One map-reduce round of a [`Pipeline`]: mapper, reducer, optional map-side
/// combiner, and the weigher that prices one shuffled record in bytes.
pub struct Round<'a, I, K, V, O> {
    name: String,
    mapper: Box<dyn Mapper<I, K, V> + 'a>,
    reducer: Box<dyn Reducer<K, V, O> + 'a>,
    combiner: Option<Box<dyn Combiner<K, V> + 'a>>,
    record_bytes: RecordWeigher<'a, K, V>,
}

impl<'a, I, K, V, O> Round<'a, I, K, V, O>
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
{
    /// A round with no combiner and the default record weigher
    /// (`size_of::<K>() + size_of::<V>()` — exact for fixed-size keys and
    /// values; override with [`Round::record_bytes`] for heap-backed keys).
    pub fn new(
        name: impl Into<String>,
        mapper: impl Mapper<I, K, V> + 'a,
        reducer: impl Reducer<K, V, O> + 'a,
    ) -> Self {
        Round {
            name: name.into(),
            mapper: Box::new(mapper),
            reducer: Box::new(reducer),
            combiner: None,
            record_bytes: Box::new(|_k, _v| size_of::<K>() + size_of::<V>()),
        }
    }

    /// Attaches a map-side combiner (see [`Combiner`] for the contract).
    pub fn combiner(mut self, combiner: impl Combiner<K, V> + 'a) -> Self {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Overrides the per-record byte weigher used for
    /// [`JobMetrics::shuffle_bytes`].
    pub fn record_bytes(mut self, weigher: impl Fn(&K, &V) -> usize + Sync + 'a) -> Self {
        self.record_bytes = Box::new(weigher);
        self
    }

    /// The round's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when a combiner is attached (it still only runs if
    /// [`EngineConfig::use_combiners`] is set).
    pub fn has_combiner(&self) -> bool {
        self.combiner.is_some()
    }
}

/// Measured metrics of one executed pipeline round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundMetrics {
    /// The round's name (as given to [`Round::new`]).
    pub name: String,
    /// The round's measured cost metrics.
    pub metrics: JobMetrics,
}

/// Per-round metrics accumulated by [`Pipeline::run`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// One entry per executed round, in execution order.
    pub rounds: Vec<RoundMetrics>,
}

impl PipelineReport {
    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The pipeline-wide totals: record counts, bytes, work and timings add
    /// across rounds, the skew indicator keeps the per-round maximum, and
    /// `outputs` is the *final* round's output count (intermediate outputs are
    /// inputs of the next round, not results).
    pub fn combined(&self) -> JobMetrics {
        let mut total = JobMetrics::default();
        for round in &self.rounds {
            total.absorb(&round.metrics);
        }
        if let Some(last) = self.rounds.last() {
            total.outputs = last.metrics.outputs;
        }
        total
    }

    /// Total key-value pairs shipped through all shuffles (post-combiner).
    pub fn total_shuffle_records(&self) -> usize {
        self.rounds.iter().map(|r| r.metrics.shuffle_records).sum()
    }

    /// Total shuffled payload bytes across all rounds.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.metrics.shuffle_bytes).sum()
    }
}

/// A chain of map-reduce rounds from inputs of type `I` to outputs of type
/// `O`. Build with [`Pipeline::new`], add stages with [`Pipeline::round`] and
/// [`Pipeline::prepare`], execute with [`Pipeline::run`].
pub struct Pipeline<'a, I, O> {
    #[allow(clippy::type_complexity)]
    stages: Box<dyn FnOnce(Vec<I>, &EngineConfig, &mut PipelineReport) -> Vec<O> + 'a>,
    num_rounds: usize,
}

impl<'a, I: 'a> Pipeline<'a, I, I> {
    /// The empty pipeline (zero rounds): inputs pass through unchanged.
    pub fn new() -> Self {
        Pipeline {
            stages: Box::new(|inputs, _, _| inputs),
            num_rounds: 0,
        }
    }
}

impl<'a, I: 'a> Default for Pipeline<'a, I, I> {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl<'a, I: 'a, T: 'a> Pipeline<'a, I, T> {
    /// Appends a map-reduce round: the current stage outputs become the
    /// round's mapper inputs.
    pub fn round<K, V, O>(self, round: Round<'a, T, K, V, O>) -> Pipeline<'a, I, O>
    where
        T: Sync,
        K: Hash + Eq + Ord + Send + 'a,
        V: Send + 'a,
        O: Send + 'a,
    {
        let prev = self.stages;
        Pipeline {
            stages: Box::new(move |inputs, config, report| {
                let intermediate = prev(inputs, config, report);
                let (outputs, metrics) = execute_round(&intermediate, &round, config);
                report.rounds.push(RoundMetrics {
                    name: round.name.clone(),
                    metrics,
                });
                outputs
            }),
            num_rounds: self.num_rounds + 1,
        }
    }

    /// Appends a free inter-round transformation (no shuffle, no metrics):
    /// reshape round *k*'s outputs into round *k + 1*'s inputs, e.g. to mix
    /// them with a side input the next round also needs.
    pub fn prepare<O>(self, f: impl FnOnce(Vec<T>) -> Vec<O> + 'a) -> Pipeline<'a, I, O> {
        let prev = self.stages;
        Pipeline {
            stages: Box::new(move |inputs, config, report| f(prev(inputs, config, report))),
            num_rounds: self.num_rounds,
        }
    }

    /// Number of map-reduce rounds added so far.
    pub fn num_rounds(&self) -> usize {
        self.num_rounds
    }

    /// Executes every round in order and returns the final outputs together
    /// with the per-round metrics.
    pub fn run(self, inputs: Vec<I>, config: &EngineConfig) -> (Vec<T>, PipelineReport) {
        let mut report = PipelineReport::default();
        let outputs = (self.stages)(inputs, config, &mut report);
        (outputs, report)
    }
}

/// What one map worker hands to the shuffle: raw pairs, or pairs grouped by
/// key and pre-aggregated by the combiner.
enum MappedShard<K, V> {
    Flat(Vec<(K, V)>),
    Combined(Vec<(K, Vec<V>)>),
}

/// Executes one round over `inputs` and returns the reducer outputs with the
/// measured [`JobMetrics`]. This is the engine behind both [`Pipeline::run`]
/// and the deprecated single-round [`crate::run_job`] shim.
pub(crate) fn execute_round<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
) -> (Vec<O>, JobMetrics)
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
{
    let threads = config.num_threads.max(1);
    let combine = config.use_combiners;
    let mut metrics = JobMetrics {
        input_records: inputs.len(),
        ..JobMetrics::default()
    };

    // ---- Map (+ combine) phase --------------------------------------------
    let map_start = Instant::now();
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let mapper = &*round.mapper;
    let combiner = if combine {
        round.combiner.as_deref()
    } else {
        None
    };
    type ShardOutcome<K, V> = (MappedShard<K, V>, usize, usize);
    let mapped: Vec<ShardOutcome<K, V>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut pairs = Vec::new();
                    for record in chunk {
                        let mut ctx = MapContext::new();
                        mapper.map(record, &mut ctx);
                        pairs.extend(ctx.into_pairs());
                    }
                    let emitted = pairs.len();
                    match combiner {
                        None => (MappedShard::Flat(pairs), emitted, 0),
                        Some(combiner) => {
                            // Group this shard's pairs by key (per-key value
                            // order is emission order) and combine each group.
                            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
                            for (key, value) in pairs {
                                groups.entry(key).or_default().push(value);
                            }
                            let combined: Vec<(K, Vec<V>)> = groups
                                .into_iter()
                                .map(|(key, values)| {
                                    let values = combiner.combine(&key, values);
                                    (key, values)
                                })
                                .collect();
                            let kept = combined.iter().map(|(_, vs)| vs.len()).sum();
                            (MappedShard::Combined(combined), emitted, kept)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map worker panicked"))
            .collect()
    });
    metrics.map_time = map_start.elapsed();
    metrics.key_value_pairs = mapped.iter().map(|(_, emitted, _)| emitted).sum();
    if combiner.is_some() {
        metrics.combiner_input_records = metrics.key_value_pairs;
        metrics.combiner_output_records = mapped.iter().map(|(_, _, kept)| kept).sum();
        metrics.shuffle_records = metrics.combiner_output_records;
    } else {
        metrics.shuffle_records = metrics.key_value_pairs;
    }

    // ---- Shuffle phase ----------------------------------------------------
    // Shipped pairs are sharded by key hash so that each reduce worker owns a
    // disjoint set of keys; grouping within a shard uses a hash map keyed by
    // K. Per-key value order is (map-shard order, within-shard emission
    // order) and therefore deterministic.
    let shuffle_start = Instant::now();
    let weigher = &round.record_bytes;
    let mut shuffle_bytes = 0u64;
    let mut shards: Vec<HashMap<K, Vec<V>>> = (0..threads).map(|_| HashMap::new()).collect();
    for (shard, _, _) in mapped {
        match shard {
            MappedShard::Flat(pairs) => {
                for (key, value) in pairs {
                    shuffle_bytes += weigher(&key, &value) as u64;
                    let target = shard_for_hash(hash_of(&key), threads);
                    shards[target].entry(key).or_default().push(value);
                }
            }
            MappedShard::Combined(groups) => {
                for (key, values) in groups {
                    for value in &values {
                        shuffle_bytes += weigher(&key, value) as u64;
                    }
                    let target = shard_for_hash(hash_of(&key), threads);
                    shards[target].entry(key).or_default().extend(values);
                }
            }
        }
    }
    metrics.shuffle_bytes = shuffle_bytes;
    metrics.shuffle_time = shuffle_start.elapsed();
    metrics.reducers_used = shards.iter().map(|s| s.len()).sum();
    metrics.max_reducer_input = shards
        .iter()
        .flat_map(|s| s.values().map(|v| v.len()))
        .max()
        .unwrap_or(0);

    // ---- Reduce phase -----------------------------------------------------
    let deterministic = config.deterministic;
    let reducer = &*round.reducer;
    let reduce_start = Instant::now();
    let reduced: Vec<(Vec<O>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    let mut groups: Vec<(K, Vec<V>)> = shard.into_iter().collect();
                    if deterministic {
                        // Sort keys for deterministic per-shard iteration order.
                        groups.sort_by(|a, b| a.0.cmp(&b.0));
                    }
                    let mut outputs = Vec::new();
                    let mut work = 0u64;
                    for (key, values) in groups {
                        let mut ctx = ReduceContext::new();
                        reducer.reduce(&key, &values, &mut ctx);
                        let (out, w) = ctx.into_parts();
                        outputs.extend(out);
                        work += w;
                    }
                    (outputs, work)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker panicked"))
            .collect()
    });
    metrics.reduce_time = reduce_start.elapsed();

    let mut outputs = Vec::new();
    for (out, work) in reduced {
        metrics.reducer_work += work;
        outputs.extend(out);
    }
    metrics.outputs = outputs.len();
    (outputs, metrics)
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word-count style single-round pipeline with a summing combiner.
    fn counting_round<'a>(combine: bool) -> Round<'a, u64, u64, u64, (u64, u64)> {
        let round = Round::new(
            "count",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 10, 1),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.add_work(vs.len() as u64);
                ctx.emit((*k, vs.iter().sum()));
            },
        );
        if combine {
            round.combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()])
        } else {
            round
        }
    }

    #[test]
    fn combiner_reduces_shuffle_records_without_changing_outputs() {
        let inputs: Vec<u64> = (0..1000).collect();
        let config = EngineConfig::with_threads(4);
        let (mut with, report_with) = Pipeline::new()
            .round(counting_round(true))
            .run(inputs.clone(), &config);
        let (mut without, report_without) = Pipeline::new()
            .round(counting_round(false))
            .run(inputs, &config);
        with.sort_unstable();
        without.sort_unstable();
        assert_eq!(with, without);
        let m_with = &report_with.rounds[0].metrics;
        let m_without = &report_without.rounds[0].metrics;
        assert_eq!(m_with.key_value_pairs, 1000);
        assert_eq!(m_with.combiner_input_records, 1000);
        // 4 map shards x 10 keys: at most 40 combined records survive.
        assert!(m_with.combiner_output_records <= 40);
        assert_eq!(m_with.shuffle_records, m_with.combiner_output_records);
        assert!(m_with.shuffle_bytes < m_without.shuffle_bytes);
        assert_eq!(m_without.shuffle_records, 1000);
        assert_eq!(m_without.combiner_input_records, 0);
        assert_eq!(m_without.combiner_output_records, 0);
    }

    #[test]
    fn disabling_combiners_in_the_config_bypasses_the_combiner() {
        let inputs: Vec<u64> = (0..500).collect();
        let config = EngineConfig::with_threads(3).combiners(false);
        let (_, report) = Pipeline::new()
            .round(counting_round(true))
            .run(inputs, &config);
        let metrics = &report.rounds[0].metrics;
        assert_eq!(metrics.combiner_input_records, 0);
        assert_eq!(metrics.shuffle_records, metrics.key_value_pairs);
    }

    #[test]
    fn two_round_pipeline_threads_outputs_into_the_next_round() {
        // Round 1 sums values per key modulo 7; round 2 counts how many keys
        // share each sum. Verified against a direct serial computation.
        let inputs: Vec<u64> = (0..200).map(|i| i * 3 % 91).collect();
        let sums_round = Round::new(
            "sum",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 7, *x),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.emit((*k, vs.iter().sum()))
            },
        )
        .combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()]);
        let histogram_round = Round::new(
            "histogram",
            |&(_, sum): &(u64, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(sum, 1),
            |sum: &u64, ones: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.emit((*sum, ones.iter().sum()))
            },
        );
        let pipeline = Pipeline::new().round(sums_round).round(histogram_round);
        assert_eq!(pipeline.num_rounds(), 2);
        let (histogram, report) = pipeline.run(inputs.clone(), &EngineConfig::with_threads(4));

        let mut expected_sums: HashMap<u64, u64> = HashMap::new();
        for x in &inputs {
            *expected_sums.entry(x % 7).or_default() += x;
        }
        let mut expected_histogram: HashMap<u64, u64> = HashMap::new();
        for sum in expected_sums.values() {
            *expected_histogram.entry(*sum).or_default() += 1;
        }
        let mut got = histogram.clone();
        got.sort_unstable();
        let mut expected: Vec<(u64, u64)> = expected_histogram.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(got, expected);

        assert_eq!(report.num_rounds(), 2);
        assert_eq!(report.rounds[0].name, "sum");
        assert_eq!(report.rounds[1].name, "histogram");
        let combined = report.combined();
        assert_eq!(
            combined.key_value_pairs,
            report.rounds[0].metrics.key_value_pairs + report.rounds[1].metrics.key_value_pairs
        );
        assert_eq!(combined.outputs, report.rounds[1].metrics.outputs);
        assert_eq!(report.total_shuffle_records(), combined.shuffle_records);
    }

    #[test]
    fn prepare_reshapes_between_rounds_without_metrics() {
        let inputs: Vec<u64> = (0..100).collect();
        let (outputs, report) = Pipeline::new()
            .round(counting_round(true))
            .prepare(|counts: Vec<(u64, u64)>| {
                // Keep only the even keys for the next round.
                counts.into_iter().filter(|(k, _)| k % 2 == 0).collect()
            })
            .round(Round::new(
                "echo",
                |&(k, c): &(u64, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(k, c),
                |k: &u64, cs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| ctx.emit((*k, cs[0])),
            ))
            .run(inputs, &EngineConfig::serial());
        assert_eq!(report.num_rounds(), 2);
        assert_eq!(outputs.len(), 5); // keys 0, 2, 4, 6, 8
        assert_eq!(report.rounds[1].metrics.input_records, 5);
    }

    #[test]
    fn deterministic_runs_repeat_exactly_with_and_without_combiners() {
        let inputs: Vec<u64> = (0..400).map(|i| i * 17 % 101).collect();
        for use_combiners in [true, false] {
            let config = EngineConfig {
                num_threads: 3,
                deterministic: true,
                use_combiners,
            };
            let run = || {
                Pipeline::new()
                    .round(counting_round(true))
                    .run(inputs.clone(), &config)
                    .0
            };
            assert_eq!(run(), run(), "use_combiners={use_combiners}");
        }
    }

    #[test]
    fn default_record_weigher_prices_fixed_size_records() {
        let inputs: Vec<u64> = (0..50).collect();
        let (_, report) = Pipeline::new()
            .round(counting_round(false))
            .run(inputs, &EngineConfig::serial());
        let metrics = &report.rounds[0].metrics;
        // Key and value are both u64: 16 bytes per shipped record.
        assert_eq!(metrics.shuffle_bytes, metrics.shuffle_records as u64 * 16);
    }

    #[test]
    fn custom_record_weigher_prices_heap_backed_keys() {
        let round = Round::new(
            "vec-keys",
            |x: &u64, ctx: &mut MapContext<Vec<u32>, u64>| {
                ctx.emit(vec![(x % 3) as u32, (x % 5) as u32], *x)
            },
            |k: &Vec<u32>, vs: &[u64], ctx: &mut ReduceContext<(Vec<u32>, usize)>| {
                ctx.emit((k.clone(), vs.len()))
            },
        )
        .record_bytes(|k: &Vec<u32>, _v: &u64| 4 * k.len() + 8);
        let inputs: Vec<u64> = (0..60).collect();
        let (_, report) = Pipeline::new()
            .round(round)
            .run(inputs, &EngineConfig::serial());
        let metrics = &report.rounds[0].metrics;
        assert_eq!(metrics.shuffle_bytes, metrics.shuffle_records as u64 * 16);
    }

    #[test]
    fn empty_pipeline_passes_inputs_through() {
        let (outputs, report) = Pipeline::new().run(vec![1u64, 2, 3], &EngineConfig::serial());
        assert_eq!(outputs, vec![1, 2, 3]);
        assert_eq!(report.num_rounds(), 0);
        assert_eq!(report.combined(), JobMetrics::default());
    }
}
