//! Multi-round map-reduce pipelines with map-side combiners.
//!
//! A [`Round`] couples a [`Mapper`] and a [`Reducer`] with an optional
//! associative [`Combiner`] that pre-aggregates map output *per map shard*
//! before the shuffle, plus a record weigher that prices each shuffled pair in
//! bytes. A [`Pipeline`] chains rounds: the reducer outputs of round *k*
//! become the mapper inputs of round *k + 1* (optionally via a
//! [`Pipeline::prepare`] stage that reshapes them), and every round's measured
//! [`JobMetrics`] accumulates into a [`PipelineReport`].
//!
//! The dataflow of one round is exactly the paper's (Section 1.2): map every
//! input record to a multiset of `(key, value)` pairs, optionally combine the
//! pairs each map shard produced, group by key, run one reducer invocation per
//! distinct key. The combiner never changes what is computed — only how many
//! records (and bytes) cross the shuffle — and can be disabled globally with
//! [`EngineConfig::combiners`] to measure its effect.
//!
//! The shuffle itself is a two-phase parallel exchange (see `docs/ENGINE.md`,
//! "Shuffle internals"): map workers partition their own emissions into one
//! bucket per reduce worker, the coordinator only moves bucket ownership, and
//! reduce workers group their buckets in parallel. Every key is hashed exactly
//! once, on the map side, with the engine's [`crate::hash_of`] FxHash.
//!
//! ```
//! use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
//!
//! // Two rounds: count word lengths, then histogram the counts.
//! let words = vec!["map", "reduce", "combine", "shuffle", "sort"];
//! let count_round = Round::new(
//!     "count",
//!     |w: &&str, ctx: &mut MapContext<usize, u64>| ctx.emit(w.len(), 1),
//!     |len: &usize, ones: &[u64], ctx: &mut ReduceContext<(usize, u64)>| {
//!         ctx.emit((*len, ones.iter().sum()))
//!     },
//! )
//! .combiner(|_len: &usize, ones: Vec<u64>| vec![ones.iter().sum()]);
//! let histogram_round = Round::new(
//!     "histogram",
//!     |&(_, count): &(usize, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(count, 1),
//!     |count: &u64, ones: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
//!         ctx.emit((*count, ones.iter().sum()))
//!     },
//! );
//! let (histogram, report) = Pipeline::new()
//!     .round(count_round)
//!     .round(histogram_round)
//!     .run(&words, &EngineConfig::serial());
//! assert_eq!(report.num_rounds(), 2);
//! assert!(!histogram.is_empty());
//! ```

use crate::engine::{shard_for_hash, EngineConfig};
use crate::hash::{hash_for_shuffle, prehashed_map_with_capacity, Prehashed, PrehashedMap};
use crate::metrics::JobMetrics;
use crate::pool::WorkerPool;
use crate::sink::{CollectSink, OutputSink, SinkShard};
use crate::task::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use std::hash::Hash;
use std::mem::size_of;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use subgraph_codec::ArenaCodec;

/// A boxed per-record byte weigher (key + value → shuffled payload bytes).
type RecordWeigher<'a, K, V> = Box<dyn Fn(&K, &V) -> usize + Sync + 'a>;

/// The monomorphized arena executor a [`Round::arena`] call captures. A plain
/// function pointer: the executor needs `ArenaCodec` bounds on `K`/`V` that
/// the `Round` type itself must not carry (most rounds never opt in), so the
/// bounded builder method bakes the right instantiation in here and the
/// unbounded dispatch in [`execute_round_into`] just calls it.
pub(crate) type ArenaExec<I, K, V, O> = for<'a, 'b, 'c> fn(
    &'b [I],
    &'b Round<'a, I, K, V, O>,
    &'b EngineConfig,
    &'c mut dyn OutputSink<O>,
    &'b WorkerPool,
) -> JobMetrics;

/// The streaming sibling of [`ArenaExec`]: the monomorphized chunked arena
/// executor captured by the same [`Round::arena`] call, used when the round's
/// inputs arrive as an [`InputChunk`] iterator
/// ([`Pipeline::run_chunked_with_sink`]) instead of one resident slice.
pub(crate) type ArenaChunkExec<I, K, V, O> = for<'s, 'a, 'b, 'c> fn(
    &'b mut dyn Iterator<Item = InputChunk<'s, I>>,
    &'b Round<'a, I, K, V, O>,
    &'b EngineConfig,
    &'c mut dyn OutputSink<O>,
    &'b WorkerPool,
) -> JobMetrics;

/// One batch of map input records for the streaming input path
/// ([`Pipeline::run_chunked_with_sink`]). Each yielded chunk becomes one
/// logical map shard, so a source can hand the engine zero-copy slices (an
/// mmap-loaded `.sgr` graph) or owned batches (a text reader's parse buffer)
/// without the engine ever materializing the full record set. Owned batches
/// are dropped as soon as their map wave completes.
///
/// Parity note: outputs are byte-identical to the slice path when the chunk
/// boundaries match the slice path's shards (`len.div_ceil(threads)` records
/// per chunk); other boundaries still produce correct results, but combiner
/// scope and bucket concatenation order follow the chunks.
pub enum InputChunk<'s, I> {
    /// A borrowed slice of already-resident records (zero-copy).
    Slice(&'s [I]),
    /// An owned batch read from a streaming source.
    Batch(Vec<I>),
}

impl<I> InputChunk<'_, I> {
    /// The chunk's records.
    pub fn as_slice(&self) -> &[I] {
        match self {
            InputChunk::Slice(slice) => slice,
            InputChunk::Batch(batch) => batch,
        }
    }
}

/// One map-reduce round of a [`Pipeline`]: mapper, reducer, optional map-side
/// combiner, and the weigher that prices one shuffled record in bytes.
pub struct Round<'a, I, K, V, O> {
    name: String,
    pub(crate) mapper: Box<dyn Mapper<I, K, V> + 'a>,
    pub(crate) reducer: Box<dyn Reducer<K, V, O> + 'a>,
    pub(crate) combiner: Option<Box<dyn Combiner<K, V> + 'a>>,
    pub(crate) record_bytes: RecordWeigher<'a, K, V>,
    pub(crate) arena: Option<ArenaExec<I, K, V, O>>,
    pub(crate) arena_chunked: Option<ArenaChunkExec<I, K, V, O>>,
}

impl<'a, I, K, V, O> Round<'a, I, K, V, O>
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
{
    /// A round with no combiner and the default record weigher
    /// (`size_of::<K>() + size_of::<V>()` — exact for fixed-size keys and
    /// values; override with [`Round::record_bytes`] for heap-backed keys).
    pub fn new(
        name: impl Into<String>,
        mapper: impl Mapper<I, K, V> + 'a,
        reducer: impl Reducer<K, V, O> + 'a,
    ) -> Self {
        Round {
            name: name.into(),
            mapper: Box::new(mapper),
            reducer: Box::new(reducer),
            combiner: None,
            record_bytes: Box::new(|_k, _v| size_of::<K>() + size_of::<V>()),
            arena: None,
            arena_chunked: None,
        }
    }

    /// Attaches a map-side combiner (see [`Combiner`] for the contract).
    pub fn combiner(mut self, combiner: impl Combiner<K, V> + 'a) -> Self {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Opts the round into the arena shuffle (the `arena` module): map
    /// emissions are serialized into per-reduce-shard byte arenas with the
    /// key/value [`ArenaCodec`] encodings instead of accumulating as
    /// `Vec<(K, V)>` pairs, cutting the shuffle's resident memory severalfold
    /// while producing byte-identical outputs and [`JobMetrics`]. The arena
    /// path runs when the round executes on a worker pool without an active
    /// combiner; otherwise the classic representation is used. Disable
    /// globally with [`EngineConfig::arena_shuffle`].
    pub fn arena(mut self) -> Self
    where
        K: ArenaCodec,
        V: ArenaCodec,
        O: 'static,
    {
        self.arena = Some(crate::arena::execute_round_arena::<I, K, V, O>);
        self.arena_chunked = Some(crate::arena::execute_round_arena_chunked::<I, K, V, O>);
        self
    }

    /// True when the round has opted into the arena shuffle.
    pub fn has_arena(&self) -> bool {
        self.arena.is_some()
    }

    /// Overrides the per-record byte weigher used for
    /// [`JobMetrics::shuffle_bytes`].
    pub fn record_bytes(mut self, weigher: impl Fn(&K, &V) -> usize + Sync + 'a) -> Self {
        self.record_bytes = Box::new(weigher);
        self
    }

    /// The round's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when a combiner is attached (it still only runs if
    /// [`EngineConfig::use_combiners`] is set).
    pub fn has_combiner(&self) -> bool {
        self.combiner.is_some()
    }
}

/// Measured metrics of one executed pipeline round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundMetrics {
    /// The round's name (as given to [`Round::new`]).
    pub name: String,
    /// The round's measured cost metrics.
    pub metrics: JobMetrics,
}

/// Per-round metrics accumulated by [`Pipeline::run`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// One entry per executed round, in execution order.
    pub rounds: Vec<RoundMetrics>,
}

impl PipelineReport {
    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The pipeline-wide totals: record counts, bytes, work and timings add
    /// across rounds, the skew indicator keeps the per-round maximum, and
    /// `outputs` is the *final* round's output count (intermediate outputs are
    /// inputs of the next round, not results).
    pub fn combined(&self) -> JobMetrics {
        let mut total = JobMetrics::default();
        for round in &self.rounds {
            total.absorb(&round.metrics);
        }
        if let Some(last) = self.rounds.last() {
            total.outputs = last.metrics.outputs;
        }
        total
    }

    /// Total key-value pairs shipped through all shuffles (post-combiner).
    pub fn total_shuffle_records(&self) -> usize {
        self.rounds.iter().map(|r| r.metrics.shuffle_records).sum()
    }

    /// Total shuffled payload bytes across all rounds.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.metrics.shuffle_bytes).sum()
    }
}

/// What flows into a pipeline stage: the caller's borrowed input slice (for
/// the first stage) or an owned intermediate produced by an earlier round.
/// This is what lets [`Pipeline::run`] borrow its inputs — the first round
/// maps straight off the caller's slice without cloning it.
enum StageInput<'s, I> {
    Borrowed(&'s [I]),
    Owned(Vec<I>),
    /// A streaming chunk source ([`Pipeline::run_chunked_with_sink`]): only
    /// the first stage ever sees this variant, and the round dispatcher
    /// consumes it without materializing unless the executor needs a slice.
    Chunked(Box<dyn Iterator<Item = InputChunk<'s, I>> + 's>),
}

impl<I> StageInput<'_, I> {
    fn as_slice(&self) -> &[I] {
        match self {
            StageInput::Borrowed(slice) => slice,
            StageInput::Owned(vec) => vec,
            StageInput::Chunked(_) => {
                unreachable!("chunked inputs are consumed by the round dispatcher")
            }
        }
    }
}

impl<I: Clone> StageInput<'_, I> {
    /// Materializes the stage input; clones only when the borrowed inputs
    /// pass through untouched (zero-round pipelines, leading `prepare`).
    fn into_vec(self) -> Vec<I> {
        match self {
            StageInput::Borrowed(slice) => slice.to_vec(),
            StageInput::Owned(vec) => vec,
            StageInput::Chunked(mut chunks) => materialize_chunks(&mut *chunks),
        }
    }
}

/// Collects a chunk stream into one resident `Vec` — the fallback for stages
/// that need the whole slice (classic executors, `prepare`, zero-round
/// pass-through). Clones only the borrowed slices; owned batches move.
fn materialize_chunks<'s, I: Clone>(chunks: &mut dyn Iterator<Item = InputChunk<'s, I>>) -> Vec<I> {
    let mut out = Vec::new();
    for chunk in chunks {
        match chunk {
            InputChunk::Slice(slice) => out.extend_from_slice(slice),
            InputChunk::Batch(mut batch) => out.append(&mut batch),
        }
    }
    out
}

/// Where a pipeline's final outputs go: back to the caller as a `Vec`
/// (legacy), or streamed into an [`OutputSink`] as the final round's reduce
/// workers produce them.
enum Destination<'d, T: Send + 'static> {
    /// Materialize the outputs (they feed a later stage or the caller).
    Materialize,
    /// Stream the final round straight into the sink.
    Stream(&'d mut dyn OutputSink<T>),
}

/// The composed stage chain of a [`Pipeline`]. Returns `Some(outputs)` when
/// asked to materialize (or when the last stage cannot stream — an empty
/// pipeline or a trailing `prepare`); `None` when the final round streamed
/// its outputs into the destination sink.
type Stages<'a, I, O> = Box<
    dyn for<'s, 'd> FnOnce(
            StageInput<'s, I>,
            &EngineConfig,
            &mut PipelineReport,
            Destination<'d, O>,
        ) -> Option<StageInput<'s, O>>
        + 'a,
>;

/// A chain of map-reduce rounds from inputs of type `I` to outputs of type
/// `O`. Build with [`Pipeline::new`], add stages with [`Pipeline::round`] and
/// [`Pipeline::prepare`], execute with [`Pipeline::run`] (collect) or
/// [`Pipeline::run_with_sink`] (stream the final round).
pub struct Pipeline<'a, I, O: Send + 'static> {
    stages: Stages<'a, I, O>,
    num_rounds: usize,
}

impl<'a, I: Send + 'static> Pipeline<'a, I, I> {
    /// The empty pipeline (zero rounds): inputs pass through unchanged.
    pub fn new() -> Self {
        Pipeline {
            stages: Box::new(|inputs, _, _, _| Some(inputs)),
            num_rounds: 0,
        }
    }
}

impl<'a, I: Send + 'static> Default for Pipeline<'a, I, I> {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl<'a, I: Send + 'static, T: Send + 'static> Pipeline<'a, I, T> {
    /// Appends a map-reduce round: the current stage outputs become the
    /// round's mapper inputs.
    pub fn round<K, V, O>(self, round: Round<'a, T, K, V, O>) -> Pipeline<'a, I, O>
    where
        T: Sync + Clone,
        K: Hash + Eq + Ord + Send + 'a,
        V: Send + 'a,
        O: Send + 'a + 'static,
    {
        let prev = self.stages;
        Pipeline {
            stages: Box::new(move |inputs, config, report, destination| {
                let intermediate = prev(inputs, config, report, Destination::Materialize)
                    .expect("a materialize destination always yields outputs");
                let name = round.name.clone();
                match destination {
                    Destination::Materialize => {
                        let (outputs, metrics) = match intermediate {
                            StageInput::Chunked(mut chunks) => {
                                let mut collected = CollectSink::new();
                                let metrics = execute_round_chunked_into(
                                    &mut *chunks,
                                    &round,
                                    config,
                                    &mut collected,
                                );
                                (collected.into_items(), metrics)
                            }
                            resident => execute_round(resident.as_slice(), &round, config),
                        };
                        report.rounds.push(RoundMetrics { name, metrics });
                        Some(StageInput::Owned(outputs))
                    }
                    Destination::Stream(sink) => {
                        // The final round: reduce workers feed the sink's
                        // shards directly; nothing is materialized here.
                        let metrics = match intermediate {
                            StageInput::Chunked(mut chunks) => {
                                execute_round_chunked_into(&mut *chunks, &round, config, sink)
                            }
                            resident => {
                                execute_round_into(resident.as_slice(), &round, config, sink)
                            }
                        };
                        report.rounds.push(RoundMetrics { name, metrics });
                        None
                    }
                }
            }),
            num_rounds: self.num_rounds + 1,
        }
    }

    /// Appends a free inter-round transformation (no shuffle, no metrics):
    /// reshape round *k*'s outputs into round *k + 1*'s inputs, e.g. to mix
    /// them with a side input the next round also needs.
    pub fn prepare<O>(self, f: impl FnOnce(Vec<T>) -> Vec<O> + 'a) -> Pipeline<'a, I, O>
    where
        T: Clone,
        O: Send + 'static,
    {
        let prev = self.stages;
        Pipeline {
            stages: Box::new(move |inputs, config, report, _destination| {
                let intermediate = prev(inputs, config, report, Destination::Materialize)
                    .expect("a materialize destination always yields outputs");
                Some(StageInput::Owned(f(intermediate.into_vec())))
            }),
            num_rounds: self.num_rounds,
        }
    }

    /// Number of map-reduce rounds added so far.
    pub fn num_rounds(&self) -> usize {
        self.num_rounds
    }

    /// Executes every round in order over the borrowed `inputs` and returns
    /// the final outputs together with the per-round metrics. The first round
    /// maps directly off the slice — callers pass `graph.edges()` (or any
    /// slice) without cloning it per run. This is now a thin wrapper over
    /// [`Pipeline::run_with_sink`] with a collecting destination.
    pub fn run(self, inputs: &[I], config: &EngineConfig) -> (Vec<T>, PipelineReport)
    where
        T: Clone,
    {
        let mut sink = CollectSink::new();
        let report = self.run_with_sink(inputs, config, &mut sink);
        (sink.into_items(), report)
    }

    /// Executes every round in order, streaming the *final* round's reducer
    /// outputs into `sink` instead of merging them into a `Vec`: each reduce
    /// worker fills a private [`SinkShard`] as its reducers emit, and the
    /// coordinator folds the shards back in worker order — so deterministic
    /// configs deliver the exact order [`Pipeline::run`] would have returned,
    /// and constant-memory sinks (e.g. [`crate::CountSink`]) make the output
    /// path O(1) in the result size.
    ///
    /// Intermediate rounds still materialize their outputs (they are the next
    /// round's mapper inputs); only the final round streams. Pipelines whose
    /// last stage is not a round (zero rounds, trailing
    /// [`Pipeline::prepare`]) fall back to pushing each record through
    /// [`OutputSink::accept`].
    pub fn run_with_sink(
        self,
        inputs: &[I],
        config: &EngineConfig,
        sink: &mut dyn OutputSink<T>,
    ) -> PipelineReport
    where
        T: Clone,
    {
        let mut report = PipelineReport::default();
        if let Some(leftover) = (self.stages)(
            StageInput::Borrowed(inputs),
            config,
            &mut report,
            Destination::Stream(sink),
        ) {
            for value in leftover.into_vec() {
                sink.accept(value);
            }
        }
        report
    }

    /// Like [`Pipeline::run_with_sink`], but the *first* round's map input
    /// streams from an [`InputChunk`] iterator instead of one resident slice:
    /// each yielded chunk becomes one logical map shard, and owned batches are
    /// dropped as soon as their map wave completes — so a source that reads
    /// fixed-size batches (or hands out mmap slices) never requires the full
    /// record set in memory. The streaming path engages when the first round
    /// runs the arena executor (worker pool + [`Round::arena`] opt-in, no
    /// active combiner); other executors need the whole slice anyway and
    /// materialize the chunks first.
    ///
    /// Outputs and counters are byte-identical to [`Pipeline::run_with_sink`]
    /// when the chunk boundaries match the slice path's map shards
    /// (`len.div_ceil(threads)` records per chunk) — see [`InputChunk`].
    pub fn run_chunked_with_sink<'s>(
        self,
        chunks: impl Iterator<Item = InputChunk<'s, I>> + 's,
        config: &EngineConfig,
        sink: &mut dyn OutputSink<T>,
    ) -> PipelineReport
    where
        I: Clone,
        T: Clone,
    {
        let mut report = PipelineReport::default();
        if let Some(leftover) = (self.stages)(
            StageInput::Chunked(Box::new(chunks)),
            config,
            &mut report,
            Destination::Stream(sink),
        ) {
            for value in leftover.into_vec() {
                sink.accept(value);
            }
        }
        report
    }
}

/// One per-reduce-worker bucket of a map worker's partitioned output: raw
/// pairs, or pairs grouped by key and pre-aggregated by the combiner. Every
/// record carries the key hash computed when it was partitioned, so
/// no later stage hashes the key again.
enum ShuffleBucket<K, V> {
    Flat(Vec<(u64, K, V)>),
    Combined(Vec<(u64, K, Vec<V>)>),
}

impl<K, V> ShuffleBucket<K, V> {
    /// Number of key entries in the bucket: distinct keys for a combined
    /// bucket, raw pairs (each key counted per occurrence) for a flat one.
    fn key_entries(&self) -> usize {
        match self {
            ShuffleBucket::Flat(pairs) => pairs.len(),
            ShuffleBucket::Combined(groups) => groups.len(),
        }
    }
}

/// Everything one map worker hands to the exchange.
struct MapOutcome<K, V> {
    /// One bucket per reduce worker, indexed by [`shard_for_hash`].
    buckets: Vec<ShuffleBucket<K, V>>,
    /// Pairs emitted by the worker's mapper calls (pre-combiner).
    emitted: usize,
    /// Pairs surviving the combiner (0 when no combiner ran).
    kept: usize,
    /// Payload bytes of the worker's shipped records.
    bytes: u64,
    /// Wall time the worker spent partitioning (and combining) its output.
    partition_time: Duration,
}

/// What one reduce worker hands back: its filled sink shard plus counters.
/// Shared with the arena executor ([`crate::arena`]), which produces the
/// same outcome per shard from its decoded buckets.
pub(crate) struct ReduceOutcome<O> {
    pub(crate) shard: Box<dyn SinkShard<O>>,
    pub(crate) emitted: usize,
    pub(crate) work: u64,
    pub(crate) groups: usize,
    pub(crate) max_input: usize,
}

/// Executes one round over `inputs`, collecting the reducer outputs into a
/// `Vec` — the materializing wrapper over [`execute_round_into`] used for
/// intermediate pipeline rounds (whose outputs feed the next round).
pub(crate) fn execute_round<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
) -> (Vec<O>, JobMetrics)
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send + 'static,
{
    let mut collected = CollectSink::new();
    let metrics = execute_round_into(inputs, round, config, &mut collected);
    (collected.into_items(), metrics)
}

/// Executes one round over `inputs`, streaming the reducer outputs into
/// `sink`, and returns the measured [`JobMetrics`]. This is the engine behind
/// [`Pipeline::run`] and [`Pipeline::run_with_sink`].
///
/// The round is a two-phase parallel exchange. Each **map worker** maps its
/// chunk, hashes every emitted key exactly once (FxHash), and partitions
/// its own records into `threads` buckets keyed by [`shard_for_hash`] —
/// combining first when a combiner is attached, in which case the grouping
/// reuses the same per-key hash. The **coordinator** only transposes bucket
/// ownership (worker-major to reducer-major); it never touches a record. Each
/// **reduce worker** then groups the buckets destined for it — reusing the
/// precomputed hashes via [`Prehashed`] — sorts its keys when
/// [`EngineConfig::deterministic`] is set, and reduces **straight into a
/// private shard of `sink`** ([`OutputSink::new_shard`]); the coordinator
/// folds the shards back in worker order, so no stage ever merges the outputs
/// into an engine-owned `Vec`. Debug builds assert the hash-once invariant on
/// every worker (see [`crate::hash::debug_hash_count`]).
///
/// Two executors implement this dataflow: the persistent [`WorkerPool`]
/// (default — see [`execute_round_pooled`]) and the legacy per-round
/// `std::thread::scope` path ([`execute_round_scoped`], selected with
/// [`EngineConfig::scoped_threads`]). Their outputs and every metrics counter
/// are byte-identical by construction; the parity suites pin it.
pub(crate) fn execute_round_into<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
) -> JobMetrics
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send + 'static,
{
    match config.pool() {
        Some(pool) => {
            // The arena path handles combiner-less rounds only: a combined
            // bucket carries `Vec<V>` groups the flat arena format does not
            // model, so combining rounds keep the classic representation.
            let combining = config.use_combiners && round.combiner.is_some();
            if config.use_arena && !combining {
                if let Some(arena) = round.arena {
                    return arena(inputs, round, config, sink, pool);
                }
            }
            execute_round_pooled(inputs, round, config, sink, pool)
        }
        None => execute_round_scoped(inputs, round, config, sink),
    }
}

/// The chunked-input sibling of [`execute_round_into`]: streams the chunk
/// iterator through the arena executor when the round qualifies for it (worker
/// pool, [`Round::arena`] opt-in, no active combiner — the same gate as the
/// slice dispatch), and otherwise materializes the chunks and falls back,
/// since the classic executors need the whole input slice resident anyway.
pub(crate) fn execute_round_chunked_into<'s, I, K, V, O>(
    chunks: &mut dyn Iterator<Item = InputChunk<'s, I>>,
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
) -> JobMetrics
where
    I: Sync + Clone,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send + 'static,
{
    if let Some(pool) = config.pool() {
        let combining = config.use_combiners && round.combiner.is_some();
        if config.use_arena && !combining {
            if let Some(arena_chunked) = round.arena_chunked {
                return arena_chunked(chunks, round, config, sink, pool);
            }
        }
    }
    let inputs = materialize_chunks(chunks);
    execute_round_into(&inputs, round, config, sink)
}

/// The pre-pool executor: one `std::thread::scope` spawn set per phase, one
/// fixed input chunk per map worker. Kept verbatim as the determinism
/// baseline the pooled path is pinned against, and for the
/// `reproduce shuffle` pool-vs-scoped comparison column.
fn execute_round_scoped<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
) -> JobMetrics
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send + 'static,
{
    let threads = config.num_threads.max(1);
    let combine = config.use_combiners;
    let mut metrics = JobMetrics {
        input_records: inputs.len(),
        ..JobMetrics::default()
    };

    // ---- Map + partition (+ combine) phase --------------------------------
    let map_start = Instant::now();
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let mapper = &*round.mapper;
    let weigher = &*round.record_bytes;
    let combiner = if combine {
        round.combiner.as_deref()
    } else {
        None
    };
    let mapped: Vec<MapOutcome<K, V>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    #[cfg(debug_assertions)]
                    let _ = crate::hash::debug_hash_count::take();
                    let mut ctx = MapContext::new();
                    for record in chunk {
                        mapper.map(record, &mut ctx);
                    }
                    let pairs = ctx.into_pairs();
                    let emitted = pairs.len();

                    // Partition this worker's emissions into one bucket per
                    // reduce worker, hashing each key exactly once and
                    // carrying the hash with the record.
                    let partition_start = Instant::now();
                    let mut bytes = 0u64;
                    let mut kept = 0usize;
                    let buckets: Vec<ShuffleBucket<K, V>> = match combiner {
                        None => {
                            let mut buckets: Vec<Vec<(u64, K, V)>> =
                                (0..threads).map(|_| Vec::new()).collect();
                            for (key, value) in pairs {
                                let hash = hash_for_shuffle(&key);
                                bytes += weigher(&key, &value) as u64;
                                buckets[shard_for_hash(hash, threads)].push((hash, key, value));
                            }
                            buckets.into_iter().map(ShuffleBucket::Flat).collect()
                        }
                        Some(combiner) => {
                            // Group this shard's pairs by key (per-key value
                            // order is emission order), combine each group,
                            // then route it with the hash computed while
                            // grouping.
                            let mut groups: PrehashedMap<K, Vec<V>> =
                                prehashed_map_with_capacity(pairs.len());
                            for (key, value) in pairs {
                                groups.entry(Prehashed::new(key)).or_default().push(value);
                            }
                            let mut buckets: Vec<Vec<(u64, K, Vec<V>)>> =
                                (0..threads).map(|_| Vec::new()).collect();
                            for (key, values) in groups {
                                let values = combiner.combine(key.key(), values);
                                kept += values.len();
                                for value in &values {
                                    bytes += weigher(key.key(), value) as u64;
                                }
                                let hash = key.hash();
                                buckets[shard_for_hash(hash, threads)].push((
                                    hash,
                                    key.into_key(),
                                    values,
                                ));
                            }
                            buckets.into_iter().map(ShuffleBucket::Combined).collect()
                        }
                    };
                    let partition_time = partition_start.elapsed();
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        crate::hash::debug_hash_count::take() as usize,
                        emitted,
                        "hash-once invariant: a map worker hashes each emitted key exactly once"
                    );
                    MapOutcome {
                        buckets,
                        emitted,
                        kept,
                        bytes,
                        partition_time,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map worker panicked"))
            .collect()
    });
    metrics.map_time = map_start.elapsed();
    metrics.partition_time = mapped
        .iter()
        .map(|outcome| outcome.partition_time)
        .max()
        .unwrap_or_default();
    metrics.key_value_pairs = mapped.iter().map(|outcome| outcome.emitted).sum();
    metrics.shuffle_bytes = mapped.iter().map(|outcome| outcome.bytes).sum();
    if combiner.is_some() {
        metrics.combiner_input_records = metrics.key_value_pairs;
        metrics.combiner_output_records = mapped.iter().map(|outcome| outcome.kept).sum();
        metrics.shuffle_records = metrics.combiner_output_records;
    } else {
        metrics.shuffle_records = metrics.key_value_pairs;
    }

    // ---- Exchange phase ---------------------------------------------------
    // Transpose worker-major buckets into reducer-major inboxes. Pure
    // ownership moves: the coordinator handles `workers x threads` vectors,
    // never a record, so this stage is O(threads^2) regardless of data size.
    let shuffle_start = Instant::now();
    let workers = mapped.len();
    let mut inboxes: Vec<Vec<ShuffleBucket<K, V>>> =
        (0..threads).map(|_| Vec::with_capacity(workers)).collect();
    for outcome in mapped {
        for (target, bucket) in outcome.buckets.into_iter().enumerate() {
            inboxes[target].push(bucket);
        }
    }
    metrics.shuffle_time = shuffle_start.elapsed();

    // ---- Reduce phase (group + reduce per worker) -------------------------
    // Each reduce worker owns a disjoint set of keys (its shard). It groups
    // its inbox with the precomputed hashes, so per-key value order is
    // (map-worker order, within-worker order) and therefore deterministic.
    // Outputs stream into one private sink shard per worker, created here in
    // worker order so the fold below can preserve deterministic output order.
    let deterministic = config.deterministic;
    let reducer = &*round.reducer;
    let reduce_start = Instant::now();
    let sink_shards: Vec<Box<dyn SinkShard<O>>> =
        (0..inboxes.len()).map(|_| sink.new_shard()).collect();
    let reduced: Vec<ReduceOutcome<O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inboxes
            .into_iter()
            .zip(sink_shards)
            .map(|(inbox, sink_shard)| {
                scope.spawn(move || {
                    #[cfg(debug_assertions)]
                    let _ = crate::hash::debug_hash_count::take();
                    // Capacity heuristic: the largest inbound bucket (distinct
                    // keys when combined, one worker's pairs when flat) capped
                    // so a low-cardinality shard never pre-allocates a table
                    // sized to its record count; past the cap the map doubles
                    // a handful of times, which is cheap.
                    let capacity = inbox
                        .iter()
                        .map(|b| b.key_entries())
                        .max()
                        .unwrap_or(0)
                        .min(1 << 16);
                    let mut grouped: PrehashedMap<K, Vec<V>> =
                        prehashed_map_with_capacity(capacity);
                    for bucket in inbox {
                        match bucket {
                            ShuffleBucket::Flat(pairs) => {
                                for (hash, key, value) in pairs {
                                    grouped
                                        .entry(Prehashed::from_parts(hash, key))
                                        .or_default()
                                        .push(value);
                                }
                            }
                            ShuffleBucket::Combined(combined) => {
                                for (hash, key, mut values) in combined {
                                    grouped
                                        .entry(Prehashed::from_parts(hash, key))
                                        .or_default()
                                        .append(&mut values);
                                }
                            }
                        }
                    }
                    let mut groups: Vec<(K, Vec<V>)> = grouped
                        .into_iter()
                        .map(|(key, values)| (key.into_key(), values))
                        .collect();
                    if deterministic {
                        // Sort keys for deterministic per-shard iteration order.
                        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    }
                    let group_count = groups.len();
                    let max_input = groups.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
                    let mut ctx = ReduceContext::with_shard(sink_shard);
                    for (key, values) in &groups {
                        reducer.reduce(key, values, &mut ctx);
                    }
                    let (shard, work, emitted) = ctx.into_parts();
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        crate::hash::debug_hash_count::take(),
                        0,
                        "hash-once invariant: reduce-side grouping reuses precomputed hashes"
                    );
                    ReduceOutcome {
                        shard,
                        emitted,
                        work,
                        groups: group_count,
                        max_input,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker panicked"))
            .collect()
    });
    metrics.reduce_time = reduce_start.elapsed();
    metrics.reducers_used = reduced.iter().map(|outcome| outcome.groups).sum();
    metrics.max_reducer_input = reduced
        .iter()
        .map(|outcome| outcome.max_input)
        .max()
        .unwrap_or(0);

    // Fold the worker shards back into the sink, in worker order — for a
    // collecting sink this is the old reserve-and-append merge; for a
    // counting sink no record was ever buffered anywhere.
    for outcome in reduced {
        metrics.reducer_work += outcome.work;
        metrics.outputs += outcome.emitted;
        sink.fold(outcome.shard);
    }
    metrics
}

/// Sub-chunks smaller than this are not worth a work-stealing claim; tiny
/// inputs keep one task per logical shard instead.
const MIN_SUB_CHUNK: usize = 32;

/// A one-shot result slot a pool task fills for the coordinator.
pub(crate) type Slot<T> = Mutex<Option<T>>;

/// One reduce shard's work package: its shuffle inbox plus the sink shard
/// its outputs stream into.
type ReduceWork<K, V, O> = (Vec<ShuffleBucket<K, V>>, Box<dyn SinkShard<O>>);

/// The persistent-pool executor. Same dataflow and **byte-identical results**
/// as [`execute_round_scoped`], with three structural differences:
///
/// 1. **No thread spawns.** Map and reduce tasks run on `pool`'s long-lived
///    workers (plus the calling thread) via [`WorkerPool::run_indexed`].
/// 2. **Work-stealing map granularity.** The scoped path fixes one input
///    chunk per worker, so one skewed chunk straggles the whole phase. Here
///    the *logical* map shards — whose boundaries define combiner scope and
///    bucket contents, and therefore must match the scoped path exactly —
///    are split into smaller sub-chunks that any worker can claim. A
///    sub-chunk only *maps* (stage A, no hashing); a second per-shard task
///    (stage B) concatenates its shard's sub-chunk emissions **in order** and
///    partitions them exactly as the scoped worker would have: same pair
///    sequence, same grouping-map capacity, hence the same bucket contents in
///    the same order.
/// 3. **Buffer recycling.** Pair vectors and per-reduce-worker buckets are
///    drawn from and returned to the pool's [`crate::pool::BufferPool`], so
///    a long-lived engine stops paying per-round allocations for the
///    shuffle's scaffolding.
///
/// The reduce phase is sharded by prehash range ([`shard_for_hash`] over
/// `num_threads` shards) exactly as before — `num_threads` names the shard
/// count, while the pool decides how many OS threads serve those shards, so
/// reducer parallelism is decoupled from worker count.
fn execute_round_pooled<I, K, V, O>(
    inputs: &[I],
    round: &Round<'_, I, K, V, O>,
    config: &EngineConfig,
    sink: &mut dyn OutputSink<O>,
    pool: &WorkerPool,
) -> JobMetrics
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send + 'static,
{
    let threads = config.num_threads.max(1);
    let combine = config.use_combiners;
    let buffers = pool.buffers();
    let mut metrics = JobMetrics {
        input_records: inputs.len(),
        ..JobMetrics::default()
    };

    // ---- Map + partition (+ combine) phase --------------------------------
    // Logical shard boundaries must mirror the scoped path bit for bit: the
    // combiner runs per logical shard and bucket push order follows shard
    // emission order, so both feed the determinism guarantee.
    let map_start = Instant::now();
    let chunk_size = inputs.len().div_ceil(threads).max(1);
    let shards: Vec<&[I]> = inputs.chunks(chunk_size).collect();
    let mapper = &*round.mapper;
    let weigher = &*round.record_bytes;
    let combiner = if combine {
        round.combiner.as_deref()
    } else {
        None
    };

    // Stage A: map sub-chunks under work stealing. Splitting is free for
    // parity — only the per-shard *concatenation order* of emissions matters,
    // and sub-chunks are reassembled in order by stage B. A single-threaded
    // round stays inline (splits = 1 ⇒ run_indexed's count-1 fast path).
    let contexts = pool.workers() + 1;
    let splits = if threads == 1 {
        1
    } else {
        (contexts * 4).div_ceil(shards.len().max(1)).max(1)
    };
    let sub_size = chunk_size.div_ceil(splits).max(MIN_SUB_CHUNK);
    let mut sub_tasks: Vec<&[I]> = Vec::new();
    let mut shard_subs: Vec<std::ops::Range<usize>> = Vec::with_capacity(shards.len());
    for shard in &shards {
        let start = sub_tasks.len();
        sub_tasks.extend(shard.chunks(sub_size));
        shard_subs.push(start..sub_tasks.len());
    }
    let pair_slots: Vec<Slot<Vec<(K, V)>>> =
        (0..sub_tasks.len()).map(|_| Mutex::new(None)).collect();
    pool.run_indexed(sub_tasks.len(), |task| {
        let mut ctx = MapContext::with_buffer(buffers.take());
        for record in sub_tasks[task] {
            mapper.map(record, &mut ctx);
        }
        *pair_slots[task].lock().expect("map slot poisoned") = Some(ctx.into_pairs());
    });

    // Stage B: one task per logical shard — partition (and combine) the
    // shard's emissions exactly as the scoped map worker does after mapping.
    let outcome_slots: Vec<Slot<MapOutcome<K, V>>> =
        (0..shards.len()).map(|_| Mutex::new(None)).collect();
    pool.run_indexed(shards.len(), |shard| {
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        let mut parts: Vec<Vec<(K, V)>> = shard_subs[shard]
            .clone()
            .map(|task| {
                pair_slots[task]
                    .lock()
                    .expect("map slot poisoned")
                    .take()
                    .expect("stage A filled every slot")
            })
            .collect();
        let emitted: usize = parts.iter().map(Vec::len).sum();

        let partition_start = Instant::now();
        let mut bytes = 0u64;
        let mut kept = 0usize;
        let buckets: Vec<ShuffleBucket<K, V>> = match combiner {
            None => {
                let mut buckets: Vec<Vec<(u64, K, V)>> =
                    (0..threads).map(|_| buffers.take()).collect();
                for mut part in parts.drain(..) {
                    for (key, value) in part.drain(..) {
                        let hash = hash_for_shuffle(&key);
                        bytes += weigher(&key, &value) as u64;
                        buckets[shard_for_hash(hash, threads)].push((hash, key, value));
                    }
                    buffers.give(part);
                }
                buckets.into_iter().map(ShuffleBucket::Flat).collect()
            }
            Some(combiner) => {
                // Identical capacity to the scoped path (`emitted` is what
                // `pairs.len()` was there): grouping-map iteration order is a
                // function of hasher, capacity and insertion order, and all
                // three now match, so the combined buckets come out in the
                // scoped path's exact order.
                let mut groups: PrehashedMap<K, Vec<V>> = prehashed_map_with_capacity(emitted);
                for mut part in parts.drain(..) {
                    for (key, value) in part.drain(..) {
                        groups.entry(Prehashed::new(key)).or_default().push(value);
                    }
                    buffers.give(part);
                }
                let mut buckets: Vec<Vec<(u64, K, Vec<V>)>> =
                    (0..threads).map(|_| buffers.take()).collect();
                for (key, values) in groups {
                    let values = combiner.combine(key.key(), values);
                    kept += values.len();
                    for value in &values {
                        bytes += weigher(key.key(), value) as u64;
                    }
                    let hash = key.hash();
                    buckets[shard_for_hash(hash, threads)].push((hash, key.into_key(), values));
                }
                buckets.into_iter().map(ShuffleBucket::Combined).collect()
            }
        };
        let partition_time = partition_start.elapsed();
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            crate::hash::debug_hash_count::take() as usize,
            emitted,
            "hash-once invariant: a partition task hashes each emitted key exactly once"
        );
        *outcome_slots[shard].lock().expect("map outcome poisoned") = Some(MapOutcome {
            buckets,
            emitted,
            kept,
            bytes,
            partition_time,
        });
    });
    let mapped: Vec<MapOutcome<K, V>> = outcome_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("map outcome poisoned")
                .expect("stage B filled every outcome")
        })
        .collect();
    metrics.map_time = map_start.elapsed();
    metrics.partition_time = mapped
        .iter()
        .map(|outcome| outcome.partition_time)
        .max()
        .unwrap_or_default();
    metrics.key_value_pairs = mapped.iter().map(|outcome| outcome.emitted).sum();
    metrics.shuffle_bytes = mapped.iter().map(|outcome| outcome.bytes).sum();
    if combiner.is_some() {
        metrics.combiner_input_records = metrics.key_value_pairs;
        metrics.combiner_output_records = mapped.iter().map(|outcome| outcome.kept).sum();
        metrics.shuffle_records = metrics.combiner_output_records;
    } else {
        metrics.shuffle_records = metrics.key_value_pairs;
    }

    // ---- Exchange phase ---------------------------------------------------
    // Identical transpose to the scoped path: pure ownership moves in shard
    // order, never touching a record.
    let shuffle_start = Instant::now();
    let workers = mapped.len();
    let mut inboxes: Vec<Vec<ShuffleBucket<K, V>>> =
        (0..threads).map(|_| Vec::with_capacity(workers)).collect();
    for outcome in mapped {
        for (target, bucket) in outcome.buckets.into_iter().enumerate() {
            inboxes[target].push(bucket);
        }
    }
    metrics.shuffle_time = shuffle_start.elapsed();

    // ---- Reduce phase (group + reduce per shard) --------------------------
    // One pool task per prehash-range shard. Sink shards are created by the
    // coordinator in shard order and folded back in shard order — the same
    // fold sequence the scoped path produces, preserving deterministic
    // output order.
    let deterministic = config.deterministic;
    let reducer = &*round.reducer;
    let reduce_start = Instant::now();
    let reduce_slots: Vec<Slot<ReduceOutcome<O>>> =
        (0..inboxes.len()).map(|_| Mutex::new(None)).collect();
    let reduce_inputs: Vec<Slot<ReduceWork<K, V, O>>> = inboxes
        .into_iter()
        .map(|inbox| Mutex::new(Some((inbox, sink.new_shard()))))
        .collect();
    pool.run_indexed(reduce_inputs.len(), |shard| {
        #[cfg(debug_assertions)]
        let _ = crate::hash::debug_hash_count::take();
        let (inbox, sink_shard) = reduce_inputs[shard]
            .lock()
            .expect("reduce input poisoned")
            .take()
            .expect("each reduce shard is claimed once");
        // Same capacity heuristic as the scoped path (see there).
        let capacity = inbox
            .iter()
            .map(|b| b.key_entries())
            .max()
            .unwrap_or(0)
            .min(1 << 16);
        let mut grouped: PrehashedMap<K, Vec<V>> = prehashed_map_with_capacity(capacity);
        for bucket in inbox {
            match bucket {
                ShuffleBucket::Flat(mut pairs) => {
                    for (hash, key, value) in pairs.drain(..) {
                        grouped
                            .entry(Prehashed::from_parts(hash, key))
                            .or_default()
                            .push(value);
                    }
                    buffers.give(pairs);
                }
                ShuffleBucket::Combined(mut combined) => {
                    for (hash, key, mut values) in combined.drain(..) {
                        grouped
                            .entry(Prehashed::from_parts(hash, key))
                            .or_default()
                            .append(&mut values);
                    }
                    buffers.give(combined);
                }
            }
        }
        let mut groups: Vec<(K, Vec<V>)> = grouped
            .into_iter()
            .map(|(key, values)| (key.into_key(), values))
            .collect();
        if deterministic {
            groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        let group_count = groups.len();
        let max_input = groups.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut ctx = ReduceContext::with_shard(sink_shard);
        for (key, values) in &groups {
            reducer.reduce(key, values, &mut ctx);
        }
        let (shard_out, work, emitted) = ctx.into_parts();
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            crate::hash::debug_hash_count::take(),
            0,
            "hash-once invariant: reduce-side grouping reuses precomputed hashes"
        );
        *reduce_slots[shard].lock().expect("reduce outcome poisoned") = Some(ReduceOutcome {
            shard: shard_out,
            emitted,
            work,
            groups: group_count,
            max_input,
        });
    });
    let reduced: Vec<ReduceOutcome<O>> = reduce_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("reduce outcome poisoned")
                .expect("every reduce shard completed")
        })
        .collect();
    metrics.reduce_time = reduce_start.elapsed();
    metrics.reducers_used = reduced.iter().map(|outcome| outcome.groups).sum();
    metrics.max_reducer_input = reduced
        .iter()
        .map(|outcome| outcome.max_input)
        .max()
        .unwrap_or(0);

    for outcome in reduced {
        metrics.reducer_work += outcome.work;
        metrics.outputs += outcome.emitted;
        sink.fold(outcome.shard);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_products_are_send_and_sync() {
        // A long-lived service shares the engine configuration and job
        // reports across worker threads; keep them thread-clean.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::EngineConfig>();
        assert_send_sync::<PipelineReport>();
        assert_send_sync::<RoundMetrics>();
        assert_send_sync::<crate::JobMetrics>();
        assert_send_sync::<crate::CountSink>();
        assert_send_sync::<crate::CollectSink<u64>>();
    }

    /// Word-count style single-round pipeline with a summing combiner.
    fn counting_round<'a>(combine: bool) -> Round<'a, u64, u64, u64, (u64, u64)> {
        let round = Round::new(
            "count",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 10, 1),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.add_work(vs.len() as u64);
                ctx.emit((*k, vs.iter().sum()));
            },
        );
        if combine {
            round.combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()])
        } else {
            round
        }
    }

    #[test]
    fn combiner_reduces_shuffle_records_without_changing_outputs() {
        let inputs: Vec<u64> = (0..1000).collect();
        let config = EngineConfig::with_threads(4);
        let (mut with, report_with) = Pipeline::new()
            .round(counting_round(true))
            .run(&inputs, &config);
        let (mut without, report_without) = Pipeline::new()
            .round(counting_round(false))
            .run(&inputs, &config);
        with.sort_unstable();
        without.sort_unstable();
        assert_eq!(with, without);
        let m_with = &report_with.rounds[0].metrics;
        let m_without = &report_without.rounds[0].metrics;
        assert_eq!(m_with.key_value_pairs, 1000);
        assert_eq!(m_with.combiner_input_records, 1000);
        // 4 map shards x 10 keys: at most 40 combined records survive.
        assert!(m_with.combiner_output_records <= 40);
        assert_eq!(m_with.shuffle_records, m_with.combiner_output_records);
        assert!(m_with.shuffle_bytes < m_without.shuffle_bytes);
        assert_eq!(m_without.shuffle_records, 1000);
        assert_eq!(m_without.combiner_input_records, 0);
        assert_eq!(m_without.combiner_output_records, 0);
    }

    #[test]
    fn disabling_combiners_in_the_config_bypasses_the_combiner() {
        let inputs: Vec<u64> = (0..500).collect();
        let config = EngineConfig::with_threads(3).combiners(false);
        let (_, report) = Pipeline::new()
            .round(counting_round(true))
            .run(&inputs, &config);
        let metrics = &report.rounds[0].metrics;
        assert_eq!(metrics.combiner_input_records, 0);
        assert_eq!(metrics.shuffle_records, metrics.key_value_pairs);
    }

    #[test]
    fn two_round_pipeline_threads_outputs_into_the_next_round() {
        // Round 1 sums values per key modulo 7; round 2 counts how many keys
        // share each sum. Verified against a direct serial computation.
        let inputs: Vec<u64> = (0..200).map(|i| i * 3 % 91).collect();
        let sums_round = Round::new(
            "sum",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 7, *x),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.emit((*k, vs.iter().sum()))
            },
        )
        .combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()]);
        let histogram_round = Round::new(
            "histogram",
            |&(_, sum): &(u64, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(sum, 1),
            |sum: &u64, ones: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.emit((*sum, ones.iter().sum()))
            },
        );
        let pipeline = Pipeline::new().round(sums_round).round(histogram_round);
        assert_eq!(pipeline.num_rounds(), 2);
        let (histogram, report) = pipeline.run(&inputs, &EngineConfig::with_threads(4));

        let mut expected_sums: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for x in &inputs {
            *expected_sums.entry(x % 7).or_default() += x;
        }
        let mut expected_histogram: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for sum in expected_sums.values() {
            *expected_histogram.entry(*sum).or_default() += 1;
        }
        let mut got = histogram.clone();
        got.sort_unstable();
        let mut expected: Vec<(u64, u64)> = expected_histogram.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(got, expected);

        assert_eq!(report.num_rounds(), 2);
        assert_eq!(report.rounds[0].name, "sum");
        assert_eq!(report.rounds[1].name, "histogram");
        let combined = report.combined();
        assert_eq!(
            combined.key_value_pairs,
            report.rounds[0].metrics.key_value_pairs + report.rounds[1].metrics.key_value_pairs
        );
        assert_eq!(combined.outputs, report.rounds[1].metrics.outputs);
        assert_eq!(report.total_shuffle_records(), combined.shuffle_records);
    }

    #[test]
    fn prepare_reshapes_between_rounds_without_metrics() {
        let inputs: Vec<u64> = (0..100).collect();
        let (outputs, report) = Pipeline::new()
            .round(counting_round(true))
            .prepare(|counts: Vec<(u64, u64)>| {
                // Keep only the even keys for the next round.
                counts.into_iter().filter(|(k, _)| k % 2 == 0).collect()
            })
            .round(Round::new(
                "echo",
                |&(k, c): &(u64, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(k, c),
                |k: &u64, cs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| ctx.emit((*k, cs[0])),
            ))
            .run(&inputs, &EngineConfig::serial());
        assert_eq!(report.num_rounds(), 2);
        assert_eq!(outputs.len(), 5); // keys 0, 2, 4, 6, 8
        assert_eq!(report.rounds[1].metrics.input_records, 5);
    }

    #[test]
    fn deterministic_runs_repeat_exactly_with_and_without_combiners() {
        let inputs: Vec<u64> = (0..400).map(|i| i * 17 % 101).collect();
        for use_combiners in [true, false] {
            let config = EngineConfig {
                num_threads: 3,
                use_combiners,
                ..EngineConfig::default()
            };
            let run = || {
                Pipeline::new()
                    .round(counting_round(true))
                    .run(&inputs, &config)
                    .0
            };
            assert_eq!(run(), run(), "use_combiners={use_combiners}");
        }
    }

    #[test]
    fn default_record_weigher_prices_fixed_size_records() {
        let inputs: Vec<u64> = (0..50).collect();
        let (_, report) = Pipeline::new()
            .round(counting_round(false))
            .run(&inputs, &EngineConfig::serial());
        let metrics = &report.rounds[0].metrics;
        // Key and value are both u64: 16 bytes per shipped record.
        assert_eq!(metrics.shuffle_bytes, metrics.shuffle_records as u64 * 16);
    }

    #[test]
    fn custom_record_weigher_prices_heap_backed_keys() {
        let round = Round::new(
            "vec-keys",
            |x: &u64, ctx: &mut MapContext<Vec<u32>, u64>| {
                ctx.emit(vec![(x % 3) as u32, (x % 5) as u32], *x)
            },
            |k: &Vec<u32>, vs: &[u64], ctx: &mut ReduceContext<(Vec<u32>, usize)>| {
                ctx.emit((k.clone(), vs.len()))
            },
        )
        .record_bytes(|k: &Vec<u32>, _v: &u64| 4 * k.len() + 8);
        let inputs: Vec<u64> = (0..60).collect();
        let (_, report) = Pipeline::new()
            .round(round)
            .run(&inputs, &EngineConfig::serial());
        let metrics = &report.rounds[0].metrics;
        assert_eq!(metrics.shuffle_bytes, metrics.shuffle_records as u64 * 16);
    }

    #[test]
    fn empty_pipeline_passes_inputs_through() {
        let (outputs, report) = Pipeline::new().run(&[1u64, 2, 3], &EngineConfig::serial());
        assert_eq!(outputs, vec![1, 2, 3]);
        assert_eq!(report.num_rounds(), 0);
        assert_eq!(report.combined(), JobMetrics::default());
    }

    #[test]
    fn partition_time_is_measured_and_bounded_by_the_map_phase() {
        let inputs: Vec<u64> = (0..20_000).collect();
        let (_, report) = Pipeline::new()
            .round(counting_round(false))
            .run(&inputs, &EngineConfig::with_threads(4));
        let metrics = &report.rounds[0].metrics;
        // Partitioning happens inside the map workers, so its critical-path
        // time can never exceed the whole map phase.
        assert!(metrics.partition_time <= metrics.map_time);
    }

    /// Per-round metrics with wall-clock timings zeroed, so two runs can be
    /// compared counter for counter.
    fn counters_of(report: &PipelineReport) -> Vec<(String, JobMetrics)> {
        report
            .rounds
            .iter()
            .map(|round| {
                let mut metrics = round.metrics.clone();
                metrics.map_time = Duration::ZERO;
                metrics.partition_time = Duration::ZERO;
                metrics.shuffle_time = Duration::ZERO;
                metrics.reduce_time = Duration::ZERO;
                metrics.spill_read_secs = Duration::ZERO;
                (round.name.clone(), metrics)
            })
            .collect()
    }

    #[test]
    fn run_with_sink_collect_matches_run_exactly() {
        // The legacy Vec path is a CollectSink wrapper, so outputs and every
        // metric must agree pair for pair, at every thread count.
        let inputs: Vec<u64> = (0..900).map(|i| i * 31 % 257).collect();
        for threads in [1usize, 2, 8] {
            for combine in [true, false] {
                let config = EngineConfig::with_threads(threads).combiners(combine);
                let (outputs, report) = Pipeline::new()
                    .round(counting_round(combine))
                    .run(&inputs, &config);
                let mut collected = crate::sink::CollectSink::new();
                let sink_report = Pipeline::new()
                    .round(counting_round(combine))
                    .run_with_sink(&inputs, &config, &mut collected);
                assert_eq!(
                    collected.into_items(),
                    outputs,
                    "threads={threads} combine={combine}"
                );
                assert_eq!(
                    counters_of(&sink_report),
                    counters_of(&report),
                    "threads={threads} combine={combine}"
                );
            }
        }
    }

    #[test]
    fn count_sink_counts_without_changing_any_metric() {
        let inputs: Vec<u64> = (0..1200).map(|i| i * 7 % 401).collect();
        for threads in [1usize, 3, 8] {
            let config = EngineConfig::with_threads(threads);
            let (outputs, report) = Pipeline::new()
                .round(counting_round(true))
                .run(&inputs, &config);
            let mut counter = crate::sink::CountSink::new();
            let count_report = Pipeline::new().round(counting_round(true)).run_with_sink(
                &inputs,
                &config,
                &mut counter,
            );
            assert_eq!(counter.count(), outputs.len(), "threads={threads}");
            // Byte-identical metrics: the output path never affects what the
            // mappers emit, the combiner merges, or the shuffle ships.
            assert_eq!(
                counters_of(&count_report),
                counters_of(&report),
                "threads={threads}"
            );
            assert_eq!(count_report.combined().outputs, outputs.len());
        }
    }

    #[test]
    fn only_the_final_round_streams_in_a_multi_round_pipeline() {
        let inputs: Vec<u64> = (0..300).collect();
        let build = || {
            Pipeline::new()
                .round(counting_round(true))
                .round(Round::new(
                    "echo",
                    |&(k, c): &(u64, u64), ctx: &mut MapContext<u64, u64>| ctx.emit(k, c),
                    |k: &u64, cs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                        ctx.emit((*k, cs[0]))
                    },
                ))
        };
        let config = EngineConfig::with_threads(4);
        let (outputs, report) = build().run(&inputs, &config);
        let mut counter = crate::sink::CountSink::new();
        let sink_report = build().run_with_sink(&inputs, &config, &mut counter);
        assert_eq!(counter.count(), outputs.len());
        assert_eq!(sink_report.num_rounds(), 2);
        assert_eq!(counters_of(&sink_report), counters_of(&report));
    }

    #[test]
    fn sink_mode_handles_non_round_tails() {
        // A zero-round pipeline and a trailing prepare cannot stream from
        // reduce workers; the records fall back to OutputSink::accept.
        let mut collected = crate::sink::CollectSink::new();
        let report =
            Pipeline::new().run_with_sink(&[1u64, 2, 3], &EngineConfig::serial(), &mut collected);
        assert_eq!(collected.into_items(), vec![1, 2, 3]);
        assert_eq!(report.num_rounds(), 0);

        let inputs: Vec<u64> = (0..50).collect();
        let mut counter = crate::sink::CountSink::new();
        let report = Pipeline::new()
            .round(counting_round(true))
            .prepare(|counts: Vec<(u64, u64)>| {
                counts.into_iter().filter(|(k, _)| k % 2 == 0).collect()
            })
            .run_with_sink(&inputs, &EngineConfig::serial(), &mut counter);
        assert_eq!(counter.count(), 5);
        assert_eq!(report.num_rounds(), 1);
    }

    #[test]
    fn deterministic_sink_delivery_preserves_the_exact_output_order() {
        // FnSink callbacks see records in the same order the Vec path returns.
        let inputs: Vec<u64> = (0..500).map(|i| i * 13 % 149).collect();
        for threads in [2usize, 8] {
            let config = EngineConfig::with_threads(threads);
            let (outputs, _) = Pipeline::new()
                .round(counting_round(true))
                .run(&inputs, &config);
            let mut seen = Vec::new();
            let delivered = {
                let mut sink = crate::sink::FnSink::new(|pair: (u64, u64)| seen.push(pair));
                Pipeline::new()
                    .round(counting_round(true))
                    .run_with_sink(&inputs, &config, &mut sink);
                sink.count()
            };
            assert_eq!(delivered, outputs.len());
            assert_eq!(seen, outputs, "threads={threads}");
        }
    }

    /// An arena round with a sum reducer, over varint-codable u64 keys.
    fn arena_round<'a>(arena: bool) -> Round<'a, u64, u64, u64, (u64, u64)> {
        let round = Round::new(
            "arena-count",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 37, *x),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.add_work(vs.len() as u64);
                ctx.emit((*k, vs.iter().sum()));
            },
        );
        if arena {
            round.arena()
        } else {
            round
        }
    }

    #[test]
    fn arena_shuffle_matches_classic_outputs_and_counters() {
        // The arena executor must be byte-identical to both classic executors
        // — outputs in order, and every non-timing metric — in deterministic
        // *and* relaxed mode (the grouping tables iterate identically).
        let inputs: Vec<u64> = (0..3000).map(|i| i * 29 % 613).collect();
        for threads in [1usize, 2, 8] {
            for deterministic in [true, false] {
                let config = EngineConfig {
                    num_threads: threads,
                    deterministic,
                    ..EngineConfig::default()
                };
                let (arena_out, arena_report) = Pipeline::new()
                    .round(arena_round(true))
                    .run(&inputs, &config);
                let classic_config = config.clone().arena_shuffle(false);
                let (classic_out, classic_report) = Pipeline::new()
                    .round(arena_round(true))
                    .run(&inputs, &classic_config);
                let scoped_config = config.clone().scoped_threads();
                let (scoped_out, scoped_report) = Pipeline::new()
                    .round(arena_round(true))
                    .run(&inputs, &scoped_config);
                assert_eq!(arena_out, classic_out, "threads={threads}");
                assert_eq!(arena_out, scoped_out, "threads={threads}");
                assert_eq!(counters_of(&arena_report), counters_of(&classic_report));
                assert_eq!(counters_of(&arena_report), counters_of(&scoped_report));
            }
        }
    }

    #[test]
    fn arena_rounds_with_combiners_fall_back_to_the_classic_path() {
        // A combiner and an arena opt-in can coexist on a round; the engine
        // runs the classic combined path (and its counters show it).
        let inputs: Vec<u64> = (0..800).collect();
        let round = counting_round(true).arena();
        assert!(round.has_arena());
        let config = EngineConfig::with_threads(4);
        let (mut outputs, report) = Pipeline::new().round(round).run(&inputs, &config);
        outputs.sort_unstable();
        let (mut plain, plain_report) = Pipeline::new()
            .round(counting_round(true))
            .run(&inputs, &config);
        plain.sort_unstable();
        assert_eq!(outputs, plain);
        assert!(report.rounds[0].metrics.combiner_input_records > 0);
        assert_eq!(counters_of(&report), counters_of(&plain_report));
    }

    /// Strips the spill counters so budgeted and unbudgeted runs can be
    /// compared on everything else — the cross-budget parity contract.
    fn without_spill_counters(counters: Vec<(String, JobMetrics)>) -> Vec<(String, JobMetrics)> {
        counters
            .into_iter()
            .map(|(name, mut metrics)| {
                metrics.spilled_bytes = 0;
                metrics.spill_runs = 0;
                (name, metrics)
            })
            .collect()
    }

    #[test]
    fn chunked_input_matches_the_slice_path_exactly() {
        // Feeding the slice path's own shard boundaries through the chunk
        // iterator — as borrowed slices or owned batches — must reproduce the
        // outputs and counters byte for byte, arena and fallback paths alike.
        let inputs: Vec<u64> = (0..4000).map(|i| i * 29 % 613).collect();
        for threads in [1usize, 2, 8] {
            for arena in [true, false] {
                let config = EngineConfig::with_threads(threads);
                let mut collected = crate::sink::CollectSink::new();
                let report = Pipeline::new().round(arena_round(arena)).run_with_sink(
                    &inputs,
                    &config,
                    &mut collected,
                );
                let outputs = collected.into_items();
                let chunk_size = inputs.len().div_ceil(threads).max(1);

                let mut sliced = crate::sink::CollectSink::new();
                let slice_report = Pipeline::new()
                    .round(arena_round(arena))
                    .run_chunked_with_sink(
                        inputs.chunks(chunk_size).map(InputChunk::Slice),
                        &config,
                        &mut sliced,
                    );
                assert_eq!(sliced.into_items(), outputs, "threads={threads}");
                assert_eq!(counters_of(&slice_report), counters_of(&report));

                let mut batched = crate::sink::CollectSink::new();
                let batch_report = Pipeline::new()
                    .round(arena_round(arena))
                    .run_chunked_with_sink(
                        inputs
                            .chunks(chunk_size)
                            .map(|chunk| InputChunk::Batch(chunk.to_vec())),
                        &config,
                        &mut batched,
                    );
                assert_eq!(batched.into_items(), outputs, "threads={threads}");
                assert_eq!(counters_of(&batch_report), counters_of(&report));
            }
        }
    }

    #[test]
    fn spill_counters_are_zero_without_a_budget() {
        let inputs: Vec<u64> = (0..5000).map(|i| i * 31 % 997).collect();
        let (_, report) = Pipeline::new()
            .round(arena_round(true))
            .run(&inputs, &EngineConfig::with_threads(4));
        let metrics = &report.rounds[0].metrics;
        assert_eq!(metrics.spilled_bytes, 0);
        assert_eq!(metrics.spill_runs, 0);
        assert_eq!(metrics.spill_read_secs, Duration::ZERO);
    }

    #[test]
    fn outputs_are_byte_identical_across_memory_budgets() {
        // ~100k records (~half a MiB of arena bytes) dwarf the forced 64 KiB
        // budget, so the smallest budget spills several epochs; the contract
        // is byte-identical outputs and counters (spill counters aside) at
        // every budget, in deterministic and relaxed mode.
        let inputs: Vec<u64> = (0..100_000).map(|i| i * 37 % 7919).collect();
        for threads in [2usize, 4] {
            for deterministic in [true, false] {
                let unbounded = EngineConfig {
                    num_threads: threads,
                    deterministic,
                    ..EngineConfig::default()
                };
                let (base_out, base_report) = Pipeline::new()
                    .round(arena_round(true))
                    .run(&inputs, &unbounded);
                assert_eq!(base_report.rounds[0].metrics.spilled_bytes, 0);
                for budget in [64 << 10, 1 << 20] {
                    let config = unbounded.clone().memory_budget(budget);
                    let (outputs, report) = Pipeline::new()
                        .round(arena_round(true))
                        .run(&inputs, &config);
                    assert_eq!(
                        outputs, base_out,
                        "threads={threads} deterministic={deterministic} budget={budget}"
                    );
                    assert_eq!(
                        without_spill_counters(counters_of(&report)),
                        without_spill_counters(counters_of(&base_report)),
                        "threads={threads} deterministic={deterministic} budget={budget}"
                    );
                    if budget == 64 << 10 {
                        let metrics = &report.rounds[0].metrics;
                        assert!(
                            metrics.spilled_bytes > 0,
                            "a 64 KiB budget under ~500 KiB of records must spill"
                        );
                        assert!(metrics.spill_runs > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_input_spills_under_a_budget_and_stays_identical() {
        // The streamed-input path composes with spilling: same outputs as the
        // unbudgeted slice path, with the spill counters lighting up.
        let inputs: Vec<u64> = (0..80_000).map(|i| i * 41 % 6007).collect();
        let threads = 4usize;
        let chunk_size = inputs.len().div_ceil(threads);
        let (base_out, _) = Pipeline::new()
            .round(arena_round(true))
            .run(&inputs, &EngineConfig::with_threads(threads));
        let config = EngineConfig::with_threads(threads).memory_budget(64 << 10);
        let mut collected = crate::sink::CollectSink::new();
        let report = Pipeline::new()
            .round(arena_round(true))
            .run_chunked_with_sink(
                inputs
                    .chunks(chunk_size)
                    .map(|chunk| InputChunk::Batch(chunk.to_vec())),
                &config,
                &mut collected,
            );
        assert_eq!(collected.into_items(), base_out);
        assert!(report.rounds[0].metrics.spilled_bytes > 0);
    }

    #[test]
    fn arena_flag_off_disables_the_arena_executor() {
        let inputs: Vec<u64> = (0..500).collect();
        let config = EngineConfig::with_threads(3).arena_shuffle(false);
        let (outputs, _) = Pipeline::new()
            .round(arena_round(true))
            .run(&inputs, &config);
        let (expected, _) = Pipeline::new()
            .round(arena_round(false))
            .run(&inputs, &config);
        assert_eq!(outputs, expected);
    }

    /// The hash-once invariant is asserted inside every map and reduce worker
    /// in debug builds; driving the engine through both shuffle paths (flat
    /// and combined) across thread counts exercises those assertions.
    #[test]
    fn hash_once_invariant_holds_on_both_shuffle_paths() {
        let inputs: Vec<u64> = (0..700).map(|i| i * 13 % 211).collect();
        for threads in [1usize, 2, 8] {
            for combine in [true, false] {
                let (outputs, report) = Pipeline::new()
                    .round(counting_round(combine))
                    .run(&inputs, &EngineConfig::with_threads(threads));
                assert!(!outputs.is_empty());
                assert_eq!(report.rounds[0].metrics.key_value_pairs, inputs.len());
            }
        }
    }
}
