//! Engine configuration and shard assignment.
//!
//! The pre-pipeline single-round `run_job` entry point is gone: build a
//! [`crate::pipeline::Round`] and run it through a one-round
//! [`crate::pipeline::Pipeline`] instead (`Pipeline::new().round(..).run(..)`
//! or `run_with_sink(..)` for streaming output delivery).

use crate::pool::WorkerPool;
use std::path::PathBuf;
use std::sync::Arc;

/// Which execution substrate runs a round's map and reduce tasks.
#[derive(Clone, Debug, Default)]
pub(crate) enum Executor {
    /// A persistent worker pool: `None` means the lazily-created
    /// process-global [`WorkerPool::global`], `Some` is an explicitly shared
    /// pool (e.g. the one `subgraph serve` hands every query).
    #[default]
    GlobalPool,
    /// An explicitly shared pool.
    Pool(Arc<WorkerPool>),
    /// Legacy per-round `std::thread::scope` spawns. Kept as the parity and
    /// bench baseline; produces byte-identical outputs and counters.
    Scoped,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of worker threads for both the map and the reduce phase.
    /// Defaults to the number of available CPUs (at least 1).
    pub num_threads: usize,
    /// If true (the default), every reduce worker sorts its keys before
    /// invoking the reducer, so reducer invocation order — and therefore the
    /// concatenated output order — is a pure function of the input and the
    /// thread count. If false, each shard's keys are visited in hash-map
    /// iteration order: the *set* of outputs and all [`crate::JobMetrics`] counters
    /// are unchanged, but the output order is arbitrary (it follows the
    /// engine's FxHash grouping tables, so no ordering is guaranteed across
    /// runs or releases), so only opt out when the consumer sorts or
    /// aggregates the output anyway and wants to skip the `O(r log r)`
    /// per-shard sort.
    pub deterministic: bool,
    /// If true (the default), rounds with an attached
    /// [`crate::Combiner`] pre-aggregate their map output per shard before the
    /// shuffle. Disable to measure the raw communication cost of a pipeline;
    /// the reducer outputs are identical either way (that is the combiner
    /// contract, and the property tests pin it).
    pub use_combiners: bool,
    /// If true (the default), rounds that opted into the arena shuffle
    /// ([`crate::Round::arena`]) serialize their map emissions into compact
    /// per-shard byte arenas when running on a worker pool. Disable with
    /// [`EngineConfig::arena_shuffle`] to force the classic `Vec<(K, V)>`
    /// representation — outputs and all [`crate::JobMetrics`] counters are
    /// byte-identical either way (the parity suites pin it); only resident
    /// memory differs.
    pub use_arena: bool,
    /// Resident-memory budget in bytes for a round's in-flight arena records
    /// (0, the default, means unbounded — never touch disk). When the sealed
    /// arena chunks of a round cross this budget, map workers spill them to
    /// run files under [`EngineConfig::spill_dir`] and the reduce phase
    /// streams them back, so peak RSS tracks the budget instead of the
    /// workload. Only rounds on the arena path spill (worker pool,
    /// [`EngineConfig::use_arena`], no active combiner); classic rounds
    /// ignore the budget. Outputs and all non-spill [`crate::JobMetrics`]
    /// counters are byte-identical at any budget (the parity suites pin it).
    pub memory_budget: usize,
    /// Base directory for spill run files (`None`, the default, uses the OS
    /// temp dir). Each round creates — and removes on completion *and* on
    /// panic — a uniquely named subdirectory inside it, so a shared base
    /// never accumulates stale runs. Validate a user-supplied directory up
    /// front with [`EngineConfig::validate_spill_dir`]; a mid-round I/O
    /// failure panics with the offending run file and spill dir named.
    pub spill_dir: Option<PathBuf>,
    /// The execution substrate: the persistent worker pool (default) or the
    /// legacy scoped-thread path. Private — set through
    /// [`EngineConfig::with_pool`] / [`EngineConfig::scoped_threads`].
    pub(crate) executor: Executor,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            deterministic: true,
            use_combiners: true,
            use_arena: true,
            memory_budget: 0,
            spill_dir: None,
            executor: Executor::default(),
        }
    }
}

impl EngineConfig {
    /// A single-threaded configuration (useful in tests and for debugging).
    pub fn serial() -> Self {
        EngineConfig {
            num_threads: 1,
            ..EngineConfig::default()
        }
    }

    /// A configuration with an explicit thread count.
    pub fn with_threads(num_threads: usize) -> Self {
        EngineConfig {
            num_threads: num_threads.max(1),
            ..EngineConfig::default()
        }
    }

    /// Enables or disables map-side combiners (enabled by default).
    pub fn combiners(mut self, enabled: bool) -> Self {
        self.use_combiners = enabled;
        self
    }

    /// Enables or disables the arena shuffle for opted-in rounds (enabled by
    /// default; see [`EngineConfig::use_arena`]).
    pub fn arena_shuffle(mut self, enabled: bool) -> Self {
        self.use_arena = enabled;
        self
    }

    /// Sets the resident-memory budget in bytes for in-flight arena records
    /// (see [`EngineConfig::memory_budget`]; 0 disables spilling).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Sets the base directory for spill run files (see
    /// [`EngineConfig::spill_dir`]).
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Fail-fast writability probe for the configured spill location: creates
    /// and removes a uniquely named probe directory under
    /// [`EngineConfig::spill_dir`] (or the OS temp dir). Callers that accept a
    /// user-supplied spill directory run this at startup so an unwritable
    /// path is reported before any work starts, not as a mid-round panic.
    /// Always `Ok` when nothing would ever spill (no budget, no explicit
    /// directory); the error message names the offending directory.
    pub fn validate_spill_dir(&self) -> Result<(), String> {
        if self.memory_budget == 0 && self.spill_dir.is_none() {
            return Ok(());
        }
        crate::spill::validate_base_dir(self.spill_dir.as_deref())
    }

    /// Runs rounds on the given shared [`WorkerPool`] instead of the
    /// process-global one. A long-lived service creates one pool and passes
    /// it to every query so concurrent requests share a fixed set of worker
    /// threads (and the pool's recycled shuffle buffers).
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.executor = Executor::Pool(pool);
        self
    }

    /// Reverts to the pre-pool executor: fresh `std::thread::scope` spawns
    /// per round. The outputs and every [`crate::JobMetrics`] counter are
    /// byte-identical to the pooled path (the parity suites pin this); only
    /// the thread lifecycle differs. Used by the parity tests and the
    /// `reproduce shuffle` pool-vs-scoped comparison.
    pub fn scoped_threads(mut self) -> Self {
        self.executor = Executor::Scoped;
        self
    }

    /// True when rounds run on a persistent pool (the default).
    pub fn uses_pool(&self) -> bool {
        !matches!(self.executor, Executor::Scoped)
    }

    /// The pool rounds should run on, or `None` for the scoped-thread path.
    pub(crate) fn pool(&self) -> Option<&Arc<WorkerPool>> {
        match &self.executor {
            Executor::GlobalPool => Some(WorkerPool::global()),
            Executor::Pool(pool) => Some(pool),
            Executor::Scoped => None,
        }
    }
}

/// Maps a 64-bit key hash onto `[0, shards)` with the multiply-shift
/// ("fastrange") reduction `(hash * shards) >> 64`. Unlike `hash % shards`,
/// this uses the hash's high bits, is division-free, and keeps shard loads
/// balanced even when the hashes are clustered in a sub-range.
pub fn shard_for_hash(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (((hash as u128) * (shards as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_of;
    use crate::metrics::JobMetrics;
    use crate::pipeline::{Pipeline, Round};
    use crate::task::{MapContext, Mapper, ReduceContext, Reducer};
    use std::hash::Hash;

    /// One-round pipeline helper with the shape of the old `run_job` entry
    /// point, so these engine-level tests stay focused on the dataflow.
    fn run_round<I, K, V, O>(
        inputs: &[I],
        mapper: impl Mapper<I, K, V>,
        reducer: impl Reducer<K, V, O>,
        config: &EngineConfig,
    ) -> (Vec<O>, JobMetrics)
    where
        I: Sync + Send + Clone + 'static,
        K: Hash + Eq + Ord + Send,
        V: Send,
        O: Send + Clone + 'static,
    {
        let (outputs, report) = Pipeline::new()
            .round(Round::new("job", mapper, reducer))
            .run(inputs, config);
        let metrics = report.rounds.into_iter().next().expect("one round").metrics;
        (outputs, metrics)
    }

    /// Word-count style job: count occurrences of each number modulo 10.
    fn modulo_count(inputs: &[u64], threads: usize) -> (Vec<(u64, usize)>, JobMetrics) {
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 10, *x);
        let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, usize)>| {
            ctx.add_work(vs.len() as u64);
            ctx.emit((*k, vs.len()));
        };
        run_round(
            inputs,
            mapper,
            reducer,
            &EngineConfig::with_threads(threads),
        )
    }

    #[test]
    fn counts_are_correct_and_metrics_consistent() {
        let inputs: Vec<u64> = (0..1000).collect();
        let (mut outputs, metrics) = modulo_count(&inputs, 4);
        outputs.sort_unstable();
        assert_eq!(outputs.len(), 10);
        assert!(outputs.iter().all(|&(_, c)| c == 100));
        assert_eq!(metrics.input_records, 1000);
        assert_eq!(metrics.key_value_pairs, 1000);
        assert_eq!(metrics.shuffle_records, 1000);
        assert_eq!(metrics.reducers_used, 10);
        assert_eq!(metrics.max_reducer_input, 100);
        assert_eq!(metrics.reducer_work, 1000);
        assert_eq!(metrics.outputs, 10);
        assert!((metrics.replication_per_input() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let inputs: Vec<u64> = (0..500).map(|i| i * 7 % 113).collect();
        let (mut serial, _) = modulo_count(&inputs, 1);
        let (mut parallel, _) = modulo_count(&inputs, 8);
        serial.sort_unstable();
        parallel.sort_unstable();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn replication_is_counted_per_emission() {
        // Each input emits 3 pairs: communication cost is 3 per record.
        let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| {
            for i in 0..3 {
                ctx.emit(x + i, *x);
            }
        };
        let reducer = |_k: &u64, vs: &[u64], ctx: &mut ReduceContext<usize>| ctx.emit(vs.len());
        let inputs: Vec<u64> = (0..50).collect();
        let (_, metrics) = run_round(&inputs, mapper, reducer, &EngineConfig::serial());
        assert_eq!(metrics.key_value_pairs, 150);
        assert!((metrics.replication_per_input() - 3.0).abs() < 1e-12);
        assert_eq!(metrics.reducers_used, 52); // keys 0..=51
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let inputs: Vec<u64> = Vec::new();
        let (outputs, metrics) = modulo_count(&inputs, 4);
        assert!(outputs.is_empty());
        assert_eq!(metrics.key_value_pairs, 0);
        assert_eq!(metrics.shuffle_records, 0);
        assert_eq!(metrics.shuffle_bytes, 0);
        assert_eq!(metrics.reducers_used, 0);
        assert_eq!(metrics.max_reducer_input, 0);
    }

    #[test]
    fn mapper_emitting_nothing_is_fine() {
        let mapper = |_x: &u64, _ctx: &mut MapContext<u64, u64>| {};
        let reducer = |_k: &u64, _vs: &[u64], ctx: &mut ReduceContext<u64>| ctx.emit(1);
        let inputs: Vec<u64> = (0..10).collect();
        let (outputs, metrics) = run_round(&inputs, mapper, reducer, &EngineConfig::default());
        assert!(outputs.is_empty());
        assert_eq!(metrics.key_value_pairs, 0);
        assert_eq!(metrics.reducers_used, 0);
    }

    #[test]
    fn shard_assignment_is_balanced_for_sequential_keys() {
        // Sequential integer keys are the common case for the paper's bucket
        // keys; the multiply-shift reduction must spread their hashes evenly.
        for threads in [2usize, 3, 7, 8] {
            let mut loads = vec![0usize; threads];
            let n = 10_000usize;
            for key in 0..n as u64 {
                loads[shard_for_hash(hash_of(&key), threads)] += 1;
            }
            let mean = n as f64 / threads as f64;
            let max = *loads.iter().max().unwrap() as f64;
            let min = *loads.iter().min().unwrap() as f64;
            assert!(
                max < mean * 1.15 && min > mean * 0.85,
                "threads={threads}: loads {loads:?} deviate from mean {mean}"
            );
        }
    }

    #[test]
    fn shard_for_hash_covers_the_full_range() {
        // The reduction must be able to reach every shard, including the last.
        let shards = 5;
        let mut seen = vec![false; shards];
        for hash in (0..u64::MAX).step_by(u64::MAX as usize / 64) {
            seen[shard_for_hash(hash, shards)] = true;
        }
        assert!(seen.iter().all(|&s| s), "unreached shards: {seen:?}");
        assert_eq!(shard_for_hash(u64::MAX, shards), shards - 1);
        assert_eq!(shard_for_hash(0, shards), 0);
    }

    #[test]
    fn deterministic_flag_controls_output_order_not_content() {
        let inputs: Vec<u64> = (0..300).map(|i| i * 13 % 97).collect();
        let run = |deterministic: bool| {
            let mapper = |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 16, *x);
            let reducer = |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, usize)>| {
                ctx.emit((*k, vs.len()));
            };
            let config = EngineConfig {
                num_threads: 3,
                deterministic,
                ..EngineConfig::default()
            };
            run_round(&inputs, mapper, reducer, &config)
        };
        // Deterministic runs repeat exactly, in order.
        let (first, metrics_a) = run(true);
        let (second, metrics_b) = run(true);
        assert_eq!(first, second);
        // A non-deterministic run produces the same output *set* and metrics.
        let (mut relaxed, metrics_c) = run(false);
        let mut sorted_first = first.clone();
        sorted_first.sort_unstable();
        relaxed.sort_unstable();
        assert_eq!(sorted_first, relaxed);
        assert_eq!(metrics_a.key_value_pairs, metrics_c.key_value_pairs);
        assert_eq!(metrics_a.reducers_used, metrics_c.reducers_used);
        assert_eq!(metrics_b.outputs, metrics_c.outputs);
    }

    #[test]
    fn vector_keys_work_as_reducer_identifiers() {
        // The paper's reducer keys are lists of bucket numbers.
        let mapper = |x: &u64, ctx: &mut MapContext<Vec<u32>, u64>| {
            ctx.emit(vec![(x % 3) as u32, (x % 5) as u32], *x);
        };
        let reducer = |k: &Vec<u32>, vs: &[u64], ctx: &mut ReduceContext<(Vec<u32>, usize)>| {
            ctx.emit((k.clone(), vs.len()));
        };
        let inputs: Vec<u64> = (0..150).collect();
        let (outputs, metrics) =
            run_round(&inputs, mapper, reducer, &EngineConfig::with_threads(3));
        assert_eq!(metrics.reducers_used, 15);
        assert_eq!(outputs.len(), 15);
        assert!(outputs.iter().all(|(_, c)| *c == 10));
    }
}
