//! Property-style tests for the share optimizer, exercised over deterministic
//! sweeps of catalog patterns and reducer budgets.

use crate::counting::{
    bucket_oriented_replication, generalized_partition_replication, useful_reducers,
};
use crate::dominance::single_cq_expression_with_dominance;
use crate::expr::CostExpression;
use crate::solver::optimize_shares;
use subgraph_cq::cqs_for_sample;
use subgraph_pattern::catalog;
use subgraph_pattern::SampleGraph;

fn patterns() -> Vec<SampleGraph> {
    vec![
        catalog::triangle(),
        catalog::square(),
        catalog::lollipop(),
        catalog::cycle(5),
        catalog::k4(),
        catalog::path(4),
    ]
}

/// The numeric optimum satisfies the constraint and beats (or matches) the
/// naive equal-share assignment.
#[test]
fn solver_respects_constraint_and_beats_equal_shares() {
    for sample in patterns() {
        for k_exp in [4i32, 8, 13] {
            let k = 2f64.powi(k_exp);
            let cqs = cqs_for_sample(&sample);
            let expr = single_cq_expression_with_dominance(&cqs[0]);
            let solution = optimize_shares(&expr, k);
            // Product of free shares = k (dominated shares are 1).
            let product: f64 = solution.shares.iter().product();
            assert!(
                (product - k).abs() / k < 1e-6,
                "{sample:?} k={k}: product {product}"
            );
            // Compare against equal shares over the free variables.
            let free = expr.free_vars();
            let equal = k.powf(1.0 / free.len() as f64);
            let mut equal_shares = vec![1.0; expr.num_vars()];
            for &v in &free {
                equal_shares[v as usize] = equal;
            }
            let equal_cost = expr.evaluate(&equal_shares);
            assert!(
                solution.cost_per_edge <= equal_cost * (1.0 + 1e-6),
                "{sample:?} k={k}: optimized {} worse than equal {equal_cost}",
                solution.cost_per_edge
            );
            assert!(solution.optimality_gap < 0.05, "{sample:?} k={k}");
        }
    }
}

/// Variable-oriented processing of the whole CQ collection never costs more
/// than twice the single-CQ optimum (the key inequality in Theorem 4.4:
/// OPT_all <= 2 * OPT_single).
#[test]
fn combined_evaluation_at_most_twice_single_query_cost() {
    for sample in patterns() {
        for k_exp in [4i32, 7, 11] {
            let k = 2f64.powi(k_exp);
            let cqs = cqs_for_sample(&sample);
            let single = CostExpression::from_single_cq(&cqs[0]);
            let combined = CostExpression::from_cq_collection(&cqs);
            let single_cost = optimize_shares(&single, k).cost_per_edge;
            let combined_cost = optimize_shares(&combined, k).cost_per_edge;
            assert!(
                combined_cost <= 2.0 * single_cost * (1.0 + 0.02),
                "{sample:?} k={k}: combined {combined_cost} vs single {single_cost}"
            );
            // And evaluating them together is of course at least as expensive
            // as one copy alone.
            assert!(
                combined_cost >= single_cost * (1.0 - 0.02),
                "{sample:?} k={k}: combined {combined_cost} vs single {single_cost}"
            );
        }
    }
}

/// Counting identities: useful reducers C(b+p-1, p) equals the number of
/// non-decreasing bucket lists (Theorem 4.2), and for large b the generalized
/// Partition replication exceeds the bucket-oriented one (Section 4.5) — the
/// advantage is asymptotic, so it is checked at b >> p.
#[test]
fn reducer_counting_identities() {
    // Count non-decreasing sequences of length p over 1..=b directly.
    fn count(b: u64, p: u64, min: u64) -> u128 {
        if p == 0 {
            return 1;
        }
        (min..=b).map(|next| count(b, p - 1, next)).sum()
    }
    for b in 1u64..25 {
        for p in 2u64..7 {
            assert_eq!(useful_reducers(b, p), count(b, p, 1), "b={b} p={p}");
            let large_b = 1000 + b;
            let bucket = bucket_oriented_replication(large_b, p) as f64;
            let partition = generalized_partition_replication(large_b, p);
            assert!(
                partition > bucket,
                "partition {partition} should exceed bucket-oriented {bucket} at b = {large_b}"
            );
        }
    }
}
