//! Property-style tests for the share optimizer, exercised over deterministic
//! sweeps of catalog patterns and reducer budgets.

use crate::bound::partial_cost_expression;
use crate::counting::{
    bucket_oriented_replication, generalized_partition_replication, useful_reducers,
};
use crate::dominance::single_cq_expression_with_dominance;
use crate::expr::CostExpression;
use crate::solver::optimize_shares;
use subgraph_cq::{cq_for_ordering, cqs_for_sample, PartialCq};
use subgraph_pattern::catalog;
use subgraph_pattern::{PatternNode, SampleGraph};

fn patterns() -> Vec<SampleGraph> {
    vec![
        catalog::triangle(),
        catalog::square(),
        catalog::lollipop(),
        catalog::cycle(5),
        catalog::k4(),
        catalog::path(4),
    ]
}

/// The numeric optimum satisfies the constraint and beats (or matches) the
/// naive equal-share assignment.
#[test]
fn solver_respects_constraint_and_beats_equal_shares() {
    for sample in patterns() {
        for k_exp in [4i32, 8, 13] {
            let k = 2f64.powi(k_exp);
            let cqs = cqs_for_sample(&sample);
            let expr = single_cq_expression_with_dominance(&cqs[0]);
            let solution = optimize_shares(&expr, k);
            // Product of free shares = k (dominated shares are 1).
            let product: f64 = solution.shares.iter().product();
            assert!(
                (product - k).abs() / k < 1e-6,
                "{sample:?} k={k}: product {product}"
            );
            // Compare against equal shares over the free variables.
            let free = expr.free_vars();
            let equal = k.powf(1.0 / free.len() as f64);
            let mut equal_shares = vec![1.0; expr.num_vars()];
            for &v in &free {
                equal_shares[v as usize] = equal;
            }
            let equal_cost = expr.evaluate(&equal_shares);
            assert!(
                solution.cost_per_edge <= equal_cost * (1.0 + 1e-6),
                "{sample:?} k={k}: optimized {} worse than equal {equal_cost}",
                solution.cost_per_edge
            );
            assert!(solution.optimality_gap < 0.05, "{sample:?} k={k}");
        }
    }
}

/// Variable-oriented processing of the whole CQ collection never costs more
/// than twice the single-CQ optimum (the key inequality in Theorem 4.4:
/// OPT_all <= 2 * OPT_single).
#[test]
fn combined_evaluation_at_most_twice_single_query_cost() {
    for sample in patterns() {
        for k_exp in [4i32, 7, 11] {
            let k = 2f64.powi(k_exp);
            let cqs = cqs_for_sample(&sample);
            let single = CostExpression::from_single_cq(&cqs[0]);
            let combined = CostExpression::from_cq_collection(&cqs);
            let single_cost = optimize_shares(&single, k).cost_per_edge;
            let combined_cost = optimize_shares(&combined, k).cost_per_edge;
            assert!(
                combined_cost <= 2.0 * single_cost * (1.0 + 0.02),
                "{sample:?} k={k}: combined {combined_cost} vs single {single_cost}"
            );
            // And evaluating them together is of course at least as expensive
            // as one copy alone.
            assert!(
                combined_cost >= single_cost * (1.0 - 0.02),
                "{sample:?} k={k}: combined {combined_cost} vs single {single_cost}"
            );
        }
    }
}

/// Admissibility of the branch-and-bound pruning rule: for any partial
/// ordering prefix, the Shares lower bound never exceeds the true optimized
/// cost of any completion. An inadmissible bound is the one bug that silently
/// changes plans — the search would prune the true winner and nothing else
/// would notice — so this pins it over random prefixes and random sampled
/// completions of every small pattern at several reducer budgets.
#[test]
fn prefix_lower_bound_is_admissible() {
    let mut state: u64 = 0x517c_c1b7_2722_0a95;
    let mut next = move |bound: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    };
    for sample in patterns() {
        let p = sample.num_nodes();
        for k_exp in [3i32, 9] {
            let k = 2f64.powi(k_exp);
            for _trial in 0..12 {
                // Random prefix of random depth, then a random completion.
                let mut nodes: Vec<PatternNode> = (0..p as PatternNode).collect();
                for i in (1..nodes.len()).rev() {
                    nodes.swap(i, next(i + 1));
                }
                let depth = next(p + 1);
                let mut partial = PartialCq::new(&sample);
                for &v in &nodes[..depth] {
                    partial.push(v);
                }
                let bound_expr =
                    partial_cost_expression(p, sample.edges(), partial.oriented_edges());
                let bound_cost = optimize_shares(&bound_expr, k).cost_per_edge;
                for &v in &nodes[depth..] {
                    partial.push(v);
                }
                let completion: Vec<PatternNode> = partial.prefix().to_vec();
                let true_expr = single_cq_expression_with_dominance(&partial.complete());
                let true_cost = optimize_shares(&true_expr, k).cost_per_edge;
                assert!(
                    bound_cost <= true_cost * (1.0 + 1e-12),
                    "{sample:?} k={k} prefix {:?} completion {completion:?}: \
                     bound {bound_cost} exceeds true cost {true_cost}",
                    &completion[..depth]
                );
                // For single-CQ costs the bound is tight — in fact the very
                // same expression, hence the very same bits. This is what
                // lets branch-and-bound reproduce the exhaustive numbers.
                assert_eq!(bound_cost.to_bits(), true_cost.to_bits());
            }
        }
    }
}

/// The bound is monotone along a prefix chain: extending the prefix never
/// decreases it (for single-CQ expressions it stays constant). Monotonicity
/// is what makes pruning at an interior node safe for the whole subtree.
#[test]
fn prefix_lower_bound_is_monotone_in_depth() {
    for sample in patterns() {
        let p = sample.num_nodes();
        let k = 256.0;
        let mut partial = PartialCq::new(&sample);
        let mut last = f64::NEG_INFINITY;
        for v in 0..p as PatternNode {
            partial.push(v);
            let expr = partial_cost_expression(p, sample.edges(), partial.oriented_edges());
            let cost = optimize_shares(&expr, k).cost_per_edge;
            assert!(
                cost >= last,
                "{sample:?}: bound dropped from {last} to {cost} at depth {}",
                partial.depth()
            );
            last = cost;
        }
        // At full depth the bound equals the estimator's per-CQ cost.
        let ordering: Vec<PatternNode> = (0..p as PatternNode).collect();
        let full = single_cq_expression_with_dominance(&cq_for_ordering(&sample, &ordering));
        let full_cost = optimize_shares(&full, k).cost_per_edge;
        assert_eq!(last.to_bits(), full_cost.to_bits(), "{sample:?}");
    }
}

/// Counting identities: useful reducers C(b+p-1, p) equals the number of
/// non-decreasing bucket lists (Theorem 4.2), and for large b the generalized
/// Partition replication exceeds the bucket-oriented one (Section 4.5) — the
/// advantage is asymptotic, so it is checked at b >> p.
#[test]
fn reducer_counting_identities() {
    // Count non-decreasing sequences of length p over 1..=b directly.
    fn count(b: u64, p: u64, min: u64) -> u128 {
        if p == 0 {
            return 1;
        }
        (min..=b).map(|next| count(b, p - 1, next)).sum()
    }
    for b in 1u64..25 {
        for p in 2u64..7 {
            assert_eq!(useful_reducers(b, p), count(b, p, 1), "b={b} p={p}");
            let large_b = 1000 + b;
            let bucket = bucket_oriented_replication(large_b, p) as f64;
            let partition = generalized_partition_replication(large_b, p);
            assert!(
                partition > bucket,
                "partition {partition} should exceed bucket-oriented {bucket} at b = {large_b}"
            );
        }
    }
}
