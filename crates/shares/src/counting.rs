//! Reducer-count combinatorics for hash-ordered (bucket-oriented) processing
//! (Theorem 4.2 and Section 4.5).

/// Binomial coefficient `C(n, k)` as a `u128` (exact for the ranges used here).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

/// Theorem 4.2 / Section 2.3: with `b` buckets and a `p`-node sample graph,
/// the number of reducers that can receive instances (non-decreasing bucket
/// lists) is `C(b + p − 1, p)`.
pub fn useful_reducers(b: u64, p: u64) -> u128 {
    binomial(b + p - 1, p)
}

/// Section 4.5: the number of reducers each edge is sent to under
/// bucket-oriented processing is `C(b + p − 3, p − 2)`.
pub fn bucket_oriented_replication(b: u64, p: u64) -> u128 {
    assert!(p >= 2);
    binomial(b + p - 3, p - 2)
}

/// Section 4.5: the average number of reducers an edge is sent to under the
/// generalized Partition algorithm with `b` groups: edges inside one group go
/// to `C(b − 1, p − 1)` reducers, edges across two groups to `C(b − 2, p − 2)`,
/// and a fraction `1/b` of edges is of the first kind.
pub fn generalized_partition_replication(b: u64, p: u64) -> f64 {
    assert!(p >= 2 && b >= p);
    let same = binomial(b - 1, p - 1) as f64;
    let cross = binomial(b - 2, p - 2) as f64;
    same / b as f64 + cross * (b as f64 - 1.0) / b as f64
}

/// Section 4.5: the asymptotic ratio of generalized-Partition replication to
/// bucket-oriented replication, `1 + 1/(p − 1)`.
pub fn partition_to_bucket_ratio_limit(p: u64) -> f64 {
    1.0 + 1.0 / (p as f64 - 1.0)
}

/// Section 2.1: communication cost per edge of the (triangle) Partition
/// algorithm with `b` groups: `(3/2)(b − 1)(b − 2)/b`.
pub fn partition_triangle_replication(b: u64) -> f64 {
    1.5 * (b as f64 - 1.0) * (b as f64 - 2.0) / b as f64
}

/// Section 2.2: communication cost per edge of the plain multiway-join
/// triangle algorithm with `b` buckets: `3b − 2`.
pub fn multiway_triangle_replication(b: u64) -> f64 {
    3.0 * b as f64 - 2.0
}

/// Section 2.3: communication cost per edge of the bucket-ordered multiway
/// join for triangles: `b`.
pub fn ordered_triangle_replication(b: u64) -> f64 {
    b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(12, 3), 220);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn useful_reducer_counts_match_section_2_3() {
        // (b+2 choose 3) for triangles; the paper notes 2^20 = C(12+2, 3)·…,
        // more precisely C(12, 3) reducers for Partition with 12 groups and
        // C(10+2, 3) = 220 for the ordered algorithm with b = 10.
        assert_eq!(useful_reducers(10, 3), 220);
        assert_eq!(useful_reducers(12, 3), binomial(14, 3));
        // b buckets, p = 3: (b+2)(b+1)b/6.
        for b in 1..=20u64 {
            assert_eq!(useful_reducers(b, 3), ((b + 2) * (b + 1) * b / 6) as u128);
        }
    }

    #[test]
    fn bucket_oriented_replication_for_triangles_is_b() {
        for b in 1..=30u64 {
            assert_eq!(bucket_oriented_replication(b, 3), b as u128);
        }
    }

    #[test]
    fn figure_2_constants() {
        // Partition with b = 12: 13.75 per edge.
        assert!((partition_triangle_replication(12) - 13.75).abs() < 1e-12);
        // Section 2.2 with b = 6: 16 per edge.
        assert!((multiway_triangle_replication(6) - 16.0).abs() < 1e-12);
        // Section 2.3 with b = 10: 10 per edge.
        assert!((ordered_triangle_replication(10) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn figure_2_reducer_counts() {
        // Figure 2 compares the three algorithms at almost equal reducer
        // counts: 216 = 6³ reducers for the Section 2.2 algorithm (b = 6),
        // 220 = C(12, 3) for Partition (12 groups), and 220 = C(10 + 2, 3) for
        // the ordered algorithm (b = 10).
        assert_eq!(6u64.pow(3), 216);
        assert_eq!(binomial(12, 3), 220);
        assert_eq!(useful_reducers(10, 3), 220);
    }

    #[test]
    fn partition_ratio_approaches_the_section_4_5_limit() {
        for p in 3..=8u64 {
            let b = 50_000u64;
            let ratio =
                generalized_partition_replication(b, p) / bucket_oriented_replication(b, p) as f64;
            let limit = partition_to_bucket_ratio_limit(p);
            assert!(
                (ratio - limit).abs() < 0.01,
                "p = {p}: ratio {ratio} vs limit {limit}"
            );
            assert!(ratio > 1.0);
        }
    }

    #[test]
    fn partition_triangle_replication_is_consistent_with_general_formula() {
        // For p = 3 the generalized formula must reduce to the Section 2.1 one
        // divided by … actually Section 2.1 already is the p = 3 case:
        // (1/b)·C(b−1,2) + ((b−1)/b)·(b−2) = (3/2)(b−1)(b−2)/b.
        for b in 3..=40u64 {
            let general = generalized_partition_replication(b, 3);
            let specific = partition_triangle_replication(b);
            assert!((general - specific).abs() < 1e-9, "b = {b}");
        }
    }
}
