//! The dominated-variable rule of Afrati–Ullman (used in Example 4.1).
//!
//! A variable `X` is *dominated* by a variable `Y` if every relational subgoal
//! containing `X` also contains `Y`. A dominated variable may be given share 1
//! without increasing the optimal communication cost, so it can be removed
//! from the optimization.

use crate::expr::CostExpression;
use subgraph_cq::{ConjunctiveQuery, Var};

/// Returns the set of variables that can be fixed to share 1 because they are
/// dominated by some other variable of the query.
///
/// When two variables dominate each other (they appear in exactly the same
/// subgoals), only one of them — the one with the larger index — is reported
/// as dominated, so at least one of the pair keeps a free share.
pub fn dominated_variables(cq: &ConjunctiveQuery) -> Vec<Var> {
    let p = cq.num_vars();
    let occurs = |v: Var| -> Vec<usize> {
        cq.subgoals()
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == v || b == v)
            .map(|(i, _)| i)
            .collect()
    };
    let occurrence: Vec<Vec<usize>> = (0..p as Var).map(occurs).collect();
    let mut dominated = Vec::new();
    for x in 0..p {
        if occurrence[x].is_empty() {
            // A variable in no subgoal contributes nothing to the cost; give it share 1.
            dominated.push(x as Var);
            continue;
        }
        let is_dominated = (0..p).any(|y| {
            if x == y {
                return false;
            }
            let x_in_y = occurrence[x].iter().all(|i| occurrence[y].contains(i));
            if !x_in_y {
                return false;
            }
            let mutually = occurrence[y].iter().all(|i| occurrence[x].contains(i));
            // Strictly dominated, or mutually dominated with the smaller index kept free.
            !mutually || y < x
        });
        if is_dominated {
            dominated.push(x as Var);
        }
    }
    dominated
}

/// Builds the cost expression for a single CQ with every dominated variable's
/// share pinned to 1 (the standard preprocessing before solving).
pub fn single_cq_expression_with_dominance(cq: &ConjunctiveQuery) -> CostExpression {
    let mut expr = CostExpression::from_single_cq(cq);
    for v in dominated_variables(cq) {
        expr.fix_to_one(v);
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_cq::cqs_for_sample;
    use subgraph_pattern::catalog;

    fn lollipop_identity_cq() -> ConjunctiveQuery {
        cqs_for_sample(&catalog::lollipop())
            .into_iter()
            .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
            .expect("identity-order CQ")
    }

    #[test]
    fn w_is_dominated_by_x_in_the_lollipop_cq() {
        // Example 4.1: W appears only in E(W,X), so W is dominated by X.
        let cq = lollipop_identity_cq();
        assert_eq!(dominated_variables(&cq), vec![0]);
    }

    #[test]
    fn regular_patterns_have_no_dominated_variables() {
        for sample in [catalog::triangle(), catalog::square(), catalog::cycle(5)] {
            for cq in cqs_for_sample(&sample) {
                assert!(
                    dominated_variables(&cq).is_empty(),
                    "unexpected domination in {}",
                    cq.render()
                );
            }
        }
    }

    #[test]
    fn star_leaves_are_dominated_by_the_centre() {
        // In a star every leaf appears only in its edge to the centre, so every
        // leaf is dominated (the centre stays free).
        let star = catalog::star(4);
        for cq in cqs_for_sample(&star) {
            let dominated = dominated_variables(&cq);
            assert_eq!(dominated.len(), 3);
            assert!(!dominated.contains(&0));
        }
    }

    #[test]
    fn mutual_domination_keeps_one_variable_free() {
        // A single-edge pattern: both endpoints appear in exactly the same
        // (only) subgoal; only the higher-indexed one is dominated.
        let edge = subgraph_pattern::SampleGraph::from_edges(2, &[(0, 1)]);
        let cq = cqs_for_sample(&edge).remove(0);
        assert_eq!(dominated_variables(&cq), vec![1]);
    }

    #[test]
    fn expression_with_dominance_applies_the_rule() {
        let cq = lollipop_identity_cq();
        let expr = single_cq_expression_with_dominance(&cq);
        assert_eq!(expr.free_vars(), vec![1, 2, 3]);
    }
}
