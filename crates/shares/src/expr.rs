//! Communication-cost expressions (Section 4.1 and 4.3).

use std::collections::{BTreeMap, BTreeSet};
use subgraph_cq::{ConjunctiveQuery, Var};

/// One term of the cost expression: `coefficient · e · Π (shares of missing variables)`.
///
/// The coefficient is 1 when the corresponding sample-graph edge appears in a
/// single orientation among the CQs being evaluated together, and 2 when it
/// appears in both orientations (its relation is then two copies of `E`,
/// Section 4.3).
#[derive(Clone, Debug, PartialEq)]
pub struct Term {
    /// The (undirected) sample-graph edge this term accounts for.
    pub edge: (Var, Var),
    /// 1.0 for a unidirectional edge, 2.0 for a bidirectional edge.
    pub coefficient: f64,
    /// The variables whose shares multiply into this term (everything not in the edge).
    pub missing: Vec<Var>,
}

/// The full communication-cost expression for evaluating one CQ or a group of
/// CQs over the same variables. Costs are reported **per unit of relation
/// size** (the `e` factor is left out; multiply by the data-graph edge count
/// to get absolute communication).
#[derive(Clone, Debug, PartialEq)]
pub struct CostExpression {
    num_vars: usize,
    terms: Vec<Term>,
    /// Shares pinned to 1 (dominated variables).
    fixed_to_one: BTreeSet<Var>,
}

impl CostExpression {
    /// Cost expression for a single CQ (CQ-oriented processing, Section 4.1):
    /// every subgoal contributes a term with coefficient 1.
    pub fn from_single_cq(cq: &ConjunctiveQuery) -> Self {
        let subgoal_sets: Vec<Vec<(Var, Var)>> = vec![cq.subgoals().to_vec()];
        Self::from_subgoal_collections(cq.num_vars(), &subgoal_sets)
    }

    /// Cost expression for evaluating a whole CQ collection together
    /// (variable-oriented processing, Section 4.3): an edge that appears in
    /// both orientations among the CQs gets coefficient 2.
    pub fn from_cq_collection(cqs: &[ConjunctiveQuery]) -> Self {
        assert!(!cqs.is_empty(), "at least one CQ is required");
        let num_vars = cqs[0].num_vars();
        assert!(
            cqs.iter().all(|q| q.num_vars() == num_vars),
            "all CQs must range over the same variables"
        );
        let subgoal_sets: Vec<Vec<(Var, Var)>> =
            cqs.iter().map(|q| q.subgoals().to_vec()).collect();
        Self::from_subgoal_collections(num_vars, &subgoal_sets)
    }

    /// Builds the expression from explicit subgoal lists (one per CQ).
    pub fn from_subgoal_collections(num_vars: usize, subgoal_sets: &[Vec<(Var, Var)>]) -> Self {
        // orientations[undirected edge] = set of orientations seen.
        let mut orientations: BTreeMap<(Var, Var), BTreeSet<(Var, Var)>> = BTreeMap::new();
        for set in subgoal_sets {
            for &(a, b) in set {
                let key = if a < b { (a, b) } else { (b, a) };
                orientations.entry(key).or_default().insert((a, b));
            }
        }
        let terms = orientations
            .into_iter()
            .map(|(edge, seen)| {
                let coefficient = if seen.len() >= 2 { 2.0 } else { 1.0 };
                let missing: Vec<Var> = (0..num_vars as Var)
                    .filter(|&v| v != edge.0 && v != edge.1)
                    .collect();
                Term {
                    edge,
                    coefficient,
                    missing,
                }
            })
            .collect();
        CostExpression {
            num_vars,
            terms,
            fixed_to_one: BTreeSet::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The terms of the expression.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Variables whose share has been pinned to 1 by the dominance rule.
    pub fn fixed_to_one(&self) -> &BTreeSet<Var> {
        &self.fixed_to_one
    }

    /// Pins the share of `v` to 1 (used for dominated variables).
    pub fn fix_to_one(&mut self, v: Var) {
        assert!((v as usize) < self.num_vars);
        self.fixed_to_one.insert(v);
    }

    /// Variables whose shares are free to optimize.
    pub fn free_vars(&self) -> Vec<Var> {
        (0..self.num_vars as Var)
            .filter(|v| !self.fixed_to_one.contains(v))
            .collect()
    }

    /// Applies the dominance rule at the expression level: a variable `v` is
    /// dominated by `u` when every term edge containing `v` also contains
    /// `u`, and a dominated variable's share may be pinned to 1 without
    /// increasing the optimal cost (the Afrati-Ullman rule of Example 4.1,
    /// lifted from a single CQ to any expression).
    ///
    /// Without this, expressions whose dominated variable appears in a single
    /// term have no finite optimum — e.g. the lollipop collection's
    /// `yz + 2wz + 2wy + 2wx` lets `w → 0, x → ∞` at constant product, and
    /// the solver chases that ray to astronomically lopsided shares. Mutually
    /// dominating pairs keep the smaller-indexed variable free.
    pub fn fix_dominated_to_one(&mut self) {
        let edges: Vec<(Var, Var)> = self.terms.iter().map(|t| t.edge).collect();
        let incident = |v: Var| -> Vec<(Var, Var)> {
            edges
                .iter()
                .copied()
                .filter(|&(a, b)| a == v || b == v)
                .collect()
        };
        let mut pinned: Vec<Var> = Vec::new();
        for v in 0..self.num_vars as Var {
            let edges_v = incident(v);
            if edges_v.is_empty() {
                // A variable in no term contributes nothing; pin it.
                pinned.push(v);
                continue;
            }
            let dominated = (0..self.num_vars as Var).any(|u| {
                if u == v {
                    return false;
                }
                let v_in_u = edges_v.iter().all(|&(a, b)| a == u || b == u);
                if !v_in_u {
                    return false;
                }
                let mutually = incident(u).iter().all(|&(a, b)| a == v || b == v);
                !mutually || u < v
            });
            if dominated {
                pinned.push(v);
            }
        }
        for v in pinned {
            self.fix_to_one(v);
        }
    }

    /// Evaluates the per-edge cost `Σ coeff · Π shares(missing)` for concrete shares.
    pub fn evaluate(&self, shares: &[f64]) -> f64 {
        assert_eq!(shares.len(), self.num_vars);
        self.terms
            .iter()
            .map(|t| {
                t.coefficient
                    * t.missing
                        .iter()
                        .map(|&v| shares[v as usize])
                        .product::<f64>()
            })
            .sum()
    }

    /// Replication count per input tuple for each term (how many reducers each
    /// edge is sent to on behalf of that subgoal), for concrete shares.
    pub fn replication_per_term(&self, shares: &[f64]) -> Vec<(Term, f64)> {
        self.terms
            .iter()
            .map(|t| {
                let reps = t.coefficient
                    * t.missing
                        .iter()
                        .map(|&v| shares[v as usize])
                        .product::<f64>();
                (t.clone(), reps)
            })
            .collect()
    }

    /// The paper's Lagrangian optimality condition, evaluated at `shares`: for
    /// every free variable, the sum of the terms containing that variable.
    /// At the optimum these sums are all equal (Section 4.1).
    pub fn per_variable_sums(&self, shares: &[f64]) -> Vec<(Var, f64)> {
        self.free_vars()
            .into_iter()
            .map(|v| {
                let sum = self
                    .terms
                    .iter()
                    .filter(|t| t.missing.contains(&v))
                    .map(|t| {
                        t.coefficient
                            * t.missing
                                .iter()
                                .map(|&u| shares[u as usize])
                                .product::<f64>()
                    })
                    .sum();
                (v, sum)
            })
            .collect()
    }

    /// The number of reducers implied by concrete shares (product of all shares).
    pub fn num_reducers(&self, shares: &[f64]) -> f64 {
        shares.iter().product()
    }

    /// True if the undirected sample edge `{a, b}` is bidirectional in this expression.
    pub fn is_bidirectional(&self, a: Var, b: Var) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.terms
            .iter()
            .any(|t| t.edge == key && t.coefficient >= 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_cq::cqs_for_sample;
    use subgraph_pattern::catalog;

    #[test]
    fn single_triangle_cq_expression() {
        let cqs = cqs_for_sample(&catalog::triangle());
        let expr = CostExpression::from_single_cq(&cqs[0]);
        assert_eq!(expr.num_vars(), 3);
        assert_eq!(expr.terms().len(), 3);
        assert!(expr.terms().iter().all(|t| t.coefficient == 1.0));
        // Each term misses exactly one variable.
        assert!(expr.terms().iter().all(|t| t.missing.len() == 1));
        // With equal shares b the cost per edge is 3b (the 3b − 2 of Section
        // 2.2 up to the duplicate-reducer correction the paper itself ignores
        // in practice: see its footnote 1).
        let cost = expr.evaluate(&[4.0, 4.0, 4.0]);
        assert!((cost - 12.0).abs() < 1e-12);
    }

    #[test]
    fn square_collection_marks_two_bidirectional_edges() {
        // Example 4.2: edges (W,X) and (W,Z) are unidirectional, (X,Y) and
        // (Y,Z) appear in both orientations.
        let cqs = cqs_for_sample(&catalog::square());
        let expr = CostExpression::from_cq_collection(&cqs);
        assert_eq!(expr.terms().len(), 4);
        assert!(!expr.is_bidirectional(0, 1));
        assert!(!expr.is_bidirectional(0, 3));
        assert!(expr.is_bidirectional(1, 2));
        assert!(expr.is_bidirectional(2, 3));
    }

    #[test]
    fn square_expression_matches_example_4_2() {
        // Cost = yz + 2wz + 2wx + xy  (per unit of e).
        let cqs = cqs_for_sample(&catalog::square());
        let expr = CostExpression::from_cq_collection(&cqs);
        let shares = [3.0, 5.0, 7.0, 11.0]; // w, x, y, z
        let expected = 7.0 * 11.0 + 2.0 * 3.0 * 11.0 + 2.0 * 3.0 * 5.0 + 5.0 * 7.0;
        assert!((expr.evaluate(&shares) - expected).abs() < 1e-9);
    }

    #[test]
    fn fixing_variables_and_free_vars() {
        let cqs = cqs_for_sample(&catalog::lollipop());
        let mut expr = CostExpression::from_single_cq(&cqs[0]);
        assert_eq!(expr.free_vars().len(), 4);
        expr.fix_to_one(0);
        assert_eq!(expr.free_vars(), vec![1, 2, 3]);
        assert!(expr.fixed_to_one().contains(&0));
    }

    #[test]
    fn per_variable_sums_detect_optimality() {
        // Example 4.1 optimum: w=1, x=30, y=z=5 — the three free sums are equal (=30).
        let cqs = cqs_for_sample(&catalog::lollipop());
        let first = cqs
            .iter()
            .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
            .expect("the identity-order CQ exists");
        let mut expr = CostExpression::from_single_cq(first);
        expr.fix_to_one(0);
        let shares = [1.0, 30.0, 5.0, 5.0];
        let sums = expr.per_variable_sums(&shares);
        for (_, s) in &sums {
            assert!((s - 30.0).abs() < 1e-9, "sums not equal: {sums:?}");
        }
        assert!((expr.evaluate(&shares) - 65.0).abs() < 1e-9);
        assert!((expr.num_reducers(&shares) - 750.0).abs() < 1e-9);
    }

    #[test]
    fn replication_per_term_matches_example_4_1() {
        let cqs = cqs_for_sample(&catalog::lollipop());
        let first = cqs
            .iter()
            .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let expr = CostExpression::from_single_cq(first);
        let shares = [1.0, 30.0, 5.0, 5.0];
        let reps = expr.replication_per_term(&shares);
        // E(W,X) → 25, E(X,Y) → 5, E(X,Z) → 5, E(Y,Z) → 30.
        let lookup =
            |edge: (Var, Var)| -> f64 { reps.iter().find(|(t, _)| t.edge == edge).unwrap().1 };
        assert!((lookup((0, 1)) - 25.0).abs() < 1e-9);
        assert!((lookup((1, 2)) - 5.0).abs() < 1e-9);
        assert!((lookup((1, 3)) - 5.0).abs() < 1e-9);
        assert!((lookup((2, 3)) - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_collection_rejected() {
        let _ = CostExpression::from_cq_collection(&[]);
    }

    #[test]
    fn expression_level_dominance_pins_the_lollipop_pendant() {
        // W touches only the edge {W, X}, so it is dominated by X; the other
        // three variables are free.
        let cqs = cqs_for_sample(&catalog::lollipop());
        let mut expr = CostExpression::from_cq_collection(&cqs);
        expr.fix_dominated_to_one();
        assert_eq!(expr.free_vars(), vec![1, 2, 3]);

        // The square has no dominated variables.
        let cqs = cqs_for_sample(&catalog::square());
        let mut expr = CostExpression::from_cq_collection(&cqs);
        expr.fix_dominated_to_one();
        assert_eq!(expr.free_vars().len(), 4);

        // Star leaves are all dominated by the centre.
        let cqs = cqs_for_sample(&catalog::star(4));
        let mut expr = CostExpression::from_cq_collection(&cqs);
        expr.fix_dominated_to_one();
        assert_eq!(expr.free_vars(), vec![0]);
    }

    #[test]
    fn dominance_keeps_the_lollipop_optimum_finite() {
        // Without the rule the solver chases w -> 0, x -> infinity; with it the
        // optimum is finite and far cheaper than the divergent rounding.
        let cqs = cqs_for_sample(&catalog::lollipop());
        let mut expr = CostExpression::from_cq_collection(&cqs);
        expr.fix_dominated_to_one();
        let solution = crate::solver::optimize_shares(&expr, 750.0);
        assert!((solution.shares[0] - 1.0).abs() < 1e-9);
        assert!(solution.shares.iter().all(|&s| s < 750.0));
        assert!(
            solution.cost_per_edge < 200.0,
            "cost {}",
            solution.cost_per_edge
        );
    }
}
