//! Share (bucket-count) optimization for multiway joins, after Afrati–Ullman.
//!
//! Section 4 of the paper minimizes the *communication cost* of evaluating the
//! CQs for a sample graph in one map-reduce round. Each variable `X` of a CQ
//! gets a **share** `x`: the number of buckets its values are hashed into. A
//! reducer is a list of bucket numbers, one per variable, so the number of
//! reducers is the product of the shares. A tuple for a relational subgoal
//! must be replicated to every combination of buckets of the variables *not*
//! appearing in that subgoal, so the communication cost is a sum of terms —
//! one per subgoal — each being the relation size times the product of the
//! missing variables' shares.
//!
//! * [`expr`] — the cost expression (terms, coefficients 1 or 2 for
//!   unidirectional/bidirectional edges in variable-oriented processing).
//! * [`dominance`] — the dominated-variable rule (a dominated variable's share
//!   may be fixed to 1).
//! * [`bound`] — admissible Shares lower bounds for partial node orderings
//!   (the pruning rule of the planner's branch-and-bound search) and the
//!   expression signatures its orbit memoization keys on.
//! * [`solver`] — numeric minimization of the expression subject to a fixed
//!   number of reducers (product of shares), via projected gradient descent in
//!   log space; the optimality conditions are the paper's equal-sums
//!   Lagrangian conditions.
//! * [`regular`] — closed forms for regular sample graphs (Theorems 4.1, 4.3).
//! * [`counting`] — reducer-count combinatorics for hash-ordered processing
//!   (Theorem 4.2 and the Section 4.5 comparison with generalized Partition).

pub mod bound;
pub mod counting;
pub mod dominance;
pub mod expr;
pub mod regular;
pub mod solver;

pub use bound::{expression_signature, partial_cost_expression, ExpressionSignature};
pub use dominance::dominated_variables;
pub use expr::{CostExpression, Term};
pub use regular::{regular_equal_shares, two_level_shares};
pub use solver::{optimize_shares, SharesSolution};

#[cfg(test)]
mod proptests;
