//! Numeric minimization of a communication-cost expression subject to a fixed
//! number of reducers (Section 4.1, and Section 4.3.2 for the general case).
//!
//! The expression `Σ c_t · Π_{v ∈ t} s_v` is a posynomial in the shares, hence
//! convex in the logarithms `u_v = ln s_v`; the constraint `Π s_v = k` becomes
//! linear (`Σ u_v = ln k`). Projected gradient descent in log space therefore
//! converges to the global optimum, at which the paper's Lagrangian conditions
//! hold: the per-variable term sums are all equal.

use crate::expr::CostExpression;
use subgraph_cq::Var;

/// The outcome of a share optimization.
#[derive(Clone, Debug)]
pub struct SharesSolution {
    /// Optimal (real-valued) share per variable; dominated variables have share 1.
    pub shares: Vec<f64>,
    /// Per-edge communication cost `Σ c_t Π s_v` at the optimum (multiply by
    /// the data-graph edge count to get the absolute communication cost).
    pub cost_per_edge: f64,
    /// The reducer budget `k` the optimization was run with.
    pub reducers: f64,
    /// Largest relative gap between the per-variable Lagrangian sums at the
    /// solution (0 means the optimality conditions hold exactly).
    pub optimality_gap: f64,
}

/// Minimizes `expr` subject to the product of the *free* shares equalling `k`.
/// Dominated (pinned) variables keep share 1.
pub fn optimize_shares(expr: &CostExpression, k: f64) -> SharesSolution {
    assert!(k >= 1.0, "the reducer budget must be at least 1");
    let p = expr.num_vars();
    let free = expr.free_vars();
    let mut shares = vec![1.0f64; p];
    if free.is_empty() || expr.terms().is_empty() {
        return finish(expr, shares, k);
    }
    // Start from equal shares: s_v = k^(1/|free|).
    let log_k = k.ln();
    let mut log_shares: Vec<f64> = vec![log_k / free.len() as f64; free.len()];

    let mut step = 0.5;
    let mut previous_cost = f64::INFINITY;
    for iteration in 0..20_000 {
        write_shares(&mut shares, &free, &log_shares);
        let cost = expr.evaluate(&shares);
        // Gradient of the cost w.r.t. the log-shares: the per-variable sums.
        let sums = per_free_variable_sums(expr, &shares, &free);
        let mean: f64 = sums.iter().sum::<f64>() / sums.len() as f64;
        // Projected gradient: move each log-share against its sum, keeping the
        // total (= ln k) constant by subtracting the mean component.
        let scale = if mean > 0.0 { 1.0 / mean } else { 1.0 };
        for (i, sum) in sums.iter().enumerate() {
            log_shares[i] -= step * scale * (sum - mean);
        }
        renormalize(&mut log_shares, log_k);
        // Simple step-size control: shrink when the cost stops improving.
        if iteration % 100 == 99 {
            if cost > previous_cost * (1.0 - 1e-12) {
                step *= 0.7;
                if step < 1e-6 {
                    break;
                }
            }
            previous_cost = cost;
        }
    }
    write_shares(&mut shares, &free, &log_shares);
    finish(expr, shares, k)
}

fn finish(expr: &CostExpression, shares: Vec<f64>, k: f64) -> SharesSolution {
    let cost_per_edge = expr.evaluate(&shares);
    let sums = expr.per_variable_sums(&shares);
    let optimality_gap = match (
        sums.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min),
        sums.iter().map(|&(_, s)| s).fold(0.0f64, f64::max),
    ) {
        (min, max) if min.is_finite() && min > 0.0 => (max - min) / max,
        _ => 0.0,
    };
    SharesSolution {
        shares,
        cost_per_edge,
        reducers: k,
        optimality_gap,
    }
}

fn write_shares(shares: &mut [f64], free: &[Var], log_shares: &[f64]) {
    for (i, &v) in free.iter().enumerate() {
        shares[v as usize] = log_shares[i].exp();
    }
}

fn renormalize(log_shares: &mut [f64], log_k: f64) {
    let total: f64 = log_shares.iter().sum();
    let correction = (log_k - total) / log_shares.len() as f64;
    for u in log_shares.iter_mut() {
        *u += correction;
    }
}

fn per_free_variable_sums(expr: &CostExpression, shares: &[f64], free: &[Var]) -> Vec<f64> {
    free.iter()
        .map(|&v| {
            expr.terms()
                .iter()
                .filter(|t| t.missing.contains(&v))
                .map(|t| {
                    t.coefficient
                        * t.missing
                            .iter()
                            .map(|&u| shares[u as usize])
                            .product::<f64>()
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::single_cq_expression_with_dominance;
    use crate::expr::CostExpression;
    use subgraph_cq::cqs_for_sample;
    use subgraph_pattern::catalog;

    fn lollipop_identity_expr() -> CostExpression {
        let cq = cqs_for_sample(&catalog::lollipop())
            .into_iter()
            .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        single_cq_expression_with_dominance(&cq)
    }

    #[test]
    fn example_4_1_lollipop_shares() {
        // At k = 750 the optimum is w=1, x=30, y=z=5 with cost 65 per edge.
        let expr = lollipop_identity_expr();
        let solution = optimize_shares(&expr, 750.0);
        assert!((solution.shares[0] - 1.0).abs() < 1e-9);
        assert!(
            (solution.shares[1] - 30.0).abs() < 0.3,
            "x = {}",
            solution.shares[1]
        );
        assert!((solution.shares[2] - 5.0).abs() < 0.1);
        assert!((solution.shares[3] - 5.0).abs() < 0.1);
        assert!((solution.cost_per_edge - 65.0).abs() < 0.2);
        assert!(solution.optimality_gap < 0.01);
    }

    #[test]
    fn example_4_1_structure_holds_for_other_budgets() {
        // The optimality conditions give z = y and x = y² + y for any budget.
        let expr = lollipop_identity_expr();
        for k in [200.0, 2000.0, 20_000.0] {
            let s = optimize_shares(&expr, k);
            let (x, y, z) = (s.shares[1], s.shares[2], s.shares[3]);
            assert!((y - z).abs() / y < 0.02, "y={y} z={z}");
            assert!((x - (y * y + y)).abs() / x < 0.05, "x={x} y={y}");
            assert!(s.optimality_gap < 0.02);
        }
    }

    #[test]
    fn example_4_2_square_variable_oriented() {
        // Cost = yz + 2wz + 2wx + xy; optimum satisfies x = z, y = 2w and the
        // cost is 4√(2k) per edge.
        let cqs = cqs_for_sample(&catalog::square());
        let expr = CostExpression::from_cq_collection(&cqs);
        for k in [128.0, 512.0, 5000.0] {
            let s = optimize_shares(&expr, k);
            let (w, x, y, z) = (s.shares[0], s.shares[1], s.shares[2], s.shares[3]);
            assert!((x - z).abs() / x < 0.03, "x={x} z={z}");
            assert!((y - 2.0 * w).abs() / y < 0.03, "w={w} y={y}");
            let expected = 4.0 * (2.0 * k).sqrt();
            assert!(
                (s.cost_per_edge - expected).abs() / expected < 0.01,
                "cost {} vs expected {expected}",
                s.cost_per_edge
            );
        }
    }

    #[test]
    fn triangle_equal_shares() {
        // Theorem 4.1: for a regular sample graph all shares are equal (³√k).
        let cqs = cqs_for_sample(&catalog::triangle());
        let expr = CostExpression::from_single_cq(&cqs[0]);
        let k = 729.0;
        let s = optimize_shares(&expr, k);
        for v in 0..3 {
            assert!(
                (s.shares[v] - 9.0).abs() < 0.05,
                "share {v} = {}",
                s.shares[v]
            );
        }
        assert!((s.cost_per_edge - 27.0).abs() < 0.2);
    }

    #[test]
    fn hexagon_variable_oriented_matches_example_4_3() {
        // Theorem 4.3 case (a): X1 gets half the share of the others.
        // With k = 500 000: X1 = 5, the rest 10; cost per edge = 6·10⁴
        // (the paper's Example 4.3 reports 5·10⁴·e total, i.e. 5·10¹³ for
        // m = 10⁹; evaluating its own optimum shares gives 6·10⁴ per edge —
        // see EXPERIMENTS.md).
        let cqs = cqs_for_sample(&catalog::cycle(6));
        let expr = CostExpression::from_cq_collection(&cqs);
        // Exactly the four non-X1 edges must be bidirectional.
        assert!(!expr.is_bidirectional(0, 1));
        assert!(!expr.is_bidirectional(0, 5));
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 5)] {
            assert!(
                expr.is_bidirectional(a, b),
                "({a},{b}) should be bidirectional"
            );
        }
        let s = optimize_shares(&expr, 500_000.0);
        // Like Example 4.2, the optimum is a one-parameter family (scaling the
        // odd-position shares up and the even-position shares down leaves every
        // term unchanged). The invariants that hold across the whole optimal
        // family — and at the paper's symmetric pick (5, 10, 10, 10, 10, 10) —
        // are: the X2/X4/X6 shares are equal, the X3/X5 shares are equal and
        // twice the X1 share, X1·X2 = 50, and the cost per edge is 6·10⁴.
        let a = s.shares[0];
        assert!((s.shares[2] - s.shares[4]).abs() / s.shares[2] < 0.03);
        assert!((s.shares[1] - s.shares[3]).abs() / s.shares[1] < 0.03);
        assert!((s.shares[3] - s.shares[5]).abs() / s.shares[3] < 0.03);
        assert!((s.shares[2] - 2.0 * a).abs() / s.shares[2] < 0.03);
        assert!(
            (a * s.shares[1] - 50.0).abs() / 50.0 < 0.03,
            "a·b = {}",
            a * s.shares[1]
        );
        assert!(
            (s.cost_per_edge - 60_000.0).abs() / 60_000.0 < 0.01,
            "cost {}",
            s.cost_per_edge
        );
    }

    #[test]
    fn budget_of_one_gives_unit_shares() {
        let cqs = cqs_for_sample(&catalog::triangle());
        let expr = CostExpression::from_single_cq(&cqs[0]);
        let s = optimize_shares(&expr, 1.0);
        for v in 0..3 {
            assert!((s.shares[v] - 1.0).abs() < 1e-6);
        }
        assert!((s.cost_per_edge - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn budget_below_one_is_rejected() {
        let cqs = cqs_for_sample(&catalog::triangle());
        let expr = CostExpression::from_single_cq(&cqs[0]);
        let _ = optimize_shares(&expr, 0.5);
    }
}
