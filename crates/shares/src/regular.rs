//! Closed-form share assignments for regular sample graphs
//! (Theorem 4.1 and Theorem 4.3).

use crate::expr::CostExpression;
use subgraph_cq::Var;
use subgraph_pattern::SampleGraph;

/// Theorem 4.1: for a regular sample graph with `p` nodes evaluated by a
/// single CQ with `k` reducers, every node gets share `k^(1/p)`.
pub fn regular_equal_shares(sample: &SampleGraph, k: f64) -> Option<Vec<f64>> {
    if !sample.is_regular() || sample.num_nodes() == 0 {
        return None;
    }
    let p = sample.num_nodes();
    Some(vec![k.powf(1.0 / p as f64); p])
}

/// Theorem 4.3: when the nodes split into `S1`/`S2` with the stated pattern of
/// bidirectional and unidirectional edges, the `S1` shares are all equal and
/// twice the `S2` shares. Given the split, returns the concrete shares for a
/// reducer budget `k` (so that the product of all shares equals `k`).
pub fn two_level_shares(num_vars: usize, s1: &[Var], s2: &[Var], k: f64) -> Vec<f64> {
    let mut seen = vec![false; num_vars];
    for &v in s1.iter().chain(s2.iter()) {
        assert!(
            (v as usize) < num_vars && !seen[v as usize],
            "S1 and S2 must partition the variables"
        );
        seen[v as usize] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "S1 and S2 must partition the variables"
    );
    // shares: S1 nodes get 2t, S2 nodes get t, with (2t)^{|S1|} · t^{|S2|} = k.
    let exponent = (s1.len() + s2.len()) as f64;
    let t = (k / 2f64.powi(s1.len() as i32)).powf(1.0 / exponent);
    let mut shares = vec![0.0; num_vars];
    for &v in s1 {
        shares[v as usize] = 2.0 * t;
    }
    for &v in s2 {
        shares[v as usize] = t;
    }
    shares
}

/// The per-edge communication cost of Theorem 4.1's assignment for a regular
/// sample graph with `p` nodes, degree `d`, and `k` reducers:
/// `(p·d/2) · k^{(p−2)/p}` (each of the `p·d/2` edges contributes the product
/// of the `p − 2` missing shares).
pub fn regular_cost_per_edge(p: usize, degree: usize, k: f64) -> f64 {
    (p as f64 * degree as f64 / 2.0) * k.powf((p as f64 - 2.0) / p as f64)
}

/// Checks how far a share vector is from satisfying the Lagrangian optimality
/// conditions of `expr` (0 = optimal). Convenience for validating closed forms
/// against the numeric solver.
pub fn optimality_gap(expr: &CostExpression, shares: &[f64]) -> f64 {
    let sums: Vec<f64> = expr
        .per_variable_sums(shares)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let min = sums.iter().copied().fold(f64::INFINITY, f64::min);
    let max = sums.iter().copied().fold(0.0f64, f64::max);
    if !min.is_finite() || max == 0.0 {
        0.0
    } else {
        (max - min) / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CostExpression;
    use subgraph_cq::cqs_for_sample;
    use subgraph_pattern::catalog;

    #[test]
    fn theorem_4_1_equal_shares_for_regular_graphs() {
        let shares = regular_equal_shares(&catalog::triangle(), 216.0).unwrap();
        for s in &shares {
            assert!((s - 6.0).abs() < 1e-9);
        }
        let shares = regular_equal_shares(&catalog::cycle(5), 32.0).unwrap();
        for s in shares {
            assert!((s - 2.0).abs() < 1e-12);
        }
        assert!(regular_equal_shares(&catalog::lollipop(), 100.0).is_none());
    }

    #[test]
    fn theorem_4_1_shares_satisfy_the_optimality_conditions() {
        for sample in [
            catalog::triangle(),
            catalog::square(),
            catalog::k4(),
            catalog::cycle(5),
        ] {
            let cq = &cqs_for_sample(&sample)[0];
            let expr = CostExpression::from_single_cq(cq);
            let shares = regular_equal_shares(&sample, 4096.0).unwrap();
            assert!(
                optimality_gap(&expr, &shares) < 1e-9,
                "equal shares not optimal for {sample:?}"
            );
        }
    }

    #[test]
    fn regular_cost_formula_matches_direct_evaluation() {
        let triangle = catalog::triangle();
        let cq = &cqs_for_sample(&triangle)[0];
        let expr = CostExpression::from_single_cq(cq);
        let k = 1000.0;
        let shares = regular_equal_shares(&triangle, k).unwrap();
        let direct = expr.evaluate(&shares);
        let formula = regular_cost_per_edge(3, 2, k);
        assert!((direct - formula).abs() / formula < 1e-9);
    }

    #[test]
    fn theorem_4_3_two_level_shares_for_the_hexagon() {
        // Example 4.3: S2 = {X1}, S1 = the rest, k = 500 000 ⇒ X1 = 5, rest = 10.
        let s1: Vec<Var> = vec![1, 2, 3, 4, 5];
        let s2: Vec<Var> = vec![0];
        let shares = two_level_shares(6, &s1, &s2, 500_000.0);
        assert!((shares[0] - 5.0).abs() < 1e-9);
        for share in &shares[1..6] {
            assert!((share - 10.0).abs() < 1e-9);
        }
        let product: f64 = shares.iter().product();
        assert!((product - 500_000.0).abs() / 500_000.0 < 1e-9);
    }

    #[test]
    fn theorem_4_3_shares_are_optimal_for_the_hexagon_expression() {
        let cqs = cqs_for_sample(&catalog::cycle(6));
        let expr = CostExpression::from_cq_collection(&cqs);
        let shares = two_level_shares(6, &[1, 2, 3, 4, 5], &[0], 500_000.0);
        assert!(optimality_gap(&expr, &shares) < 1e-9);
        assert!((expr.evaluate(&shares) - 60_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn two_level_shares_requires_a_partition() {
        let _ = two_level_shares(4, &[0, 1], &[1, 2], 100.0);
    }
}
