//! Shares lower bounds for *partial* node orderings (the pruning rule of the
//! planner's branch-and-bound search).
//!
//! Section 4.1's communication cost for one CQ is `Σ_edges coeff · Π
//! shares(missing)`, and for a single CQ every coefficient is 1 — each sample
//! edge contributes exactly one subgoal whatever the node ordering, and a
//! term's `missing` set depends only on the (undirected) edge. Consequently:
//!
//! * the cost expression of any completion of a partial ordering has one
//!   term per sample edge with coefficient exactly 1 — the orientation a
//!   deeper prefix fixes can never raise (or lower) a coefficient, and
//! * the dominated-variable rule of Example 4.1 looks only at which subgoals
//!   a variable occurs in, never at the orientation, so the pinned set is the
//!   same for every completion too.
//!
//! [`partial_cost_expression`] therefore *is* the exact cost expression of
//! every completion: an admissible (never exceeds any completion's true
//! cost), monotone (non-decreasing with depth) and in fact *tight* lower
//! bound. Branch-and-bound over single-CQ costs degenerates into its best
//! case — the first leaf's cost equals every other leaf's bound, so the
//! search scores one class and prunes the rest — and the proptests in this
//! crate pin the admissibility and tightness that make that sound. For
//! expressions where coefficients *can* differ (the variable-oriented
//! coefficient-2 bidirectional edges of Section 4.3), taking 1 for every
//! undecided edge is still a valid floor: coefficients only grow as
//! orientations are fixed.

use crate::expr::CostExpression;
use subgraph_cq::Var;

/// A hashable fingerprint of a [`CostExpression`]: the term list (edge +
/// coefficient bits) plus the dominance-pinned variables. Two expressions
/// with equal signatures are interchangeable inputs to the share solver
/// (which is deterministic), so the signature is the memo key the planner
/// uses to solve each automorphism orbit's expression once.
pub type ExpressionSignature = (Vec<(Var, Var, u64)>, Vec<Var>);

/// The fingerprint of `expr` for orbit memoization (see
/// [`ExpressionSignature`]).
pub fn expression_signature(expr: &CostExpression) -> ExpressionSignature {
    let terms = expr
        .terms()
        .iter()
        .map(|t| (t.edge.0, t.edge.1, t.coefficient.to_bits()))
        .collect();
    let pinned = expr.fixed_to_one().iter().copied().collect();
    (terms, pinned)
}

/// The cost expression lower-bounding every completion of a partial ordering.
///
/// `edges` is the sample graph's edge list and `oriented` the matching
/// per-edge view of a partial CQ (`Some((a, b))` once the prefix fixes the
/// subgoal `E(a, b)`, `None` while undecided — exactly
/// `subgraph_cq::PartialCq::oriented_edges`). Decided edges keep their fixed
/// orientation; undecided edges take their minimum possible contribution
/// (coefficient 1, which for a single CQ is also their only possible
/// contribution). Dominated variables are pinned to share 1, mirroring the
/// preprocessing the estimator applies to complete CQs.
///
/// # Panics
/// Panics if `oriented` and `edges` disagree in length.
pub fn partial_cost_expression(
    num_vars: usize,
    edges: &[(Var, Var)],
    oriented: &[Option<(Var, Var)>],
) -> CostExpression {
    assert_eq!(
        edges.len(),
        oriented.len(),
        "oriented-edge view must cover every sample edge"
    );
    let subgoals: Vec<(Var, Var)> = edges
        .iter()
        .zip(oriented)
        .map(|(&(a, b), slot)| slot.unwrap_or(if a < b { (a, b) } else { (b, a) }))
        .collect();
    let mut expr = CostExpression::from_subgoal_collections(num_vars, &[subgoals]);
    expr.fix_dominated_to_one();
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::single_cq_expression_with_dominance;
    use crate::solver::optimize_shares;
    use subgraph_cq::{cq_for_ordering, PartialCq};
    use subgraph_pattern::automorphism::order_representatives;
    use subgraph_pattern::catalog;

    #[test]
    fn empty_prefix_bound_equals_every_completion_expression() {
        for sample in [catalog::triangle(), catalog::square(), catalog::lollipop()] {
            let partial = PartialCq::new(&sample);
            let bound = partial_cost_expression(
                sample.num_nodes(),
                sample.edges(),
                partial.oriented_edges(),
            );
            for ordering in order_representatives(&sample) {
                let cq = cq_for_ordering(&sample, &ordering);
                let full = single_cq_expression_with_dominance(&cq);
                assert_eq!(
                    expression_signature(&bound),
                    expression_signature(&full),
                    "{sample:?} ordering {ordering:?}"
                );
            }
        }
    }

    #[test]
    fn expression_dominance_agrees_with_cq_dominance() {
        // The expression-level rule (term-edge incidence) and the CQ-level
        // rule (subgoal occurrence sets) must pin the same variables, or the
        // leaf bound would differ from the estimator's per-CQ expression.
        for entry in catalog::entries() {
            for ordering in order_representatives(&entry.sample) {
                let cq = cq_for_ordering(&entry.sample, &ordering);
                let via_cq = single_cq_expression_with_dominance(&cq);
                let mut via_expr = CostExpression::from_single_cq(&cq);
                via_expr.fix_dominated_to_one();
                assert_eq!(
                    via_cq.fixed_to_one(),
                    via_expr.fixed_to_one(),
                    "{} ordering {ordering:?}",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn bound_cost_is_bitwise_the_completion_cost() {
        // The solver is deterministic, so identical expressions give
        // bit-identical costs — the property that lets branch-and-bound
        // reproduce the exhaustive path's numbers exactly.
        let sample = catalog::lollipop();
        let mut partial = PartialCq::new(&sample);
        partial.push(1);
        partial.push(3);
        let bound =
            partial_cost_expression(sample.num_nodes(), sample.edges(), partial.oriented_edges());
        partial.push(0);
        partial.push(2);
        let full = single_cq_expression_with_dominance(&partial.complete());
        for k in [16.0, 750.0] {
            let b = optimize_shares(&bound, k).cost_per_edge;
            let t = optimize_shares(&full, k).cost_per_edge;
            assert_eq!(b.to_bits(), t.to_bits(), "k={k}");
        }
    }

    #[test]
    fn signatures_distinguish_different_patterns() {
        let tri = {
            let s = catalog::triangle();
            partial_cost_expression(3, s.edges(), &[None, None, None])
        };
        let path = {
            let s = catalog::path(3);
            partial_cost_expression(3, s.edges(), &[None, None])
        };
        assert_ne!(expression_signature(&tri), expression_signature(&path));
    }
}
