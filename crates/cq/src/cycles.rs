//! CQ generation for cycles from edge-orientation run sequences (Section 5).
//!
//! For the cycle `C_p` the general method of Section 3 produces more CQs than
//! necessary. Section 5 instead starts from the *orientation* of the edges
//! around the cycle: walking counter-clockwise from a node `X1` that is lower
//! than both its neighbours, each edge is an **up** edge (`u`, the walk
//! ascends) or a **down** edge (`d`, the walk descends). Valid orientation
//! strings start with `u` and end with `d`; they are grouped by runs of equal
//! letters (the "run sequences" of Section 5), and strings related by a cyclic
//! shift (restarting the walk at another local minimum) or a flip (walking the
//! other way) generate the same cycles, so only one representative per class
//! needs a CQ (Section 5.2).
//!
//! A representative whose string is fixed by some nontrivial shift or flip
//! would discover a cycle several times; extra inequalities repair this
//! (Theorem 5.1): `X1` is forced to be smaller than the variables at every
//! alternative starting position, and if the walk direction is ambiguous,
//! `X2 < Xp` picks the direction.

use crate::query::{ConjunctiveQuery, Constraint, Var};
use std::collections::BTreeSet;

/// One conjunctive query for a cycle, together with the orientation string and
/// run-length sequence it was derived from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleCq {
    /// Orientation string, e.g. `"udddd"` for one of the pentagon's classes.
    pub orientation: String,
    /// Run lengths of the orientation string, e.g. `[1, 4]`.
    pub run_lengths: Vec<usize>,
    /// The conjunctive query (subgoals around the cycle plus the base and
    /// symmetry-breaking inequalities).
    pub query: ConjunctiveQuery,
}

/// Builds the minimal CQ family for the cycle `C_p` by the run-sequence method
/// of Section 5.2. Requires `p ≥ 3`.
pub fn cycle_cqs(p: usize) -> Vec<CycleCq> {
    assert!(p >= 3, "cycles need at least 3 nodes");
    let representatives = orientation_representatives(p);
    representatives
        .into_iter()
        .map(|s| {
            let query = cq_for_orientation(&s);
            CycleCq {
                run_lengths: run_lengths(&s),
                orientation: s,
                query,
            }
        })
        .collect()
}

/// All *valid* orientation strings of length `p`: they start with `u` and end
/// with `d` (the walk starts at a node lower than both its neighbours).
pub fn valid_orientations(p: usize) -> Vec<String> {
    let mut out = Vec::new();
    for mask in 0u32..(1 << (p - 2)) {
        let mut s = String::with_capacity(p);
        s.push('u');
        for bit in 0..(p - 2) {
            s.push(if mask & (1 << bit) != 0 { 'u' } else { 'd' });
        }
        s.push('d');
        out.push(s);
    }
    out.sort();
    out
}

/// One representative per equivalence class of valid orientation strings under
/// cyclic shifts and flips (walking the cycle in the other direction).
pub fn orientation_representatives(p: usize) -> Vec<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut reps = Vec::new();
    for s in valid_orientations(p) {
        if seen.contains(&s) {
            continue;
        }
        reps.push(s.clone());
        // Mark every valid string equivalent to s as covered.
        for k in 0..p {
            let rotated = rotate(&s, k);
            if is_valid(&rotated) {
                seen.insert(rotated.clone());
            }
            let flipped = flip(&rotated);
            if is_valid(&flipped) {
                seen.insert(flipped);
            }
        }
    }
    reps
}

/// The conditional upper bound `(2^p − 2) / (2p)` of Section 5.3 on the number
/// of CQs, exact whenever `p` is prime.
pub fn conditional_upper_bound(p: usize) -> f64 {
    ((1u64 << p) - 2) as f64 / (2 * p) as f64
}

/// The run-length sequence of an orientation string (e.g. `"uuddd"` → `[2, 3]`).
pub fn run_lengths(s: &str) -> Vec<usize> {
    let mut runs = Vec::new();
    let mut chars = s.chars();
    let mut current = match chars.next() {
        Some(c) => c,
        None => return runs,
    };
    let mut count = 1usize;
    for c in chars {
        if c == current {
            count += 1;
        } else {
            runs.push(count);
            current = c;
            count = 1;
        }
    }
    runs.push(count);
    runs
}

/// Builds the CQ for one orientation string, including the symmetry-breaking
/// inequalities of Theorem 5.1.
pub fn cq_for_orientation(s: &str) -> ConjunctiveQuery {
    let p = s.len();
    let chars: Vec<char> = s.chars().collect();
    assert!(
        p >= 3 && chars[0] == 'u' && chars[p - 1] == 'd',
        "invalid orientation {s}"
    );

    let mut subgoals: Vec<(Var, Var)> = Vec::with_capacity(p);
    let mut constraints: Vec<Constraint> = Vec::with_capacity(p + 2);
    for (i, &step) in chars.iter().enumerate() {
        let a = i as Var;
        let b = ((i + 1) % p) as Var;
        if step == 'u' {
            subgoals.push((a, b));
            constraints.push(Constraint::Lt(a, b));
        } else {
            subgoals.push((b, a));
            constraints.push(Constraint::Lt(b, a));
        }
    }

    // Alternative starting positions: pure rotations fixing the string, and
    // positions from which the reversed walk reproduces the string.
    let forward_starts = rotation_fixers(s);
    let reverse_starts = reverse_match_positions(s);
    let mut alternatives: BTreeSet<usize> = forward_starts
        .iter()
        .chain(reverse_starts.iter())
        .copied()
        .collect();
    alternatives.remove(&0);
    for j in alternatives {
        constraints.push(Constraint::Lt(0, j as Var));
    }
    if reverse_starts.contains(&0) {
        // The reversed walk from X1 itself also matches: pick the direction.
        constraints.push(Constraint::Lt(1, (p - 1) as Var));
    }
    ConjunctiveQuery::new(p, subgoals, constraints)
}

/// Positions `k` such that rotating the string by `k` leaves it unchanged.
pub fn rotation_fixers(s: &str) -> Vec<usize> {
    (0..s.len()).filter(|&k| rotate(s, k) == s).collect()
}

/// Positions `k` such that the *reversed* walk started at position `k`
/// produces the same orientation string: `s[i] = swap(s[(k − 1 − i) mod p])`
/// for all `i`.
pub fn reverse_match_positions(s: &str) -> Vec<usize> {
    let chars: Vec<char> = s.chars().collect();
    let p = chars.len();
    (0..p)
        .filter(|&k| {
            (0..p).all(|i| {
                let j = (k as isize - 1 - i as isize).rem_euclid(p as isize) as usize;
                chars[i] == swap(chars[j])
            })
        })
        .collect()
}

fn rotate(s: &str, k: usize) -> String {
    let bytes = s.as_bytes();
    let p = bytes.len();
    (0..p).map(|i| bytes[(i + k) % p] as char).collect()
}

fn flip(s: &str) -> String {
    s.chars().rev().map(swap).collect()
}

fn swap(c: char) -> char {
    match c {
        'u' => 'd',
        'd' => 'u',
        other => other,
    }
}

fn is_valid(s: &str) -> bool {
    s.starts_with('u') && s.ends_with('d')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_cqs;
    use crate::generate::cqs_for_sample;
    use subgraph_graph::{generators, IdOrder};
    use subgraph_pattern::catalog;

    fn queries(p: usize) -> Vec<ConjunctiveQuery> {
        cycle_cqs(p).into_iter().map(|c| c.query).collect()
    }

    fn choose(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    /// Distinct p-cycles in K_n: C(n, p) · p! / (2p).
    fn cycles_in_complete(n: usize, p: usize) -> usize {
        let mut fact = 1usize;
        for i in 2..=p {
            fact *= i;
        }
        choose(n, p) * fact / (2 * p)
    }

    #[test]
    fn run_length_extraction() {
        assert_eq!(run_lengths("udddd"), vec![1, 4]);
        assert_eq!(run_lengths("uuddd"), vec![2, 3]);
        assert_eq!(run_lengths("ududud"), vec![1, 1, 1, 1, 1, 1]);
        assert_eq!(run_lengths("uuuddd"), vec![3, 3]);
    }

    #[test]
    fn valid_orientation_count_is_2_to_p_minus_2() {
        assert_eq!(valid_orientations(4).len(), 4);
        assert_eq!(valid_orientations(5).len(), 8);
        assert_eq!(valid_orientations(6).len(), 16);
        for s in valid_orientations(6) {
            assert!(s.starts_with('u') && s.ends_with('d'));
        }
    }

    #[test]
    fn pentagon_needs_exactly_three_cqs_as_in_example_5_3() {
        let cqs = cycle_cqs(5);
        assert_eq!(cqs.len(), 3);
        // The classes are those of udddd (runs 1,4), uuddd (runs 2,3) and
        // ududd/uduud (runs 1,1,1,2 in some rotation).
        let mut run_multisets: Vec<Vec<usize>> = cqs
            .iter()
            .map(|c| {
                let mut r = c.run_lengths.clone();
                r.sort_unstable();
                r
            })
            .collect();
        run_multisets.sort();
        assert_eq!(
            run_multisets,
            vec![vec![1, 1, 1, 2], vec![1, 4], vec![2, 3]]
        );
    }

    #[test]
    fn hexagon_needs_exactly_eight_cqs() {
        // Example 5.5 of the paper reports 7 CQs for the hexagon, merging the
        // run sequences 1221/2112 into the class of 1122/2211 via an odd shift
        // of the run sequence. An odd shift swaps the roles of up and down
        // edges, which is not induced by restarting or reversing the walk, so
        // those are genuinely different orbits: the correct minimum is 8.
        // The exactness test below (`cycle_cqs_count_cycles_in_complete_graphs_
        // exactly_once`) confirms that the 8 classes find every hexagon of K_7
        // exactly once, and dropping any class misses hexagons.
        assert_eq!(cycle_cqs(6).len(), 8);
        let orbits: Vec<Vec<usize>> = cycle_cqs(6)
            .iter()
            .map(|c| {
                let mut r = c.run_lengths.clone();
                r.sort_unstable();
                r
            })
            .collect();
        // Both {1,1,2,2} orbits (1122-type and 1221-type) are present.
        assert_eq!(
            orbits
                .iter()
                .filter(|r| r.as_slice() == [1, 1, 2, 2])
                .count(),
            3,
            "the three distinct orbits with runs {{1,1,2,2}} must all be kept"
        );
    }

    #[test]
    fn heptagon_needs_exactly_nine_cqs_as_in_example_5_5() {
        assert_eq!(cycle_cqs(7).len(), 9);
        // 7 is prime, so the count equals the conditional upper bound.
        assert_eq!(conditional_upper_bound(7), 9.0);
    }

    #[test]
    fn square_needs_three_cqs_matching_section_3() {
        assert_eq!(cycle_cqs(4).len(), 3);
    }

    #[test]
    fn conditional_upper_bound_values() {
        assert!((conditional_upper_bound(5) - 3.0).abs() < 1e-9);
        assert!((conditional_upper_bound(6) - 62.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry_detection_matches_example_5_4() {
        // uuuddd (run sequence 33) is fixed by the direct flip only.
        assert_eq!(rotation_fixers("uuuddd"), vec![0]);
        assert_eq!(reverse_match_positions("uuuddd"), vec![0]);
        // ududud (111111) has rotational period 2 and is flip-fixed.
        assert_eq!(rotation_fixers("ududud"), vec![0, 2, 4]);
        assert_eq!(reverse_match_positions("ududud"), vec![0, 2, 4]);
        // udddd (pentagon) has no nontrivial symmetry.
        assert_eq!(rotation_fixers("udddd"), vec![0]);
        assert!(reverse_match_positions("udddd").is_empty());
    }

    #[test]
    fn uuuddd_gets_the_x2_lt_xp_inequality() {
        let q = cq_for_orientation("uuuddd");
        assert!(q.constraints().contains(&Constraint::Lt(1, 5)));
        // No X1-minimality constraints beyond the base chain.
        assert_eq!(q.constraints().len(), 6 + 1);
    }

    #[test]
    fn ududud_gets_periodicity_and_flip_inequalities() {
        let q = cq_for_orientation("ududud");
        assert!(q.constraints().contains(&Constraint::Lt(0, 2)));
        assert!(q.constraints().contains(&Constraint::Lt(0, 4)));
        assert!(q.constraints().contains(&Constraint::Lt(1, 5)));
        assert_eq!(q.constraints().len(), 6 + 3);
    }

    #[test]
    fn cycle_cqs_count_cycles_in_complete_graphs_exactly_once() {
        for (n, p) in [(6, 3), (6, 4), (7, 5), (7, 6), (8, 7)] {
            let g = generators::complete(n);
            let outcome = evaluate_cqs(&queries(p), &g, &IdOrder);
            assert_eq!(
                outcome.assignments,
                cycles_in_complete(n, p),
                "wrong count for C{p} in K{n}"
            );
            assert_eq!(outcome.duplicates(), 0, "duplicates for C{p} in K{n}");
        }
    }

    #[test]
    fn cycle_cqs_agree_with_the_general_method_on_random_graphs() {
        for p in 4..=6 {
            let g = generators::gnm(24, 110, p as u64);
            let via_runs = evaluate_cqs(&queries(p), &g, &IdOrder);
            let via_general = evaluate_cqs(&cqs_for_sample(&catalog::cycle(p)), &g, &IdOrder);
            assert_eq!(via_runs.assignments, via_general.assignments, "p={p}");
            assert_eq!(via_runs.duplicates(), 0);
            assert_eq!(via_general.duplicates(), 0);
            let mut a = via_runs.instances.clone();
            let mut b = via_general.instances.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fewer_cqs_than_the_general_method_for_larger_cycles() {
        // Example 5.3: pentagon needs 3 CQs here versus 7 by the orientation
        // merge of Section 3 (and 12 before merging).
        let general = cqs_for_sample(&catalog::cycle(5));
        let merged = crate::orientation::merge_by_orientation(&general);
        assert_eq!(general.len(), 12);
        // The paper (with its choice of representatives) obtains 7 orientation
        // groups; the exact number depends on which coset representatives are
        // chosen, but it is always strictly larger than the 3 CQs produced by
        // the run-sequence method.
        assert!(merged.len() > 3 && merged.len() <= general.len());
        assert_eq!(cycle_cqs(5).len(), 3);
    }

    #[test]
    #[should_panic]
    fn too_small_cycles_are_rejected() {
        let _ = cycle_cqs(2);
    }
}
