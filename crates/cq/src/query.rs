//! Data model for conjunctive queries with arithmetic comparisons.

use std::fmt;
use subgraph_pattern::PatternNode;

/// A variable of a conjunctive query. Variables correspond one-to-one with the
/// nodes of the sample graph, so they reuse the pattern-node index type.
pub type Var = PatternNode;

/// An atomic arithmetic comparison between two variables.
///
/// Comparisons refer to the chosen total order `<` on data-graph nodes (which
/// may be the identifier order, the bucket-then-id order of Section 2.3, or
/// any other [`subgraph_graph::NodeOrder`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constraint {
    /// `Lt(a, b)` means the node bound to `a` strictly precedes the node bound to `b`.
    Lt(Var, Var),
    /// `Neq(a, b)` means the two variables are bound to different nodes.
    Neq(Var, Var),
}

impl Constraint {
    /// Evaluates the constraint given the rank (position in the total order)
    /// of the node bound to each variable.
    pub fn holds(&self, rank_of: &dyn Fn(Var) -> u64) -> bool {
        match *self {
            Constraint::Lt(a, b) => rank_of(a) < rank_of(b),
            Constraint::Neq(a, b) => rank_of(a) != rank_of(b),
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Lt(a, b) => write!(f, "{}<{}", var_name(*a), var_name(*b)),
            Constraint::Neq(a, b) => write!(f, "{}!={}", var_name(*a), var_name(*b)),
        }
    }
}

/// A single conjunctive query: relational subgoals `E(a, b)` (one per edge of
/// the sample graph, with the arguments in the orientation the query requires)
/// plus a conjunction of arithmetic comparisons.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    num_vars: usize,
    subgoals: Vec<(Var, Var)>,
    constraints: Vec<Constraint>,
}

impl ConjunctiveQuery {
    /// Creates a query over `num_vars` variables.
    ///
    /// # Panics
    /// Panics if any subgoal or constraint mentions a variable `≥ num_vars`,
    /// or if a subgoal/constraint relates a variable to itself.
    pub fn new(num_vars: usize, subgoals: Vec<(Var, Var)>, constraints: Vec<Constraint>) -> Self {
        for &(a, b) in &subgoals {
            assert!(a != b, "subgoal E({a},{b}) relates a variable to itself");
            assert!((a as usize) < num_vars && (b as usize) < num_vars);
        }
        for c in &constraints {
            let (a, b) = match *c {
                Constraint::Lt(a, b) | Constraint::Neq(a, b) => (a, b),
            };
            assert!(a != b, "constraint relates a variable to itself");
            assert!((a as usize) < num_vars && (b as usize) < num_vars);
        }
        ConjunctiveQuery {
            num_vars,
            subgoals,
            constraints,
        }
    }

    /// Number of variables (= number of nodes of the sample graph).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The relational subgoals, each an ordered pair `(a, b)` meaning `E(a, b)`.
    pub fn subgoals(&self) -> &[(Var, Var)] {
        &self.subgoals
    }

    /// The arithmetic comparisons (a conjunction).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The subgoal list sorted canonically — two queries have the same *edge
    /// orientation* (Section 3.3) iff their canonical subgoals are equal.
    pub fn canonical_subgoals(&self) -> Vec<(Var, Var)> {
        let mut s = self.subgoals.clone();
        s.sort_unstable();
        s
    }

    /// True if the assignment of ranks satisfies all arithmetic comparisons.
    pub fn constraints_hold(&self, rank_of: &dyn Fn(Var) -> u64) -> bool {
        self.constraints.iter().all(|c| c.holds(rank_of))
    }

    /// Renders the query in the paper's notation, e.g.
    /// `E(W,X) & E(X,Y) & E(Y,Z) & E(W,Z) & W<X & X<Y & Y<Z`.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .subgoals
            .iter()
            .map(|&(a, b)| format!("E({},{})", var_name(a), var_name(b)))
            .collect();
        parts.extend(self.constraints.iter().map(|c| format!("{c:?}")));
        parts.join(" & ")
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CQ[{}]", self.render())
    }
}

/// A group of CQs that share the same edge orientation (identical relational
/// subgoals up to reordering) and differ only in their arithmetic comparisons.
///
/// Section 3.3 merges such CQs by taking the logical OR of their conditions.
/// Evaluation therefore accepts an assignment iff it satisfies *at least one*
/// member's conjunction, which keeps the "exactly once" guarantee (the member
/// conditions are mutually exclusive total orders).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqGroup {
    /// Canonical (sorted) subgoal list shared by every member.
    pub subgoals: Vec<(Var, Var)>,
    /// The member queries; all have the same subgoals.
    pub members: Vec<ConjunctiveQuery>,
}

impl CqGroup {
    /// Number of variables (taken from the first member).
    pub fn num_vars(&self) -> usize {
        self.members.first().map(|q| q.num_vars()).unwrap_or(0)
    }

    /// True if the rank assignment satisfies at least one member's conditions.
    pub fn constraints_hold(&self, rank_of: &dyn Fn(Var) -> u64) -> bool {
        self.members.iter().any(|q| q.constraints_hold(rank_of))
    }

    /// The orientation signature used for display: each subgoal `(a, b)`
    /// rendered as `ab` with the lower end of the edge first (Figure 6 style).
    pub fn orientation_signature(&self) -> String {
        self.subgoals
            .iter()
            .map(|&(a, b)| format!("{}{}", var_name(a), var_name(b)))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Human-readable variable names matching the paper's conventions: four or
/// fewer variables are `W, X, Y, Z` (as in Figures 3–7); larger patterns use
/// `X1, X2, …` (as in Section 5).
pub fn var_name(v: Var) -> String {
    const SMALL: [&str; 4] = ["W", "X", "Y", "Z"];
    if (v as usize) < SMALL.len() {
        SMALL[v as usize].to_string()
    } else {
        format!("X{}", v + 1)
    }
}

/// Variable names for a pattern with `num_vars` variables; patterns with more
/// than four nodes use `X1..Xp` for *all* variables so the rendering matches
/// Section 5's cycle notation.
pub fn var_names(num_vars: usize) -> Vec<String> {
    if num_vars <= 4 {
        (0..num_vars as Var).map(var_name).collect()
    } else {
        (1..=num_vars).map(|i| format!("X{i}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_evaluation() {
        let ranks = |v: Var| -> u64 { [10, 20, 20, 5][v as usize] };
        assert!(Constraint::Lt(0, 1).holds(&ranks));
        assert!(!Constraint::Lt(1, 2).holds(&ranks));
        assert!(!Constraint::Neq(1, 2).holds(&ranks));
        assert!(Constraint::Neq(0, 3).holds(&ranks));
    }

    #[test]
    fn render_matches_paper_notation() {
        // The first CQ for the square from Example 3.1.
        let q = ConjunctiveQuery::new(
            4,
            vec![(0, 1), (1, 2), (2, 3), (0, 3)],
            vec![
                Constraint::Lt(0, 1),
                Constraint::Lt(1, 2),
                Constraint::Lt(2, 3),
            ],
        );
        assert_eq!(
            q.render(),
            "E(W,X) & E(X,Y) & E(Y,Z) & E(W,Z) & W<X & X<Y & Y<Z"
        );
    }

    #[test]
    fn canonical_subgoals_ignore_order_of_listing() {
        let a = ConjunctiveQuery::new(3, vec![(0, 1), (1, 2)], vec![]);
        let b = ConjunctiveQuery::new(3, vec![(1, 2), (0, 1)], vec![]);
        assert_eq!(a.canonical_subgoals(), b.canonical_subgoals());
        let c = ConjunctiveQuery::new(3, vec![(1, 0), (1, 2)], vec![]);
        assert_ne!(a.canonical_subgoals(), c.canonical_subgoals());
    }

    #[test]
    #[should_panic]
    fn out_of_range_variable_rejected() {
        let _ = ConjunctiveQuery::new(2, vec![(0, 2)], vec![]);
    }

    #[test]
    #[should_panic]
    fn reflexive_subgoal_rejected() {
        let _ = ConjunctiveQuery::new(2, vec![(1, 1)], vec![]);
    }

    #[test]
    fn group_accepts_union_of_members() {
        let member1 = ConjunctiveQuery::new(2, vec![(0, 1)], vec![Constraint::Lt(0, 1)]);
        let member2 = ConjunctiveQuery::new(2, vec![(0, 1)], vec![Constraint::Lt(1, 0)]);
        let group = CqGroup {
            subgoals: vec![(0, 1)],
            members: vec![member1, member2],
        };
        let asc = |v: Var| -> u64 { [1, 2][v as usize] };
        let desc = |v: Var| -> u64 { [2, 1][v as usize] };
        assert!(group.constraints_hold(&asc));
        assert!(group.constraints_hold(&desc));
        assert_eq!(group.num_vars(), 2);
    }

    #[test]
    fn variable_names_follow_paper_conventions() {
        assert_eq!(var_names(4), vec!["W", "X", "Y", "Z"]);
        assert_eq!(var_names(5), vec!["X1", "X2", "X3", "X4", "X5"]);
        assert_eq!(var_name(0), "W");
        assert_eq!(var_name(6), "X7");
    }

    #[test]
    fn orientation_signature_lists_edges() {
        let group = CqGroup {
            subgoals: vec![(0, 1), (1, 2)],
            members: vec![ConjunctiveQuery::new(3, vec![(0, 1), (1, 2)], vec![])],
        };
        assert_eq!(group.orientation_signature(), "WX,XY");
    }
}
