//! Incremental CQ construction for a *partial* node ordering.
//!
//! The planner's branch-and-bound search (crates/core `plan::search`) grows a
//! node ordering one node at a time and needs, at every depth, the part of
//! the eventual CQ that the prefix already determines: a sample edge's
//! subgoal orientation is fixed as soon as **both** endpoints are ranked, and
//! stays unknown until then. [`PartialCq`] maintains exactly that state under
//! `push`/`pop`, and [`PartialCq::complete`] on a full ordering produces the
//! same query as [`crate::generate::cq_for_ordering`] — the invariant the
//! proptests in this crate pin.

use crate::generate::cq_for_ordering;
use crate::query::{ConjunctiveQuery, Constraint, Var};
use subgraph_pattern::automorphism::NodeOrdering;
use subgraph_pattern::{PatternNode, SampleGraph};

const UNRANKED: usize = usize::MAX;

/// A conjunctive query under construction: a prefix of a node ordering plus
/// the subgoal orientations that prefix already decides.
///
/// Edges are tracked in the sample graph's edge order — the same order
/// [`cq_for_ordering`] emits subgoals in — so a completed ordering yields a
/// byte-identical query, not merely an equivalent one.
#[derive(Clone, Debug)]
pub struct PartialCq<'a> {
    sample: &'a SampleGraph,
    prefix: NodeOrdering,
    rank: Vec<usize>,
    /// Per sample edge (in `sample.edges()` order): the oriented subgoal once
    /// both endpoints are in the prefix, `None` while undecided.
    oriented: Vec<Option<(Var, Var)>>,
    decided: usize,
}

impl<'a> PartialCq<'a> {
    /// An empty prefix over `sample`: nothing ranked, every edge undecided.
    pub fn new(sample: &'a SampleGraph) -> Self {
        PartialCq {
            sample,
            prefix: Vec::with_capacity(sample.num_nodes()),
            rank: vec![UNRANKED; sample.num_nodes()],
            oriented: vec![None; sample.num_edges()],
            decided: 0,
        }
    }

    /// Appends `v` as the next-largest node of the ordering. Any sample edge
    /// whose other endpoint is already ranked becomes a decided subgoal with
    /// that endpoint first (it has the smaller rank).
    ///
    /// # Panics
    /// Panics if `v` is out of range or already in the prefix.
    pub fn push(&mut self, v: PatternNode) {
        assert!(
            (v as usize) < self.sample.num_nodes(),
            "node {v} out of range"
        );
        assert!(
            self.rank[v as usize] == UNRANKED,
            "node {v} already in the prefix"
        );
        self.rank[v as usize] = self.prefix.len();
        self.prefix.push(v);
        for (i, &(a, b)) in self.sample.edges().iter().enumerate() {
            let other = if a == v {
                b
            } else if b == v {
                a
            } else {
                continue;
            };
            if self.rank[other as usize] != UNRANKED {
                // `other` was ranked before `v`, so it is the smaller end.
                self.oriented[i] = Some((other, v));
                self.decided += 1;
            }
        }
    }

    /// Removes the most recently pushed node, un-deciding every edge its push
    /// decided (an edge incident to the last node is decided iff it was
    /// decided by that very push).
    ///
    /// # Panics
    /// Panics if the prefix is empty.
    pub fn pop(&mut self) -> PatternNode {
        let v = self.prefix.pop().expect("pop on empty prefix");
        self.rank[v as usize] = UNRANKED;
        for (i, &(a, b)) in self.sample.edges().iter().enumerate() {
            if (a == v || b == v) && self.oriented[i].is_some() {
                self.oriented[i] = None;
                self.decided -= 1;
            }
        }
        v
    }

    /// The sample graph the query is being built for.
    pub fn sample(&self) -> &SampleGraph {
        self.sample
    }

    /// The current prefix of the node ordering, smallest node first.
    pub fn prefix(&self) -> &[PatternNode] {
        &self.prefix
    }

    /// Number of nodes placed so far.
    pub fn depth(&self) -> usize {
        self.prefix.len()
    }

    /// Per sample edge (in `sample.edges()` order): `Some((a, b))` once the
    /// prefix orients the edge as the subgoal `E(a, b)`, `None` while either
    /// endpoint is still unplaced. This is the view the Shares lower bound
    /// consumes.
    pub fn oriented_edges(&self) -> &[Option<(Var, Var)>] {
        &self.oriented
    }

    /// Number of decided subgoals (edges with both endpoints in the prefix).
    pub fn decided_edges(&self) -> usize {
        self.decided
    }

    /// True once every node is placed (and hence every edge decided).
    pub fn is_complete(&self) -> bool {
        self.prefix.len() == self.sample.num_nodes()
    }

    /// The finished query. Subgoals come out in sample edge order and the
    /// comparison chain follows the ordering, so the result equals
    /// [`cq_for_ordering`] on the same ordering exactly.
    ///
    /// # Panics
    /// Panics unless the ordering is complete.
    pub fn complete(&self) -> ConjunctiveQuery {
        assert!(
            self.is_complete(),
            "complete() on a prefix of depth {} (pattern has {} nodes)",
            self.prefix.len(),
            self.sample.num_nodes()
        );
        let subgoals: Vec<(Var, Var)> = self
            .oriented
            .iter()
            .map(|slot| slot.expect("complete ordering left an edge undecided"))
            .collect();
        let constraints: Vec<Constraint> = self
            .prefix
            .windows(2)
            .map(|w| Constraint::Lt(w[0], w[1]))
            .collect();
        ConjunctiveQuery::new(self.sample.num_nodes(), subgoals, constraints)
    }
}

/// Convenience check used by tests: building a [`PartialCq`] by pushing the
/// whole ordering agrees with [`cq_for_ordering`].
pub fn partial_agrees_with_direct(sample: &SampleGraph, ordering: &NodeOrdering) -> bool {
    let mut partial = PartialCq::new(sample);
    for &v in ordering {
        partial.push(v);
    }
    partial.complete() == cq_for_ordering(sample, ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_pattern::catalog;

    #[test]
    fn empty_prefix_decides_nothing() {
        let square = catalog::square();
        let partial = PartialCq::new(&square);
        assert_eq!(partial.depth(), 0);
        assert_eq!(partial.decided_edges(), 0);
        assert!(partial.oriented_edges().iter().all(Option::is_none));
        assert!(!partial.is_complete());
    }

    #[test]
    fn push_decides_edges_into_the_prefix() {
        // Square edges in sample order: (0,1), (0,3), (1,2), (2,3).
        let square = catalog::square();
        assert_eq!(square.edges(), &[(0, 1), (0, 3), (1, 2), (2, 3)]);
        let mut partial = PartialCq::new(&square);
        partial.push(1);
        assert_eq!(partial.decided_edges(), 0);
        partial.push(2);
        // Edge (1,2) now has both ends ranked; 1 came first.
        assert_eq!(partial.decided_edges(), 1);
        assert_eq!(partial.oriented_edges()[2], Some((1, 2)));
        partial.push(0);
        // Edge (0,1) decided with 1 first (rank of 1 < rank of 0).
        assert_eq!(partial.decided_edges(), 2);
        assert_eq!(partial.oriented_edges()[0], Some((1, 0)));
        partial.push(3);
        assert!(partial.is_complete());
        assert_eq!(partial.decided_edges(), 4);
    }

    #[test]
    fn pop_restores_previous_state() {
        let lollipop = catalog::lollipop();
        let mut partial = PartialCq::new(&lollipop);
        partial.push(2);
        partial.push(3);
        let snapshot: Vec<_> = partial.oriented_edges().to_vec();
        let decided = partial.decided_edges();
        partial.push(0);
        partial.push(1);
        assert_eq!(partial.pop(), 1);
        assert_eq!(partial.pop(), 0);
        assert_eq!(partial.oriented_edges(), &snapshot[..]);
        assert_eq!(partial.decided_edges(), decided);
        assert_eq!(partial.prefix(), &[2, 3]);
    }

    #[test]
    fn completion_matches_cq_for_ordering() {
        let square = catalog::square();
        assert!(partial_agrees_with_direct(&square, &vec![0, 1, 2, 3]));
        assert!(partial_agrees_with_direct(&square, &vec![3, 1, 0, 2]));
        let q = {
            let mut partial = PartialCq::new(&square);
            for v in [0, 1, 2, 3] {
                partial.push(v);
            }
            partial.complete()
        };
        assert_eq!(
            q.render(),
            "E(W,X) & E(W,Z) & E(X,Y) & E(Y,Z) & W<X & X<Y & Y<Z"
        );
    }

    #[test]
    #[should_panic]
    fn double_push_is_rejected() {
        let triangle = catalog::triangle();
        let mut partial = PartialCq::new(&triangle);
        partial.push(0);
        partial.push(0);
    }

    #[test]
    #[should_panic]
    fn complete_on_partial_prefix_is_rejected() {
        let triangle = catalog::triangle();
        let mut partial = PartialCq::new(&triangle);
        partial.push(0);
        let _ = partial.complete();
    }
}
