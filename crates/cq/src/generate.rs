//! Generating CQs from node orderings (Sections 3.1 and 3.2, Theorem 3.1).

use crate::query::{ConjunctiveQuery, Constraint, Var};
use subgraph_pattern::automorphism::{order_representatives, NodeOrdering};
use subgraph_pattern::SampleGraph;

/// Builds the CQ for one total order of the sample-graph nodes (Section 3.1).
///
/// `ordering[rank] = node`: the node at rank 0 is the smallest. The query has
/// * a relational subgoal `E(a, b)` for every sample-graph edge `{a, b}` with
///   the lower-ranked endpoint written first, and
/// * the chain of arithmetic subgoals `ordering[0] < ordering[1] < …`.
pub fn cq_for_ordering(sample: &SampleGraph, ordering: &NodeOrdering) -> ConjunctiveQuery {
    assert_eq!(
        ordering.len(),
        sample.num_nodes(),
        "ordering must mention every pattern node exactly once"
    );
    let mut rank = vec![usize::MAX; sample.num_nodes()];
    for (r, &v) in ordering.iter().enumerate() {
        assert!(rank[v as usize] == usize::MAX, "ordering repeats node {v}");
        rank[v as usize] = r;
    }
    let subgoals: Vec<(Var, Var)> = sample
        .edges()
        .iter()
        .map(|&(u, v)| {
            if rank[u as usize] < rank[v as usize] {
                (u, v)
            } else {
                (v, u)
            }
        })
        .collect();
    let constraints: Vec<Constraint> = ordering
        .windows(2)
        .map(|w| Constraint::Lt(w[0], w[1]))
        .collect();
    ConjunctiveQuery::new(sample.num_nodes(), subgoals, constraints)
}

/// The full CQ collection for a sample graph by the general method of
/// Section 3.2: one CQ per representative of `S_p / Aut(S)` (Theorem 3.1).
/// Together these CQs produce each instance of the sample graph exactly once.
pub fn cqs_for_sample(sample: &SampleGraph) -> Vec<ConjunctiveQuery> {
    order_representatives(sample)
        .iter()
        .map(|ordering| cq_for_ordering(sample, ordering))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_pattern::catalog;

    #[test]
    fn triangle_has_one_cq_with_total_order() {
        let cqs = cqs_for_sample(&catalog::triangle());
        assert_eq!(cqs.len(), 1);
        let q = &cqs[0];
        assert_eq!(q.subgoals(), &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(
            q.constraints(),
            &[Constraint::Lt(0, 1), Constraint::Lt(1, 2)]
        );
    }

    #[test]
    fn square_has_three_cqs_as_in_example_3_2() {
        let cqs = cqs_for_sample(&catalog::square());
        assert_eq!(cqs.len(), 3);
        // Each CQ must contain E(W,X) and E(W,Z): W=0 is first in every
        // lexicographically-smallest representative, exactly as the paper notes
        // ("all three have the subgoals E(W,X) and E(W,Z)").
        for q in &cqs {
            assert!(q.subgoals().contains(&(0, 1)));
            assert!(q.subgoals().contains(&(0, 3)));
        }
        // The identity ordering gives the CQ of Example 3.1.
        let identity = cq_for_ordering(&catalog::square(), &vec![0, 1, 2, 3]);
        // Same subgoals as Example 3.1 (listed in the sample graph's canonical
        // edge order rather than the paper's order).
        assert_eq!(
            identity.render(),
            "E(W,X) & E(W,Z) & E(X,Y) & E(Y,Z) & W<X & X<Y & Y<Z"
        );
        assert!(cqs.contains(&identity));
    }

    #[test]
    fn lollipop_has_twelve_cqs_as_in_figure_5() {
        let cqs = cqs_for_sample(&catalog::lollipop());
        assert_eq!(cqs.len(), 12);
        // Every CQ contains the subgoal E(Y,Z) (node 2 before node 3) or
        // E(Z,Y); the automorphism swapping Y and Z means representatives can
        // be taken with Y < Z, and then all twelve contain E(Y,Z), as the
        // paper observes about Figure 5.
        for q in &cqs {
            assert!(
                q.subgoals().contains(&(2, 3)),
                "expected E(Y,Z) in {}",
                q.render()
            );
        }
    }

    #[test]
    fn pentagon_has_twelve_cqs() {
        // 5! / |Aut(C5)| = 120 / 10 = 12 (Example 5.3 discussion).
        assert_eq!(cqs_for_sample(&catalog::cycle(5)).len(), 12);
    }

    #[test]
    fn ordering_controls_edge_orientation() {
        let lollipop = catalog::lollipop();
        // Order Y < Z < W < X (ranks: W=2, X=3, Y=0, Z=1) is order 9 in Fig. 5:
        // subgoals E(W,X), E(Y,X), E(Z,X), E(Y,Z).
        let q = cq_for_ordering(&lollipop, &vec![2, 3, 0, 1]);
        let mut subgoals = q.subgoals().to_vec();
        subgoals.sort_unstable();
        assert_eq!(subgoals, vec![(0, 1), (2, 1), (2, 3), (3, 1)]);
    }

    #[test]
    #[should_panic]
    fn ordering_with_repeats_is_rejected() {
        let _ = cq_for_ordering(&catalog::triangle(), &vec![0, 0, 1]);
    }

    #[test]
    fn constraint_chain_length_is_p_minus_one() {
        for sample in [catalog::square(), catalog::cycle(6), catalog::clique(4)] {
            for q in cqs_for_sample(&sample) {
                assert_eq!(q.constraints().len(), sample.num_nodes() - 1);
                assert_eq!(q.subgoals().len(), sample.num_edges());
            }
        }
    }
}
