//! Serial evaluation of conjunctive queries over a data graph.
//!
//! This is the computation each reducer performs in the paper's map-reduce
//! algorithms (Section 4), and — run over the whole data graph — a serial
//! reference algorithm. The edge relation `E(X, Y)` holds each undirected edge
//! exactly once, oriented so that `X` precedes `Y` under the supplied
//! [`NodeOrder`]; arithmetic comparisons refer to the same order.
//!
//! Evaluation is a backtracking join: variables are assigned one at a time,
//! candidates are drawn from the adjacency lists of already-assigned
//! neighbouring variables, and subgoal orientation plus arithmetic comparisons
//! are checked as soon as both endpoints are bound. Assignments are required
//! to be injective (an instance of the sample graph uses `p` distinct data
//! nodes).

use crate::query::{ConjunctiveQuery, CqGroup, Var};
use subgraph_graph::{DataGraph, NodeId, NodeOrder};
use subgraph_pattern::Instance;

/// The result of evaluating one or more CQs.
#[derive(Clone, Debug, Default)]
pub struct EvalOutcome {
    /// One entry per satisfying assignment, converted to a canonical instance.
    /// If the CQ collection is correct, this list contains no duplicates.
    pub instances: Vec<Instance>,
    /// Number of satisfying assignments found (equals `instances.len()`).
    pub assignments: usize,
}

impl EvalOutcome {
    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: EvalOutcome) {
        self.assignments += other.assignments;
        self.instances.extend(other.instances);
    }

    /// Number of *distinct* instances found.
    pub fn distinct_instances(&self) -> usize {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Number of duplicate discoveries (0 means the exactly-once invariant held).
    pub fn duplicates(&self) -> usize {
        self.assignments - self.distinct_instances()
    }
}

/// Evaluates a single CQ over `graph` with the given node order.
pub fn evaluate_cq<O: NodeOrder>(
    cq: &ConjunctiveQuery,
    graph: &DataGraph,
    order: &O,
) -> EvalOutcome {
    evaluate_cq_filtered(cq, graph, order, &|_, _| true)
}

/// Evaluates a single CQ, additionally restricting the data nodes each
/// variable may bind to. This is what a reducer in variable-oriented
/// processing (Section 4.3) does: variable `X` may only bind to nodes whose
/// `X`-hash equals the reducer's bucket for `X`, which is exactly how each
/// solution ends up discovered by a single reducer.
pub fn evaluate_cq_filtered<O: NodeOrder>(
    cq: &ConjunctiveQuery,
    graph: &DataGraph,
    order: &O,
    candidate_filter: &dyn Fn(Var, NodeId) -> bool,
) -> EvalOutcome {
    evaluate_internal_filtered(
        cq.num_vars(),
        cq.subgoals(),
        graph,
        order,
        &|rank_of| cq.constraints_hold(rank_of),
        candidate_filter,
    )
}

/// Evaluates a merged orientation group (Section 3.3): the relational part is
/// matched once and an assignment is accepted if it satisfies the OR of the
/// member conditions.
pub fn evaluate_cq_group<O: NodeOrder>(
    group: &CqGroup,
    graph: &DataGraph,
    order: &O,
) -> EvalOutcome {
    evaluate_internal(
        group.num_vars(),
        &group.subgoals,
        graph,
        order,
        &|rank_of| group.constraints_hold(rank_of),
    )
}

/// Evaluates a whole CQ collection and concatenates the results. For a correct
/// collection (Theorem 3.1, Theorem 5.1) the combined outcome has no
/// duplicates and covers every instance of the sample graph.
pub fn evaluate_cqs<O: NodeOrder>(
    cqs: &[ConjunctiveQuery],
    graph: &DataGraph,
    order: &O,
) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for cq in cqs {
        outcome.absorb(evaluate_cq(cq, graph, order));
    }
    outcome
}

/// Acceptance predicate over a rank lookup for a fully bound assignment.
type AcceptFn<'a> = &'a dyn Fn(&dyn Fn(Var) -> u64) -> bool;

/// Shared backtracking engine. `accept` receives a rank lookup for the fully
/// bound assignment and decides whether the arithmetic conditions hold.
fn evaluate_internal<O: NodeOrder>(
    num_vars: usize,
    subgoals: &[(Var, Var)],
    graph: &DataGraph,
    order: &O,
    accept: AcceptFn<'_>,
) -> EvalOutcome {
    evaluate_internal_filtered(num_vars, subgoals, graph, order, accept, &|_, _| true)
}

/// Backtracking engine with a per-variable candidate filter.
fn evaluate_internal_filtered<O: NodeOrder>(
    num_vars: usize,
    subgoals: &[(Var, Var)],
    graph: &DataGraph,
    order: &O,
    accept: AcceptFn<'_>,
    candidate_filter: &dyn Fn(Var, NodeId) -> bool,
) -> EvalOutcome {
    if num_vars == 0 {
        return EvalOutcome::default();
    }
    let plan = plan_variable_order(num_vars, subgoals);
    let mut assignment: Vec<Option<NodeId>> = vec![None; num_vars];
    let mut outcome = EvalOutcome::default();
    assign(
        graph,
        order,
        subgoals,
        &plan,
        0,
        &mut assignment,
        accept,
        candidate_filter,
        &mut outcome,
    );
    outcome
}

/// Chooses the order in which variables are bound: a connected expansion of
/// the subgoal graph so that each new variable (after the first) is adjacent
/// to an already-bound one whenever possible.
fn plan_variable_order(num_vars: usize, subgoals: &[(Var, Var)]) -> Vec<Var> {
    let mut adjacency = vec![Vec::new(); num_vars];
    for &(a, b) in subgoals {
        adjacency[a as usize].push(b);
        adjacency[b as usize].push(a);
    }
    let mut plan: Vec<Var> = Vec::with_capacity(num_vars);
    let mut placed = vec![false; num_vars];
    while plan.len() < num_vars {
        // Seed with the highest-degree unplaced variable (most constrained first).
        let seed = (0..num_vars)
            .filter(|&v| !placed[v])
            .max_by_key(|&v| adjacency[v].len())
            .expect("there is an unplaced variable");
        placed[seed] = true;
        plan.push(seed as Var);
        loop {
            // Among unplaced variables adjacent to a placed one, pick the one
            // with the most placed neighbours.
            let candidate = (0..num_vars)
                .filter(|&v| !placed[v])
                .map(|v| {
                    let bound_neighbors =
                        adjacency[v].iter().filter(|&&u| placed[u as usize]).count();
                    (bound_neighbors, v)
                })
                .filter(|&(bound, _)| bound > 0)
                .max();
            match candidate {
                Some((_, v)) => {
                    placed[v] = true;
                    plan.push(v as Var);
                }
                None => break,
            }
        }
    }
    plan
}

#[allow(clippy::too_many_arguments)]
fn assign<O: NodeOrder>(
    graph: &DataGraph,
    order: &O,
    subgoals: &[(Var, Var)],
    plan: &[Var],
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    accept: AcceptFn<'_>,
    candidate_filter: &dyn Fn(Var, NodeId) -> bool,
    outcome: &mut EvalOutcome,
) {
    if depth == plan.len() {
        let rank_of = |v: Var| -> u64 {
            let node = assignment[v as usize].expect("all variables bound");
            let (primary, secondary) = order.key(node);
            // Combine into a single u64 rank preserving the lexicographic order;
            // primary values are small (bucket ids / degrees) in practice.
            primary
                .saturating_mul(u32::MAX as u64 + 1)
                .saturating_add(secondary as u64)
        };
        if accept(&rank_of) {
            let edges = subgoals.iter().map(|&(a, b)| {
                (
                    assignment[a as usize].unwrap(),
                    assignment[b as usize].unwrap(),
                )
            });
            outcome.instances.push(Instance::from_edge_set(edges));
            outcome.assignments += 1;
        }
        return;
    }
    let var = plan[depth];
    // Candidate nodes: intersection of neighbourhoods of bound neighbours, or
    // every node if no neighbour is bound yet.
    let bound_neighbor = subgoals.iter().find_map(|&(a, b)| {
        if a == var {
            assignment[b as usize]
        } else if b == var {
            assignment[a as usize]
        } else {
            None
        }
    });
    let candidates: Vec<NodeId> = match bound_neighbor {
        Some(anchor) => graph.neighbors(anchor).to_vec(),
        None => graph.nodes().collect(),
    };
    'candidates: for node in candidates {
        // Per-variable admissibility (reducer bucket filters) and injectivity.
        if !candidate_filter(var, node) || assignment.contains(&Some(node)) {
            continue;
        }
        // Check every subgoal whose endpoints are now both bound.
        assignment[var as usize] = Some(node);
        for &(a, b) in subgoals {
            if let (Some(x), Some(y)) = (assignment[a as usize], assignment[b as usize]) {
                if !(graph.has_edge(x, y) && order.precedes(x, y)) {
                    assignment[var as usize] = None;
                    continue 'candidates;
                }
            }
        }
        assign(
            graph,
            order,
            subgoals,
            plan,
            depth + 1,
            assignment,
            accept,
            candidate_filter,
            outcome,
        );
        assignment[var as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cqs_for_sample;
    use crate::orientation::merge_by_orientation;
    use subgraph_graph::{generators, IdOrder};
    use subgraph_pattern::catalog;

    fn choose(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn triangle_cq_counts_triangles_in_complete_graph() {
        let g = generators::complete(7);
        let cqs = cqs_for_sample(&catalog::triangle());
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, choose(7, 3));
        assert_eq!(outcome.duplicates(), 0);
    }

    #[test]
    fn triangle_cq_on_triangle_free_graph_finds_nothing() {
        let g = generators::complete_bipartite(4, 5);
        let cqs = cqs_for_sample(&catalog::triangle());
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, 0);
    }

    #[test]
    fn square_cqs_count_squares_in_complete_bipartite_graph() {
        // K_{a,b} contains C(a,2) · C(b,2) squares.
        let g = generators::complete_bipartite(4, 5);
        let cqs = cqs_for_sample(&catalog::square());
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, choose(4, 2) * choose(5, 2));
        assert_eq!(outcome.duplicates(), 0);
    }

    #[test]
    fn square_cqs_count_squares_in_complete_graph() {
        // K_n contains 3 · C(n,4) squares (each 4-subset hosts 3 distinct 4-cycles).
        let g = generators::complete(6);
        let cqs = cqs_for_sample(&catalog::square());
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, 3 * choose(6, 4));
        assert_eq!(outcome.duplicates(), 0);
    }

    #[test]
    fn lollipop_cqs_count_lollipops_in_complete_graph() {
        // Each 4-subset of K_n hosts 4 · 3 = 12 distinct lollipops.
        let g = generators::complete(6);
        let cqs = cqs_for_sample(&catalog::lollipop());
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, 12 * choose(6, 4));
        assert_eq!(outcome.duplicates(), 0);
    }

    #[test]
    fn merged_groups_count_the_same_instances() {
        let g = generators::gnm(30, 120, 3);
        for sample in [catalog::square(), catalog::lollipop(), catalog::cycle(5)] {
            let cqs = cqs_for_sample(&sample);
            let plain = evaluate_cqs(&cqs, &g, &IdOrder);
            let mut merged = EvalOutcome::default();
            for group in merge_by_orientation(&cqs) {
                merged.absorb(evaluate_cq_group(&group, &g, &IdOrder));
            }
            assert_eq!(plain.assignments, merged.assignments);
            assert_eq!(plain.duplicates(), 0);
            assert_eq!(merged.duplicates(), 0);
            let mut a = plain.instances.clone();
            let mut b = merged.instances.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bucket_order_finds_the_same_instances_as_id_order() {
        use subgraph_graph::BucketThenIdOrder;
        let g = generators::gnm(25, 90, 9);
        let cqs = cqs_for_sample(&catalog::triangle());
        let by_id = evaluate_cqs(&cqs, &g, &IdOrder);
        let by_bucket = evaluate_cqs(&cqs, &g, &BucketThenIdOrder::new(4));
        assert_eq!(by_id.assignments, by_bucket.assignments);
        assert_eq!(by_bucket.duplicates(), 0);
    }

    #[test]
    fn disjoint_triangles_are_each_found_once() {
        let g = generators::disjoint_triangles(10);
        let cqs = cqs_for_sample(&catalog::triangle());
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, 10);
        assert_eq!(outcome.duplicates(), 0);
    }

    #[test]
    fn empty_pattern_yields_nothing() {
        let g = generators::complete(4);
        let cq = ConjunctiveQuery::new(0, vec![], vec![]);
        let outcome = evaluate_cq(&cq, &g, &IdOrder);
        assert_eq!(outcome.assignments, 0);
    }

    #[test]
    fn cycle_c6_count_in_complete_graph() {
        // Number of 6-cycles in K_n: C(n,6) · 6!/(2·6) = C(n,6) · 60.
        let g = generators::complete(7);
        let cqs = cqs_for_sample(&catalog::cycle(6));
        let outcome = evaluate_cqs(&cqs, &g, &IdOrder);
        assert_eq!(outcome.assignments, choose(7, 6) * 60);
        assert_eq!(outcome.duplicates(), 0);
    }
}
