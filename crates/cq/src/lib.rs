//! Conjunctive queries with arithmetic comparisons (Sections 3–5 of the paper).
//!
//! The paper expresses "find all instances of sample graph `S`" as a small
//! collection of *conjunctive queries* (CQs) over the single edge relation
//! `E(X, Y)`, which stores each undirected data-graph edge exactly once with
//! `X < Y` under a chosen total order of the data-graph nodes. Each CQ also
//! carries arithmetic comparisons (`<`, `≠`) among its variables; together the
//! CQs produce **every instance of `S` exactly once**.
//!
//! * [`query`] — the CQ data model ([`ConjunctiveQuery`], [`CqGroup`]) and the
//!   paper-style textual rendering used by the reproduction tables.
//! * [`generate`] — Section 3.1–3.2: one CQ per representative of
//!   `S_p / Aut(S)` (Theorem 3.1).
//! * [`orientation`] — Section 3.3: merging CQs that share an edge orientation
//!   by OR-ing their arithmetic conditions (Figures 5–7).
//! * [`cycles`] — Section 5: the smaller CQ families for cycles `C_p` obtained
//!   from run sequences of up/down edges, including the palindrome/periodicity
//!   corrections of Section 5.2 (Theorem 5.1).
//! * [`eval`] — serial evaluation of CQs over a data graph (used standalone as
//!   the paper's reducer-side algorithm and as a correctness oracle).

pub mod cycles;
pub mod eval;
pub mod generate;
pub mod orientation;
pub mod partial;
pub mod query;

pub use cycles::{cycle_cqs, CycleCq};
pub use eval::{evaluate_cq, evaluate_cq_filtered, evaluate_cq_group, evaluate_cqs, EvalOutcome};
pub use generate::{cq_for_ordering, cqs_for_sample};
pub use orientation::{merge_by_orientation, simplified_constraints};
pub use partial::PartialCq;
pub use query::{ConjunctiveQuery, Constraint, CqGroup, Var};

#[cfg(test)]
mod proptests;
