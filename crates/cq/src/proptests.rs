//! Property-style tests for CQ generation and evaluation, exercised over
//! deterministic seeded sweeps of catalog patterns and random data graphs.

use crate::cycles::{cycle_cqs, orientation_representatives, valid_orientations};
use crate::eval::{evaluate_cq_group, evaluate_cqs, EvalOutcome};
use crate::generate::{cq_for_ordering, cqs_for_sample};
use crate::orientation::merge_by_orientation;
use crate::partial::PartialCq;
use subgraph_graph::{generators, BucketThenIdOrder, IdOrder};
use subgraph_pattern::catalog;
use subgraph_pattern::SampleGraph;

fn small_patterns() -> Vec<SampleGraph> {
    vec![
        catalog::triangle(),
        catalog::square(),
        catalog::lollipop(),
        catalog::cycle(5),
        catalog::star(4),
        catalog::path(4),
        catalog::k4(),
    ]
}

/// The central invariant of the paper: for any sample graph the CQ collection
/// of Theorem 3.1 finds each instance exactly once, under any total order of
/// the data-graph nodes.
#[test]
fn general_method_never_duplicates() {
    for (case, sample) in small_patterns().into_iter().enumerate() {
        for round in 0..2usize {
            let n = 10 + 2 * case + 5 * round;
            let m = (n * (n - 1) / 2) / 2;
            let g = generators::gnm(n, m, 500 + (case * 2 + round) as u64);
            let buckets = 1 + (case + round) % 5;
            let cqs = cqs_for_sample(&sample);
            let by_id = evaluate_cqs(&cqs, &g, &IdOrder);
            assert_eq!(by_id.duplicates(), 0, "case {case} round {round}");
            let by_bucket = evaluate_cqs(&cqs, &g, &BucketThenIdOrder::new(buckets));
            assert_eq!(by_bucket.duplicates(), 0, "case {case} round {round}");
            // The node order never changes which instances exist.
            assert_eq!(
                by_id.assignments, by_bucket.assignments,
                "case {case} round {round}"
            );
        }
    }
}

/// Orientation-merged groups find exactly the same instances as the unmerged
/// CQ collection.
#[test]
fn orientation_merge_preserves_results() {
    for (case, sample) in small_patterns().into_iter().enumerate() {
        let n = 10 + 2 * case;
        let m = (n * (n - 1) / 2) / 3;
        let g = generators::gnm(n, m, 600 + case as u64);
        let cqs = cqs_for_sample(&sample);
        let plain = evaluate_cqs(&cqs, &g, &IdOrder);
        let mut merged = EvalOutcome::default();
        for group in merge_by_orientation(&cqs) {
            merged.absorb(evaluate_cq_group(&group, &g, &IdOrder));
        }
        assert_eq!(plain.assignments, merged.assignments, "case {case}");
        assert_eq!(merged.duplicates(), 0, "case {case}");
    }
}

/// The run-sequence CQs for cycles agree with the general method and never
/// duplicate (Theorem 5.1).
#[test]
fn cycle_method_agrees_with_general_method() {
    for p in 3usize..7 {
        for round in 0..2usize {
            let n = 10 + 2 * p + 3 * round;
            let m = (n * (n - 1) / 2) / 2;
            let g = generators::gnm(n, m, 700 + (p * 2 + round) as u64);
            let via_runs: Vec<_> = cycle_cqs(p).into_iter().map(|c| c.query).collect();
            let runs_outcome = evaluate_cqs(&via_runs, &g, &IdOrder);
            let general_outcome = evaluate_cqs(&cqs_for_sample(&catalog::cycle(p)), &g, &IdOrder);
            assert_eq!(runs_outcome.duplicates(), 0, "p={p} round={round}");
            assert_eq!(general_outcome.duplicates(), 0, "p={p} round={round}");
            assert_eq!(
                runs_outcome.assignments, general_outcome.assignments,
                "p={p} round={round}"
            );
        }
    }
}

/// Incremental partial-CQ construction agrees with [`cq_for_ordering`] on
/// every full ordering of every small pattern, even when the prefix is built
/// through an arbitrary interleaving of pushes and pops — the invariant the
/// planner's branch-and-bound search leans on while walking the prefix tree.
#[test]
fn partial_cq_completion_matches_direct_construction() {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move |bound: usize| -> usize {
        // Plain LCG (Numerical Recipes constants); deterministic, no deps.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    };
    for sample in small_patterns() {
        let p = sample.num_nodes();
        let mut partial = PartialCq::new(&sample);
        for _trial in 0..40 {
            // Back off to a random shallower depth, then rebuild to a full
            // random ordering from whatever prefix is left.
            while partial.depth() > next(p + 1) {
                partial.pop();
            }
            let mut remaining: Vec<_> = (0..p as subgraph_pattern::PatternNode)
                .filter(|&v| !partial.prefix().contains(&v))
                .collect();
            while !remaining.is_empty() {
                let v = remaining.swap_remove(next(remaining.len()));
                partial.push(v);
                assert_eq!(
                    partial.decided_edges(),
                    partial
                        .oriented_edges()
                        .iter()
                        .filter(|s| s.is_some())
                        .count()
                );
            }
            let ordering: Vec<_> = partial.prefix().to_vec();
            assert_eq!(
                partial.complete(),
                cq_for_ordering(&sample, &ordering),
                "ordering {ordering:?}"
            );
        }
    }
}

/// Every valid orientation string is equivalent to exactly one representative.
#[test]
fn orientation_classes_cover_all_valid_strings() {
    for p in 3usize..9 {
        let reps = orientation_representatives(p);
        let all = valid_orientations(p);
        // Each representative is itself a valid string, and representatives
        // are distinct.
        let mut sorted = reps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), reps.len(), "p={p}");
        for r in &reps {
            assert!(all.contains(r), "p={p}");
        }
        // No valid string is missed: the count of classes is at most the
        // count of strings and at least strings / (2p).
        assert!(reps.len() * 2 * p >= all.len(), "p={p}");
        assert!(reps.len() <= all.len(), "p={p}");
    }
}
