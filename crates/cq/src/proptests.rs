//! Property-based tests for CQ generation and evaluation.

use crate::cycles::{cycle_cqs, orientation_representatives, valid_orientations};
use crate::eval::{evaluate_cq_group, evaluate_cqs, EvalOutcome};
use crate::generate::cqs_for_sample;
use crate::orientation::merge_by_orientation;
use proptest::prelude::*;
use subgraph_graph::{generators, BucketThenIdOrder, IdOrder};
use subgraph_pattern::catalog;
use subgraph_pattern::SampleGraph;

fn small_patterns() -> impl Strategy<Value = SampleGraph> {
    prop_oneof![
        Just(catalog::triangle()),
        Just(catalog::square()),
        Just(catalog::lollipop()),
        Just(catalog::cycle(5)),
        Just(catalog::star(4)),
        Just(catalog::path(4)),
        Just(catalog::k4()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central invariant of the paper: for any sample graph the CQ
    /// collection of Theorem 3.1 finds each instance exactly once, under any
    /// total order of the data-graph nodes.
    #[test]
    fn general_method_never_duplicates(
        sample in small_patterns(),
        n in 10usize..22,
        seed in 0u64..50,
        buckets in 1usize..6,
    ) {
        let m = (n * (n - 1) / 2) / 2;
        let g = generators::gnm(n, m, seed);
        let cqs = cqs_for_sample(&sample);
        let by_id = evaluate_cqs(&cqs, &g, &IdOrder);
        prop_assert_eq!(by_id.duplicates(), 0);
        let by_bucket = evaluate_cqs(&cqs, &g, &BucketThenIdOrder::new(buckets));
        prop_assert_eq!(by_bucket.duplicates(), 0);
        // The node order never changes which instances exist.
        prop_assert_eq!(by_id.assignments, by_bucket.assignments);
    }

    /// Orientation-merged groups find exactly the same instances as the
    /// unmerged CQ collection.
    #[test]
    fn orientation_merge_preserves_results(
        sample in small_patterns(),
        n in 10usize..20,
        seed in 0u64..50,
    ) {
        let m = (n * (n - 1) / 2) / 3;
        let g = generators::gnm(n, m, seed);
        let cqs = cqs_for_sample(&sample);
        let plain = evaluate_cqs(&cqs, &g, &IdOrder);
        let mut merged = EvalOutcome::default();
        for group in merge_by_orientation(&cqs) {
            merged.absorb(evaluate_cq_group(&group, &g, &IdOrder));
        }
        prop_assert_eq!(plain.assignments, merged.assignments);
        prop_assert_eq!(merged.duplicates(), 0);
    }

    /// The run-sequence CQs for cycles agree with the general method and never
    /// duplicate (Theorem 5.1).
    #[test]
    fn cycle_method_agrees_with_general_method(
        p in 3usize..7,
        n in 10usize..18,
        seed in 0u64..30,
    ) {
        let m = (n * (n - 1) / 2) / 2;
        let g = generators::gnm(n, m, seed);
        let via_runs: Vec<_> = cycle_cqs(p).into_iter().map(|c| c.query).collect();
        let runs_outcome = evaluate_cqs(&via_runs, &g, &IdOrder);
        let general_outcome = evaluate_cqs(&cqs_for_sample(&catalog::cycle(p)), &g, &IdOrder);
        prop_assert_eq!(runs_outcome.duplicates(), 0);
        prop_assert_eq!(general_outcome.duplicates(), 0);
        prop_assert_eq!(runs_outcome.assignments, general_outcome.assignments);
    }

    /// Every valid orientation string is equivalent to exactly one representative.
    #[test]
    fn orientation_classes_cover_all_valid_strings(p in 3usize..9) {
        let reps = orientation_representatives(p);
        let all = valid_orientations(p);
        // Each representative is itself a valid string, and representatives are distinct.
        let mut sorted = reps.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), reps.len());
        for r in &reps {
            prop_assert!(all.contains(r));
        }
        // No valid string is missed: the count of classes is at most the count
        // of strings and at least strings / (2p).
        prop_assert!(reps.len() * 2 * p >= all.len());
        prop_assert!(reps.len() <= all.len());
    }
}
