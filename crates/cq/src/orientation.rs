//! Merging CQs that share an edge orientation (Section 3.3, Figures 6–7).
//!
//! Several of the CQs produced by Theorem 3.1 can have identical relational
//! subgoals (the same orientation of every edge of the sample graph) and
//! differ only in their arithmetic conditions. Such CQs are combined into a
//! [`CqGroup`]: the relational part is evaluated once and an assignment is
//! accepted if it satisfies the OR of the member conditions. Because the
//! member conditions are distinct total orders of the variables, an assignment
//! of distinct nodes satisfies at most one of them, so the exactly-once
//! guarantee is preserved.

use crate::query::{ConjunctiveQuery, Constraint, CqGroup, Var};
use std::collections::BTreeMap;

/// Groups CQs by their canonical subgoal list (edge orientation). The result
/// is ordered by orientation for deterministic output.
pub fn merge_by_orientation(cqs: &[ConjunctiveQuery]) -> Vec<CqGroup> {
    let mut groups: BTreeMap<Vec<(Var, Var)>, Vec<ConjunctiveQuery>> = BTreeMap::new();
    for q in cqs {
        groups
            .entry(q.canonical_subgoals())
            .or_default()
            .push(q.clone());
    }
    groups
        .into_iter()
        .map(|(subgoals, members)| CqGroup { subgoals, members })
        .collect()
}

/// Computes the simplified constraint set the paper displays for a merged
/// group (Figure 7): for each pair of variables,
///
/// * `A < B` if `A` precedes `B` in **every** member order,
/// * `B < A` if `B` precedes `A` in every member order,
/// * `A ≠ B` otherwise (the members disagree),
///
/// followed by removal of comparisons implied transitively by the kept `<`
/// constraints. This is a *display* form; exact evaluation always uses the OR
/// of the member conjunctions ([`CqGroup::constraints_hold`]).
pub fn simplified_constraints(group: &CqGroup) -> Vec<Constraint> {
    let p = group.num_vars();
    if group.members.is_empty() || p == 0 {
        return Vec::new();
    }
    // precedence[a][b] = true if a < b in every member.
    let mut always = vec![vec![true; p]; p];
    for member in &group.members {
        // Recover the total order from the Lt chain: build rank from constraints.
        let rank = member_ranks(member, p);
        for a in 0..p {
            for b in 0..p {
                if a != b && rank[a] >= rank[b] {
                    always[a][b] = false;
                }
            }
        }
    }
    let mut lts: Vec<(usize, usize)> = Vec::new();
    let mut neqs: Vec<(usize, usize)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for a in 0..p {
        for b in (a + 1)..p {
            if always[a][b] {
                lts.push((a, b));
            } else if always[b][a] {
                lts.push((b, a));
            } else {
                neqs.push((a, b));
            }
        }
    }
    // Transitive reduction of the strict order given by `lts`.
    let mut reachable = vec![vec![false; p]; p];
    for &(a, b) in &lts {
        reachable[a][b] = true;
    }
    for k in 0..p {
        for i in 0..p {
            for j in 0..p {
                if reachable[i][k] && reachable[k][j] {
                    reachable[i][j] = true;
                }
            }
        }
    }
    let reduced: Vec<(usize, usize)> = lts
        .iter()
        .copied()
        .filter(|&(a, b)| {
            // Keep (a,b) unless there is an intermediate k with a<k and k<b.
            !(0..p).any(|k| k != a && k != b && reachable[a][k] && reachable[k][b])
        })
        .collect();
    // ≠ constraints implied by comparability are dropped.
    let mut out: Vec<Constraint> = reduced
        .into_iter()
        .map(|(a, b)| Constraint::Lt(a as Var, b as Var))
        .collect();
    out.extend(
        neqs.into_iter()
            .filter(|&(a, b)| !reachable[a][b] && !reachable[b][a])
            .map(|(a, b)| Constraint::Neq(a as Var, b as Var)),
    );
    out.sort_unstable();
    out
}

/// Number of total orders of the variables that satisfy the simplified
/// constraint set. Used to check that the simplification is *exact*, i.e.
/// admits precisely the member orders (the paper's Figure 7 claims this for
/// the lollipop).
pub fn orders_satisfying_simplification(group: &CqGroup) -> usize {
    let p = group.num_vars();
    let constraints = simplified_constraints(group);
    subgraph_pattern::automorphism::all_permutations(p)
        .into_iter()
        .filter(|ordering| {
            // ordering[rank] = variable; rank of variable v:
            let mut rank = vec![0u64; p];
            for (r, &v) in ordering.iter().enumerate() {
                rank[v as usize] = r as u64;
            }
            constraints
                .iter()
                .all(|c| c.holds(&|v: Var| rank[v as usize]))
        })
        .count()
}

fn member_ranks(member: &ConjunctiveQuery, p: usize) -> Vec<usize> {
    // Members produced by `cq_for_ordering` carry the chain
    // Lt(o[0], o[1]), Lt(o[1], o[2]), …; reconstruct the order by topological
    // sort over the Lt constraints (general enough for hand-built members too).
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut indegree = vec![0usize; p];
    for c in member.constraints() {
        if let Constraint::Lt(a, b) = *c {
            succ[a as usize].push(b as usize);
            indegree[b as usize] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..p).filter(|&v| indegree[v] == 0).collect();
    let mut rank = vec![0usize; p];
    let mut next_rank = 0;
    while let Some(v) = queue.pop() {
        rank[v] = next_rank;
        next_rank += 1;
        for &w in &succ[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cqs_for_sample;
    use subgraph_pattern::catalog;

    #[test]
    fn square_cqs_have_three_distinct_orientations() {
        let cqs = cqs_for_sample(&catalog::square());
        let groups = merge_by_orientation(&cqs);
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.members.len(), 1);
        }
    }

    #[test]
    fn lollipop_merges_twelve_cqs_into_six_groups_as_in_figure_6() {
        let cqs = cqs_for_sample(&catalog::lollipop());
        assert_eq!(cqs.len(), 12);
        let groups = merge_by_orientation(&cqs);
        assert_eq!(groups.len(), 6);
        // Group sizes from Figure 6: 1, 2, 3, 3, 2, 1.
        let mut sizes: Vec<usize> = groups.iter().map(|g| g.members.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn lollipop_group_simplifications_are_exact() {
        // The paper's Figure 7 replaces each group's OR of total orders by a
        // conjunction of < and ≠ constraints. That replacement admits exactly
        // the member orders.
        let cqs = cqs_for_sample(&catalog::lollipop());
        for group in merge_by_orientation(&cqs) {
            assert_eq!(
                orders_satisfying_simplification(&group),
                group.members.len(),
                "simplification of {} is not exact",
                group.orientation_signature()
            );
        }
    }

    #[test]
    fn lollipop_singleton_groups_keep_their_total_order() {
        // Figure 7, first query: E(W,X) & E(X,Y) & E(X,Z) & E(Y,Z) with
        // W<X & X<Y & Y<Z (the chain), i.e. three Lt constraints, no ≠.
        let cqs = cqs_for_sample(&catalog::lollipop());
        let groups = merge_by_orientation(&cqs);
        let singleton: Vec<&CqGroup> = groups.iter().filter(|g| g.members.len() == 1).collect();
        assert_eq!(singleton.len(), 2);
        for g in singleton {
            let simplified = simplified_constraints(g);
            assert_eq!(simplified.len(), 3);
            assert!(simplified.iter().all(|c| matches!(c, Constraint::Lt(_, _))));
        }
    }

    #[test]
    fn lollipop_pair_group_introduces_one_disequality() {
        // Figure 7, second query (group {2, 5}): constraints W≠Y & Y<X & X<Z.
        let cqs = cqs_for_sample(&catalog::lollipop());
        let groups = merge_by_orientation(&cqs);
        let pair_groups: Vec<&CqGroup> = groups.iter().filter(|g| g.members.len() == 2).collect();
        assert_eq!(pair_groups.len(), 2);
        for g in pair_groups {
            let simplified = simplified_constraints(g);
            let neqs = simplified
                .iter()
                .filter(|c| matches!(c, Constraint::Neq(_, _)))
                .count();
            assert_eq!(neqs, 1, "expected exactly one ≠ in {simplified:?}");
        }
    }

    #[test]
    fn triangle_single_group() {
        let cqs = cqs_for_sample(&catalog::triangle());
        let groups = merge_by_orientation(&cqs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 1);
        assert_eq!(groups[0].orientation_signature(), "WX,WY,XY");
    }

    #[test]
    fn simplification_of_empty_group_is_empty() {
        let group = CqGroup {
            subgoals: vec![],
            members: vec![],
        };
        assert!(simplified_constraints(&group).is_empty());
    }
}
