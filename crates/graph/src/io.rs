//! Plain-text edge-list I/O.
//!
//! The format is the usual whitespace-separated `u v` per line, with `#` (or
//! `%`) comments, which is how public social-network snapshots (the paper's
//! motivating inputs) are distributed. Real snapshot files are messy, and the
//! reader is hardened accordingly:
//!
//! * CRLF (`\r\n`) line endings are accepted — the `\r` is stripped with the
//!   rest of the surrounding whitespace.
//! * Leading/trailing whitespace and blank lines are ignored; any run of
//!   whitespace separates the two endpoints.
//! * Duplicate edges (in either orientation) collapse to one edge and
//!   self-loops are dropped, matching the paper's simple-graph assumption —
//!   both are counted in [`ReadStats`] so callers can report them.
//! * Tokens after the first two (weights, timestamps — common in exported
//!   snapshots) are ignored, but the lines carrying them are counted in
//!   [`ReadStats::extra_token_lines`] so the leniency is visible.
//! * A line whose first two tokens are not node ids fails with
//!   [`EdgeListError::Parse`] naming the 1-based line number and quoting the
//!   offending content.
//!
//! Reading from a path ([`read_edge_list_file`]) attaches the path to any I/O
//! failure, so the error a CLI prints names the file that could not be read.

use crate::builder::GraphBuilder;
use crate::graph::{DataGraph, NodeId};
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

/// Errors arising while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure. `path` is the file being read when the source
    /// is known (the `*_file` entry points attach it), `None` for in-memory
    /// readers.
    Io {
        /// The file that could not be read, if the reader knows it.
        path: Option<PathBuf>,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A line that is neither a comment, blank, nor a `u v` pair.
    Parse {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// The offending line, verbatim.
        content: String,
    },
}

impl EdgeListError {
    /// Attaches `path` to an I/O error that does not carry one yet, so errors
    /// surfaced through file-based entry points always name the file.
    fn with_path(self, path: &Path) -> Self {
        match self {
            EdgeListError::Io { path: None, source } => EdgeListError::Io {
                path: Some(path.to_path_buf()),
                source,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io {
                path: Some(path),
                source,
            } => write!(f, "cannot read {}: {source}", path.display()),
            EdgeListError::Io { path: None, source } => write!(f, "i/o error: {source}"),
            EdgeListError::Parse {
                line_number,
                content,
            } => write!(f, "cannot parse line {line_number}: {content:?}"),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io { source, .. } => Some(source),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(source: io::Error) -> Self {
        EdgeListError::Io { path: None, source }
    }
}

/// What the reader cleaned up while parsing: input hygiene counters for
/// callers that want to report them (the CLI's verbose mode does).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Non-comment, non-blank lines parsed as edges (before cleaning).
    pub edge_lines: usize,
    /// Self-loops (`u u`) dropped.
    pub self_loops: usize,
    /// Duplicate edges collapsed (counted at build time, in either
    /// orientation: `1 2` and `2 1` are the same undirected edge).
    pub duplicate_edges: usize,
    /// Lines carrying tokens beyond `u v` (weights, timestamps); the extra
    /// tokens are ignored, these lines still contribute their edge.
    pub extra_token_lines: usize,
    /// Blank (or whitespace-only) lines skipped.
    pub blank_lines: usize,
    /// Lines terminated by CRLF (`\r\n`) rather than bare LF; the `\r` is
    /// stripped, but a non-zero count reveals a Windows-exported snapshot.
    pub crlf_lines: usize,
}

impl ReadStats {
    /// True if the reader had to clean anything up: any counter other than
    /// the plain edge-line tally is non-zero.
    pub fn any_cleanup(&self) -> bool {
        self.self_loops > 0
            || self.duplicate_edges > 0
            || self.extra_token_lines > 0
            || self.blank_lines > 0
            || self.crlf_lines > 0
    }
}

impl std::fmt::Display for ReadStats {
    /// One-line summary used by the CLI's verbose mode and the serve startup
    /// log, e.g. `edge lines 5, self-loops 1 dropped, duplicates 2 collapsed`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge lines {}", self.edge_lines)?;
        if self.self_loops > 0 {
            write!(f, ", self-loops {} dropped", self.self_loops)?;
        }
        if self.duplicate_edges > 0 {
            write!(f, ", duplicates {} collapsed", self.duplicate_edges)?;
        }
        if self.extra_token_lines > 0 {
            write!(f, ", extra-token lines {}", self.extra_token_lines)?;
        }
        if self.blank_lines > 0 {
            write!(f, ", blank lines {}", self.blank_lines)?;
        }
        if self.crlf_lines > 0 {
            write!(f, ", crlf lines {}", self.crlf_lines)?;
        }
        Ok(())
    }
}

/// Parses an edge list from any buffered reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DataGraph, EdgeListError> {
    read_edge_list_with_stats(reader).map(|(graph, _)| graph)
}

/// Parses an edge list and reports the input hygiene counters alongside the
/// graph.
pub fn read_edge_list_with_stats<R: BufRead>(
    mut reader: R,
) -> Result<(DataGraph, ReadStats), EdgeListError> {
    let mut builder = GraphBuilder::new(0);
    let mut stats = ReadStats::default();
    // Manual read_line loop rather than `lines()`: the adaptor strips CRLF
    // terminators before we can count them.
    let mut line = String::new();
    let mut idx = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        idx += 1;
        if line.ends_with('\n') {
            line.pop();
            if line.ends_with('\r') {
                line.pop();
                stats.crlf_lines += 1;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            stats.blank_lines += 1;
            continue;
        }
        if trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a.parse::<NodeId>(), b.parse::<NodeId>()),
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: idx,
                    content: line.clone(),
                })
            }
        };
        match (u, v) {
            (Ok(u), Ok(v)) => {
                stats.edge_lines += 1;
                if parts.next().is_some() {
                    stats.extra_token_lines += 1;
                }
                builder.add_edge(u, v);
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: idx,
                    content: line.clone(),
                })
            }
        }
    }
    stats.self_loops = builder.dropped_self_loops();
    let kept_insertions = builder.pending_edges();
    let graph = builder.build();
    stats.duplicate_edges = kept_insertions - graph.num_edges();
    Ok((graph, stats))
}

/// Reads an edge list from a file path. I/O failures name the path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DataGraph, EdgeListError> {
    read_edge_list_file_with_stats(path).map(|(graph, _)| graph)
}

/// Reads an edge list from a file path, reporting hygiene counters. I/O
/// failures name the path.
pub fn read_edge_list_file_with_stats<P: AsRef<Path>>(
    path: P,
) -> Result<(DataGraph, ReadStats), EdgeListError> {
    let path = path.as_ref();
    let attach = |e: EdgeListError| e.with_path(path);
    let file = std::fs::File::open(path)
        .map_err(EdgeListError::from)
        .map_err(attach)?;
    read_edge_list_with_stats(io::BufReader::new(file)).map_err(attach)
}

/// Writes the canonical edge list (`lo hi` per line) to any writer.
pub fn write_edge_list<W: Write>(graph: &DataGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# nodes={} edges={}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{} {}", e.lo(), e.hi())?;
    }
    Ok(())
}

/// Writes the edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &DataGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    write_edge_list(graph, &mut writer)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_through_text() {
        let g = generators::gnm(40, 100, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.num_edges(), g.num_edges());
        for e in g.edges() {
            assert!(parsed.has_edge(e.lo(), e.hi()));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n% another\n0 1\n1 2\n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let text = "# exported on windows\r\n0 1\r\n1 2\r\n\r\n2 3\r\n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn crlf_and_blank_lines_are_counted() {
        let text = "# exported on windows\r\n0 1\r\n1 2\n\r\n\n2 3\r\n";
        let (_, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        // CRLF terminators: the comment, "0 1", the blank "\r\n" and "2 3".
        assert_eq!(stats.crlf_lines, 4);
        // Blank lines: "\r\n" and "\n".
        assert_eq!(stats.blank_lines, 2);
        assert_eq!(stats.edge_lines, 3);
        assert!(stats.any_cleanup());
    }

    #[test]
    fn clean_input_reports_no_cleanup() {
        let text = "0 1\n1 2\n";
        let (_, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        assert!(!stats.any_cleanup());
        assert_eq!(stats.to_string(), "edge lines 2");
    }

    #[test]
    fn stats_summary_names_each_counter() {
        let text = "0 0\r\n0 1\n1 0\n\n2 3 weight\n";
        let (_, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        let summary = stats.to_string();
        assert!(summary.contains("self-loops 1"), "{summary}");
        assert!(summary.contains("duplicates 1"), "{summary}");
        assert!(summary.contains("extra-token lines 1"), "{summary}");
        assert!(summary.contains("blank lines 1"), "{summary}");
        assert!(summary.contains("crlf lines 1"), "{summary}");
    }

    #[test]
    fn final_line_without_newline_parses() {
        let text = "0 1\n1 2";
        let (g, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.crlf_lines, 0);
    }

    #[test]
    fn leading_and_trailing_whitespace_is_ignored() {
        let text = "  0 1\t\n\t1    2  \n   \n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn duplicate_edges_collapse_and_are_counted() {
        // The same undirected edge in both orientations, plus a true repeat.
        let text = "0 1\n1 0\n0 1\n1 2\n";
        let (g, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.edge_lines, 4);
        assert_eq!(stats.duplicate_edges, 2);
        assert_eq!(stats.self_loops, 0);
    }

    #[test]
    fn self_loops_are_dropped_and_counted() {
        let text = "0 0\n0 1\n2 2\n";
        let (g, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(stats.self_loops, 2);
        assert_eq!(stats.edge_lines, 3);
    }

    #[test]
    fn extra_trailing_tokens_are_ignored_but_counted() {
        // Weighted / timestamped exports carry a third column.
        let text = "0 1 1082040961\n1 2\n2 3 0.5 extra\n";
        let (g, stats) = read_edge_list_with_stats(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(stats.edge_lines, 3);
        assert_eq!(stats.extra_token_lines, 2);
    }

    #[test]
    fn malformed_line_is_reported_with_its_number_and_content() {
        let text = "0 1\nnot-an-edge\n";
        let err = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            EdgeListError::Parse {
                line_number,
                ref content,
            } => {
                assert_eq!(line_number, 2);
                assert_eq!(content, "not-an-edge");
            }
            ref other => panic!("unexpected error: {other}"),
        }
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("not-an-edge"));
    }

    #[test]
    fn missing_second_endpoint_is_an_error() {
        let text = "0\n";
        assert!(read_edge_list(io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn negative_and_overflowing_ids_are_parse_errors() {
        for text in ["-1 2\n", "0 99999999999999999999\n"] {
            let err = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap_err();
            assert!(matches!(err, EdgeListError::Parse { line_number: 1, .. }));
        }
    }

    #[test]
    fn file_errors_name_the_path() {
        let err = read_edge_list_file("/definitely/not/a/real/file.txt").unwrap_err();
        let rendered = err.to_string();
        assert!(
            rendered.contains("/definitely/not/a/real/file.txt"),
            "error must name the file: {rendered}"
        );
        match err {
            EdgeListError::Io { path: Some(p), .. } => {
                assert_eq!(p, PathBuf::from("/definitely/not/a/real/file.txt"))
            }
            other => panic!("expected a path-carrying Io error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_preserves_the_graph() {
        let g = generators::power_law(60, 150, 2.5, 11);
        let dir = std::env::temp_dir().join("subgraph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list_file(&g, &path).unwrap();
        let parsed = read_edge_list_file(&path).unwrap();
        assert_eq!(parsed.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
