//! Plain-text edge-list I/O.
//!
//! The format is the usual whitespace-separated `u v` per line, with `#`
//! comments, which is how public social-network snapshots (the paper's
//! motivating inputs) are distributed.

use crate::builder::GraphBuilder;
use crate::graph::{DataGraph, NodeId};
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors arising while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment, blank, nor a `u v` pair.
    Parse { line_number: usize, content: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "i/o error: {e}"),
            EdgeListError::Parse {
                line_number,
                content,
            } => write!(f, "cannot parse line {line_number}: {content:?}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses an edge list from any buffered reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DataGraph, EdgeListError> {
    let mut builder = GraphBuilder::new(0);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a.parse::<NodeId>(), b.parse::<NodeId>()),
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: idx + 1,
                    content: line.clone(),
                })
            }
        };
        match (u, v) {
            (Ok(u), Ok(v)) => {
                builder.add_edge(u, v);
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: idx + 1,
                    content: line.clone(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DataGraph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Writes the canonical edge list (`lo hi` per line) to any writer.
pub fn write_edge_list<W: Write>(graph: &DataGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# nodes={} edges={}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{} {}", e.lo(), e.hi())?;
    }
    Ok(())
}

/// Writes the edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &DataGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_through_text() {
        let g = generators::gnm(40, 100, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.num_edges(), g.num_edges());
        for e in g.edges() {
            assert!(parsed.has_edge(e.lo(), e.hi()));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n% another\n0 1\n1 2\n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_is_reported_with_its_number() {
        let text = "0 1\nnot-an-edge\n";
        let err = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            EdgeListError::Parse { line_number, .. } => assert_eq!(line_number, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn missing_second_endpoint_is_an_error() {
        let text = "0\n";
        assert!(read_edge_list(io::BufReader::new(text.as_bytes())).is_err());
    }
}
