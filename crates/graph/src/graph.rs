//! The immutable data graph: edge list + sorted CSR adjacency.

use crate::ordering::ForwardIndex;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a node in the data graph. Nodes are dense integers `0..n`.
pub type NodeId = u32;

/// An undirected edge of the data graph, stored canonically with `lo() <= hi()`
/// under the *identifier* order. Algorithms that need a different node order
/// (bucket order, degree order) re-orient edges through a
/// [`crate::ordering::NodeOrder`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
}

impl Edge {
    /// Creates the canonical representation of the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if `u == v`; the paper's graphs are simple (no self loops).
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self loops are not allowed in a simple data graph");
        if u < v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// The smaller endpoint under the identifier order.
    pub fn lo(&self) -> NodeId {
        self.u
    }

    /// The larger endpoint under the identifier order.
    pub fn hi(&self) -> NodeId {
        self.v
    }

    /// Both endpoints as a `(lo, hi)` pair.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Returns the endpoint opposite to `x`, or `None` if `x` is not incident.
    pub fn other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// True if `x` is one of the endpoints.
    pub fn is_incident(&self, x: NodeId) -> bool {
        x == self.u || x == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.u, self.v)
    }
}

/// An immutable simple undirected graph.
///
/// The structure keeps two synchronized views of the same edge set: a flat
/// edge list (what the mappers stream over) and a CSR adjacency array whose
/// per-node runs are sorted, giving degree-proportional neighbourhood scans
/// and `O(log Δ)` `has_edge` checks (the constant-time edge-index assumption
/// of Sections 6–7 of the paper; a binary search over the smaller endpoint's
/// run beats a hashed index in both memory and measured lookup cost).
#[derive(Clone)]
pub struct DataGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// CSR offsets: neighbours of node `v` are `adjacency[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    adjacency: Vec<NodeId>,
    /// Degree-ordered orientation, built on first use (see [`Self::forward`]).
    forward: OnceLock<ForwardIndex>,
}

impl DataGraph {
    /// Builds a graph from a node count and a de-duplicated canonical edge list.
    /// Prefer [`crate::builder::GraphBuilder`] which performs the cleaning.
    pub(crate) fn from_parts(num_nodes: usize, mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut degree = vec![0usize; num_nodes];
        for e in &edges {
            degree[e.lo() as usize] += 1;
            degree[e.hi() as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0usize);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut adjacency = vec![0 as NodeId; offsets[num_nodes]];
        let mut cursor = offsets.clone();
        for e in &edges {
            let (a, b) = e.endpoints();
            adjacency[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            adjacency[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Sort each adjacency run for deterministic iteration and binary search.
        for v in 0..num_nodes {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        DataGraph {
            num_nodes,
            edges,
            offsets,
            adjacency,
            forward: OnceLock::new(),
        }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// The canonical edge list (each undirected edge once, `lo < hi`).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Neighbours of `v`, sorted by identifier.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Tests whether the undirected edge `{u, v}` exists, by binary search
    /// over the smaller endpoint's sorted adjacency run (`O(log Δ)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || u as usize >= self.num_nodes || v as usize >= self.num_nodes {
            return false;
        }
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).binary_search(&target).is_ok()
    }

    /// The degree-ordered forward orientation of the graph (Section 7),
    /// built on first use and cached for the graph's lifetime.
    ///
    /// The graph is immutable, so the index never invalidates; a long-lived
    /// query service amortizes its construction across queries exactly as it
    /// amortizes parsing and planning, while a one-shot run pays it at most
    /// once.
    pub fn forward(&self) -> &ForwardIndex {
        self.forward.get_or_init(|| ForwardIndex::new(self))
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns the subgraph induced by keeping only edges for which `keep`
    /// returns true. Node identifiers are preserved (no compaction), which is
    /// what a reducer working on "its" fragment of the data graph needs.
    pub fn filter_edges<F: Fn(&Edge) -> bool>(&self, keep: F) -> DataGraph {
        let edges = self.edges.iter().copied().filter(|e| keep(e)).collect();
        DataGraph::from_parts(self.num_nodes, edges)
    }

    /// Builds a graph over the same node-id space from an arbitrary edge list.
    /// Duplicates are removed; endpoints must be `< num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut builder = crate::builder::GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }
}

impl fmt::Debug for DataGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DataGraph {{ n: {}, m: {} }}",
            self.num_nodes,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> DataGraph {
        DataGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_is_canonicalized() {
        let e = Edge::new(7, 3);
        assert_eq!(e.lo(), 3);
        assert_eq!(e.hi(), 7);
        assert_eq!(Edge::new(3, 7), e);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let _ = Edge::new(5, 5);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(2, 9);
        assert_eq!(e.other(2), Some(9));
        assert_eq!(e.other(9), Some(2));
        assert_eq!(e.other(4), None);
        assert!(e.is_incident(2));
        assert!(!e.is_incident(3));
    }

    #[test]
    fn counts_and_degrees() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = DataGraph::from_edges(5, [(4, 0), (0, 2), (2, 4), (1, 2)]);
        assert_eq!(g.neighbors(2), &[0, 1, 4]);
        assert_eq!(g.neighbors(0), &[2, 4]);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v));
            }
        }
    }

    #[test]
    fn has_edge_checks_both_orientations() {
        let g = path_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = DataGraph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn filter_edges_keeps_node_space() {
        let g = path_graph();
        let sub = g.filter_edges(|e| e.lo() != 0);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 2);
        assert!(!sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn empty_graph() {
        let g = DataGraph::from_edges(0, []);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
    }
}
