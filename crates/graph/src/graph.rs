//! The immutable data graph: edge list + sorted CSR adjacency.

use crate::mmap::Bytes;
use crate::ordering::ForwardIndex;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Identifier of a node in the data graph. Nodes are dense integers `0..n`.
pub type NodeId = u32;

/// An undirected edge of the data graph, stored canonically with `lo() <= hi()`
/// under the *identifier* order. Algorithms that need a different node order
/// (bucket order, degree order) re-orient edges through a
/// [`crate::ordering::NodeOrder`].
///
/// The layout is fixed (`repr(C)`: two little-endian `u32`s on disk) because
/// the binary graph format stores the edge section as a flat array of these
/// and the loader borrows it straight out of the file mapping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
}

impl Edge {
    /// Creates the canonical representation of the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if `u == v`; the paper's graphs are simple (no self loops).
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self loops are not allowed in a simple data graph");
        if u < v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// The smaller endpoint under the identifier order.
    pub fn lo(&self) -> NodeId {
        self.u
    }

    /// The larger endpoint under the identifier order.
    pub fn hi(&self) -> NodeId {
        self.v
    }

    /// Both endpoints as a `(lo, hi)` pair.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Returns the endpoint opposite to `x`, or `None` if `x` is not incident.
    pub fn other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// True if `x` is one of the endpoints.
    pub fn is_incident(&self, x: NodeId) -> bool {
        x == self.u || x == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.u, self.v)
    }
}

/// The edge list varint-encodes as `(lo, hi)`, which the arena shuffle uses
/// to ship edges in a handful of bytes instead of a fixed 8.
impl subgraph_codec::ArenaCodec for Edge {
    fn encode(&self, out: &mut Vec<u8>) {
        subgraph_codec::write_varint(out, u64::from(self.u));
        subgraph_codec::write_varint(out, u64::from(self.v));
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let u = subgraph_codec::read_varint(buf, pos) as NodeId;
        let v = subgraph_codec::read_varint(buf, pos) as NodeId;
        // Encoded from a canonical edge, so u < v already holds.
        Edge { u, v }
    }
}

/// Where a graph's three arrays live: owned vectors (built in memory by the
/// generators and the text reader) or sections borrowed from a loaded binary
/// file (see [`crate::sgr`]), where the `Arc<Bytes>` keeps the mapping alive
/// for as long as any clone of the graph.
#[derive(Clone)]
enum GraphBacking {
    Owned {
        edges: Vec<Edge>,
        /// CSR offsets: neighbours of `v` are `adjacency[offsets[v]..offsets[v+1]]`.
        /// `u64` (not `usize`) so the owned and mapped views share one type.
        offsets: Vec<u64>,
        adjacency: Vec<NodeId>,
    },
    /// Byte ranges into `bytes`, each 8-byte aligned and sized to its
    /// element type. Little-endian targets only: the cast *is* the decode.
    #[cfg(target_endian = "little")]
    Mapped {
        bytes: Arc<Bytes>,
        offsets: Range<usize>,
        adjacency: Range<usize>,
        edges: Range<usize>,
    },
}

/// Reinterprets an aligned little-endian byte section as a typed slice.
/// Only instantiated at `u64`, `NodeId` and `Edge` (`repr(C)`, all bit
/// patterns valid); callers guarantee size multiple and alignment, which the
/// debug asserts re-check.
#[cfg(target_endian = "little")]
fn cast_section<T: Copy>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    debug_assert_eq!(bytes.len() % size, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) }
}

/// An immutable simple undirected graph.
///
/// The structure keeps two synchronized views of the same edge set: a flat
/// edge list (what the mappers stream over) and a CSR adjacency array whose
/// per-node runs are sorted, giving degree-proportional neighbourhood scans
/// and `O(log Δ)` `has_edge` checks (the constant-time edge-index assumption
/// of Sections 6–7 of the paper; a binary search over the smaller endpoint's
/// run beats a hashed index in both memory and measured lookup cost).
///
/// Both views may be owned vectors or zero-copy sections of a mapped binary
/// file (the internal `GraphBacking` enum); every accessor goes through the
/// backing, so algorithms never see the difference.
#[derive(Clone)]
pub struct DataGraph {
    num_nodes: usize,
    backing: GraphBacking,
    /// Degree-ordered orientation, built on first use (see [`Self::forward`]).
    forward: OnceLock<ForwardIndex>,
}

impl DataGraph {
    /// Builds a graph from a node count and a de-duplicated canonical edge list.
    /// Prefer [`crate::builder::GraphBuilder`] which performs the cleaning.
    pub(crate) fn from_parts(num_nodes: usize, mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        // The builder's push pattern can leave a large dead tail (dedup never
        // shrinks); release it before the adjacency doubles the footprint.
        edges.shrink_to_fit();
        // Counting sort straight into the CSR, with no separate degree or
        // cursor table: count degrees into offsets[v + 1], prefix-sum so
        // offsets[v] is the start of run v, fill using offsets[v] itself as
        // the write cursor (which leaves offsets[v] at the *end* of run v),
        // then shift right once to restore the start positions.
        let mut offsets = vec![0u64; num_nodes + 1];
        for e in &edges {
            offsets[e.lo() as usize + 1] += 1;
            offsets[e.hi() as usize + 1] += 1;
        }
        for v in 0..num_nodes {
            offsets[v + 1] += offsets[v];
        }
        let mut adjacency = vec![0 as NodeId; offsets[num_nodes] as usize];
        for e in &edges {
            let (a, b) = e.endpoints();
            adjacency[offsets[a as usize] as usize] = b;
            offsets[a as usize] += 1;
            adjacency[offsets[b as usize] as usize] = a;
            offsets[b as usize] += 1;
        }
        for v in (1..=num_nodes).rev() {
            offsets[v] = offsets[v - 1];
        }
        offsets[0] = 0;
        // No per-run sort needed: the edge list is sorted, so run v receives
        // its lower-endpoint neighbours (edges (a, v), a ascending) before
        // its higher-endpoint neighbours (edges (v, b), b ascending), and
        // every a < v < every b.
        debug_assert!((0..num_nodes).all(|v| {
            adjacency[offsets[v] as usize..offsets[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        DataGraph {
            num_nodes,
            backing: GraphBacking::Owned {
                edges,
                offsets,
                adjacency,
            },
            forward: OnceLock::new(),
        }
    }

    /// Builds a graph whose arrays are sections of `bytes` (a loaded binary
    /// graph file). The caller — the [`crate::sgr`] loader — has validated
    /// that the ranges are in bounds, aligned, and mutually consistent.
    #[cfg(target_endian = "little")]
    pub(crate) fn from_mapped(
        num_nodes: usize,
        bytes: Arc<Bytes>,
        offsets: Range<usize>,
        adjacency: Range<usize>,
        edges: Range<usize>,
    ) -> Self {
        DataGraph {
            num_nodes,
            backing: GraphBacking::Mapped {
                bytes,
                offsets,
                adjacency,
                edges,
            },
            forward: OnceLock::new(),
        }
    }

    /// The CSR offsets (`u64`, one entry per node plus the closing `2m`).
    #[inline]
    pub(crate) fn offsets(&self) -> &[u64] {
        match &self.backing {
            GraphBacking::Owned { offsets, .. } => offsets,
            #[cfg(target_endian = "little")]
            GraphBacking::Mapped { bytes, offsets, .. } => {
                cast_section(&bytes.as_slice()[offsets.clone()])
            }
        }
    }

    /// The flat CSR adjacency array.
    #[inline]
    pub(crate) fn adjacency(&self) -> &[NodeId] {
        match &self.backing {
            GraphBacking::Owned { adjacency, .. } => adjacency,
            #[cfg(target_endian = "little")]
            GraphBacking::Mapped {
                bytes, adjacency, ..
            } => cast_section(&bytes.as_slice()[adjacency.clone()]),
        }
    }

    /// True when the graph borrows its arrays from a mapped binary file
    /// rather than owning them (diagnostics; algorithms never care).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            GraphBacking::Owned { .. } => false,
            #[cfg(target_endian = "little")]
            GraphBacking::Mapped { bytes, .. } => bytes.is_mapped(),
        }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges().len()
    }

    /// Iterator over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// The canonical edge list (each undirected edge once, `lo < hi`).
    pub fn edges(&self) -> &[Edge] {
        match &self.backing {
            GraphBacking::Owned { edges, .. } => edges,
            #[cfg(target_endian = "little")]
            GraphBacking::Mapped { bytes, edges, .. } => {
                cast_section(&bytes.as_slice()[edges.clone()])
            }
        }
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        let offsets = self.offsets();
        (offsets[v + 1] - offsets[v]) as usize
    }

    /// Maximum degree Δ over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.offsets()
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Neighbours of `v`, sorted by identifier.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        let offsets = self.offsets();
        &self.adjacency()[offsets[v] as usize..offsets[v + 1] as usize]
    }

    /// Tests whether the undirected edge `{u, v}` exists, by binary search
    /// over the smaller endpoint's sorted adjacency run (`O(log Δ)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || u as usize >= self.num_nodes || v as usize >= self.num_nodes {
            return false;
        }
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).binary_search(&target).is_ok()
    }

    /// The degree-ordered forward orientation of the graph (Section 7),
    /// built on first use and cached for the graph's lifetime.
    ///
    /// The graph is immutable, so the index never invalidates; a long-lived
    /// query service amortizes its construction across queries exactly as it
    /// amortizes parsing and planning, while a one-shot run pays it at most
    /// once.
    pub fn forward(&self) -> &ForwardIndex {
        self.forward.get_or_init(|| ForwardIndex::new(self))
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges().is_empty()
    }

    /// Returns the subgraph induced by keeping only edges for which `keep`
    /// returns true. Node identifiers are preserved (no compaction), which is
    /// what a reducer working on "its" fragment of the data graph needs.
    pub fn filter_edges<F: Fn(&Edge) -> bool>(&self, keep: F) -> DataGraph {
        let edges = self.edges().iter().copied().filter(|e| keep(e)).collect();
        DataGraph::from_parts(self.num_nodes, edges)
    }

    /// Builds a graph over the same node-id space from an arbitrary edge list.
    /// Duplicates are removed; endpoints must be `< num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut builder = crate::builder::GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }
}

impl fmt::Debug for DataGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DataGraph {{ n: {}, m: {} }}",
            self.num_nodes,
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_codec::ArenaCodec;

    fn path_graph() -> DataGraph {
        DataGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_is_canonicalized() {
        let e = Edge::new(7, 3);
        assert_eq!(e.lo(), 3);
        assert_eq!(e.hi(), 7);
        assert_eq!(Edge::new(3, 7), e);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let _ = Edge::new(5, 5);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(2, 9);
        assert_eq!(e.other(2), Some(9));
        assert_eq!(e.other(9), Some(2));
        assert_eq!(e.other(4), None);
        assert!(e.is_incident(2));
        assert!(!e.is_incident(3));
    }

    #[test]
    fn edge_round_trips_through_the_arena_codec() {
        let mut buf = Vec::new();
        let edges = [Edge::new(0, 1), Edge::new(5, 1_000_000), Edge::new(2, 3)];
        for e in &edges {
            e.encode(&mut buf);
        }
        let mut pos = 0;
        for e in &edges {
            assert_eq!(Edge::decode(&buf, &mut pos), *e);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn counts_and_degrees() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = DataGraph::from_edges(5, [(4, 0), (0, 2), (2, 4), (1, 2)]);
        assert_eq!(g.neighbors(2), &[0, 1, 4]);
        assert_eq!(g.neighbors(0), &[2, 4]);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v));
            }
        }
    }

    #[test]
    fn has_edge_checks_both_orientations() {
        let g = path_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = DataGraph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn filter_edges_keeps_node_space() {
        let g = path_graph();
        let sub = g.filter_edges(|e| e.lo() != 0);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 2);
        assert!(!sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn empty_graph() {
        let g = DataGraph::from_edges(0, []);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_mapped());
    }

    #[test]
    fn isolated_high_degree_hub_offsets_are_consistent() {
        // Exercises the in-place counting sort with skewed degrees and an
        // isolated node (degree 0) in the middle of the id space.
        let g = DataGraph::from_edges(6, [(0, 5), (1, 5), (3, 5), (4, 5), (0, 1)]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(2), &[] as &[NodeId]);
        assert_eq!(g.neighbors(5), &[0, 1, 3, 4]);
        assert_eq!(g.degree(5), 4);
        assert_eq!(g.max_degree(), 4);
    }
}
