//! Synthetic data-graph generators for the graph families the paper analyses.
//!
//! The paper's cost analysis assumes random edge placement (Sections 2 and 6),
//! social-network-like skew (Section 1.1), degree caps of `√m` (Section 7.3),
//! and specific worst-case families such as Δ-regular trees (end of Section
//! 7.3). These generators produce all of them deterministically from a seed so
//! every experiment in `EXPERIMENTS.md` is reproducible.

use crate::builder::GraphBuilder;
use crate::graph::{DataGraph, NodeId};
use crate::rng::Rng;

/// Uniformly random graph with exactly `m` distinct edges over `n` nodes
/// (the Erdős–Rényi `G(n, m)` model).
///
/// # Panics
/// Panics if `m` exceeds the number of node pairs `n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> DataGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} pairs exist"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        chosen.insert(key);
    }
    let mut b = GraphBuilder::new(n);
    b.add_edges(chosen);
    b.build()
}

/// Random graph where each of the `n(n-1)/2` edges is present independently
/// with probability `p` (the `G(n, p)` model).
pub fn gnp(n: usize, p: f64, seed: u64) -> DataGraph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Sparse-friendly `G(n, p)`: the same edge distribution as [`gnp`] — every
/// pair present independently with probability `p` — but sampled with the
/// geometric gap-skipping of Batagelj–Brandes in expected `O(n + m)` time
/// instead of `O(n²)` trials, so million-edge random graphs generate in
/// well under a second. (Not bitwise-identical to [`gnp`] at the same seed:
/// the RNG is consumed once per *edge*, not once per pair.)
pub fn gnp_sparse(n: usize, p: f64, seed: u64) -> DataGraph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
        return b.build();
    }
    if p > 0.0 && n >= 2 {
        let mut rng = Rng::seed_from_u64(seed);
        let ln_q = (1.0 - p).ln();
        // Walk the pairs (w, v) with w < v row by row, jumping a
        // Geometric(p)-distributed gap between successive edges.
        let (mut v, mut w) = (1usize, usize::MAX); // w = -1 before the first draw
        while v < n {
            // gap ∈ {0, 1, ...}: how many non-edges precede the next edge.
            let r = rng.gen_f64();
            let gap = if ln_q == 0.0 {
                usize::MAX
            } else {
                let g = ((1.0 - r).ln() / ln_q).floor();
                if g >= usize::MAX as f64 {
                    usize::MAX
                } else {
                    g as usize
                }
            };
            w = w.wrapping_add(1).saturating_add(gap);
            while w >= v && v < n {
                w -= v;
                v += 1;
            }
            if v < n {
                b.add_edge(w as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Chung–Lu power-law graph: node `v` has expected degree proportional to
/// `(v + 1)^{-1/(gamma - 1)}` scaled so the expected edge count is about `m`.
/// This is the stand-in for the skewed social networks motivating Section 1.1.
pub fn power_law(n: usize, m: usize, gamma: f64, seed: u64) -> DataGraph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = Rng::seed_from_u64(seed);
    let exponent = -1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    // Under Chung–Lu the expected degree of v is w_v and the expected edge
    // count is (Σw)/2, so rescale the weights to make Σw = 2m.
    let scale = 2.0 * m as f64 / total;
    let w: Vec<f64> = weights.iter().map(|x| x * scale).collect();
    let s: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / s).min(1.0);
            if p > 0.0 && rng.gen_bool(p) {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// The cycle `C_n` over nodes `0..n` (`n >= 3`).
pub fn cycle(n: usize) -> DataGraph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
    }
    b.build()
}

/// The path `P_n` with `n` nodes and `n - 1` edges.
pub fn path(n: usize) -> DataGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as NodeId, v as NodeId);
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> DataGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// A star with centre node `0` and `n - 1` leaves.
pub fn star(n: usize) -> DataGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v as NodeId);
    }
    b.build()
}

/// A `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> DataGraph {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// A complete Δ-regular tree with `levels` levels below the root: the root has
/// Δ children, every internal node has Δ−1 children, and every non-leaf node
/// therefore has degree Δ. This is the worst case for `p`-star counting used
/// at the end of Section 7.3 (Θ(mΔ^{p-2}) instances of a `p`-node star).
pub fn regular_tree(delta: usize, levels: usize) -> DataGraph {
    assert!(delta >= 2, "a regular tree needs Δ ≥ 2");
    let mut b = GraphBuilder::new(1);
    let mut frontier = vec![0 as NodeId];
    let mut next_id: NodeId = 1;
    for level in 0..levels {
        let children_per_node = if level == 0 { delta } else { delta - 1 };
        let mut next_frontier = Vec::new();
        for &parent in &frontier {
            for _ in 0..children_per_node {
                b.add_edge(parent, next_id);
                next_frontier.push(next_id);
                next_id += 1;
            }
        }
        frontier = next_frontier;
    }
    b.build()
}

/// Random graph over `n` nodes where every node's degree is capped at
/// `max_degree`; about `m` edges are attempted. Used for the bounded-degree
/// regime of Theorem 7.3 (e.g. `max_degree = ⌊√m⌋`).
pub fn bounded_degree(n: usize, m: usize, max_degree: usize, seed: u64) -> DataGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut degree = vec![0usize; n];
    let mut chosen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(20).max(1000);
    while chosen.len() < m && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || degree[u] >= max_degree || degree[v] >= max_degree {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            degree[u] += 1;
            degree[v] += 1;
        }
    }
    let mut b = GraphBuilder::new(n);
    b.add_edges(chosen.into_iter().map(|(u, v)| (u as NodeId, v as NodeId)));
    b.build()
}

/// A disjoint union of `count` triangles — handy in tests because the exact
/// number of triangles, squares, etc. is known by construction.
pub fn disjoint_triangles(count: usize) -> DataGraph {
    let mut b = GraphBuilder::new(3 * count);
    for t in 0..count {
        let base = (3 * t) as NodeId;
        b.add_edge(base, base + 1);
        b.add_edge(base + 1, base + 2);
        b.add_edge(base, base + 2);
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (nodes `0..a` on one side and
/// `a..a+b` on the other). `K_{2,2}` is a 4-cycle; `K_{a,b}` contains exactly
/// `C(a,2)·C(b,2)` squares, a useful closed form for tests.
pub fn complete_bipartite(a: usize, b: usize) -> DataGraph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            builder.add_edge(u as NodeId, (a + v) as NodeId);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm(50, 200, 7);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm(30, 60, 42);
        let b = gnm(30, 60, 42);
        assert_eq!(a.edges(), b.edges());
        let c = gnm(30, 60, 43);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    #[should_panic]
    fn gnm_rejects_too_many_edges() {
        let _ = gnm(4, 10, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn cycle_path_complete_counts() {
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(star(7).num_edges(), 6);
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) + cols*(rows-1)
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn regular_tree_degrees() {
        let g = regular_tree(4, 3);
        // Every non-leaf has degree 4; leaves degree 1.
        let internal = g.nodes().filter(|&v| g.degree(v) > 1).count();
        assert!(internal > 0);
        for v in g.nodes() {
            let d = g.degree(v);
            assert!(d == 1 || d == 4, "node {v} has degree {d}");
        }
    }

    #[test]
    fn bounded_degree_respects_cap() {
        let g = bounded_degree(200, 500, 6, 11);
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law(300, 900, 2.5, 3);
        assert!(g.num_edges() > 100);
        // The max degree should be well above the average degree.
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(g.max_degree() as f64 > 2.0 * avg);
    }

    #[test]
    fn gnp_sparse_matches_the_gnp_distribution() {
        // Degenerate probabilities.
        assert_eq!(gnp_sparse(50, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp_sparse(8, 1.0, 1).num_edges(), 28);
        // The expected edge count is C(n, 2) p; check a 5-sigma band.
        let (n, p) = (400usize, 0.05);
        let pairs = (n * (n - 1) / 2) as f64;
        let expected = pairs * p;
        let sigma = (pairs * p * (1.0 - p)).sqrt();
        for seed in 0..3u64 {
            let g = gnp_sparse(n, p, seed);
            let m = g.num_edges() as f64;
            assert!(
                (m - expected).abs() < 5.0 * sigma,
                "seed {seed}: {m} edges vs expected {expected}"
            );
        }
        // Large sparse graphs generate quickly and land near the mean.
        let big = gnp_sparse(200_000, 0.0001, 7);
        let big_pairs = 200_000f64 * 199_999.0 / 2.0;
        let big_expected = big_pairs * 0.0001;
        assert!((big.num_edges() as f64 - big_expected).abs() < big_expected * 0.02);
    }

    #[test]
    fn disjoint_triangles_structure() {
        let g = disjoint_triangles(4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 12);
        assert!(g.has_edge(3, 5));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }
}
