//! Mutable construction of [`DataGraph`]s with cleaning (dedup, self-loop drop).

use crate::graph::{DataGraph, Edge, NodeId};

/// Incremental builder for a simple undirected [`DataGraph`].
///
/// The builder silently drops self-loops and duplicate edges so that the
/// resulting graph satisfies the paper's assumptions (simple graph, each
/// undirected edge represented once).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<Edge>,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with nodes `0..num_nodes`.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            dropped_self_loops: 0,
        }
    }

    /// Adds the undirected edge `{u, v}`. Self loops are ignored. Endpoints
    /// beyond the current node count grow the node set.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        if u == v {
            self.dropped_self_loops += 1;
            return self;
        }
        let needed = (u.max(v) as usize) + 1;
        if needed > self.num_nodes {
            self.num_nodes = needed;
        }
        self.edges.push(Edge::new(u, v));
        self
    }

    /// Adds every edge in the iterator.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> &mut Self {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of self-loops that were dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of edge insertions accepted so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph. Duplicate edges collapse to one.
    pub fn build(self) -> DataGraph {
        DataGraph::from_parts(self.num_nodes, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 0).add_edge(0, 1).add_edge(2, 2);
        assert_eq!(b.dropped_self_loops(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_grows_node_space() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
        let g = b.build();
        assert_eq!(g.num_nodes(), 6);
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn builder_add_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3), (1, 2)]);
        assert_eq!(b.pending_edges(), 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn default_builder_is_empty() {
        let g = GraphBuilder::default().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
