//! Pluggable total orders on data-graph nodes.
//!
//! The paper uses three different total orders `<` on the nodes of the data
//! graph, for three different purposes:
//!
//! * **Identifier order** (Section 2.2): any fixed order works for storing the
//!   edge relation `E(a, b)` with `a < b` so that each instance of the sample
//!   graph is produced exactly once.
//! * **Bucket-then-identifier order** (Section 2.3 and Theorem 4.2): nodes are
//!   ordered first by their hash bucket `h(v)` and ties are broken by the
//!   identifier. With this order, only reducers whose bucket list is
//!   non-decreasing can receive instances, shrinking the reducer count from
//!   `b^p` to `C(b + p - 1, p)` and the replication per edge to `b^{p-2}/(p-2)!`.
//! * **Degree order** (Section 7): nodes in non-decreasing order of degree,
//!   ties broken by identifier, which is what makes "properly ordered 2-paths"
//!   (Lemma 7.1) countable in `O(m^{3/2})`.

use crate::graph::{DataGraph, NodeId};

/// A total order on the nodes of a specific data graph.
pub trait NodeOrder {
    /// A sort key such that `key(u) < key(v)` iff `u` precedes `v`.
    fn key(&self, v: NodeId) -> (u64, NodeId);

    /// True iff `u` strictly precedes `v` in this order.
    fn precedes(&self, u: NodeId, v: NodeId) -> bool {
        self.key(u) < self.key(v)
    }

    /// Orients the undirected edge `{u, v}` so that the first component
    /// precedes the second.
    fn orient(&self, u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if self.precedes(u, v) {
            (u, v)
        } else {
            (v, u)
        }
    }
}

/// The trivial order by node identifier.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdOrder;

impl NodeOrder for IdOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (0, v)
    }
}

/// Order by `(hash bucket, identifier)` as in Section 2.3.
///
/// The hash function is a multiplicative hash reduced modulo the number of
/// buckets `b`; the exact function is irrelevant to correctness, only that it
/// is a fixed map from nodes to `1..=b`.
#[derive(Clone, Copy, Debug)]
pub struct BucketThenIdOrder {
    buckets: u64,
    seed: u64,
}

impl BucketThenIdOrder {
    /// Creates the order with `b` buckets. `b` must be at least 1.
    pub fn new(buckets: usize) -> Self {
        Self::with_seed(buckets, 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates the order with an explicit hash seed (useful in tests that
    /// need to exercise collisions deterministically).
    pub fn with_seed(buckets: usize, seed: u64) -> Self {
        assert!(buckets >= 1, "at least one bucket is required");
        BucketThenIdOrder {
            buckets: buckets as u64,
            seed,
        }
    }

    /// Number of buckets `b`.
    pub fn num_buckets(&self) -> usize {
        self.buckets as usize
    }

    /// The bucket of node `v`, in `0..b`.
    pub fn bucket(&self, v: NodeId) -> usize {
        // SplitMix64-style finalizer: cheap, deterministic and well mixed.
        let mut x = (v as u64).wrapping_add(self.seed);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.buckets) as usize
    }
}

impl NodeOrder for BucketThenIdOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (self.bucket(v) as u64, v)
    }
}

/// Order by non-decreasing degree, ties broken by identifier (Section 7).
#[derive(Clone, Debug)]
pub struct DegreeOrder {
    // u32 keeps the table half the size of a u64 one; the inner loops of the
    // Section 7 algorithms hit it with random accesses, so cache residency of
    // this table is what their constant factor is made of. (A degree never
    // exceeds the node count, which itself fits `NodeId = u32`.)
    degrees: Vec<u32>,
}

impl DegreeOrder {
    /// Builds the degree order for `graph`.
    pub fn new(graph: &DataGraph) -> Self {
        let degrees = graph.nodes().map(|v| graph.degree(v) as u32).collect();
        DegreeOrder { degrees }
    }
}

impl NodeOrder for DegreeOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (u64::from(self.degrees[v as usize]), v)
    }
}

/// Degeneracy (core-peeling) order: repeatedly remove a minimum-degree node;
/// nodes are ordered by removal time.
///
/// This is the Matula–Beck smallest-last order, computed in `O(n + m)` with a
/// bucket queue. Every node has at most `degeneracy()` neighbours that follow
/// it, which makes the order a drop-in strengthening of [`DegreeOrder`] for
/// the Section 7 "properly ordered" arguments: the later-neighbour sets
/// `Γ_<(v)` are bounded by the degeneracy rather than by `√m`. The peeling is
/// deterministic — the same graph always yields the same order.
#[derive(Clone, Debug)]
pub struct DegeneracyOrder {
    /// `position[v]` is the removal time of `v` (0-based).
    position: Vec<u64>,
    degeneracy: usize,
}

impl DegeneracyOrder {
    /// Builds the degeneracy order for `graph`.
    pub fn new(graph: &DataGraph) -> Self {
        let n = graph.num_nodes();
        let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as NodeId)).collect();
        let max_degree = degree.iter().copied().max().unwrap_or(0);
        // Bucket queue: buckets[d] holds candidates of current degree d. A
        // node is re-pushed each time its degree drops, so stale entries are
        // skipped on pop; each node is pushed at most degree + 1 times,
        // keeping the total work linear in n + m.
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_degree + 1];
        for (v, &d) in degree.iter().enumerate() {
            buckets[d].push(v as NodeId);
        }
        let mut removed = vec![false; n];
        let mut position = vec![0u64; n];
        let mut degeneracy = 0usize;
        let mut cursor = 0usize; // lowest possibly non-empty bucket
        for time in 0..n as u64 {
            let v = loop {
                while buckets[cursor].is_empty() {
                    cursor += 1;
                }
                let v = buckets[cursor].pop().expect("bucket checked non-empty");
                if !removed[v as usize] && degree[v as usize] == cursor {
                    break v;
                }
            };
            degeneracy = degeneracy.max(cursor);
            removed[v as usize] = true;
            position[v as usize] = time;
            for &u in graph.neighbors(v) {
                if !removed[u as usize] {
                    degree[u as usize] -= 1;
                    buckets[degree[u as usize]].push(u);
                    cursor = cursor.min(degree[u as usize]);
                }
            }
        }
        DegeneracyOrder {
            position,
            degeneracy,
        }
    }

    /// The degeneracy of the graph: the largest minimum degree over the
    /// peeling, an upper bound on every node's later-neighbour count.
    pub fn degeneracy(&self) -> usize {
        self.degeneracy
    }
}

impl NodeOrder for DegeneracyOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (self.position[v as usize], v)
    }
}

/// The degree-ordered orientation of a data graph: a CSR over the
/// later-neighbour sets `Γ_<(v)` of Lemma 7.1, with each run sorted by the
/// degree order itself.
///
/// Orienting every edge from its earlier to its later endpoint stores each
/// edge exactly once (`Σ_v |Γ_<(v)| = m`) and every run has length `O(√m)`.
/// Because runs are sorted by the same order that oriented them, any pair
/// `(u, w)` drawn as `run[i], run[j]` with `i < j` satisfies `u ≺ w`, so the
/// `u–w` adjacency test of the Section 2 triangle algorithm becomes a
/// membership test of `w` in the (short) run of `u` — sequential reads over a
/// structure a fraction of the adjacency's size, instead of binary searches
/// over the full CSR.
///
/// Building the index costs one `O(n + m log Δ)` sweep; it is immutable
/// afterwards, which is what lets [`crate::DataGraph::forward`] cache it for
/// the graph's lifetime.
#[derive(Clone, Debug)]
pub struct ForwardIndex {
    /// Run of `v` is `targets[offsets[v]..offsets[v+1]]`. `u32` keeps the
    /// table compact; an in-memory graph has fewer than `2^32` edges.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl ForwardIndex {
    /// Builds the forward index of `graph` under its degree order.
    pub fn new(graph: &DataGraph) -> Self {
        let order = DegreeOrder::new(graph);
        let mut offsets = Vec::with_capacity(graph.num_nodes() + 1);
        offsets.push(0u32);
        let mut targets: Vec<NodeId> = Vec::with_capacity(graph.num_edges());
        for v in graph.nodes() {
            let start = targets.len();
            targets.extend(
                graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| order.precedes(v, u)),
            );
            targets[start..].sort_unstable_by_key(|&u| order.key(u));
            offsets.push(targets.len() as u32);
        }
        ForwardIndex { offsets, targets }
    }

    /// The later neighbours `Γ_<(v)`, sorted by the degree order.
    pub fn later(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Number of nodes the index covers.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Returns the neighbours of `v` that strictly follow `v` in `order`
/// (the set `Γ_<(v)` of Lemma 7.1).
pub fn later_neighbors<O: NodeOrder>(graph: &DataGraph, order: &O, v: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    later_neighbors_into(graph, order, v, &mut out);
    out
}

/// Allocation-free variant of [`later_neighbors`]: clears `out` and refills it
/// with `Γ_<(v)`, so tight per-node loops can reuse one buffer.
pub fn later_neighbors_into<O: NodeOrder>(
    graph: &DataGraph,
    order: &O,
    v: NodeId,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    out.extend(
        graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| order.precedes(v, u)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn id_order_is_numeric() {
        let o = IdOrder;
        assert!(o.precedes(1, 2));
        assert!(!o.precedes(2, 2));
        assert_eq!(o.orient(5, 3), (3, 5));
    }

    #[test]
    fn bucket_order_groups_by_bucket_first() {
        let o = BucketThenIdOrder::new(4);
        for v in 0..100u32 {
            assert!(o.bucket(v) < 4);
        }
        // Nodes in the same bucket fall back to id order.
        let mut same_bucket: Vec<u32> = (0..1000).filter(|&v| o.bucket(v) == 0).collect();
        same_bucket.sort_unstable();
        for w in same_bucket.windows(2) {
            assert!(o.precedes(w[0], w[1]));
        }
    }

    #[test]
    fn bucket_order_single_bucket_degenerates_to_id() {
        let o = BucketThenIdOrder::new(1);
        for v in 0..50u32 {
            assert_eq!(o.bucket(v), 0);
        }
        assert!(o.precedes(3, 4));
    }

    #[test]
    #[should_panic]
    fn zero_buckets_rejected() {
        let _ = BucketThenIdOrder::new(0);
    }

    #[test]
    fn degree_order_sorts_by_degree() {
        // Star with centre 0: centre has max degree, must come last.
        let g = generators::star(5);
        let o = DegreeOrder::new(&g);
        for leaf in 1..5u32 {
            assert!(o.precedes(leaf, 0));
        }
        assert!(o.precedes(1, 2)); // equal degree → id breaks the tie
    }

    #[test]
    fn orient_respects_order() {
        let g = generators::star(4);
        let o = DegreeOrder::new(&g);
        assert_eq!(o.orient(0, 3), (3, 0));
        assert_eq!(o.orient(3, 0), (3, 0));
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        // A tree has degeneracy 1, a cycle 2, a clique k-1.
        assert_eq!(DegeneracyOrder::new(&generators::star(6)).degeneracy(), 1);
        assert_eq!(DegeneracyOrder::new(&generators::cycle(8)).degeneracy(), 2);
        assert_eq!(
            DegeneracyOrder::new(&generators::complete(5)).degeneracy(),
            4
        );
    }

    #[test]
    fn degeneracy_bounds_later_neighbors() {
        for seed in 0..3 {
            let g = generators::gnm(80, 240, seed);
            let o = DegeneracyOrder::new(&g);
            let d = o.degeneracy();
            for v in g.nodes() {
                assert!(
                    later_neighbors(&g, &o, v).len() <= d,
                    "node {v} has more than {d} later neighbours"
                );
            }
        }
    }

    #[test]
    fn degeneracy_order_is_total_and_deterministic() {
        let g = generators::gnm(40, 100, 7);
        let a = DegeneracyOrder::new(&g);
        let b = DegeneracyOrder::new(&g);
        let mut seen = std::collections::HashSet::new();
        for v in g.nodes() {
            assert_eq!(a.key(v), b.key(v));
            assert!(seen.insert(a.key(v).0), "removal times must be distinct");
        }
    }

    #[test]
    fn degeneracy_of_empty_graph_is_zero() {
        let g = crate::graph::DataGraph::from_edges(0, []);
        assert_eq!(DegeneracyOrder::new(&g).degeneracy(), 0);
    }

    #[test]
    fn forward_index_orients_every_edge_once() {
        for seed in 0..3 {
            let g = generators::gnm(50, 180, seed);
            let f = ForwardIndex::new(&g);
            let order = DegreeOrder::new(&g);
            assert_eq!(f.num_nodes(), g.num_nodes());
            let mut total = 0;
            for v in g.nodes() {
                let run = f.later(v);
                total += run.len();
                // Run contents are exactly Γ_<(v), sorted by the order.
                for &u in run {
                    assert!(g.has_edge(v, u));
                    assert!(order.precedes(v, u));
                }
                for w in run.windows(2) {
                    assert!(order.precedes(w[0], w[1]));
                }
            }
            assert_eq!(total, g.num_edges());
        }
    }

    #[test]
    fn forward_index_is_cached_on_the_graph() {
        let g = generators::complete(6);
        let a = g.forward() as *const ForwardIndex;
        let b = g.forward() as *const ForwardIndex;
        assert_eq!(a, b);
        assert_eq!(g.forward().later(0).len(), 5);
        assert!(g.forward().later(5).is_empty());
    }

    #[test]
    fn forward_index_of_empty_graph() {
        let g = crate::graph::DataGraph::from_edges(0, []);
        assert_eq!(ForwardIndex::new(&g).num_nodes(), 0);
    }
}
