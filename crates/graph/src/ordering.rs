//! Pluggable total orders on data-graph nodes.
//!
//! The paper uses three different total orders `<` on the nodes of the data
//! graph, for three different purposes:
//!
//! * **Identifier order** (Section 2.2): any fixed order works for storing the
//!   edge relation `E(a, b)` with `a < b` so that each instance of the sample
//!   graph is produced exactly once.
//! * **Bucket-then-identifier order** (Section 2.3 and Theorem 4.2): nodes are
//!   ordered first by their hash bucket `h(v)` and ties are broken by the
//!   identifier. With this order, only reducers whose bucket list is
//!   non-decreasing can receive instances, shrinking the reducer count from
//!   `b^p` to `C(b + p - 1, p)` and the replication per edge to `b^{p-2}/(p-2)!`.
//! * **Degree order** (Section 7): nodes in non-decreasing order of degree,
//!   ties broken by identifier, which is what makes "properly ordered 2-paths"
//!   (Lemma 7.1) countable in `O(m^{3/2})`.

use crate::graph::{DataGraph, NodeId};

/// A total order on the nodes of a specific data graph.
pub trait NodeOrder {
    /// A sort key such that `key(u) < key(v)` iff `u` precedes `v`.
    fn key(&self, v: NodeId) -> (u64, NodeId);

    /// True iff `u` strictly precedes `v` in this order.
    fn precedes(&self, u: NodeId, v: NodeId) -> bool {
        self.key(u) < self.key(v)
    }

    /// Orients the undirected edge `{u, v}` so that the first component
    /// precedes the second.
    fn orient(&self, u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if self.precedes(u, v) {
            (u, v)
        } else {
            (v, u)
        }
    }
}

/// The trivial order by node identifier.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdOrder;

impl NodeOrder for IdOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (0, v)
    }
}

/// Order by `(hash bucket, identifier)` as in Section 2.3.
///
/// The hash function is a multiplicative hash reduced modulo the number of
/// buckets `b`; the exact function is irrelevant to correctness, only that it
/// is a fixed map from nodes to `1..=b`.
#[derive(Clone, Copy, Debug)]
pub struct BucketThenIdOrder {
    buckets: u64,
    seed: u64,
}

impl BucketThenIdOrder {
    /// Creates the order with `b` buckets. `b` must be at least 1.
    pub fn new(buckets: usize) -> Self {
        Self::with_seed(buckets, 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates the order with an explicit hash seed (useful in tests that
    /// need to exercise collisions deterministically).
    pub fn with_seed(buckets: usize, seed: u64) -> Self {
        assert!(buckets >= 1, "at least one bucket is required");
        BucketThenIdOrder {
            buckets: buckets as u64,
            seed,
        }
    }

    /// Number of buckets `b`.
    pub fn num_buckets(&self) -> usize {
        self.buckets as usize
    }

    /// The bucket of node `v`, in `0..b`.
    pub fn bucket(&self, v: NodeId) -> usize {
        // SplitMix64-style finalizer: cheap, deterministic and well mixed.
        let mut x = (v as u64).wrapping_add(self.seed);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.buckets) as usize
    }
}

impl NodeOrder for BucketThenIdOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (self.bucket(v) as u64, v)
    }
}

/// Order by non-decreasing degree, ties broken by identifier (Section 7).
#[derive(Clone, Debug)]
pub struct DegreeOrder {
    degrees: Vec<u64>,
}

impl DegreeOrder {
    /// Builds the degree order for `graph`.
    pub fn new(graph: &DataGraph) -> Self {
        let degrees = graph.nodes().map(|v| graph.degree(v) as u64).collect();
        DegreeOrder { degrees }
    }
}

impl NodeOrder for DegreeOrder {
    fn key(&self, v: NodeId) -> (u64, NodeId) {
        (self.degrees[v as usize], v)
    }
}

/// Returns the neighbours of `v` that strictly follow `v` in `order`
/// (the set `Γ_<(v)` of Lemma 7.1).
pub fn later_neighbors<O: NodeOrder>(graph: &DataGraph, order: &O, v: NodeId) -> Vec<NodeId> {
    graph
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&u| order.precedes(v, u))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn id_order_is_numeric() {
        let o = IdOrder;
        assert!(o.precedes(1, 2));
        assert!(!o.precedes(2, 2));
        assert_eq!(o.orient(5, 3), (3, 5));
    }

    #[test]
    fn bucket_order_groups_by_bucket_first() {
        let o = BucketThenIdOrder::new(4);
        for v in 0..100u32 {
            assert!(o.bucket(v) < 4);
        }
        // Nodes in the same bucket fall back to id order.
        let mut same_bucket: Vec<u32> = (0..1000).filter(|&v| o.bucket(v) == 0).collect();
        same_bucket.sort_unstable();
        for w in same_bucket.windows(2) {
            assert!(o.precedes(w[0], w[1]));
        }
    }

    #[test]
    fn bucket_order_single_bucket_degenerates_to_id() {
        let o = BucketThenIdOrder::new(1);
        for v in 0..50u32 {
            assert_eq!(o.bucket(v), 0);
        }
        assert!(o.precedes(3, 4));
    }

    #[test]
    #[should_panic]
    fn zero_buckets_rejected() {
        let _ = BucketThenIdOrder::new(0);
    }

    #[test]
    fn degree_order_sorts_by_degree() {
        // Star with centre 0: centre has max degree, must come last.
        let g = generators::star(5);
        let o = DegreeOrder::new(&g);
        for leaf in 1..5u32 {
            assert!(o.precedes(leaf, 0));
        }
        assert!(o.precedes(1, 2)); // equal degree → id breaks the tie
    }

    #[test]
    fn orient_respects_order() {
        let g = generators::star(4);
        let o = DegreeOrder::new(&g);
        assert_eq!(o.orient(0, 3), (3, 0));
        assert_eq!(o.orient(3, 0), (3, 0));
    }
}
