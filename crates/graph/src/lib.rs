//! Data-graph substrate for single-round map-reduce subgraph enumeration.
//!
//! The paper (Afrati, Fotakis, Ullman, ICDE 2013) works with a *data graph* `G`
//! of `n` nodes and `m` undirected, unlabeled edges. Every algorithm in the
//! paper relies on three properties of the data-graph representation that this
//! crate provides:
//!
//! 1. **A total order `<` on nodes.** Section 2.2 uses an arbitrary order so
//!    that the edge relation `E(a, b)` stores each undirected edge exactly once
//!    with `a < b`; Section 2.3 and Theorem 4.2 order nodes by
//!    *(hash bucket, id)*; Section 7 orders nodes by *non-decreasing degree*.
//!    [`ordering::NodeOrder`] makes the order pluggable.
//! 2. **An O(1) edge-existence index** (Section 6.2), used by the decomposition
//!    join (Lemma 6.1), the `OddCycle` algorithm (Algorithm 1) and the
//!    bounded-degree algorithm (Theorem 7.3).
//! 3. **Adjacency lists** retrievable in time proportional to the degree
//!    (Section 7), stored here in compressed sparse row (CSR) form.
//!
//! Synthetic generators reproduce the graph families the paper analyses:
//! uniformly random `G(n, m)` and `G(n, p)` graphs, power-law (Chung–Lu)
//! graphs standing in for social networks, Δ-regular trees (the worst case of
//! Section 7.3), cycles, cliques, grids, stars, and degree-capped graphs for
//! the `√m` bounded-degree regime.

pub mod builder;
pub mod generators;
pub mod graph;
pub mod io;
pub mod mmap;
pub mod ordering;
pub mod rng;
pub mod sgr;
pub mod source;
pub mod stats;

pub use builder::GraphBuilder;
pub use graph::{DataGraph, Edge, NodeId};
pub use io::ReadStats;
pub use ordering::{
    BucketThenIdOrder, DegeneracyOrder, DegreeOrder, ForwardIndex, IdOrder, NodeOrder,
};
pub use sgr::{load_sgr_file, sniff_sgr, write_sgr_file, SgrError};
pub use source::{GraphSource, SourceError};
pub use stats::GraphStats;

#[cfg(test)]
mod proptests;
