//! Read-only file mappings without a `libc` dependency.
//!
//! The binary graph loader wants the kernel's page cache to *be* the graph:
//! `mmap` the file once and borrow the CSR sections straight out of the
//! mapping, so loading costs a few page faults instead of a parse and three
//! allocations. The repo links no external crates, so the mapping syscalls
//! are issued directly (Linux x86-64 only, behind a `cfg` gate); every other
//! platform falls back to reading the file into an 8-byte-aligned heap
//! buffer, which keeps the rest of the loader identical.
//!
//! [`Bytes`] is the common currency: "some immutable, 8-byte-aligned byte
//! region that lives as long as I do", whether it came from `mmap` or from
//! `read`. The graph keeps an `Arc<Bytes>` and borrows its sections from it.

use std::fs::File;
use std::io::{self, Read};

/// A read-only memory mapping of an entire file.
///
/// The pointer is page-aligned (so in particular 8-byte-aligned) and valid
/// for `len` bytes until drop, which unmaps it. The mapping is private
/// (copy-on-write semantics are irrelevant: `PROT_READ` only).
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable shared memory; the raw pointer is the only reason
// Send/Sync are not derived.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `file` (of size `len`) read-only. Returns `Ok(None)` on targets
    /// where the repo has no syscall shim, so callers fall back to `read`.
    pub fn map_file(file: &File, len: usize) -> io::Result<Option<Mapping>> {
        if len == 0 {
            return Ok(None);
        }
        sys::map_readonly(file, len)
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        // Safety: ptr is valid for len bytes for the lifetime of self and
        // nobody mutates the mapping (PROT_READ).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use super::Mapping;
    use std::arch::asm;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const SYS_MMAP: u64 = 9;
    const SYS_MUNMAP: u64 = 11;
    const PROT_READ: u64 = 1;
    const MAP_PRIVATE: u64 = 2;

    pub(super) fn map_readonly(file: &File, len: usize) -> io::Result<Option<Mapping>> {
        let fd = file.as_raw_fd();
        let ret: i64;
        // mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0u64,
                in("rsi") len as u64,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as u64,
                in("r9") 0u64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        // Errors come back as -errno in the return register.
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(Some(Mapping {
            ptr: ret as usize as *const u8,
            len,
        }))
    }

    pub(super) fn unmap(ptr: *const u8, len: usize) {
        let _ret: i64;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP => _ret,
                in("rdi") ptr as u64,
                in("rsi") len as u64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use super::Mapping;
    use std::fs::File;
    use std::io;

    pub(super) fn map_readonly(_file: &File, _len: usize) -> io::Result<Option<Mapping>> {
        Ok(None)
    }

    pub(super) fn unmap(_ptr: *const u8, _len: usize) {
        unreachable!("no mappings are created on this target")
    }
}

/// A heap buffer whose bytes are 8-byte aligned (it is allocated as `u64`
/// words), so the same section-casting code serves mapped and read files.
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Reads all of `file` (of size `len`) into an aligned buffer.
    pub fn read_from(file: &mut File, len: usize) -> io::Result<AlignedBuf> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // Safety: u64 -> u8 reinterpretation is always valid; the slice
        // covers exactly the vector's initialized storage.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        AlignedBuf::check_trailing(file)?;
        Ok(AlignedBuf { words, len })
    }

    /// Rejects files that grew past the length the caller measured; the
    /// loader's bounds checks assume `len` covers the whole file.
    fn check_trailing(file: &mut File) -> io::Result<()> {
        let mut probe = [0u8; 1];
        match file.read(&mut probe)? {
            0 => Ok(()),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file changed size while being read",
            )),
        }
    }

    /// The buffered bytes.
    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// An immutable, 8-byte-aligned byte region backing a loaded graph: a kernel
/// mapping where the platform shim exists, a heap buffer otherwise.
pub enum Bytes {
    /// Pages borrowed from the kernel's page cache.
    Mapped(Mapping),
    /// An owned aligned buffer filled with `read`.
    Heap(AlignedBuf),
}

impl Bytes {
    /// Maps or reads `file` whole.
    pub fn load(mut file: File, len: usize) -> io::Result<Bytes> {
        match Mapping::map_file(&file, len)? {
            Some(map) => Ok(Bytes::Mapped(map)),
            None => Ok(Bytes::Heap(AlignedBuf::read_from(&mut file, len)?)),
        }
    }

    /// The backing bytes. The base pointer is always 8-byte aligned.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Mapped(m) => m.as_slice(),
            Bytes::Heap(b) => b.as_slice(),
        }
    }

    /// True when the bytes are a kernel mapping rather than a heap copy.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Bytes::Mapped(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("subgraph-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn mapping_reads_back_the_file() {
        let contents: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("map.bin", &contents);
        let file = File::open(&path).unwrap();
        let bytes = Bytes::load(file, contents.len()).unwrap();
        assert_eq!(bytes.as_slice(), &contents[..]);
        assert_eq!(bytes.as_slice().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn linux_x86_64_actually_maps() {
        let path = temp_file("mapped.bin", b"hello mapping");
        let file = File::open(&path).unwrap();
        let bytes = Bytes::load(file, 13).unwrap();
        assert!(bytes.is_mapped());
        assert_eq!(bytes.as_slice(), b"hello mapping");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aligned_buf_handles_odd_lengths() {
        for len in [1usize, 7, 8, 9, 4097] {
            let contents: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let path = temp_file(&format!("odd{len}.bin"), &contents);
            let mut file = File::open(&path).unwrap();
            let buf = AlignedBuf::read_from(&mut file, len).unwrap();
            assert_eq!(buf.as_slice(), &contents[..]);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn aligned_buf_rejects_a_growing_file() {
        let path = temp_file("grown.bin", b"0123456789");
        let mut file = File::open(&path).unwrap();
        // Claim the file is shorter than it is: the trailing probe must trip.
        assert!(AlignedBuf::read_from(&mut file, 5).is_err());
        std::fs::remove_file(&path).ok();
    }
}
