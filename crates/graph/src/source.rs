//! [`GraphSource`]: one description of where a data graph comes from.
//!
//! The workloads the paper targets arrive two ways: as edge-list snapshot
//! files (the real social networks of Section 1.1) and as synthetic
//! generator families (the analyses of Sections 2, 6 and 7). `GraphSource`
//! unifies both behind a single loadable value, so a CLI flag, a benchmark
//! table and a test can all say "this graph" the same way.
//!
//! Generator sources are written as compact specs:
//!
//! ```text
//! gnm:<n>,<m>[,<seed>]           uniformly random G(n, m)
//! gnp:<n>,<p>[,<seed>]           sparse-sampled G(n, p) (Batagelj–Brandes)
//! power-law:<n>,<m>,<gamma>[,<seed>]   Chung–Lu with exponent gamma
//! ```
//!
//! ```
//! use subgraph_graph::source::GraphSource;
//!
//! let source: GraphSource = "gnp:100,0.05,7".parse().unwrap();
//! let graph = source.load().unwrap();
//! assert_eq!(graph.num_nodes(), 100);
//! ```

use crate::generators;
use crate::graph::DataGraph;
use crate::io::{read_edge_list_file_with_stats, EdgeListError, ReadStats};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// Seed used when a generator spec omits one, so specs without a seed are
/// still reproducible run to run.
pub const DEFAULT_SEED: u64 = 1;

/// Where a data graph comes from: an edge-list file or a deterministic
/// synthetic generator.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// An edge-list file in the SNAP-style `u v` per line format.
    File(PathBuf),
    /// Uniformly random `G(n, m)`.
    Gnm { n: usize, m: usize, seed: u64 },
    /// `G(n, p)` sampled with the sparse-friendly gap-skipping generator.
    Gnp { n: usize, p: f64, seed: u64 },
    /// Chung–Lu power-law graph with ~`m` expected edges and exponent
    /// `gamma`.
    PowerLaw {
        n: usize,
        m: usize,
        gamma: f64,
        seed: u64,
    },
}

impl GraphSource {
    /// A file source.
    pub fn file(path: impl Into<PathBuf>) -> Self {
        GraphSource::File(path.into())
    }

    /// Parses a generator spec (`gnm:…`, `gnp:…`, `power-law:…`). Unlike the
    /// [`FromStr`] impl this never falls back to interpreting the string as a
    /// file path, so a mistyped generator name is an error instead of a
    /// confusing "file not found".
    pub fn parse_generator(spec: &str) -> Result<Self, SourceError> {
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| SourceError::bad_spec(spec, "expected <generator>:<args>"))?;
        let args: Vec<&str> = rest.split(',').map(str::trim).collect();
        let bad = |reason: &str| SourceError::bad_spec(spec, reason);
        let parse_usize =
            |s: &str| -> Result<usize, SourceError> { s.parse().map_err(|_| bad("bad integer")) };
        let parse_f64 =
            |s: &str| -> Result<f64, SourceError> { s.parse().map_err(|_| bad("bad number")) };
        let parse_seed = |s: Option<&&str>| -> Result<u64, SourceError> {
            match s {
                Some(s) => s.parse().map_err(|_| bad("bad seed")),
                None => Ok(DEFAULT_SEED),
            }
        };
        match kind {
            "gnm" => {
                if !(2..=3).contains(&args.len()) {
                    return Err(bad("expected gnm:<n>,<m>[,<seed>]"));
                }
                Ok(GraphSource::Gnm {
                    n: parse_usize(args[0])?,
                    m: parse_usize(args[1])?,
                    seed: parse_seed(args.get(2))?,
                })
            }
            "gnp" => {
                if !(2..=3).contains(&args.len()) {
                    return Err(bad("expected gnp:<n>,<p>[,<seed>]"));
                }
                let p = parse_f64(args[1])?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad("edge probability must be in [0, 1]"));
                }
                Ok(GraphSource::Gnp {
                    n: parse_usize(args[0])?,
                    p,
                    seed: parse_seed(args.get(2))?,
                })
            }
            "power-law" => {
                if !(3..=4).contains(&args.len()) {
                    return Err(bad("expected power-law:<n>,<m>,<gamma>[,<seed>]"));
                }
                let gamma = parse_f64(args[2])?;
                if gamma <= 1.0 {
                    return Err(bad("power-law exponent must exceed 1"));
                }
                Ok(GraphSource::PowerLaw {
                    n: parse_usize(args[0])?,
                    m: parse_usize(args[1])?,
                    gamma,
                    seed: parse_seed(args.get(3))?,
                })
            }
            other => Err(SourceError::bad_spec(
                spec,
                &format!("unknown generator {other:?} (try gnm, gnp, power-law)"),
            )),
        }
    }

    /// Loads the graph: reads the file or runs the generator.
    pub fn load(&self) -> Result<DataGraph, SourceError> {
        self.load_with_stats().map(|(graph, _)| graph)
    }

    /// Loads the graph; text file sources also report the reader's
    /// input-hygiene counters (binary and generator sources return `None`).
    ///
    /// File sources are sniffed by content, not extension: a file starting
    /// with the [`crate::sgr`] magic loads through the zero-copy binary
    /// loader, anything else parses as a text edge list.
    pub fn load_with_stats(&self) -> Result<(DataGraph, Option<ReadStats>), SourceError> {
        match self {
            GraphSource::File(path) => {
                let is_sgr = crate::sgr::sniff_sgr(path).map_err(|source| {
                    SourceError::Read(crate::io::EdgeListError::Io {
                        path: Some(path.clone()),
                        source,
                    })
                })?;
                if is_sgr {
                    let graph = crate::sgr::load_sgr_file(path).map_err(SourceError::Sgr)?;
                    return Ok((graph, None));
                }
                let (graph, stats) =
                    read_edge_list_file_with_stats(path).map_err(SourceError::Read)?;
                Ok((graph, Some(stats)))
            }
            GraphSource::Gnm { n, m, seed } => Ok((generators::gnm(*n, *m, *seed), None)),
            GraphSource::Gnp { n, p, seed } => Ok((generators::gnp_sparse(*n, *p, *seed), None)),
            GraphSource::PowerLaw { n, m, gamma, seed } => {
                Ok((generators::power_law(*n, *m, *gamma, *seed), None))
            }
        }
    }
}

impl fmt::Display for GraphSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphSource::File(path) => write!(f, "{}", path.display()),
            GraphSource::Gnm { n, m, seed } => write!(f, "gnm:{n},{m},{seed}"),
            GraphSource::Gnp { n, p, seed } => write!(f, "gnp:{n},{p},{seed}"),
            GraphSource::PowerLaw { n, m, gamma, seed } => {
                write!(f, "power-law:{n},{m},{gamma},{seed}")
            }
        }
    }
}

impl FromStr for GraphSource {
    type Err = SourceError;

    /// Parses a generator spec, falling back to a file path when the string
    /// names no known generator family. `gnm:`/`gnp:`/`power-law:` prefixes
    /// always parse as generators (a malformed spec is an error, not a file).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let looks_like_generator = ["gnm:", "gnp:", "power-law:"]
            .iter()
            .any(|prefix| s.starts_with(prefix));
        if looks_like_generator {
            GraphSource::parse_generator(s)
        } else {
            Ok(GraphSource::file(s))
        }
    }
}

/// Why a [`GraphSource`] could not be parsed or loaded.
#[derive(Debug)]
pub enum SourceError {
    /// The generator spec string is malformed.
    BadSpec {
        /// The spec as given.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Reading an edge-list file failed.
    Read(EdgeListError),
    /// Loading a binary `.sgr` file failed.
    Sgr(crate::sgr::SgrError),
}

impl SourceError {
    fn bad_spec(spec: &str, reason: &str) -> Self {
        SourceError::BadSpec {
            spec: spec.to_string(),
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::BadSpec { spec, reason } => {
                write!(f, "bad graph spec {spec:?}: {reason}")
            }
            SourceError::Read(e) => write!(f, "{e}"),
            SourceError::Sgr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::BadSpec { .. } => None,
            SourceError::Read(e) => Some(e),
            SourceError::Sgr(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_specs_parse_and_load() {
        let gnm: GraphSource = "gnm:50,120,9".parse().unwrap();
        assert_eq!(
            gnm,
            GraphSource::Gnm {
                n: 50,
                m: 120,
                seed: 9
            }
        );
        assert_eq!(gnm.load().unwrap().num_edges(), 120);

        let gnp: GraphSource = "gnp:100,0.05".parse().unwrap();
        match gnp {
            GraphSource::Gnp { n: 100, seed, .. } => assert_eq!(seed, DEFAULT_SEED),
            other => panic!("unexpected {other:?}"),
        }

        let pl: GraphSource = "power-law:200,400,2.5,3".parse().unwrap();
        let g = pl.load().unwrap();
        assert_eq!(g.num_nodes(), 200);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn loads_are_deterministic_per_seed() {
        let a: GraphSource = "gnp:300,0.02,5".parse().unwrap();
        let b: GraphSource = "gnp:300,0.02,5".parse().unwrap();
        assert_eq!(a.load().unwrap().num_edges(), b.load().unwrap().num_edges());
    }

    #[test]
    fn malformed_generator_specs_do_not_fall_back_to_files() {
        for spec in [
            "gnp:100",
            "gnm:10,banana",
            "gnp:10,2.0",
            "power-law:9,9,0.5",
        ] {
            let err = spec.parse::<GraphSource>().unwrap_err();
            assert!(matches!(err, SourceError::BadSpec { .. }), "{spec}");
        }
        // But unknown strings are paths (the file may simply not exist yet).
        let src: GraphSource = "data/soc-Epinions1.txt".parse().unwrap();
        assert_eq!(src, GraphSource::file("data/soc-Epinions1.txt"));
    }

    #[test]
    fn unknown_generator_name_via_parse_generator_is_an_error() {
        let err = GraphSource::parse_generator("grid:3,3").unwrap_err();
        assert!(err.to_string().contains("unknown generator"));
    }

    #[test]
    fn file_sources_report_read_stats_and_errors_name_the_path() {
        let err = GraphSource::file("/no/such/graph.txt").load().unwrap_err();
        assert!(err.to_string().contains("/no/such/graph.txt"));

        let dir = std::env::temp_dir().join("subgraph-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n1 0\n2 2\n1 2\n").unwrap();
        let (graph, stats) = GraphSource::file(&path).load_with_stats().unwrap();
        let stats = stats.expect("file sources carry stats");
        assert_eq!(graph.num_edges(), 2);
        assert_eq!(stats.duplicate_edges, 1);
        assert_eq!(stats.self_loops, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_sources_sniff_binary_graphs_by_content() {
        let g = generators::gnm(30, 60, 4);
        let dir = std::env::temp_dir().join("subgraph-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Deliberately *not* named .sgr: the sniff is content-based.
        let path = dir.join("binary.graph");
        crate::sgr::write_sgr_file(&g, &path).unwrap();
        let (loaded, stats) = GraphSource::file(&path).load_with_stats().unwrap();
        assert!(stats.is_none(), "binary loads carry no text-reader stats");
        assert_eq!(loaded.num_edges(), g.num_edges());
        assert_eq!(loaded.edges(), g.edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn display_round_trips_generator_specs() {
        for spec in ["gnm:50,120,9", "gnp:100,0.05,1", "power-law:200,400,2.5,3"] {
            let src: GraphSource = spec.parse().unwrap();
            assert_eq!(src.to_string(), spec);
            assert_eq!(src.to_string().parse::<GraphSource>().unwrap(), src);
        }
    }
}
