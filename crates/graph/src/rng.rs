//! A small deterministic pseudo-random number generator.
//!
//! The generators in this crate only need a seedable, statistically decent
//! source of uniform integers and Bernoulli draws. To keep the workspace free
//! of external dependencies this module implements xoshiro256++ (public-domain
//! algorithm by Blackman and Vigna) seeded through SplitMix64, the same
//! construction `rand`'s `StdRng` historically used for seeding.

/// A seedable xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full 256-bit state is derived from `seed`
    /// via SplitMix64, so nearby seeds still produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform integer in `[0, bound)` via Lemire's unbiased multiply-shift
    /// rejection method. `bound` must be positive.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index needs a positive bound");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// A uniform integer in `range` (half-open).
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_index(range.end - range.start)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(3..13);
            assert!((3..13).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rough_frequency() {
        let mut rng = Rng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
