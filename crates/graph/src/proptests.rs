//! Property-style tests over the graph substrate: the invariants the original
//! proptest suite checked, exercised over deterministic seeded sweeps of
//! random edge lists (the workspace builds offline, so randomness comes from
//! [`crate::rng`]).

use crate::builder::GraphBuilder;
use crate::generators;
use crate::graph::{DataGraph, NodeId};
use crate::ordering::{BucketThenIdOrder, DegreeOrder, IdOrder, NodeOrder};
use crate::rng::Rng;

/// A random multigraph-ish edge list over 60 nodes (duplicates and self-loops
/// included on purpose — the builder must normalize them away).
fn arbitrary_edge_list(seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = Rng::seed_from_u64(seed);
    let len = rng.gen_range(0..200);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..60) as NodeId,
                rng.gen_range(0..60) as NodeId,
            )
        })
        .collect()
}

fn build(seed: u64) -> DataGraph {
    let mut b = GraphBuilder::new(60);
    b.add_edges(arbitrary_edge_list(seed));
    b.build()
}

#[test]
fn degrees_sum_to_twice_edges() {
    for seed in 0..32 {
        let g = build(seed);
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.num_edges(), "seed {seed}");
    }
}

#[test]
fn has_edge_matches_adjacency() {
    for seed in 32..64 {
        let g = build(seed);
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                assert!(g.has_edge(v, u), "seed {seed}");
                assert!(g.has_edge(u, v), "seed {seed}");
            }
        }
        for e in g.edges() {
            assert!(g.neighbors(e.lo()).contains(&e.hi()), "seed {seed}");
        }
    }
}

#[test]
fn orderings_are_total_and_antisymmetric() {
    for seed in 64..76 {
        let g = build(seed);
        let buckets = 1 + (seed as usize % 7);
        let degree = DegreeOrder::new(&g);
        let bucket = BucketThenIdOrder::new(buckets);
        let id = IdOrder;
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    assert!(!id.precedes(u, v));
                    assert!(!degree.precedes(u, v));
                    assert!(!bucket.precedes(u, v));
                } else {
                    assert!(id.precedes(u, v) ^ id.precedes(v, u));
                    assert!(degree.precedes(u, v) ^ degree.precedes(v, u));
                    assert!(bucket.precedes(u, v) ^ bucket.precedes(v, u));
                }
            }
        }
    }
}

#[test]
fn gnm_generator_edge_count_and_simplicity() {
    for (case, seed) in (0..20u64).enumerate() {
        let n = 5 + case * 7 % 36;
        let max = n * (n - 1) / 2;
        let m = max / 2;
        let g = generators::gnm(n, m, seed);
        assert_eq!(g.num_edges(), m, "n={n} seed={seed}");
        for e in g.edges() {
            assert!(e.lo() < e.hi());
            assert!((e.hi() as usize) < n);
        }
    }
}

/// Text and binary serialization agree on every graph: writing a graph both
/// ways and reading both back yields the same node count, edge list and
/// adjacency structure — the "count on .sgr == count on text" guarantee the
/// convert path relies on, pinned at the representation level.
#[test]
fn text_and_binary_round_trips_agree() {
    let dir = std::env::temp_dir().join("subgraph-proptest-sgr");
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 100..132 {
        let g = build(seed);
        let text_path = dir.join(format!("g{seed}.txt"));
        let sgr_path = dir.join(format!("g{seed}.sgr"));
        crate::io::write_edge_list_file(&g, &text_path).unwrap();
        crate::sgr::write_sgr_file(&g, &sgr_path).unwrap();
        let from_text = crate::io::read_edge_list_file(&text_path).unwrap();
        let from_sgr = crate::sgr::load_sgr_file(&sgr_path).unwrap();
        // The text round trip may shrink the node space (trailing isolated
        // nodes leave no trace in an edge list); the binary one must not.
        assert_eq!(from_sgr.num_nodes(), g.num_nodes(), "seed {seed}");
        assert_eq!(from_sgr.edges(), g.edges(), "seed {seed}");
        assert_eq!(from_text.edges(), g.edges(), "seed {seed}");
        for v in g.nodes() {
            assert_eq!(from_sgr.neighbors(v), g.neighbors(v), "seed {seed}");
        }
        assert_eq!(from_sgr.max_degree(), g.max_degree(), "seed {seed}");
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&sgr_path).ok();
    }
}

/// Loading through [`crate::GraphSource`] sniffs the same bytes to the same
/// graph regardless of what the file is called.
#[test]
fn source_sniffing_is_extension_blind() {
    let dir = std::env::temp_dir().join("subgraph-proptest-sniff");
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 132..140 {
        let g = build(seed);
        let path = dir.join(format!("g{seed}.edges"));
        crate::sgr::write_sgr_file(&g, &path).unwrap();
        let loaded = crate::GraphSource::file(&path).load().unwrap();
        assert_eq!(loaded.edges(), g.edges(), "seed {seed}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn filter_edges_is_monotone() {
    for seed in 76..100 {
        let g = build(seed);
        let threshold = (seed % 60) as NodeId;
        let sub = g.filter_edges(|e| e.lo() >= threshold);
        assert!(sub.num_edges() <= g.num_edges());
        for e in sub.edges() {
            assert!(g.has_edge(e.lo(), e.hi()));
            assert!(e.lo() >= threshold);
        }
    }
}
