//! Property-based tests over the graph substrate.

use crate::builder::GraphBuilder;
use crate::generators;
use crate::graph::NodeId;
use crate::ordering::{BucketThenIdOrder, DegreeOrder, IdOrder, NodeOrder};
use proptest::prelude::*;

fn arbitrary_edge_list() -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0u32..60, 0u32..60), 0..200)
}

proptest! {
    #[test]
    fn degrees_sum_to_twice_edges(edges in arbitrary_edge_list()) {
        let mut b = GraphBuilder::new(60);
        b.add_edges(edges);
        let g = b.build();
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn has_edge_matches_adjacency(edges in arbitrary_edge_list()) {
        let mut b = GraphBuilder::new(60);
        b.add_edges(edges);
        let g = b.build();
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(v, u));
                prop_assert!(g.has_edge(u, v));
            }
        }
        for e in g.edges() {
            prop_assert!(g.neighbors(e.lo()).contains(&e.hi()));
        }
    }

    #[test]
    fn orderings_are_total_and_antisymmetric(
        edges in arbitrary_edge_list(),
        buckets in 1usize..8,
    ) {
        let mut b = GraphBuilder::new(60);
        b.add_edges(edges);
        let g = b.build();
        let degree = DegreeOrder::new(&g);
        let bucket = BucketThenIdOrder::new(buckets);
        let id = IdOrder;
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    prop_assert!(!id.precedes(u, v));
                    prop_assert!(!degree.precedes(u, v));
                    prop_assert!(!bucket.precedes(u, v));
                } else {
                    prop_assert!(id.precedes(u, v) ^ id.precedes(v, u));
                    prop_assert!(degree.precedes(u, v) ^ degree.precedes(v, u));
                    prop_assert!(bucket.precedes(u, v) ^ bucket.precedes(v, u));
                }
            }
        }
    }

    #[test]
    fn gnm_generator_edge_count_and_simplicity(n in 5usize..40, seed in 0u64..20) {
        let max = n * (n - 1) / 2;
        let m = max / 2;
        let g = generators::gnm(n, m, seed);
        prop_assert_eq!(g.num_edges(), m);
        for e in g.edges() {
            prop_assert!(e.lo() < e.hi());
            prop_assert!((e.hi() as usize) < n);
        }
    }

    #[test]
    fn filter_edges_is_monotone(edges in arbitrary_edge_list(), threshold in 0u32..60) {
        let mut b = GraphBuilder::new(60);
        b.add_edges(edges);
        let g = b.build();
        let sub = g.filter_edges(|e| e.lo() >= threshold);
        prop_assert!(sub.num_edges() <= g.num_edges());
        for e in sub.edges() {
            prop_assert!(g.has_edge(e.lo(), e.hi()));
            prop_assert!(e.lo() >= threshold);
        }
    }
}
