//! Property-style tests over the graph substrate: the invariants the original
//! proptest suite checked, exercised over deterministic seeded sweeps of
//! random edge lists (the workspace builds offline, so randomness comes from
//! [`crate::rng`]).

use crate::builder::GraphBuilder;
use crate::generators;
use crate::graph::{DataGraph, NodeId};
use crate::ordering::{BucketThenIdOrder, DegreeOrder, IdOrder, NodeOrder};
use crate::rng::Rng;

/// A random multigraph-ish edge list over 60 nodes (duplicates and self-loops
/// included on purpose — the builder must normalize them away).
fn arbitrary_edge_list(seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = Rng::seed_from_u64(seed);
    let len = rng.gen_range(0..200);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..60) as NodeId,
                rng.gen_range(0..60) as NodeId,
            )
        })
        .collect()
}

fn build(seed: u64) -> DataGraph {
    let mut b = GraphBuilder::new(60);
    b.add_edges(arbitrary_edge_list(seed));
    b.build()
}

#[test]
fn degrees_sum_to_twice_edges() {
    for seed in 0..32 {
        let g = build(seed);
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.num_edges(), "seed {seed}");
    }
}

#[test]
fn has_edge_matches_adjacency() {
    for seed in 32..64 {
        let g = build(seed);
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                assert!(g.has_edge(v, u), "seed {seed}");
                assert!(g.has_edge(u, v), "seed {seed}");
            }
        }
        for e in g.edges() {
            assert!(g.neighbors(e.lo()).contains(&e.hi()), "seed {seed}");
        }
    }
}

#[test]
fn orderings_are_total_and_antisymmetric() {
    for seed in 64..76 {
        let g = build(seed);
        let buckets = 1 + (seed as usize % 7);
        let degree = DegreeOrder::new(&g);
        let bucket = BucketThenIdOrder::new(buckets);
        let id = IdOrder;
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    assert!(!id.precedes(u, v));
                    assert!(!degree.precedes(u, v));
                    assert!(!bucket.precedes(u, v));
                } else {
                    assert!(id.precedes(u, v) ^ id.precedes(v, u));
                    assert!(degree.precedes(u, v) ^ degree.precedes(v, u));
                    assert!(bucket.precedes(u, v) ^ bucket.precedes(v, u));
                }
            }
        }
    }
}

#[test]
fn gnm_generator_edge_count_and_simplicity() {
    for (case, seed) in (0..20u64).enumerate() {
        let n = 5 + case * 7 % 36;
        let max = n * (n - 1) / 2;
        let m = max / 2;
        let g = generators::gnm(n, m, seed);
        assert_eq!(g.num_edges(), m, "n={n} seed={seed}");
        for e in g.edges() {
            assert!(e.lo() < e.hi());
            assert!((e.hi() as usize) < n);
        }
    }
}

#[test]
fn filter_edges_is_monotone() {
    for seed in 76..100 {
        let g = build(seed);
        let threshold = (seed % 60) as NodeId;
        let sub = g.filter_edges(|e| e.lo() >= threshold);
        assert!(sub.num_edges() <= g.num_edges());
        for e in sub.edges() {
            assert!(g.has_edge(e.lo(), e.hi()));
            assert!(e.lo() >= threshold);
        }
    }
}
