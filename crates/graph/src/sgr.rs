//! `.sgr` — the versioned binary container for data graphs.
//!
//! Text edge lists are how snapshots arrive, but parsing one costs a integer
//! decode per endpoint plus the full CSR build on every run. The `.sgr`
//! format stores what [`crate::DataGraph`] actually holds in memory — the
//! canonical edge list and the sorted CSR — in little-endian, 8-byte-aligned
//! sections, so the loader can `mmap` the file and *borrow* all three arrays
//! from the mapping without decoding anything (see [`crate::mmap`]). Loading
//! becomes a handful of header checks plus page faults on first touch.
//!
//! ## Layout (version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SGRAPH\r\n" (the CRLF trips text-mode corruption)
//!      8     4  version        u32 = 1
//!     12     4  endianness tag u32 = 0x01020304 (reads back-to-front on a
//!                               big-endian writer, which the loader rejects)
//!     16     4  flags          u32 = 0 (reserved)
//!     20     4  reserved       u32 = 0
//!     24     8  num_nodes  n   u64
//!     32     8  num_edges  m   u64
//!     40     8  offsets   section start (= 64 in version 1)
//!     48     8  adjacency section start
//!     56     8  edges     section start
//!     64  (n+1)*8  CSR offsets, u64 each   (offsets[0] = 0, offsets[n] = 2m)
//!      …   2m*4   CSR adjacency, u32 node ids, each run sorted
//!      …    m*8   canonical edge list, (lo, hi) u32 pairs, sorted
//! ```
//!
//! Every section start is a multiple of 8 (the sizes make that automatic,
//! and the loader re-checks), so casting a page-aligned mapping to `&[u64]`
//! / `&[u32]` / `&[Edge]` is alignment-safe.
//!
//! ## Trust model
//!
//! The loader fully validates the header and section geometry (bounds,
//! alignment, exact file size) and the two O(1) CSR anchors
//! (`offsets[0] == 0`, `offsets[n] == 2m`). It does *not* re-verify the
//! O(n + m) invariants (monotone offsets, sorted runs, canonical edges):
//! a file with a valid header but corrupted section *contents* produces
//! wrong answers or index panics, never memory unsafety — all section access
//! is through bounds-checked slices.

use crate::graph::DataGraph;
use crate::mmap::Bytes;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First eight bytes of every `.sgr` file.
pub const MAGIC: [u8; 8] = *b"SGRAPH\r\n";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Value of the endianness tag as written by a little-endian writer.
const ENDIAN_TAG: u32 = 0x0102_0304;
/// Size of the fixed header that precedes the sections.
const HEADER_LEN: u64 = 64;

/// Why a `.sgr` file could not be written or loaded.
#[derive(Debug)]
pub enum SgrError {
    /// Underlying I/O failure; names the file when known.
    Io {
        /// The file involved, if known.
        path: Option<PathBuf>,
        /// The underlying error.
        source: io::Error,
    },
    /// The file ends before the data its header promises.
    Truncated {
        /// Bytes the header-derived layout requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The file does not start with the `.sgr` magic.
    BadMagic,
    /// The format version is one this reader does not speak.
    BadVersion {
        /// The version the file claims.
        found: u32,
    },
    /// The endianness tag reads back-to-front: written on a big-endian
    /// machine by a non-conforming writer.
    BadEndianness,
    /// The header is internally inconsistent (bad section geometry, broken
    /// CSR anchors, unsupported flags, trailing bytes…).
    Corrupt(String),
}

impl std::fmt::Display for SgrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgrError::Io {
                path: Some(path),
                source,
            } => write!(f, "cannot read {}: {source}", path.display()),
            SgrError::Io { path: None, source } => write!(f, "i/o error: {source}"),
            SgrError::Truncated { expected, actual } => write!(
                f,
                "truncated .sgr file: header promises {expected} bytes, found {actual}"
            ),
            SgrError::BadMagic => write!(f, "not a .sgr file (bad magic)"),
            SgrError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported .sgr version {found} (reader speaks {VERSION})"
                )
            }
            SgrError::BadEndianness => {
                write!(
                    f,
                    "big-endian .sgr file; this reader only accepts little-endian"
                )
            }
            SgrError::Corrupt(what) => write!(f, "corrupt .sgr file: {what}"),
        }
    }
}

impl std::error::Error for SgrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SgrError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for SgrError {
    fn from(source: io::Error) -> Self {
        SgrError::Io { path: None, source }
    }
}

impl SgrError {
    fn with_path(self, path: &Path) -> Self {
        match self {
            SgrError::Io { path: None, source } => SgrError::Io {
                path: Some(path.to_path_buf()),
                source,
            },
            other => other,
        }
    }
}

/// Reinterprets a typed slice as its raw bytes (always safe for the plain-
/// old-data section types; on a little-endian target the bytes are already
/// the on-disk representation).
#[cfg(target_endian = "little")]
fn section_bytes<T: Copy>(s: &[T]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

/// Writes `graph` in `.sgr` form. The writer should be buffered; the three
/// sections are emitted as single bulk writes on little-endian targets.
pub fn write_sgr<W: Write>(graph: &DataGraph, mut writer: W) -> io::Result<()> {
    let n = graph.num_nodes() as u64;
    let m = graph.num_edges() as u64;
    let offsets_start = HEADER_LEN;
    let adjacency_start = offsets_start + (n + 1) * 8;
    let edges_start = adjacency_start + 2 * m * 4;

    let mut header = [0u8; HEADER_LEN as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    // flags and reserved stay zero.
    header[24..32].copy_from_slice(&n.to_le_bytes());
    header[32..40].copy_from_slice(&m.to_le_bytes());
    header[40..48].copy_from_slice(&offsets_start.to_le_bytes());
    header[48..56].copy_from_slice(&adjacency_start.to_le_bytes());
    header[56..64].copy_from_slice(&edges_start.to_le_bytes());
    writer.write_all(&header)?;

    #[cfg(target_endian = "little")]
    {
        writer.write_all(section_bytes(graph.offsets()))?;
        writer.write_all(section_bytes(graph.adjacency()))?;
        writer.write_all(section_bytes(graph.edges()))?;
    }
    #[cfg(not(target_endian = "little"))]
    {
        for &o in graph.offsets() {
            writer.write_all(&o.to_le_bytes())?;
        }
        for &a in graph.adjacency() {
            writer.write_all(&a.to_le_bytes())?;
        }
        for e in graph.edges() {
            writer.write_all(&e.lo().to_le_bytes())?;
            writer.write_all(&e.hi().to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes `graph` to `path` in `.sgr` form. I/O failures name the path.
pub fn write_sgr_file<P: AsRef<Path>>(graph: &DataGraph, path: P) -> Result<(), SgrError> {
    let path = path.as_ref();
    let attach = |e: io::Error| SgrError::from(e).with_path(path);
    let file = File::create(path).map_err(attach)?;
    let mut writer = io::BufWriter::new(file);
    write_sgr(graph, &mut writer).map_err(attach)?;
    writer.flush().map_err(attach)
}

/// True when the file at `path` starts with the `.sgr` magic. Files shorter
/// than the magic are simply "not `.sgr`"; only open/read failures error.
pub fn sniff_sgr<P: AsRef<Path>>(path: P) -> io::Result<bool> {
    let mut file = File::open(path)?;
    let mut head = [0u8; MAGIC.len()];
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..])? {
            0 => return Ok(false),
            k => filled += k,
        }
    }
    Ok(head == MAGIC)
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("fixed-width field"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("fixed-width field"))
}

/// The validated section geometry of a `.sgr` file.
struct Layout {
    num_nodes: usize,
    offsets: std::ops::Range<usize>,
    adjacency: std::ops::Range<usize>,
    edges: std::ops::Range<usize>,
}

/// Validates the header and section geometry against the actual byte length.
fn validate(bytes: &[u8]) -> Result<Layout, SgrError> {
    let len = bytes.len() as u64;
    if len < HEADER_LEN {
        return Err(SgrError::Truncated {
            expected: HEADER_LEN,
            actual: len,
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(SgrError::BadMagic);
    }
    let endian = read_u32(bytes, 12);
    if endian == ENDIAN_TAG.swap_bytes() {
        return Err(SgrError::BadEndianness);
    }
    if endian != ENDIAN_TAG {
        return Err(SgrError::Corrupt(format!(
            "endianness tag {endian:#010x} is neither byte order"
        )));
    }
    let version = read_u32(bytes, 8);
    if version != VERSION {
        return Err(SgrError::BadVersion { found: version });
    }
    let flags = read_u32(bytes, 16);
    if flags != 0 {
        return Err(SgrError::Corrupt(format!("unsupported flags {flags:#x}")));
    }
    let n = read_u64(bytes, 24);
    let m = read_u64(bytes, 32);
    if n > u64::from(u32::MAX) {
        return Err(SgrError::Corrupt(format!(
            "{n} nodes exceed the 32-bit node-id space"
        )));
    }
    let corrupt = |what: &str| SgrError::Corrupt(what.to_string());
    // Section sizes, with overflow-checked arithmetic: a hostile header must
    // not be able to wrap a bounds check.
    let offsets_len = n
        .checked_add(1)
        .and_then(|c| c.checked_mul(8))
        .ok_or_else(|| corrupt("offsets section size overflows"))?;
    let adjacency_len = m
        .checked_mul(8)
        .ok_or_else(|| corrupt("adjacency section size overflows"))?;
    let edges_len = m
        .checked_mul(8)
        .ok_or_else(|| corrupt("edge section size overflows"))?;
    let offsets_start = read_u64(bytes, 40);
    let adjacency_start = read_u64(bytes, 48);
    let edges_start = read_u64(bytes, 56);
    for (name, start) in [
        ("offsets", offsets_start),
        ("adjacency", adjacency_start),
        ("edges", edges_start),
    ] {
        if start % 8 != 0 {
            return Err(SgrError::Corrupt(format!(
                "{name} section start {start} is not 8-byte aligned"
            )));
        }
    }
    let offsets_end = offsets_start
        .checked_add(offsets_len)
        .ok_or_else(|| corrupt("offsets section end overflows"))?;
    let adjacency_end = adjacency_start
        .checked_add(adjacency_len)
        .ok_or_else(|| corrupt("adjacency section end overflows"))?;
    let edges_end = edges_start
        .checked_add(edges_len)
        .ok_or_else(|| corrupt("edge section end overflows"))?;
    if offsets_start < HEADER_LEN || adjacency_start < offsets_end || edges_start < adjacency_end {
        return Err(corrupt("sections overlap or precede the header"));
    }
    if edges_end > len {
        return Err(SgrError::Truncated {
            expected: edges_end,
            actual: len,
        });
    }
    if edges_end < len {
        return Err(SgrError::Corrupt(format!(
            "{} trailing bytes after the edge section",
            len - edges_end
        )));
    }
    // O(1) CSR anchors: catches files whose sections were shuffled or zeroed
    // without paying an O(n) scan on the load path.
    let first_offset = read_u64(bytes, offsets_start as usize);
    let last_offset = read_u64(bytes, (offsets_end - 8) as usize);
    if first_offset != 0 || last_offset != 2 * m {
        return Err(corrupt("CSR offset anchors do not match the edge count"));
    }
    Ok(Layout {
        num_nodes: n as usize,
        offsets: offsets_start as usize..offsets_end as usize,
        adjacency: adjacency_start as usize..adjacency_end as usize,
        edges: edges_start as usize..edges_end as usize,
    })
}

/// Loads a `.sgr` file, borrowing the graph's arrays from a file mapping
/// where the platform supports it (an aligned heap read elsewhere).
pub fn load_sgr_file<P: AsRef<Path>>(path: P) -> Result<DataGraph, SgrError> {
    let path = path.as_ref();
    let attach = |e: SgrError| e.with_path(path);
    let file = File::open(path).map_err(SgrError::from).map_err(attach)?;
    let len = file
        .metadata()
        .map_err(SgrError::from)
        .map_err(attach)?
        .len();
    if len > usize::MAX as u64 {
        return Err(SgrError::Corrupt("file exceeds the address space".into()));
    }
    let bytes = Bytes::load(file, len as usize)
        .map_err(SgrError::from)
        .map_err(attach)?;
    let layout = validate(bytes.as_slice())?;
    #[cfg(target_endian = "little")]
    {
        Ok(DataGraph::from_mapped(
            layout.num_nodes,
            Arc::new(bytes),
            layout.offsets,
            layout.adjacency,
            layout.edges,
        ))
    }
    #[cfg(not(target_endian = "little"))]
    {
        // Big-endian hosts decode the little-endian sections into an owned
        // graph; correctness over zero-copy on platforms the repo never runs
        // benchmarks on.
        let data = bytes.as_slice();
        let edge_bytes = &data[layout.edges];
        let mut edges = Vec::with_capacity(edge_bytes.len() / 8);
        for pair in edge_bytes.chunks_exact(8) {
            let lo = u32::from_le_bytes(pair[0..4].try_into().unwrap());
            let hi = u32::from_le_bytes(pair[4..8].try_into().unwrap());
            edges.push(crate::graph::Edge::new(lo, hi));
        }
        let _ = Arc::new(bytes);
        Ok(DataGraph::from_parts(layout.num_nodes, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("subgraph-sgr-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_same_graph(a: &DataGraph, b: &DataGraph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges(), b.edges());
        for v in a.nodes() {
            assert_eq!(a.neighbors(v), b.neighbors(v), "node {v}");
        }
    }

    #[test]
    fn round_trips_a_random_graph() {
        let g = generators::gnm(200, 600, 42);
        let path = temp_path("roundtrip.sgr");
        write_sgr_file(&g, &path).unwrap();
        let loaded = load_sgr_file(&path).unwrap();
        assert_same_graph(&g, &loaded);
        assert!(loaded.has_edge(g.edges()[0].lo(), g.edges()[0].hi()));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn loaded_graphs_borrow_from_the_mapping() {
        let g = generators::gnm(50, 120, 7);
        let path = temp_path("mapped.sgr");
        write_sgr_file(&g, &path).unwrap();
        let loaded = load_sgr_file(&path).unwrap();
        assert!(loaded.is_mapped());
        // Clones share the mapping; dropping the original keeps it alive.
        let clone = loaded.clone();
        drop(loaded);
        assert_same_graph(&g, &clone);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trips_the_empty_graph() {
        let g = DataGraph::from_edges(0, []);
        let path = temp_path("empty.sgr");
        write_sgr_file(&g, &path).unwrap();
        let loaded = load_sgr_file(&path).unwrap();
        assert_eq!(loaded.num_nodes(), 0);
        assert_eq!(loaded.num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_size_matches_the_layout_formula() {
        let g = generators::gnm(30, 80, 3);
        let mut buf = Vec::new();
        write_sgr(&g, &mut buf).unwrap();
        let n = g.num_nodes() as u64;
        let m = g.num_edges() as u64;
        assert_eq!(buf.len() as u64, 64 + (n + 1) * 8 + 2 * m * 4 + m * 8);
    }

    fn written_bytes(g: &DataGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_sgr(g, &mut buf).unwrap();
        buf
    }

    fn load_bytes(name: &str, bytes: &[u8]) -> Result<DataGraph, SgrError> {
        let path = temp_path(name);
        std::fs::write(&path, bytes).unwrap();
        let out = load_sgr_file(&path);
        std::fs::remove_file(&path).ok();
        out
    }

    #[test]
    fn truncated_files_are_rejected_with_both_sizes() {
        let bytes = written_bytes(&generators::gnm(20, 40, 1));
        for cut in [0, 7, 63, 64, bytes.len() - 1] {
            match load_bytes("trunc.sgr", &bytes[..cut]) {
                Err(SgrError::Truncated { expected, actual }) => {
                    assert_eq!(actual, cut as u64);
                    assert!(expected > actual);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = written_bytes(&generators::gnm(10, 20, 1));
        bytes[0] ^= 0xff;
        assert!(matches!(
            load_bytes("magic.sgr", &bytes),
            Err(SgrError::BadMagic)
        ));
        // A text edge list is not an .sgr file either.
        assert!(matches!(
            load_bytes(
                "text.sgr",
                b"# nodes=2 edges=1\n0 1\nmore text to pass the header length check........."
            ),
            Err(SgrError::BadMagic)
        ));
    }

    #[test]
    fn future_versions_are_rejected_by_number() {
        let mut bytes = written_bytes(&generators::gnm(10, 20, 1));
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        match load_bytes("version.sgr", &bytes) {
            Err(SgrError::BadVersion { found }) => assert_eq!(found, 2),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn byte_swapped_endianness_tag_is_rejected() {
        let mut bytes = written_bytes(&generators::gnm(10, 20, 1));
        let tag = u32::from_le_bytes(bytes[12..16].try_into().unwrap()).swap_bytes();
        bytes[12..16].copy_from_slice(&tag.to_le_bytes());
        assert!(matches!(
            load_bytes("endian.sgr", &bytes),
            Err(SgrError::BadEndianness)
        ));
    }

    #[test]
    fn nonzero_flags_and_trailing_bytes_are_corrupt() {
        let good = written_bytes(&generators::gnm(10, 20, 1));

        let mut flagged = good.clone();
        flagged[16] = 1;
        assert!(matches!(
            load_bytes("flags.sgr", &flagged),
            Err(SgrError::Corrupt(_))
        ));

        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            load_bytes("trailing.sgr", &trailing),
            Err(SgrError::Corrupt(_))
        ));
    }

    #[test]
    fn broken_csr_anchors_are_corrupt() {
        let mut bytes = written_bytes(&generators::gnm(10, 20, 1));
        // offsets[0] lives right after the header; make it non-zero.
        bytes[64] = 1;
        assert!(matches!(
            load_bytes("anchor.sgr", &bytes),
            Err(SgrError::Corrupt(_))
        ));
    }

    #[test]
    fn hostile_section_geometry_cannot_wrap_the_bounds_checks() {
        let mut bytes = written_bytes(&generators::gnm(10, 20, 1));
        // A node count chosen so (n + 1) * 8 overflows u64.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            load_bytes("overflow.sgr", &bytes),
            Err(SgrError::Corrupt(_))
        ));

        let mut misaligned = written_bytes(&generators::gnm(10, 20, 1));
        misaligned[40..48].copy_from_slice(&65u64.to_le_bytes());
        assert!(matches!(
            load_bytes("misaligned.sgr", &misaligned),
            Err(SgrError::Corrupt(_))
        ));
    }

    #[test]
    fn errors_name_the_file() {
        let err = load_sgr_file("/no/such/graph.sgr").unwrap_err();
        assert!(err.to_string().contains("/no/such/graph.sgr"));
    }

    #[test]
    fn sniffing_detects_sgr_and_text() {
        let g = generators::gnm(10, 20, 1);
        let sgr_path = temp_path("sniff.sgr");
        write_sgr_file(&g, &sgr_path).unwrap();
        assert!(sniff_sgr(&sgr_path).unwrap());

        let text_path = temp_path("sniff.txt");
        std::fs::write(&text_path, "0 1\n1 2\n").unwrap();
        assert!(!sniff_sgr(&text_path).unwrap());

        let short_path = temp_path("sniff.short");
        std::fs::write(&short_path, "ab").unwrap();
        assert!(!sniff_sgr(&short_path).unwrap());

        std::fs::remove_file(&sgr_path).ok();
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&short_path).ok();
    }

    #[test]
    fn forward_index_builds_on_a_loaded_graph() {
        let g = generators::power_law(80, 200, 2.5, 9);
        let path = temp_path("forward.sgr");
        write_sgr_file(&g, &path).unwrap();
        let loaded = load_sgr_file(&path).unwrap();
        let mut total = 0;
        for v in loaded.nodes() {
            total += loaded.forward().later(v).len();
        }
        assert_eq!(total, loaded.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
