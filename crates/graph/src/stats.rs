//! Graph statistics used for cost prediction and experiment reporting.

use crate::graph::DataGraph;

/// Summary statistics of a data graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of undirected edges `m`.
    pub num_edges: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Minimum degree over nodes (0 if there are isolated nodes).
    pub min_degree: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Number of nodes whose degree is at least `√m` ("high-degree" nodes in
    /// the sense of Lemma 7.1). The lemma shows there are at most `√m` such
    /// nodes.
    pub high_degree_nodes: usize,
}

/// Computes [`GraphStats`] for a graph.
pub fn stats(graph: &DataGraph) -> GraphStats {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let mut max_degree = 0usize;
    let mut min_degree = usize::MAX;
    let sqrt_m = (m as f64).sqrt();
    let mut high = 0usize;
    for v in graph.nodes() {
        let d = graph.degree(v);
        max_degree = max_degree.max(d);
        min_degree = min_degree.min(d);
        if d as f64 >= sqrt_m && m > 0 {
            high += 1;
        }
    }
    if n == 0 {
        min_degree = 0;
    }
    GraphStats {
        num_nodes: n,
        num_edges: m,
        max_degree,
        min_degree,
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        high_degree_nodes: high,
    }
}

/// Degree histogram: entry `i` is the number of nodes with degree `i`.
pub fn degree_histogram(graph: &DataGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_a_star() {
        let g = generators::star(6);
        let s = stats(&g);
        assert_eq!(s.num_nodes, 6);
        assert_eq!(s.num_edges, 5);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.min_degree, 1);
        assert!((s.avg_degree - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn high_degree_bound_of_lemma_7_1() {
        // Lemma 7.1: at most √m nodes have degree ≥ √m.
        for seed in 0..5 {
            let g = generators::gnm(100, 400, seed);
            let s = stats(&g);
            assert!(
                (s.high_degree_nodes as f64) <= (s.num_edges as f64).sqrt() + 1e-9,
                "too many high-degree nodes"
            );
        }
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::gnm(50, 120, 1);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 50);
        let sum_deg: usize = hist.iter().enumerate().map(|(d, c)| d * c).sum();
        assert_eq!(sum_deg, 240);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::graph::DataGraph::from_edges(0, []);
        let s = stats(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
