//! Graph statistics used for cost prediction and experiment reporting.

use crate::graph::DataGraph;

/// Summary statistics of a data graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of undirected edges `m`.
    pub num_edges: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Minimum degree over nodes (0 if there are isolated nodes).
    pub min_degree: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Number of nodes whose degree is at least `√m` ("high-degree" nodes in
    /// the sense of Lemma 7.1). The lemma shows there are at most `√m` such
    /// nodes.
    pub high_degree_nodes: usize,
}

impl GraphStats {
    /// A deterministic 64-bit fingerprint of the statistics, suitable as a
    /// component of a plan-cache key: two graphs with the same fingerprint
    /// look identical to the cost model (which consumes only these summary
    /// statistics), so a plan computed for one is valid for the other.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, x: u64) -> u64 {
            // SplitMix64 finalizer over a running FNV-style fold.
            let mut z = (h ^ x).wrapping_mul(0x100_0000_01b3);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = mix(h, self.num_nodes as u64);
        h = mix(h, self.num_edges as u64);
        h = mix(h, self.max_degree as u64);
        h = mix(h, self.min_degree as u64);
        h = mix(h, self.avg_degree.to_bits());
        h = mix(h, self.high_degree_nodes as u64);
        h
    }
}

/// Computes [`GraphStats`] for a graph.
pub fn stats(graph: &DataGraph) -> GraphStats {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let mut max_degree = 0usize;
    let mut min_degree = usize::MAX;
    let sqrt_m = (m as f64).sqrt();
    let mut high = 0usize;
    for v in graph.nodes() {
        let d = graph.degree(v);
        max_degree = max_degree.max(d);
        min_degree = min_degree.min(d);
        if d as f64 >= sqrt_m && m > 0 {
            high += 1;
        }
    }
    if n == 0 {
        min_degree = 0;
    }
    GraphStats {
        num_nodes: n,
        num_edges: m,
        max_degree,
        min_degree,
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        high_degree_nodes: high,
    }
}

/// Degree histogram: entry `i` is the number of nodes with degree `i`.
pub fn degree_histogram(graph: &DataGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_a_star() {
        let g = generators::star(6);
        let s = stats(&g);
        assert_eq!(s.num_nodes, 6);
        assert_eq!(s.num_edges, 5);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.min_degree, 1);
        assert!((s.avg_degree - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn high_degree_bound_of_lemma_7_1() {
        // Lemma 7.1: at most √m nodes have degree ≥ √m.
        for seed in 0..5 {
            let g = generators::gnm(100, 400, seed);
            let s = stats(&g);
            assert!(
                (s.high_degree_nodes as f64) <= (s.num_edges as f64).sqrt() + 1e-9,
                "too many high-degree nodes"
            );
        }
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::gnm(50, 120, 1);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 50);
        let sum_deg: usize = hist.iter().enumerate().map(|(d, c)| d * c).sum();
        assert_eq!(sum_deg, 240);
    }

    #[test]
    fn graph_products_are_send_and_sync() {
        // The serve graph store shares these across query threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataGraph>();
        assert_send_sync::<GraphStats>();
        assert_send_sync::<crate::ReadStats>();
        assert_send_sync::<crate::DegreeOrder>();
        assert_send_sync::<crate::DegeneracyOrder>();
        assert_send_sync::<crate::GraphSource>();
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_is_stable() {
        let a = stats(&generators::gnm(100, 400, 1));
        let b = stats(&generators::gnm(100, 401, 1));
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same statistics → same fingerprint, even from a different instance.
        let a2 = stats(&generators::gnm(100, 400, 1));
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::graph::DataGraph::from_edges(0, []);
        let s = stats(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
