//! Joins of binary relations of different sizes (Section 7.4).
//!
//! Section 7.4 analyses the 5-cycle join
//! `R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D) ⋈ R4(D,E) ⋈ R5(E,A)` when the five relations
//! have different sizes `n1..n5`:
//!
//! * **Case A** — if `n_i · n_{i−1} · n_{i+2} ≥ n_{i+1} · n_{i−2}` for every
//!   cyclic position (indices mod 5), the worst-case output (and the optimal
//!   running time) is `√(n1 n2 n3 n4 n5)`.
//! * **Case B** — otherwise, say `n1 n5 n3 ≤ n2 n4`, the bound is `n1 n5 n3`,
//!   achieved by joining `R1 ⋈ R5` first and extending with every tuple of
//!   `R3`, verifying `R2` and `R4` by lookup.
//!
//! This module provides the bound computations, worst-case instance
//! generators following the paper's lower-bound constructions, and a
//! case-B-style evaluator whose work matches the bound.

use std::collections::HashSet;

/// A binary relation over `u32` values.
pub type Relation = Vec<(u32, u32)>;

/// Which case of Section 7.4 applies to the given relation sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeCase {
    /// All cyclic conditions hold; the bound is `√(Π n_i)`.
    CaseA,
    /// Some condition fails; the bound is the minimum violated product.
    CaseB,
}

/// The five relation sizes of the cycle join, in cyclic order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleJoinSizes {
    /// Sizes `n1..n5`.
    pub sizes: [f64; 5],
}

impl CycleJoinSizes {
    /// Creates the size vector.
    pub fn new(sizes: [f64; 5]) -> Self {
        assert!(
            sizes.iter().all(|&s| s >= 1.0),
            "relation sizes must be ≥ 1"
        );
        CycleJoinSizes { sizes }
    }

    /// The "case A" condition at position `i` (0-based): the product of the
    /// two relations containing attribute `A_i` and the opposite relation must
    /// be at least the product of the other two.
    fn condition_holds(&self, i: usize) -> bool {
        let n = &self.sizes;
        let idx = |j: isize| -> f64 { n[(j.rem_euclid(5)) as usize] };
        // Attribute shared by relations i and i−1; the relation "opposite" it
        // is i+2; the other two are i+1 and i−2.
        idx(i as isize) * idx(i as isize - 1) * idx(i as isize + 2)
            >= idx(i as isize + 1) * idx(i as isize - 2)
    }

    /// Which case applies.
    pub fn case(&self) -> SizeCase {
        if (0..5).all(|i| self.condition_holds(i)) {
            SizeCase::CaseA
        } else {
            SizeCase::CaseB
        }
    }

    /// The Section 7.4 bound on the join output size / optimal running time.
    pub fn bound(&self) -> f64 {
        match self.case() {
            SizeCase::CaseA => self.sizes.iter().product::<f64>().sqrt(),
            SizeCase::CaseB => (0..5)
                .filter(|&i| !self.condition_holds(i))
                .map(|i| {
                    let idx = |j: isize| -> f64 { self.sizes[(j.rem_euclid(5)) as usize] };
                    idx(i as isize) * idx(i as isize - 1) * idx(i as isize + 2)
                })
                .fold(f64::INFINITY, f64::min),
        }
    }
}

/// Builds the paper's case-B worst-case instance for sizes where one value of
/// the shared attribute `A` appears in every tuple of `R1` and `R5` (the
/// "star" construction in the lower-bound argument).
pub fn case_b_worst_instance(n1: usize, n3: usize, n5: usize) -> [Relation; 5] {
    // Attributes: A shared by R1(A,B), R5(E,A); we pin A = 0.
    // R1: (A=0, B=i) for i < n1;  R5: (E=j, A=0) for j < n5;
    // R3: (C=c, D=d) over a (roughly square) grid of n3 tuples;
    // R2: (B, C) complete over the values used (so it never rejects);
    // R4: (D, E) complete over the values used.
    let r1: Relation = (0..n1 as u32).map(|b| (0, b)).collect();
    let r5: Relation = (0..n5 as u32).map(|e| (e, 0)).collect();
    let side = (n3 as f64).sqrt().ceil() as u32;
    let r3: Relation = (0..n3 as u32).map(|i| (i / side, i % side)).collect();
    let r2: Relation = (0..n1 as u32)
        .flat_map(|b| (0..side).map(move |c| (b, c)))
        .collect();
    let r4: Relation = (0..side)
        .flat_map(|d| (0..n5 as u32).map(move |e| (d, e)))
        .collect();
    [r1, r2, r3, r4, r5]
}

/// Case-B evaluation strategy: join `R1 ⋈ R5` on `A`, cross with every tuple
/// of `R3`, and verify `R2(B,C)` and `R4(D,E)` by hash lookup. Returns the
/// number of join results and the work performed (candidate combinations
/// examined) — the work is `O(|R1 ⋈ R5| · n3)`, which is at most `n1 n5 n3`.
pub fn evaluate_case_b(relations: &[Relation; 5]) -> (u64, u64) {
    let [r1, r2, r3, r4, r5] = relations;
    let r2_index: HashSet<(u32, u32)> = r2.iter().copied().collect();
    let r4_index: HashSet<(u32, u32)> = r4.iter().copied().collect();
    // Join R1(A,B) with R5(E,A) on A.
    let mut by_a: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for &(a, b) in r1 {
        by_a.entry(a).or_default().push(b);
    }
    let mut results = 0u64;
    let mut work = 0u64;
    for &(e, a) in r5 {
        let bs = match by_a.get(&a) {
            Some(bs) => bs,
            None => continue,
        };
        for &b in bs {
            for &(c, d) in r3 {
                work += 1;
                if r2_index.contains(&(b, c)) && r4_index.contains(&(d, e)) {
                    results += 1;
                }
            }
        }
    }
    (results, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_sizes_fall_into_case_a() {
        let sizes = CycleJoinSizes::new([100.0; 5]);
        assert_eq!(sizes.case(), SizeCase::CaseA);
        assert!((sizes.bound() - 100.0f64.powf(2.5)).abs() < 1e-6);
    }

    #[test]
    fn paper_example_sizes_fall_into_case_b() {
        // n1 = 1, n2 = n, n3 = 1, n4 = n, n5 = 1 ⇒ bound n (end of Section 7.4).
        let n = 1000.0;
        let sizes = CycleJoinSizes::new([1.0, n, 1.0, n, 1.0]);
        assert_eq!(sizes.case(), SizeCase::CaseB);
        assert!((sizes.bound() - 1.0).abs() < 1e-9 || sizes.bound() <= n);
        // The binding product is n1·n5·n3 = 1, far below √(Π) = n.
        assert!(sizes.bound() < sizes.sizes.iter().product::<f64>().sqrt());
    }

    #[test]
    fn case_b_bound_is_the_violated_product() {
        // n1 n5 n3 = 8 < n2 n4 = 10_000.
        let sizes = CycleJoinSizes::new([2.0, 100.0, 2.0, 100.0, 2.0]);
        assert_eq!(sizes.case(), SizeCase::CaseB);
        assert!((sizes.bound() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn worst_instance_output_is_near_the_bound_and_work_matches() {
        let (n1, n3, n5) = (20usize, 25usize, 20usize);
        let relations = case_b_worst_instance(n1, n3, n5);
        let (results, work) = evaluate_case_b(&relations);
        let bound = (n1 * n3 * n5) as u64;
        assert!(
            results as f64 >= bound as f64 * 0.8,
            "results {results} vs bound {bound}"
        );
        assert!(results <= bound.max(work));
        // Work equals |R1 ⋈ R5| · n3 = n1 · n5 · n3 here (one A value).
        assert_eq!(work, bound);
    }

    #[test]
    fn evaluator_counts_simple_cycles_correctly() {
        // A single 5-cycle across the relations.
        let relations: [Relation; 5] = [
            vec![(0, 1)], // R1(A,B)
            vec![(1, 2)], // R2(B,C)
            vec![(2, 3)], // R3(C,D)
            vec![(3, 4)], // R4(D,E)
            vec![(4, 0)], // R5(E,A)
        ];
        let (results, _) = evaluate_case_b(&relations);
        assert_eq!(results, 1);
        // Break one edge and nothing matches.
        let mut broken = relations.clone();
        broken[1] = vec![(9, 9)];
        assert_eq!(evaluate_case_b(&broken).0, 0);
    }

    #[test]
    #[should_panic]
    fn sizes_below_one_rejected() {
        let _ = CycleJoinSizes::new([0.5, 1.0, 1.0, 1.0, 1.0]);
    }
}
