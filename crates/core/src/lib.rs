//! The paper's core algorithms: single-round map-reduce subgraph enumeration
//! with optimized communication cost, and convertible serial algorithms with
//! worst-case-optimal computation cost.
//!
//! The crate is organised along the paper's two halves:
//!
//! * **Communication cost (Sections 2–5).** [`triangles`] holds the three
//!   single-round triangle algorithms compared in Figures 1–2 (Partition,
//!   plain multiway join, bucket-ordered multiway join); [`enumerate`] holds
//!   the three processing strategies for arbitrary sample graphs (CQ-oriented,
//!   variable-oriented, bucket-oriented) built on the conjunctive-query
//!   machinery of `subgraph-cq`, the share optimizer of `subgraph-shares` and
//!   the instrumented engine of `subgraph-mapreduce`.
//! * **Computation cost (Sections 6–7).** [`serial`] holds the serial
//!   algorithms the reducers run: the `O(m^{3/2})` triangle/2-path algorithms,
//!   Algorithm 1 (`OddCycle`), the decomposition join of Lemma 6.1 /
//!   Theorem 7.2, the bounded-degree algorithm of Theorem 7.3, and a generic
//!   backtracking matcher used as the correctness oracle. [`convertible`]
//!   captures the convertibility criterion of Theorem 6.1, and
//!   [`relation_join`] the unequal-relation-size analysis of Section 7.4.
//!
//! The public entry point is the cost-driven planning layer in [`plan`]:
//! an [`EnumerationRequest`] feeds the [`Planner`], which scores every
//! applicable strategy on predicted communication and computation cost and
//! returns an inspectable, executable [`ExecutionPlan`]. Results leave every
//! algorithm through a streaming [`sink::InstanceSink`]
//! ([`ExecutionPlan::run_with_sink`], [`ExecutionPlan::count`]); the
//! `Vec`-returning entry points are thin [`sink::CollectSink`] wrappers. The
//! pre-planner per-algorithm free functions have been removed.

pub mod convertible;
pub mod enumerate;
pub mod plan;
pub mod relation_join;
pub mod result;
pub mod serial;
pub mod sink;
mod stream;
pub mod triangles;

pub use convertible::{is_convertible, predicted_parallel_work, ConvertibilityReport};
pub use plan::{
    CostEstimate, EnumerationRequest, ExecutionPlan, PlanError, Planner, RunReport, Strategy,
    StrategyKind,
};
pub use result::{MapReduceRun, RunStats, SerialRun, SerialStats};
pub use sink::{
    CollectSink, CountSink, CsvSink, EdgeListSink, FnSink, InstanceSink, NdjsonSink, OutputSink,
    SampleSink, SerializeSink,
};
