//! The bounded-degree algorithm of Theorem 7.3: `O(m · Δ^{p−2})` enumeration
//! of any connected sample graph when the data graph's maximum degree is Δ.
//!
//! The proof is by induction on `p`: remove a non-articulation node `u` of the
//! sample graph, enumerate the remaining (still connected) pattern
//! recursively, and extend each of its instances by trying the ≤ Δ neighbours
//! of the image of one of `u`'s pattern neighbours. This implementation
//! follows the induction directly; de-duplication of the emitted instances
//! uses a hash set over canonical instances (the paper's lexicographic-first
//! emission rule has the same effect — see the note in
//! [`crate::serial::decompose`]).

use crate::result::{SerialRun, SerialStats};
use crate::sink::{CollectSink, InstanceSink};
use std::collections::HashSet;
use subgraph_graph::{DataGraph, NodeId};
use subgraph_pattern::{Instance, PatternNode, SampleGraph};

/// Enumerates every instance of the connected sample graph `sample` in
/// `graph`, with work `O(m · Δ^{p−2})`, collecting the instances.
///
/// # Panics
/// Panics if the sample graph is not connected or has fewer than 2 nodes
/// (Theorem 7.3 assumes a connected pattern with `p ≥ 2`).
pub fn enumerate_bounded_degree(sample: &SampleGraph, graph: &DataGraph) -> SerialRun {
    let mut collected = CollectSink::new();
    let stats = enumerate_bounded_degree_into(sample, graph, &mut collected);
    SerialRun::new(collected.into_items(), stats.work)
}

/// Streaming variant of [`enumerate_bounded_degree`]: instances go to `sink`
/// after canonicalization. (The induction's layered partial-assignment lists
/// and the automorphism de-duplicator remain internal working state.)
///
/// # Panics
/// Panics under the same conditions as [`enumerate_bounded_degree`].
pub fn enumerate_bounded_degree_into(
    sample: &SampleGraph,
    graph: &DataGraph,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    assert!(
        sample.num_nodes() >= 2,
        "Theorem 7.3 applies to patterns with at least two nodes"
    );
    assert!(
        sample.is_connected(),
        "Theorem 7.3 applies to connected patterns"
    );

    // Build the removal order: repeatedly strip a non-articulation node,
    // keeping the remainder connected, until two nodes remain.
    let mut remaining: Vec<PatternNode> = sample.nodes().collect();
    let mut removal_order: Vec<PatternNode> = Vec::new();
    while remaining.len() > 2 {
        let candidate = remaining
            .iter()
            .copied()
            .find(|&u| {
                let rest: Vec<PatternNode> =
                    remaining.iter().copied().filter(|&v| v != u).collect();
                let (induced, _) = sample.induced_subgraph(&rest);
                induced.is_connected()
            })
            .expect("a connected graph always has a non-articulation node");
        removal_order.push(candidate);
        remaining.retain(|&v| v != candidate);
    }

    let mut work = 0u64;

    // Base case: the two remaining nodes are joined by an edge (connectivity);
    // enumerate every data edge in both roles.
    let (base_a, base_b) = (remaining[0], remaining[1]);
    debug_assert!(sample.has_edge(base_a, base_b));
    let p = sample.num_nodes();
    let mut partial_assignments: Vec<Vec<Option<NodeId>>> = Vec::new();
    for e in graph.edges() {
        for (x, y) in [(e.lo(), e.hi()), (e.hi(), e.lo())] {
            let mut assignment = vec![None; p];
            assignment[base_a as usize] = Some(x);
            assignment[base_b as usize] = Some(y);
            partial_assignments.push(assignment);
            work += 1;
        }
    }

    // Add the removed nodes back in reverse order, extending every partial
    // assignment through a neighbour of an already-placed pattern neighbour.
    let mut placed: Vec<PatternNode> = vec![base_a, base_b];
    for &u in removal_order.iter().rev() {
        let anchor = placed
            .iter()
            .copied()
            .find(|&v| sample.has_edge(u, v))
            .expect("the pattern is connected");
        let mut extended = Vec::new();
        for assignment in &partial_assignments {
            let anchor_image = assignment[anchor as usize].expect("anchor already placed");
            for &candidate in graph.neighbors(anchor_image) {
                work += 1;
                // Injectivity.
                if assignment.contains(&Some(candidate)) {
                    continue;
                }
                // Every pattern edge from u to an already-placed node must exist.
                let ok = placed.iter().all(|&v| {
                    !sample.has_edge(u, v)
                        || graph.has_edge(assignment[v as usize].unwrap(), candidate)
                });
                if ok {
                    let mut next = assignment.clone();
                    next[u as usize] = Some(candidate);
                    extended.push(next);
                }
            }
        }
        partial_assignments = extended;
        placed.push(u);
    }

    // Canonicalize and de-duplicate (several assignments related by pattern
    // automorphisms map to the same instance).
    let mut seen: HashSet<Instance> = HashSet::new();
    let mut outputs = 0usize;
    for assignment in partial_assignments {
        let bound: Vec<NodeId> = assignment.into_iter().map(|a| a.unwrap()).collect();
        let instance = Instance::from_assignment(sample, &bound);
        if seen.insert(instance.clone()) {
            outputs += 1;
            sink.accept(instance);
        }
    }
    SerialStats { outputs, work }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    fn agree(sample: &SampleGraph, graph: &DataGraph) {
        let bounded = enumerate_bounded_degree(sample, graph);
        let oracle = enumerate_generic(sample, graph);
        assert_eq!(bounded.count(), oracle.count());
        assert_eq!(bounded.duplicates(), 0);
        let mut a = bounded.instances().to_vec();
        let mut b = oracle.instances().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn triangles_squares_lollipops_on_degree_capped_graphs() {
        let g = generators::bounded_degree(60, 150, 6, 1);
        agree(&catalog::triangle(), &g);
        agree(&catalog::square(), &g);
        agree(&catalog::lollipop(), &g);
    }

    #[test]
    fn stars_on_a_regular_tree() {
        // The Θ(mΔ^{p−2}) worst case from the end of Section 7.3.
        let tree = generators::regular_tree(4, 3);
        agree(&catalog::star(4), &tree);
        agree(&catalog::path(4), &tree);
    }

    #[test]
    fn cycles_on_random_graphs() {
        let g = generators::gnm(20, 60, 9);
        agree(&catalog::cycle(5), &g);
        agree(&catalog::cycle(4), &g);
    }

    #[test]
    fn work_scales_with_m_delta_to_p_minus_2() {
        // On a Δ-regular tree, counting p-stars takes Θ(m·Δ^{p−2}) work; check
        // the measured work stays within a constant factor of the bound.
        let delta = 5usize;
        let tree = generators::regular_tree(delta, 4);
        let m = tree.num_edges() as f64;
        let run = enumerate_bounded_degree(&catalog::star(4), &tree);
        let bound = m * (delta as f64).powi(2);
        assert!(
            run.work as f64 <= 8.0 * bound,
            "work {} vs bound {bound}",
            run.work
        );
        assert!(run.work as f64 >= bound / 8.0);
    }

    #[test]
    #[should_panic]
    fn disconnected_patterns_are_rejected() {
        let pattern = SampleGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = enumerate_bounded_degree(&pattern, &generators::complete(5));
    }

    #[test]
    #[should_panic]
    fn single_node_pattern_is_rejected() {
        let pattern = SampleGraph::empty(1);
        let _ = enumerate_bounded_degree(&pattern, &generators::complete(4));
    }
}
