//! The bounded-degree algorithm of Theorem 7.3: `O(m · Δ^{p−2})` enumeration
//! of any connected sample graph when the data graph's maximum degree is Δ.
//!
//! The proof is by induction on `p`: remove a non-articulation node `u` of the
//! sample graph, enumerate the remaining (still connected) pattern
//! recursively, and extend each of its instances by trying the ≤ Δ neighbours
//! of the image of one of `u`'s pattern neighbours. This implementation
//! follows the induction directly; de-duplication of the emitted instances
//! uses a hash set over canonical instances (the paper's lexicographic-first
//! emission rule has the same effect — see the note in
//! [`crate::serial::decompose`]).

use crate::result::{SerialRun, SerialStats};
use crate::sink::{CollectSink, InstanceSink};
use std::collections::HashSet;
use subgraph_graph::{DataGraph, NodeId};
use subgraph_pattern::{Instance, PatternNode, SampleGraph};

/// Enumerates every instance of the connected sample graph `sample` in
/// `graph`, with work `O(m · Δ^{p−2})`, collecting the instances.
///
/// # Panics
/// Panics if the sample graph is not connected or has fewer than 2 nodes
/// (Theorem 7.3 assumes a connected pattern with `p ≥ 2`).
pub fn enumerate_bounded_degree(sample: &SampleGraph, graph: &DataGraph) -> SerialRun {
    let mut collected = CollectSink::new();
    let stats = enumerate_bounded_degree_into(sample, graph, &mut collected);
    SerialRun::new(collected.into_items(), stats.work)
}

/// Streaming variant of [`enumerate_bounded_degree`]: instances go to `sink`
/// after canonicalization. (The induction is explored depth-first over a
/// single reusable assignment — one partial assignment exists at any time —
/// and the automorphism de-duplicator remains internal working state.)
///
/// # Panics
/// Panics under the same conditions as [`enumerate_bounded_degree`].
pub fn enumerate_bounded_degree_into(
    sample: &SampleGraph,
    graph: &DataGraph,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    assert!(
        sample.num_nodes() >= 2,
        "Theorem 7.3 applies to patterns with at least two nodes"
    );
    assert!(
        sample.is_connected(),
        "Theorem 7.3 applies to connected patterns"
    );

    // Build the removal order: repeatedly strip a non-articulation node,
    // keeping the remainder connected, until two nodes remain.
    let mut remaining: Vec<PatternNode> = sample.nodes().collect();
    let mut removal_order: Vec<PatternNode> = Vec::new();
    while remaining.len() > 2 {
        let candidate = remaining
            .iter()
            .copied()
            .find(|&u| {
                let rest: Vec<PatternNode> =
                    remaining.iter().copied().filter(|&v| v != u).collect();
                let (induced, _) = sample.induced_subgraph(&rest);
                induced.is_connected()
            })
            .expect("a connected graph always has a non-articulation node");
        removal_order.push(candidate);
        remaining.retain(|&v| v != candidate);
    }

    // Base case: the two remaining nodes are joined by an edge (connectivity).
    let (base_a, base_b) = (remaining[0], remaining[1]);
    debug_assert!(sample.has_edge(base_a, base_b));

    // Plan the reinsertion once: the removed nodes come back in reverse order;
    // each is bound through the neighbours of an already-placed pattern
    // neighbour (the anchor), and its remaining pattern edges into the placed
    // prefix are checked against the data graph. The anchor's own edge needs
    // no check — every candidate is one of its image's neighbours.
    let add_order: Vec<PatternNode> = removal_order.iter().rev().copied().collect();
    let mut placed: Vec<PatternNode> = vec![base_a, base_b];
    let mut anchors: Vec<PatternNode> = Vec::with_capacity(add_order.len());
    let mut edge_checks: Vec<Vec<PatternNode>> = Vec::with_capacity(add_order.len());
    for &u in &add_order {
        let anchor = placed
            .iter()
            .copied()
            .find(|&v| sample.has_edge(u, v))
            .expect("the pattern is connected");
        anchors.push(anchor);
        edge_checks.push(
            placed
                .iter()
                .copied()
                .filter(|&v| v != anchor && sample.has_edge(u, v))
                .collect(),
        );
        placed.push(u);
    }

    let mut search = Search {
        sample,
        graph,
        add_order: &add_order,
        anchors: &anchors,
        edge_checks: &edge_checks,
        assignment: vec![None; sample.num_nodes()],
        seen: HashSet::new(),
        sink,
        stats: SerialStats::default(),
    };
    // Every data edge plays the base edge in both roles.
    for e in graph.edges() {
        for (x, y) in [(e.lo(), e.hi()), (e.hi(), e.lo())] {
            search.stats.work += 1;
            search.assignment[base_a as usize] = Some(x);
            search.assignment[base_b as usize] = Some(y);
            search.extend(0);
        }
    }
    search.stats
}

/// The depth-first extension state: one partial assignment, reused in place.
struct Search<'a> {
    sample: &'a SampleGraph,
    graph: &'a DataGraph,
    add_order: &'a [PatternNode],
    anchors: &'a [PatternNode],
    edge_checks: &'a [Vec<PatternNode>],
    assignment: Vec<Option<NodeId>>,
    seen: HashSet<Instance>,
    sink: &'a mut dyn InstanceSink,
    stats: SerialStats,
}

impl Search<'_> {
    fn extend(&mut self, depth: usize) {
        if depth == self.add_order.len() {
            // Canonicalize and de-duplicate (several assignments related by
            // pattern automorphisms map to the same instance).
            let bound: Vec<NodeId> = self.assignment.iter().map(|a| a.unwrap()).collect();
            let instance = Instance::from_assignment(self.sample, &bound);
            if self.seen.insert(instance.clone()) {
                self.stats.outputs += 1;
                self.sink.accept(instance);
            }
            return;
        }
        let graph = self.graph;
        let u = self.add_order[depth];
        let anchor_image =
            self.assignment[self.anchors[depth] as usize].expect("anchor already placed");
        for &candidate in graph.neighbors(anchor_image) {
            self.stats.work += 1;
            // Injectivity.
            if self.assignment.contains(&Some(candidate)) {
                continue;
            }
            // Every pattern edge from u into the placed prefix must exist.
            let ok = self.edge_checks[depth]
                .iter()
                .all(|&v| graph.has_edge(self.assignment[v as usize].unwrap(), candidate));
            if ok {
                self.assignment[u as usize] = Some(candidate);
                self.extend(depth + 1);
                self.assignment[u as usize] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    fn agree(sample: &SampleGraph, graph: &DataGraph) {
        let bounded = enumerate_bounded_degree(sample, graph);
        let oracle = enumerate_generic(sample, graph);
        assert_eq!(bounded.count(), oracle.count());
        assert_eq!(bounded.duplicates(), 0);
        let mut a = bounded.instances().to_vec();
        let mut b = oracle.instances().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn triangles_squares_lollipops_on_degree_capped_graphs() {
        let g = generators::bounded_degree(60, 150, 6, 1);
        agree(&catalog::triangle(), &g);
        agree(&catalog::square(), &g);
        agree(&catalog::lollipop(), &g);
    }

    #[test]
    fn stars_on_a_regular_tree() {
        // The Θ(mΔ^{p−2}) worst case from the end of Section 7.3.
        let tree = generators::regular_tree(4, 3);
        agree(&catalog::star(4), &tree);
        agree(&catalog::path(4), &tree);
    }

    #[test]
    fn cycles_on_random_graphs() {
        let g = generators::gnm(20, 60, 9);
        agree(&catalog::cycle(5), &g);
        agree(&catalog::cycle(4), &g);
    }

    #[test]
    fn work_scales_with_m_delta_to_p_minus_2() {
        // On a Δ-regular tree, counting p-stars takes Θ(m·Δ^{p−2}) work; check
        // the measured work stays within a constant factor of the bound.
        let delta = 5usize;
        let tree = generators::regular_tree(delta, 4);
        let m = tree.num_edges() as f64;
        let run = enumerate_bounded_degree(&catalog::star(4), &tree);
        let bound = m * (delta as f64).powi(2);
        assert!(
            run.work as f64 <= 8.0 * bound,
            "work {} vs bound {bound}",
            run.work
        );
        assert!(run.work as f64 >= bound / 8.0);
    }

    #[test]
    #[should_panic]
    fn disconnected_patterns_are_rejected() {
        let pattern = SampleGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = enumerate_bounded_degree(&pattern, &generators::complete(5));
    }

    #[test]
    #[should_panic]
    fn single_node_pattern_is_rejected() {
        let pattern = SampleGraph::empty(1);
        let _ = enumerate_bounded_degree(&pattern, &generators::complete(4));
    }
}
