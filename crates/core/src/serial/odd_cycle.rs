//! Algorithm 1 (`OddCycle`): enumerating cycles of odd length `2k + 1`
//! (Section 7.1, Theorem 7.1).
//!
//! Every odd cycle decomposes uniquely into a properly ordered 2-path at its
//! order-minimal node plus `k − 1` node-disjoint edges covering the remaining
//! nodes. The algorithm enumerates the `O(m^{3/2})` properly ordered 2-paths
//! and the `O(m^{k−1})` candidate edge sets, reassembles candidate cycles by
//! trying every permutation and orientation of the chosen edges, and verifies
//! the connecting edges with the O(1) edge index — a `(0, (2k+1)/2)`-algorithm.

use crate::result::{SerialRun, SerialStats};
use crate::serial::two_paths::properly_ordered_two_paths_with_order;
use crate::sink::{CollectSink, InstanceSink};
use subgraph_graph::{DataGraph, DegreeOrder, Edge, NodeId, NodeOrder};
use subgraph_pattern::Instance;

/// Enumerates every cycle of length `2k + 1` in `graph` exactly once,
/// collecting the cycles (thin wrapper over [`enumerate_odd_cycles_into`]).
///
/// `k = 1` finds triangles; the interesting cases are `k ≥ 2`. The running
/// time follows the paper's analysis (`O(m^{3/2} · m^{k−1})` candidate work),
/// so this is intended for the modest graph sizes the reducers see, not for
/// whole web-scale graphs.
pub fn enumerate_odd_cycles(graph: &DataGraph, k: usize) -> SerialRun {
    let mut collected = CollectSink::new();
    let stats = enumerate_odd_cycles_into(graph, k, &mut collected);
    SerialRun::new(collected.into_items(), stats.work)
}

/// Streaming variant: each odd cycle goes to `sink` as it is assembled — the
/// algorithm is exactly-once by construction (Theorem 7.1), so nothing is
/// ever stored.
pub fn enumerate_odd_cycles_into(
    graph: &DataGraph,
    k: usize,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    assert!(k >= 1, "cycle length 2k+1 needs k ≥ 1");
    let order = DegreeOrder::new(graph);
    let mut stats = SerialStats::default();

    let two_paths = properly_ordered_two_paths_with_order(graph, &order);
    let edges: Vec<Edge> = graph.edges().to_vec();

    for path in &two_paths {
        // Orient the 2-path: v1 is the midpoint; v2 precedes v_{2k+1} in <.
        let v1 = path.midpoint;
        let (v2, v_last) = order.orient(path.first, path.second);
        let forbidden = [v1, v2, v_last];
        let mut chosen: Vec<Edge> = Vec::with_capacity(k - 1);
        choose_edge_sets(
            graph,
            &order,
            &edges,
            0,
            k - 1,
            v1,
            &forbidden,
            &mut chosen,
            &mut |set| {
                assemble_cycles(graph, v1, v2, v_last, set, sink, &mut stats);
            },
        );
    }
    stats
}

/// Recursively chooses `remaining` node-disjoint edges (by increasing position
/// in the edge list so each set is produced once), skipping edges that touch a
/// forbidden node, already-chosen node, or a node preceding `v1` in the order.
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn choose_edge_sets<O: NodeOrder>(
    graph: &DataGraph,
    order: &O,
    edges: &[Edge],
    start: usize,
    remaining: usize,
    v1: NodeId,
    forbidden: &[NodeId],
    chosen: &mut Vec<Edge>,
    visit: &mut dyn FnMut(&[Edge]),
) {
    if remaining == 0 {
        visit(chosen);
        return;
    }
    for idx in start..edges.len() {
        let e = edges[idx];
        let (a, b) = e.endpoints();
        if forbidden.contains(&a) || forbidden.contains(&b) {
            continue;
        }
        if chosen.iter().any(|c| c.is_incident(a) || c.is_incident(b)) {
            continue;
        }
        // v1 must precede every node of the chosen edges (it is the minimal
        // node of the cycle being assembled).
        if !order.precedes(v1, a) || !order.precedes(v1, b) {
            continue;
        }
        chosen.push(e);
        choose_edge_sets(
            graph,
            order,
            edges,
            idx + 1,
            remaining - 1,
            v1,
            forbidden,
            chosen,
            visit,
        );
        chosen.pop();
    }
}

/// Tries every permutation and orientation of the chosen edges between `v2`
/// and `v_last`, emitting a cycle whenever all connecting edges exist.
fn assemble_cycles(
    graph: &DataGraph,
    v1: NodeId,
    v2: NodeId,
    v_last: NodeId,
    set: &[Edge],
    sink: &mut dyn InstanceSink,
    stats: &mut SerialStats,
) {
    let k_minus_1 = set.len();
    let mut permutation: Vec<usize> = (0..k_minus_1).collect();
    permute(&mut permutation, 0, &mut |perm| {
        // Each chosen edge can be traversed in either direction.
        for orientation in 0u32..(1 << k_minus_1) {
            stats.work += 1;
            let mut sequence: Vec<NodeId> = Vec::with_capacity(2 * k_minus_1 + 3);
            sequence.push(v1);
            sequence.push(v2);
            for (slot, &edge_idx) in perm.iter().enumerate() {
                let (a, b) = set[edge_idx].endpoints();
                if orientation & (1 << slot) == 0 {
                    sequence.push(a);
                    sequence.push(b);
                } else {
                    sequence.push(b);
                    sequence.push(a);
                }
            }
            sequence.push(v_last);
            // Verify the connecting edges; the pair-internal edges and
            // (v1, v2), (v1, v_last) exist by construction.
            if connecting_edges_exist(graph, &sequence) {
                let cycle_edges =
                    (0..sequence.len()).map(|i| (sequence[i], sequence[(i + 1) % sequence.len()]));
                stats.outputs += 1;
                sink.accept(Instance::from_edge_set(cycle_edges));
            }
        }
    });
}

/// The sequence is `v1, v2, a1, b1, a2, b2, …, v_last`; edges (v1,v2),
/// (ai,bi) and (v_last,v1) exist by construction. The edges that must be
/// verified are (v2,a1), (b1,a2), (b2,a3), …, (b_{k−1}, v_last).
fn connecting_edges_exist(graph: &DataGraph, sequence: &[NodeId]) -> bool {
    let n = sequence.len();
    let mut i = 1; // position of v2
    while i + 1 < n {
        let from = sequence[i];
        let to = sequence[i + 1];
        if !graph.has_edge(from, to) {
            return false;
        }
        i += 2;
    }
    true
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut dyn FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    #[test]
    fn triangles_via_k_equals_one() {
        let g = generators::complete(7);
        let run = enumerate_odd_cycles(&g, 1);
        assert_eq!(run.count(), 35);
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn pentagons_in_complete_graph() {
        // C(7,5) · 5!/10 = 21 · 12 = 252 pentagons in K7.
        let g = generators::complete(7);
        let run = enumerate_odd_cycles(&g, 2);
        assert_eq!(run.count(), 252);
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn pentagon_graph_contains_exactly_one_pentagon() {
        let g = generators::cycle(5);
        let run = enumerate_odd_cycles(&g, 2);
        assert_eq!(run.count(), 1);
        // And no heptagons.
        assert_eq!(enumerate_odd_cycles(&g, 3).count(), 0);
    }

    #[test]
    fn matches_generic_oracle_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::gnm(14, 40, seed);
            let fast = enumerate_odd_cycles(&g, 2);
            let oracle = enumerate_generic(&catalog::cycle(5), &g);
            assert_eq!(fast.count(), oracle.count(), "seed {seed}");
            assert_eq!(fast.duplicates(), 0, "seed {seed}");
            let mut a = fast.instances().to_vec();
            let mut b = oracle.instances().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn heptagons_match_oracle_on_a_small_graph() {
        let g = generators::gnm(10, 22, 5);
        let fast = enumerate_odd_cycles(&g, 3);
        let oracle = enumerate_generic(&catalog::cycle(7), &g);
        assert_eq!(fast.count(), oracle.count());
        assert_eq!(fast.duplicates(), 0);
    }

    #[test]
    fn bipartite_graphs_have_no_odd_cycles() {
        let g = generators::complete_bipartite(5, 5);
        assert_eq!(enumerate_odd_cycles(&g, 1).count(), 0);
        assert_eq!(enumerate_odd_cycles(&g, 2).count(), 0);
    }

    #[test]
    #[should_panic]
    fn k_zero_is_rejected() {
        let _ = enumerate_odd_cycles(&generators::complete(4), 0);
    }
}
