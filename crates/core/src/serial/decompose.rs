//! Decomposition-based enumeration (Lemma 6.1, Theorem 7.2).
//!
//! The sample graph is partitioned into node-disjoint pieces — isolated nodes,
//! single edges, and subgraphs with an odd Hamilton cycle — by
//! [`subgraph_pattern::decompose`]. Instances of each piece are enumerated
//! independently (all nodes / all edges in both roles / odd cycles filtered to
//! the piece's extra edges), and the pieces are joined: a combination is kept
//! if the images are node-disjoint and every sample edge crossing between
//! pieces is present in the data graph.
//!
//! The paper de-duplicates by emitting an instance only for the
//! lexicographically first way it can be assembled (proof of Lemma 6.1); this
//! implementation de-duplicates with a hash set over canonical instances,
//! which has the same effect on the output (each instance exactly once) and
//! the same asymptotic work, at the price of memory proportional to the number
//! of instances. The candidate-combination count — the quantity the
//! `O(n^q m^{(p−q)/2})` bound speaks about — is reported as `work`.

use crate::result::{SerialRun, SerialStats};
use crate::serial::odd_cycle::enumerate_odd_cycles;
use crate::sink::{CollectSink, InstanceSink};
use std::collections::HashSet;
use subgraph_graph::{DataGraph, NodeId};
use subgraph_pattern::decompose::{decompose, Decomposition, Piece};
use subgraph_pattern::{Instance, PatternNode, SampleGraph};

/// Enumerates every instance of `sample` in `graph` exactly once by the
/// decomposition join of Theorem 7.2, collecting the instances.
pub fn enumerate_by_decomposition(sample: &SampleGraph, graph: &DataGraph) -> SerialRun {
    let decomposition = decompose(sample);
    enumerate_with_decomposition(sample, graph, &decomposition)
}

/// Streaming variant of [`enumerate_by_decomposition`]: instances go to
/// `sink` as the join discovers them. (The join still keeps its `HashSet`
/// de-duplicator — see the module docs — and the per-piece instance lists;
/// those are working state of the algorithm, not result storage.)
pub fn enumerate_by_decomposition_into(
    sample: &SampleGraph,
    graph: &DataGraph,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    let decomposition = decompose(sample);
    enumerate_with_decomposition_into(sample, graph, &decomposition, sink)
}

/// Same, with an explicit decomposition (exposed so ablation benches can
/// compare different decompositions of the same sample graph).
pub fn enumerate_with_decomposition(
    sample: &SampleGraph,
    graph: &DataGraph,
    decomposition: &Decomposition,
) -> SerialRun {
    let mut collected = CollectSink::new();
    let stats = enumerate_with_decomposition_into(sample, graph, decomposition, &mut collected);
    SerialRun::new(collected.into_items(), stats.work)
}

/// Streaming variant of [`enumerate_with_decomposition`].
pub fn enumerate_with_decomposition_into(
    sample: &SampleGraph,
    graph: &DataGraph,
    decomposition: &Decomposition,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    let p = sample.num_nodes();
    if p == 0 {
        return SerialStats::default();
    }
    // Piece-level instance lists: each entry is (piece nodes in pattern space,
    // list of assignments, i.e. data nodes in the same order as the piece nodes).
    let mut piece_nodes: Vec<Vec<PatternNode>> = Vec::new();
    let mut piece_assignments: Vec<Vec<Vec<NodeId>>> = Vec::new();
    let mut work = 0u64;

    for piece in &decomposition.pieces {
        let (nodes, assignments) = piece_instances(sample, graph, piece, &mut work);
        piece_nodes.push(nodes);
        piece_assignments.push(assignments);
    }

    // Cross edges: sample edges whose endpoints live in different pieces.
    let piece_of = {
        let mut owner = vec![usize::MAX; p];
        for (i, nodes) in piece_nodes.iter().enumerate() {
            for &v in nodes {
                owner[v as usize] = i;
            }
        }
        owner
    };
    let cross_edges: Vec<(PatternNode, PatternNode)> = sample
        .edges()
        .iter()
        .copied()
        .filter(|&(a, b)| piece_of[a as usize] != piece_of[b as usize])
        .collect();

    let mut seen: HashSet<Instance> = HashSet::new();
    let mut assignment: Vec<Option<NodeId>> = vec![None; p];
    let mut stats = SerialStats { outputs: 0, work };
    join_pieces(
        sample,
        graph,
        &piece_nodes,
        &piece_assignments,
        &cross_edges,
        0,
        &mut assignment,
        &mut seen,
        sink,
        &mut stats,
    );
    stats
}

/// Enumerates the instances of one piece. Returns the piece's pattern nodes
/// (fixing the order assignments are expressed in) and the assignments.
fn piece_instances(
    sample: &SampleGraph,
    graph: &DataGraph,
    piece: &Piece,
    work: &mut u64,
) -> (Vec<PatternNode>, Vec<Vec<NodeId>>) {
    match piece {
        Piece::IsolatedNode(v) => {
            let assignments: Vec<Vec<NodeId>> = graph.nodes().map(|n| vec![n]).collect();
            *work += assignments.len() as u64;
            (vec![*v], assignments)
        }
        Piece::Edge(a, b) => {
            // Each data edge can play the piece edge in both directions.
            let mut assignments = Vec::with_capacity(graph.num_edges() * 2);
            for e in graph.edges() {
                assignments.push(vec![e.lo(), e.hi()]);
                assignments.push(vec![e.hi(), e.lo()]);
            }
            *work += assignments.len() as u64;
            (vec![*a, *b], assignments)
        }
        Piece::OddCycle(cycle_nodes) => {
            // Enumerate odd cycles of the right length, then keep every rotation
            // / reflection whose induced mapping also satisfies the piece's
            // non-cycle edges (the piece may be a cycle plus chords).
            let len = cycle_nodes.len();
            let k = (len - 1) / 2;
            let cycles = enumerate_odd_cycles(graph, k);
            *work += cycles.work;
            let mut assignments = Vec::new();
            for inst in cycles.instances() {
                // Rebuild the cyclic order of this instance from its edges.
                let cycle_sequence = cycle_order(inst.nodes(), inst.edges());
                for start in 0..len {
                    for &dir in &[1isize, -1isize] {
                        let mapped: Vec<NodeId> = (0..len)
                            .map(|i| {
                                let idx = (start as isize + dir * i as isize)
                                    .rem_euclid(len as isize)
                                    as usize;
                                cycle_sequence[idx]
                            })
                            .collect();
                        *work += 1;
                        // Check the piece's internal non-cycle edges (chords).
                        let ok = sample.edges().iter().all(|&(a, b)| {
                            let ia = cycle_nodes.iter().position(|&x| x == a);
                            let ib = cycle_nodes.iter().position(|&x| x == b);
                            match (ia, ib) {
                                (Some(ia), Some(ib)) => graph.has_edge(mapped[ia], mapped[ib]),
                                _ => true, // not internal to this piece
                            }
                        });
                        if ok {
                            assignments.push(mapped);
                        }
                    }
                }
            }
            (cycle_nodes.clone(), assignments)
        }
    }
}

/// Reconstructs one cyclic traversal of a cycle instance from its edge set.
fn cycle_order(nodes: &[NodeId], edges: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    let mut adjacency: std::collections::HashMap<NodeId, Vec<NodeId>> =
        std::collections::HashMap::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
        adjacency.entry(b).or_default().push(a);
    }
    let start = nodes[0];
    let mut sequence = vec![start];
    let mut prev = start;
    let mut current = adjacency[&start][0];
    while current != start {
        sequence.push(current);
        let next = adjacency[&current]
            .iter()
            .copied()
            .find(|&n| n != prev)
            .expect("cycle instances have degree 2 everywhere");
        prev = current;
        current = next;
    }
    sequence
}

#[allow(clippy::too_many_arguments)]
fn join_pieces(
    sample: &SampleGraph,
    graph: &DataGraph,
    piece_nodes: &[Vec<PatternNode>],
    piece_assignments: &[Vec<Vec<NodeId>>],
    cross_edges: &[(PatternNode, PatternNode)],
    piece_index: usize,
    assignment: &mut Vec<Option<NodeId>>,
    seen: &mut HashSet<Instance>,
    sink: &mut dyn InstanceSink,
    stats: &mut SerialStats,
) {
    if piece_index == piece_nodes.len() {
        let bound: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect();
        let instance = Instance::from_assignment(sample, &bound);
        if seen.insert(instance.clone()) {
            stats.outputs += 1;
            sink.accept(instance);
        }
        return;
    }
    'candidates: for candidate in &piece_assignments[piece_index] {
        stats.work += 1;
        // Node-disjointness with previously placed pieces.
        for &node in candidate {
            if assignment.contains(&Some(node)) {
                continue 'candidates;
            }
        }
        for (&pattern_node, &data_node) in piece_nodes[piece_index].iter().zip(candidate.iter()) {
            assignment[pattern_node as usize] = Some(data_node);
        }
        // Cross-edge checks that are now fully bound.
        let ok = cross_edges.iter().all(|&(a, b)| {
            match (assignment[a as usize], assignment[b as usize]) {
                (Some(x), Some(y)) => graph.has_edge(x, y),
                _ => true,
            }
        });
        if ok {
            join_pieces(
                sample,
                graph,
                piece_nodes,
                piece_assignments,
                cross_edges,
                piece_index + 1,
                assignment,
                seen,
                sink,
                stats,
            );
        }
        for &pattern_node in &piece_nodes[piece_index] {
            assignment[pattern_node as usize] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    fn agree(sample: &SampleGraph, graph: &DataGraph) {
        let by_decomposition = enumerate_by_decomposition(sample, graph);
        let oracle = enumerate_generic(sample, graph);
        assert_eq!(by_decomposition.count(), oracle.count(), "{sample:?}");
        assert_eq!(by_decomposition.duplicates(), 0);
        let mut a = by_decomposition.instances().to_vec();
        let mut b = oracle.instances().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn triangles_by_decomposition() {
        agree(&catalog::triangle(), &generators::gnm(25, 100, 1));
    }

    #[test]
    fn squares_by_decomposition() {
        agree(&catalog::square(), &generators::gnm(18, 60, 2));
        agree(&catalog::square(), &generators::complete_bipartite(4, 4));
    }

    #[test]
    fn lollipops_by_decomposition() {
        agree(&catalog::lollipop(), &generators::gnm(16, 50, 3));
    }

    #[test]
    fn pentagons_by_decomposition() {
        agree(&catalog::cycle(5), &generators::gnm(13, 35, 4));
    }

    #[test]
    fn stars_by_decomposition_need_isolated_nodes() {
        // star(4) decomposes into one edge plus two isolated nodes (q = 2).
        let d = decompose(&catalog::star(4));
        assert_eq!(d.alpha, 2);
        agree(&catalog::star(4), &generators::gnm(12, 30, 5));
    }

    #[test]
    fn k4_by_decomposition() {
        agree(&catalog::k4(), &generators::gnm(14, 55, 6));
    }

    #[test]
    fn pentagon_with_chord_uses_the_hamilton_cycle_piece() {
        let sample = catalog::pentagon_with_chord();
        let d = decompose(&sample);
        assert_eq!(d.alpha, 0);
        agree(&sample, &generators::gnm(12, 40, 7));
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = DataGraph::from_edges(5, []);
        let run = enumerate_by_decomposition(&catalog::triangle(), &g);
        assert_eq!(run.count(), 0);
    }
}
