//! Properly ordered 2-paths (Lemma 7.1).
//!
//! A 2-path `u − v − w` is *properly ordered* when its midpoint `v` precedes
//! both endpoints in the degree order. Lemma 7.1 shows there are `O(m^{3/2})`
//! of them and they can be generated in that time; they are the seed pieces of
//! the `OddCycle` algorithm (Algorithm 1).

use crate::result::SerialRun;
use subgraph_graph::{ordering::later_neighbors, DataGraph, DegreeOrder, NodeId, NodeOrder};
use subgraph_pattern::Instance;

/// A properly ordered 2-path: midpoint plus its two (order-later) endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TwoPath {
    /// The midpoint, which precedes both endpoints in the order.
    pub midpoint: NodeId,
    /// The endpoint with the smaller identifier.
    pub first: NodeId,
    /// The endpoint with the larger identifier.
    pub second: NodeId,
}

/// Generates every properly ordered 2-path of `graph` under the degree order.
pub fn properly_ordered_two_paths(graph: &DataGraph) -> Vec<TwoPath> {
    let order = DegreeOrder::new(graph);
    properly_ordered_two_paths_with_order(graph, &order)
}

/// Generates the properly ordered 2-paths under an arbitrary order.
pub fn properly_ordered_two_paths_with_order<O: NodeOrder>(
    graph: &DataGraph,
    order: &O,
) -> Vec<TwoPath> {
    let mut paths = Vec::new();
    for v in graph.nodes() {
        let later = later_neighbors(graph, order, v);
        for (i, &u) in later.iter().enumerate() {
            for &w in &later[i + 1..] {
                let (first, second) = if u < w { (u, w) } else { (w, u) };
                paths.push(TwoPath {
                    midpoint: v,
                    first,
                    second,
                });
            }
        }
    }
    paths
}

/// Convenience wrapper reporting the 2-paths as instances of the 3-node path
/// pattern together with the generation work (1 unit per path).
pub fn two_paths_as_run(graph: &DataGraph) -> SerialRun {
    let paths = properly_ordered_two_paths(graph);
    let work = paths.len() as u64;
    let instances = paths
        .iter()
        .map(|p| Instance::from_edge_set([(p.midpoint, p.first), (p.midpoint, p.second)]))
        .collect();
    SerialRun::new(instances, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_graph::generators;

    #[test]
    fn star_two_paths_all_have_the_centre_as_midpoint_or_not_at_all() {
        // In a star the centre has the highest degree, so it never precedes its
        // neighbours: there are no properly ordered 2-paths at all.
        let g = generators::star(6);
        assert!(properly_ordered_two_paths(&g).is_empty());
    }

    #[test]
    fn path_graph_two_paths() {
        // 0−1−2−3: midpoints must precede both neighbours in degree order.
        // Degrees: 1,2,2,1. Node 1 (degree 2) is preceded by node 0 (degree 1),
        // so 0−1−2 is not properly ordered; neither is 1−2−3. There are none.
        let g = generators::path(4);
        assert!(properly_ordered_two_paths(&g).is_empty());
        // A 5-cycle is regular, so the order falls back to identifiers and the
        // only properly ordered 2-path is the one whose midpoint is node 0
        // (both of its neighbours, 1 and 4, follow it).
        let c = generators::cycle(5);
        let paths = properly_ordered_two_paths(&c);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].midpoint, 0);
    }

    #[test]
    fn every_cycle_has_a_properly_ordered_seed() {
        // Theorem 7.1 relies on every cycle containing a properly ordered
        // 2-path (at its order-minimal node).
        for seed in 0..3 {
            let g = generators::gnm(30, 90, seed);
            let paths = properly_ordered_two_paths(&g);
            let triangles = crate::serial::triangles::enumerate_triangles_serial(&g);
            for t in triangles.instances() {
                let nodes = t.nodes();
                let covered = paths.iter().any(|p| {
                    nodes.contains(&p.midpoint)
                        && nodes.contains(&p.first)
                        && nodes.contains(&p.second)
                });
                assert!(covered, "triangle {t:?} has no properly ordered 2-path");
            }
        }
    }

    #[test]
    fn count_is_bounded_by_m_to_three_halves() {
        for &(n, m) in &[(60usize, 300usize), (120, 1000)] {
            let g = generators::gnm(n, m, 11);
            let count = properly_ordered_two_paths(&g).len() as f64;
            assert!(count <= 4.0 * (m as f64).powf(1.5) + m as f64);
        }
    }

    #[test]
    fn run_wrapper_counts_work() {
        let g = generators::complete(6);
        let run = two_paths_as_run(&g);
        assert_eq!(run.work as usize, run.count());
        assert!(run.count() > 0);
    }
}
