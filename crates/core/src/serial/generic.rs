//! Generic backtracking subgraph matcher — the correctness oracle.
//!
//! This is deliberately a *different* code path from the CQ machinery: it
//! enumerates injective, edge-preserving assignments of the sample graph into
//! the data graph by plain backtracking and de-duplicates the resulting
//! instances with a hash set. Every other algorithm in the workspace (the CQ
//! collections, the map-reduce strategies, the decomposition and
//! bounded-degree algorithms) is tested against its output.

use crate::result::{SerialRun, SerialStats};
use crate::sink::{CollectSink, InstanceSink};
use std::collections::HashSet;
use subgraph_graph::{DataGraph, NodeId};
use subgraph_pattern::{Instance, PatternNode, SampleGraph};

/// Enumerates every instance of `sample` in `graph` exactly once, collecting
/// them into a [`SerialRun`] (thin [`CollectSink`] wrapper over
/// [`enumerate_generic_into`]).
pub fn enumerate_generic(sample: &SampleGraph, graph: &DataGraph) -> SerialRun {
    let mut collected = CollectSink::new();
    let stats = enumerate_generic_into(sample, graph, &mut collected);
    SerialRun::new(collected.into_items(), stats.work)
}

/// Streaming variant: every instance goes to `sink` as it is discovered.
///
/// De-duplication (several assignments related by a pattern automorphism map
/// to the same instance) still keeps a `HashSet` of the instances seen so
/// far — that is working state of *this* oracle, not of the result path; the
/// exactly-once algorithms of the paper (triangles, odd cycles, the
/// map-reduce strategies) stream without any such set.
pub fn enumerate_generic_into(
    sample: &SampleGraph,
    graph: &DataGraph,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    let p = sample.num_nodes();
    if p == 0 || p > graph.num_nodes() {
        return SerialStats::default();
    }
    let plan = search_order(sample);
    let mut assignment: Vec<Option<NodeId>> = vec![None; p];
    let mut seen: HashSet<Instance> = HashSet::new();
    let mut stats = SerialStats::default();
    extend(
        sample,
        graph,
        &plan,
        0,
        &mut assignment,
        &mut seen,
        sink,
        &mut stats,
    );
    stats
}

/// Order pattern nodes so that each one (after the first) touches an earlier one
/// when the pattern is connected.
fn search_order(sample: &SampleGraph) -> Vec<PatternNode> {
    let p = sample.num_nodes();
    let mut order: Vec<PatternNode> = Vec::with_capacity(p);
    let mut placed = vec![false; p];
    while order.len() < p {
        let seed = (0..p)
            .filter(|&v| !placed[v])
            .max_by_key(|&v| sample.degree(v as PatternNode))
            .unwrap();
        placed[seed] = true;
        order.push(seed as PatternNode);
        loop {
            let next = (0..p)
                .filter(|&v| !placed[v])
                .map(|v| {
                    let connected = order
                        .iter()
                        .filter(|&&u| sample.has_edge(u, v as PatternNode))
                        .count();
                    (connected, v)
                })
                .filter(|&(c, _)| c > 0)
                .max();
            match next {
                Some((_, v)) => {
                    placed[v] = true;
                    order.push(v as PatternNode);
                }
                None => break,
            }
        }
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn extend(
    sample: &SampleGraph,
    graph: &DataGraph,
    plan: &[PatternNode],
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    seen: &mut HashSet<Instance>,
    sink: &mut dyn InstanceSink,
    stats: &mut SerialStats,
) {
    if depth == plan.len() {
        let bound: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect();
        let instance = Instance::from_assignment(sample, &bound);
        if seen.insert(instance.clone()) {
            stats.outputs += 1;
            sink.accept(instance);
        }
        return;
    }
    let var = plan[depth];
    // Candidates come from a bound neighbour's adjacency when possible.
    let anchor = plan[..depth]
        .iter()
        .find(|&&u| sample.has_edge(u, var))
        .map(|&u| assignment[u as usize].unwrap());
    let candidates: Vec<NodeId> = match anchor {
        Some(a) => graph.neighbors(a).to_vec(),
        None => graph.nodes().collect(),
    };
    'next: for node in candidates {
        stats.work += 1;
        if assignment.contains(&Some(node)) {
            continue;
        }
        for &u in &plan[..depth] {
            if sample.has_edge(u, var) && !graph.has_edge(assignment[u as usize].unwrap(), node) {
                continue 'next;
            }
        }
        assignment[var as usize] = Some(node);
        extend(
            sample,
            graph,
            plan,
            depth + 1,
            assignment,
            seen,
            sink,
            stats,
        );
        assignment[var as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    fn choose(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn triangles_in_complete_graph() {
        let run = enumerate_generic(&catalog::triangle(), &generators::complete(8));
        assert_eq!(run.count(), choose(8, 3));
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn squares_in_complete_bipartite_graph() {
        let run = enumerate_generic(&catalog::square(), &generators::complete_bipartite(4, 5));
        assert_eq!(run.count(), choose(4, 2) * choose(5, 2));
    }

    #[test]
    fn cycles_in_cycle_graph() {
        // C_n contains exactly one copy of C_n and none of shorter cycles > 3.
        let g = generators::cycle(8);
        assert_eq!(enumerate_generic(&catalog::cycle(8), &g).count(), 1);
        assert_eq!(enumerate_generic(&catalog::cycle(5), &g).count(), 0);
        assert_eq!(enumerate_generic(&catalog::triangle(), &g).count(), 0);
    }

    #[test]
    fn stars_in_a_star_graph() {
        // The star S_p centred anywhere in a star graph with c leaves:
        // only the centre works, choose p−1 of the c leaves.
        let g = generators::star(7); // centre + 6 leaves
        let run = enumerate_generic(&catalog::star(4), &g);
        assert_eq!(run.count(), choose(6, 3));
    }

    #[test]
    fn pattern_larger_than_graph_finds_nothing() {
        let run = enumerate_generic(&catalog::clique(5), &generators::complete(4));
        assert_eq!(run.count(), 0);
    }

    #[test]
    fn lollipops_in_complete_graph() {
        let run = enumerate_generic(&catalog::lollipop(), &generators::complete(6));
        assert_eq!(run.count(), 12 * choose(6, 4));
    }

    #[test]
    fn disconnected_pattern_is_supported() {
        // Two disjoint edges in K_4: choose a perfect matching — 3 of them —
        // plus all ways to pick 2 disjoint edges among the 6: C(6,2) − 12
        // adjacent pairs / … count directly: pairs of disjoint edges in K4 = 3.
        let pattern = subgraph_pattern::SampleGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let run = enumerate_generic(&pattern, &generators::complete(4));
        assert_eq!(run.count(), 3);
    }

    #[test]
    fn work_counter_is_positive_for_nonempty_graphs() {
        let run = enumerate_generic(&catalog::triangle(), &generators::gnm(20, 60, 1));
        assert!(run.work > 0);
    }
}
