//! Serial enumeration algorithms (Sections 6–7).
//!
//! These are the algorithms the reducers run — and, run over the whole data
//! graph, the serial baselines whose running time the convertibility argument
//! (Theorem 6.1) compares against.

pub mod bounded_degree;
pub mod decompose;
pub mod generic;
pub mod odd_cycle;
pub mod triangles;
pub mod two_paths;

pub use bounded_degree::{enumerate_bounded_degree, enumerate_bounded_degree_into};
pub use decompose::{enumerate_by_decomposition, enumerate_by_decomposition_into};
pub use generic::{enumerate_generic, enumerate_generic_into};
pub use odd_cycle::{enumerate_odd_cycles, enumerate_odd_cycles_into};
pub use triangles::{enumerate_triangles_into, enumerate_triangles_serial};
pub use two_paths::properly_ordered_two_paths;
