//! The `O(m^{3/2})` serial triangle enumeration used as the baseline in
//! Section 2 (it is the algorithm of Schank's thesis \[18\] that both Partition
//! and the multiway-join algorithms compare against).
//!
//! The algorithm orders nodes by non-decreasing degree and, for every node
//! `v`, examines every pair of neighbours of `v` that follow `v` in the order
//! — i.e. every *properly ordered 2-path* with midpoint `v` (Lemma 7.1) — and
//! reports a triangle whenever the two endpoints are adjacent. Each triangle
//! is reported exactly once: at its unique node that precedes the other two.

use crate::result::{SerialRun, SerialStats};
use crate::sink::{CollectSink, InstanceSink};
use subgraph_graph::{ordering::later_neighbors_into, DataGraph, DegreeOrder, NodeOrder};
use subgraph_pattern::Instance;

/// Enumerates every triangle of `graph` exactly once in `O(m^{3/2})` time,
/// collecting them (thin wrapper over [`enumerate_triangles_into`]).
pub fn enumerate_triangles_serial(graph: &DataGraph) -> SerialRun {
    let order = DegreeOrder::new(graph);
    enumerate_triangles_with_order(graph, &order)
}

/// Same algorithm with an explicit node order (the bound requires the degree
/// order, but correctness holds for any total order — which is what the
/// reducers of Section 2.3 exploit with the bucket order).
pub fn enumerate_triangles_with_order<O: NodeOrder>(graph: &DataGraph, order: &O) -> SerialRun {
    let mut collected = CollectSink::new();
    let stats = enumerate_triangles_with_order_into(graph, order, &mut collected);
    SerialRun::new(collected.into_items(), stats.work)
}

/// Streaming variant with the degree order: each triangle goes to `sink` the
/// moment it is found — the algorithm is exactly-once by construction, so no
/// instance is ever stored anywhere.
///
/// This path runs over the graph's cached [`subgraph_graph::ForwardIndex`]
/// (see [`DataGraph::forward`]): the properly ordered 2-paths are read
/// straight out of the orientation's CSR runs, and the closing `u–w` edge
/// test is a membership scan of the short run of `u` — falling back to the
/// `O(log Δ)` adjacency search on runs long enough that a scan would
/// endanger the `O(m^{3/2})` bound.
pub fn enumerate_triangles_into(graph: &DataGraph, sink: &mut dyn InstanceSink) -> SerialStats {
    // Above this run length a linear membership scan costs more than the
    // binary search over the full adjacency; keeping the scan bounded also
    // keeps the per-2-path cost O(log Δ) in the worst case.
    const SCAN_LIMIT: usize = 32;
    let forward = graph.forward();
    let mut stats = SerialStats::default();
    for v in graph.nodes() {
        let later = forward.later(v);
        for (i, &u) in later.iter().enumerate() {
            let run = forward.later(u);
            for &w in &later[i + 1..] {
                stats.work += 1;
                let closed = if run.len() <= SCAN_LIMIT {
                    run.contains(&w)
                } else {
                    graph.has_edge(u, w)
                };
                if closed {
                    stats.outputs += 1;
                    sink.accept(Instance::from_edge_set([(v, u), (v, w), (u, w)]));
                }
            }
        }
    }
    stats
}

/// Streaming variant with an explicit node order.
pub fn enumerate_triangles_with_order_into<O: NodeOrder>(
    graph: &DataGraph,
    order: &O,
    sink: &mut dyn InstanceSink,
) -> SerialStats {
    let mut stats = SerialStats::default();
    let mut later = Vec::new();
    for v in graph.nodes() {
        later_neighbors_into(graph, order, v, &mut later);
        for (i, &u) in later.iter().enumerate() {
            for &w in &later[i + 1..] {
                stats.work += 1;
                if graph.has_edge(u, w) {
                    stats.outputs += 1;
                    sink.accept(Instance::from_edge_set([(v, u), (v, w), (u, w)]));
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::{generators, BucketThenIdOrder, IdOrder};
    use subgraph_pattern::catalog;

    fn choose(n: usize, k: usize) -> usize {
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn complete_graph_triangle_count() {
        let run = enumerate_triangles_serial(&generators::complete(9));
        assert_eq!(run.count(), choose(9, 3));
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(
            enumerate_triangles_serial(&generators::complete_bipartite(5, 5)).count(),
            0
        );
        assert_eq!(
            enumerate_triangles_serial(&generators::cycle(10)).count(),
            0
        );
        assert_eq!(enumerate_triangles_serial(&generators::path(6)).count(), 0);
    }

    #[test]
    fn matches_the_generic_oracle_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnm(60, 400, seed);
            let fast = enumerate_triangles_serial(&g);
            let oracle = enumerate_generic(&catalog::triangle(), &g);
            assert_eq!(fast.count(), oracle.count(), "seed {seed}");
            assert_eq!(fast.duplicates(), 0);
            let mut a = fast.instances().to_vec();
            let mut b = oracle.instances().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn any_total_order_gives_the_same_triangles() {
        let g = generators::gnm(40, 200, 7);
        let by_degree = enumerate_triangles_serial(&g);
        let by_id = enumerate_triangles_with_order(&g, &IdOrder);
        let by_bucket = enumerate_triangles_with_order(&g, &BucketThenIdOrder::new(5));
        assert_eq!(by_degree.count(), by_id.count());
        assert_eq!(by_degree.count(), by_bucket.count());
        assert_eq!(by_id.duplicates(), 0);
        assert_eq!(by_bucket.duplicates(), 0);
    }

    #[test]
    fn work_respects_the_m_to_three_halves_bound() {
        // The number of properly ordered 2-paths examined is O(m^{3/2}); check
        // it with a generous constant on random graphs of growing size.
        for &(n, m) in &[(50usize, 200usize), (100, 800), (200, 3000)] {
            let g = generators::gnm(n, m, 3);
            let run = enumerate_triangles_serial(&g);
            let bound = 4.0 * (m as f64).powf(1.5) + m as f64;
            assert!(
                (run.work as f64) <= bound,
                "n={n} m={m}: work {} exceeds {bound}",
                run.work
            );
        }
    }

    #[test]
    fn disjoint_triangles_found_exactly() {
        let run = enumerate_triangles_serial(&generators::disjoint_triangles(25));
        assert_eq!(run.count(), 25);
        assert_eq!(run.duplicates(), 0);
    }
}
