//! Result types shared by the serial and map-reduce enumeration algorithms.

use subgraph_mapreduce::{JobMetrics, PipelineReport, RoundMetrics};
use subgraph_pattern::Instance;

/// Output of a serial enumeration algorithm.
#[derive(Clone, Debug, Default)]
pub struct SerialRun {
    /// Every instance found (exactly once each if the algorithm is correct).
    pub instances: Vec<Instance>,
    /// The algorithm's self-reported work in its natural unit (candidate
    /// tuples examined); this is the quantity the `O(n^α m^β)` bounds of
    /// Sections 6–7 describe.
    pub work: u64,
}

impl SerialRun {
    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of *distinct* instances (equals `count()` when the exactly-once
    /// invariant holds).
    pub fn distinct(&self) -> usize {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }
}

/// Output of a map-reduce enumeration algorithm (one pipeline of one or more
/// rounds, or — for CQ-oriented processing — several parallel jobs).
#[derive(Clone, Debug)]
pub struct MapReduceRun {
    /// Every instance emitted by the final reducers.
    pub instances: Vec<Instance>,
    /// Combined cost metrics over all rounds (communication cost, reducers
    /// used, reducer work, combiner savings, skew, timings).
    pub metrics: JobMetrics,
    /// Per-round (or, for CQ-oriented processing, per-job) metrics in
    /// execution order. Never empty for a run that executed the engine.
    pub round_metrics: Vec<RoundMetrics>,
}

impl MapReduceRun {
    /// Wraps the outcome of a [`subgraph_mapreduce::Pipeline`] run.
    pub fn from_pipeline(instances: Vec<Instance>, report: PipelineReport) -> Self {
        MapReduceRun {
            instances,
            metrics: report.combined(),
            round_metrics: report.rounds,
        }
    }

    /// Wraps a single round's result (named for the per-round breakdown).
    pub fn single_round(instances: Vec<Instance>, name: &str, metrics: JobMetrics) -> Self {
        MapReduceRun {
            instances,
            round_metrics: vec![RoundMetrics {
                name: name.to_string(),
                metrics: metrics.clone(),
            }],
            metrics,
        }
    }

    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of distinct instances.
    pub fn distinct(&self) -> usize {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_accounting() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let b = Instance::from_edge_set([(3, 4), (4, 5), (3, 5)]);
        let run = SerialRun {
            instances: vec![a.clone(), b.clone(), a.clone()],
            work: 3,
        };
        assert_eq!(run.count(), 3);
        assert_eq!(run.distinct(), 2);
        assert_eq!(run.duplicates(), 1);
    }

    #[test]
    fn empty_runs() {
        let run = SerialRun::default();
        assert_eq!(run.count(), 0);
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn single_round_runs_carry_one_round_entry() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let metrics = JobMetrics {
            key_value_pairs: 9,
            shuffle_records: 9,
            ..JobMetrics::default()
        };
        let run = MapReduceRun::single_round(vec![a], "demo", metrics.clone());
        assert_eq!(run.round_metrics.len(), 1);
        assert_eq!(run.round_metrics[0].name, "demo");
        assert_eq!(run.metrics, metrics);
        assert_eq!(run.count(), 1);
    }
}
