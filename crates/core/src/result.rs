//! Result types shared by the serial and map-reduce enumeration algorithms.
//!
//! Since the sink refactor the primary result path is streaming: algorithms
//! push every instance into an [`crate::sink::InstanceSink`] and return only
//! *stats* — [`SerialStats`] / [`RunStats`] — so nothing here bounds the
//! output size. The `Vec`-carrying [`SerialRun`] / [`MapReduceRun`] remain as
//! the collect-mode wrappers the oracle tests and legacy callers use.

use std::sync::OnceLock;
use subgraph_mapreduce::{JobMetrics, PipelineReport, RoundMetrics};
use subgraph_pattern::Instance;

/// Number of distinct instances in a slice, computed without cloning the
/// instances themselves (sorts a vector of references).
pub(crate) fn count_distinct(instances: &[Instance]) -> usize {
    let mut sorted: Vec<&Instance> = instances.iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Stats of a serial enumeration whose instances went to a sink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SerialStats {
    /// Instances pushed into the sink.
    pub outputs: usize,
    /// The algorithm's self-reported work in its natural unit (candidate
    /// tuples examined); this is the quantity the `O(n^α m^β)` bounds of
    /// Sections 6–7 describe.
    pub work: u64,
}

/// Output of a serial enumeration algorithm in collect mode.
#[derive(Clone, Debug, Default)]
pub struct SerialRun {
    /// Every instance found (exactly once each if the algorithm is correct).
    /// Private so the lazily cached [`SerialRun::distinct`] can never go
    /// stale; read through [`SerialRun::instances`] / consume through
    /// [`SerialRun::into_instances`].
    instances: Vec<Instance>,
    /// The algorithm's self-reported work (see [`SerialStats::work`]).
    pub work: u64,
    /// Lazily computed distinct count.
    distinct: OnceLock<usize>,
}

impl SerialRun {
    /// Wraps collected instances and the work counter.
    pub fn new(instances: Vec<Instance>, work: u64) -> Self {
        SerialRun {
            instances,
            work,
            distinct: OnceLock::new(),
        }
    }

    /// The collected instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Consumes the run and returns the collected instances.
    pub fn into_instances(self) -> Vec<Instance> {
        self.instances
    }

    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of *distinct* instances (equals `count()` when the exactly-once
    /// invariant holds). Computed once on first call — no per-call clone or
    /// sort.
    pub fn distinct(&self) -> usize {
        *self
            .distinct
            .get_or_init(|| count_distinct(&self.instances))
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }
}

/// Stats of a map-reduce run whose instances went to a sink: everything
/// except the instances themselves.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Instances streamed to the sink by the final round's reducers.
    pub outputs: usize,
    /// Combined cost metrics over all rounds (communication cost, reducers
    /// used, reducer work, combiner savings, skew, timings).
    pub metrics: JobMetrics,
    /// Per-round (or, for CQ-oriented processing, per-job) metrics in
    /// execution order. Never empty for a run that executed the engine.
    pub round_metrics: Vec<RoundMetrics>,
}

impl RunStats {
    /// Wraps the outcome of a [`subgraph_mapreduce::Pipeline`] sink run.
    pub fn from_pipeline(report: PipelineReport) -> Self {
        let metrics = report.combined();
        RunStats {
            outputs: metrics.outputs,
            metrics,
            round_metrics: report.rounds,
        }
    }

    /// Stats for one named round (the per-round breakdown of single-round
    /// algorithms).
    pub fn single_round(name: &str, metrics: JobMetrics) -> Self {
        RunStats {
            outputs: metrics.outputs,
            round_metrics: vec![RoundMetrics {
                name: name.to_string(),
                metrics: metrics.clone(),
            }],
            metrics,
        }
    }

    /// Folds another independent job's stats in (CQ-oriented processing runs
    /// one job per query; costs add, per-job metrics concatenate).
    pub fn absorb(&mut self, other: RunStats) {
        self.outputs += other.outputs;
        self.metrics.absorb(&other.metrics);
        self.metrics.outputs = self.outputs;
        self.round_metrics.extend(other.round_metrics);
    }

    /// Upgrades the stats to a collect-mode [`MapReduceRun`] by attaching the
    /// instances a [`crate::sink::CollectSink`] gathered during the same run.
    pub fn into_run(self, instances: Vec<Instance>) -> MapReduceRun {
        debug_assert_eq!(
            self.outputs,
            instances.len(),
            "collected instances must match the streamed output count"
        );
        MapReduceRun {
            instances,
            metrics: self.metrics,
            round_metrics: self.round_metrics,
            distinct: OnceLock::new(),
        }
    }
}

/// Output of a map-reduce enumeration algorithm in collect mode (one pipeline
/// of one or more rounds, or — for CQ-oriented processing — several parallel
/// jobs).
#[derive(Clone, Debug)]
pub struct MapReduceRun {
    /// Every instance emitted by the final reducers. Private so the lazily
    /// cached [`MapReduceRun::distinct`] can never go stale.
    instances: Vec<Instance>,
    /// Combined cost metrics over all rounds.
    pub metrics: JobMetrics,
    /// Per-round (or per-job) metrics in execution order.
    pub round_metrics: Vec<RoundMetrics>,
    /// Lazily computed distinct count (see [`SerialRun::distinct`]).
    distinct: OnceLock<usize>,
}

impl MapReduceRun {
    /// Wraps the outcome of a [`subgraph_mapreduce::Pipeline`] run.
    pub fn from_pipeline(instances: Vec<Instance>, report: PipelineReport) -> Self {
        RunStats::from_pipeline(report).into_run(instances)
    }

    /// Wraps a single round's result (named for the per-round breakdown).
    pub fn single_round(instances: Vec<Instance>, name: &str, metrics: JobMetrics) -> Self {
        MapReduceRun {
            instances,
            round_metrics: vec![RoundMetrics {
                name: name.to_string(),
                metrics: metrics.clone(),
            }],
            metrics,
            distinct: OnceLock::new(),
        }
    }

    /// The collected instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Consumes the run and returns the collected instances.
    pub fn into_instances(self) -> Vec<Instance> {
        self.instances
    }

    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of distinct instances. Computed once on first call (no per-call
    /// clone or sort).
    pub fn distinct(&self) -> usize {
        *self
            .distinct
            .get_or_init(|| count_distinct(&self.instances))
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_accounting() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let b = Instance::from_edge_set([(3, 4), (4, 5), (3, 5)]);
        let run = SerialRun::new(vec![a.clone(), b.clone(), a.clone()], 3);
        assert_eq!(run.count(), 3);
        assert_eq!(run.distinct(), 2);
        assert_eq!(run.duplicates(), 1);
        // The cached value answers repeat queries.
        assert_eq!(run.distinct(), 2);
    }

    #[test]
    fn empty_runs() {
        let run = SerialRun::default();
        assert_eq!(run.count(), 0);
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn single_round_runs_carry_one_round_entry() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let metrics = JobMetrics {
            key_value_pairs: 9,
            shuffle_records: 9,
            outputs: 1,
            ..JobMetrics::default()
        };
        let run = MapReduceRun::single_round(vec![a], "demo", metrics.clone());
        assert_eq!(run.round_metrics.len(), 1);
        assert_eq!(run.round_metrics[0].name, "demo");
        assert_eq!(run.metrics, metrics);
        assert_eq!(run.count(), 1);
    }

    #[test]
    fn run_stats_absorb_adds_jobs() {
        let mut total = RunStats::single_round(
            "job-0",
            JobMetrics {
                key_value_pairs: 10,
                shuffle_records: 10,
                outputs: 2,
                ..JobMetrics::default()
            },
        );
        total.absorb(RunStats::single_round(
            "job-1",
            JobMetrics {
                key_value_pairs: 5,
                shuffle_records: 5,
                outputs: 3,
                ..JobMetrics::default()
            },
        ));
        assert_eq!(total.outputs, 5);
        assert_eq!(total.metrics.outputs, 5);
        assert_eq!(total.metrics.key_value_pairs, 15);
        assert_eq!(total.round_metrics.len(), 2);
        assert_eq!(total.round_metrics[1].name, "job-1");
    }
}
