//! Result types shared by the serial and map-reduce enumeration algorithms.

use subgraph_mapreduce::JobMetrics;
use subgraph_pattern::Instance;

/// Output of a serial enumeration algorithm.
#[derive(Clone, Debug, Default)]
pub struct SerialRun {
    /// Every instance found (exactly once each if the algorithm is correct).
    pub instances: Vec<Instance>,
    /// The algorithm's self-reported work in its natural unit (candidate
    /// tuples examined); this is the quantity the `O(n^α m^β)` bounds of
    /// Sections 6–7 describe.
    pub work: u64,
}

impl SerialRun {
    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of *distinct* instances (equals `count()` when the exactly-once
    /// invariant holds).
    pub fn distinct(&self) -> usize {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }
}

/// Output of a single-round map-reduce enumeration algorithm.
#[derive(Clone, Debug)]
pub struct MapReduceRun {
    /// Every instance emitted by the reducers.
    pub instances: Vec<Instance>,
    /// Cost metrics of the round (communication cost, reducers used, reducer
    /// work, skew, timings).
    pub metrics: JobMetrics,
}

impl MapReduceRun {
    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of distinct instances.
    pub fn distinct(&self) -> usize {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_accounting() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let b = Instance::from_edge_set([(3, 4), (4, 5), (3, 5)]);
        let run = SerialRun {
            instances: vec![a.clone(), b.clone(), a.clone()],
            work: 3,
        };
        assert_eq!(run.count(), 3);
        assert_eq!(run.distinct(), 2);
        assert_eq!(run.duplicates(), 1);
    }

    #[test]
    fn empty_runs() {
        let run = SerialRun::default();
        assert_eq!(run.count(), 0);
        assert_eq!(run.duplicates(), 0);
    }
}
