//! Streaming instance sinks: the result path of every enumeration algorithm.
//!
//! The bucket-oriented schemes of the paper exist so that instance sets far
//! larger than memory can be enumerated under a fixed reducer budget; a
//! `Vec<Instance>` result API caps every run at the *output* size instead.
//! Every algorithm in this crate therefore streams its results into an
//! [`InstanceSink`] — the `Vec`-returning entry points are thin
//! [`CollectSink`] wrappers — so counting runs ([`CountSink`]) allocate no
//! per-instance storage at all.
//!
//! [`InstanceSink`] is the instance-specialized face of the engine's generic
//! [`subgraph_mapreduce::sink::OutputSink`]: any `OutputSink<Instance>`
//! implements it automatically, and a `&mut dyn InstanceSink` upcasts to the
//! `&mut dyn OutputSink<Instance>` the engine's
//! [`subgraph_mapreduce::Pipeline::run_with_sink`] consumes. The built-in
//! sinks:
//!
//! | sink | retains | memory |
//! |---|---|---|
//! | [`CountSink`] | a count | O(1) |
//! | [`CollectSink`]`<Instance>` | every instance (legacy `Vec` path) | O(output) |
//! | [`SampleSink`]`<Instance>` | the `k` smallest instances (order-independent) | O(k) |
//! | [`FnSink`] | nothing — invokes a callback per instance | O(1) + callback |
//! | [`NdjsonSink`] | nothing — writes one JSON object per line | O(1) + writer |
//! | [`CsvSink`] | nothing — writes one CSV row per instance | O(1) + writer |
//! | [`EdgeListSink`] | nothing — writes each instance's edges as `u v` lines | O(1) + writer |
//!
//! The three serializing sinks are the file-backed result path of the
//! `subgraph` CLI: they wrap any [`std::io::Write`] (hand them a
//! [`std::io::BufWriter`] around a file, or a locked stdout), stream each
//! instance as text the moment the engine delivers it, and defer I/O errors
//! to [`SerializeSink::finish`] so `accept` stays infallible for the engine:
//!
//! ```
//! use subgraph_core::sink::{NdjsonSink, SerializeSink};
//! use subgraph_core::sink::OutputSink;
//! use subgraph_pattern::Instance;
//!
//! let mut out = Vec::new();
//! let mut sink = NdjsonSink::new(&mut out);
//! sink.accept(Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]));
//! assert_eq!(sink.finish().unwrap(), 1); // flushes, returns records written
//! assert_eq!(
//!     String::from_utf8(out).unwrap(),
//!     "{\"nodes\":[0,1,2],\"edges\":[[0,1],[0,2],[1,2]]}\n"
//! );
//! ```
//!
//! Parallel delivery happens through per-reduce-worker shards folded back in
//! worker order, which preserves the deterministic output order of
//! [`subgraph_mapreduce::EngineConfig::deterministic`] runs — see the engine's
//! [`subgraph_mapreduce::sink`] module for the shard protocol. The
//! serializing sinks use the default buffering shard, so under a
//! deterministic engine config the file content is a pure function of the
//! input and the thread count.

use std::io::{self, Write};

pub use subgraph_mapreduce::sink::{
    BufferShard, CollectSink, CountSink, FnSink, OutputSink, SampleSink, SinkShard,
};
use subgraph_pattern::Instance;

/// A streaming receiver of enumeration results. Blanket-implemented for every
/// [`OutputSink`]`<Instance>`, so the engine's sinks and any custom sink work
/// unchanged; algorithms take `&mut dyn InstanceSink`.
pub trait InstanceSink: OutputSink<Instance> {}

impl<S: OutputSink<Instance> + ?Sized> InstanceSink for S {}

// ---- serializing sinks ------------------------------------------------------

/// Common surface of the text-writing sinks ([`NdjsonSink`], [`CsvSink`],
/// [`EdgeListSink`]): because [`OutputSink::accept`] is infallible, write
/// errors are latched instead of surfaced per record, and [`finish`] reports
/// the first one after flushing.
///
/// [`finish`]: SerializeSink::finish
pub trait SerializeSink {
    /// Flushes the writer and reports the outcome: the number of instances
    /// serialized, or the first I/O error hit while writing (subsequent
    /// records were skipped once a write failed).
    fn finish(self) -> io::Result<usize>;

    /// Instances successfully serialized so far.
    fn written(&self) -> usize;
}

/// Shared write-state of the serializing sinks: the writer, the success
/// count and the first latched error.
struct TextWriter<W: Write> {
    writer: W,
    written: usize,
    error: Option<io::Error>,
}

impl<W: Write> TextWriter<W> {
    fn new(writer: W) -> Self {
        TextWriter {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Runs `emit` against the writer unless an earlier write already failed;
    /// latches the first error.
    fn emit_record(&mut self, emit: impl FnOnce(&mut W) -> io::Result<()>) {
        if self.error.is_some() {
            return;
        }
        match emit(&mut self.writer) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn finish(mut self) -> io::Result<usize> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.written)
    }
}

/// Streams instances as newline-delimited JSON, one object per line:
/// `{"nodes":[…],"edges":[[u,v],…]}` with nodes and edges in canonical
/// (sorted) order. One instance per line is what makes `enumerate | wc -l`
/// equal `count`, and what downstream `jq`/dataframe tooling expects.
pub struct NdjsonSink<W: Write + Send> {
    inner: TextWriter<W>,
}

impl<W: Write + Send> NdjsonSink<W> {
    /// Wraps `writer`. Hand in a [`io::BufWriter`] for file targets.
    pub fn new(writer: W) -> Self {
        NdjsonSink {
            inner: TextWriter::new(writer),
        }
    }
}

impl<W: Write + Send> SerializeSink for NdjsonSink<W> {
    fn finish(self) -> io::Result<usize> {
        self.inner.finish()
    }

    fn written(&self) -> usize {
        self.inner.written
    }
}

impl<W: Write + Send> OutputSink<Instance> for NdjsonSink<W> {
    fn accept(&mut self, instance: Instance) {
        self.inner.emit_record(|w| {
            w.write_all(b"{\"nodes\":[")?;
            for (i, node) in instance.nodes().iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{node}")?;
            }
            w.write_all(b"],\"edges\":[")?;
            for (i, (u, v)) in instance.edges().iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "[{u},{v}]")?;
            }
            w.write_all(b"]}\n")
        });
    }
}

/// Streams instances as CSV with a `nodes,edges` header: per row the sorted
/// node ids space-separated in the first column and the canonical edges as
/// `u-v` pairs space-separated in the second. Neither column can contain a
/// comma or a quote, so no CSV escaping is needed.
pub struct CsvSink<W: Write + Send> {
    inner: TextWriter<W>,
    header_pending: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps `writer`; the header row is written before the first instance.
    pub fn new(writer: W) -> Self {
        CsvSink {
            inner: TextWriter::new(writer),
            header_pending: true,
        }
    }

    /// Writes the `nodes,edges` header exactly once, latching any error like
    /// a record write. Called before the first row and at finish time, so an
    /// empty result is still valid CSV.
    fn write_header_if_pending(&mut self) {
        if !std::mem::take(&mut self.header_pending) || self.inner.error.is_some() {
            return;
        }
        if let Err(e) = self.inner.writer.write_all(b"nodes,edges\n") {
            self.inner.error = Some(e);
        }
    }
}

impl<W: Write + Send> SerializeSink for CsvSink<W> {
    fn finish(mut self) -> io::Result<usize> {
        self.write_header_if_pending();
        self.inner.finish()
    }

    fn written(&self) -> usize {
        self.inner.written
    }
}

impl<W: Write + Send> OutputSink<Instance> for CsvSink<W> {
    fn accept(&mut self, instance: Instance) {
        self.write_header_if_pending();
        self.inner.emit_record(|w| {
            for (i, node) in instance.nodes().iter().enumerate() {
                if i > 0 {
                    w.write_all(b" ")?;
                }
                write!(w, "{node}")?;
            }
            w.write_all(b",")?;
            for (i, (u, v)) in instance.edges().iter().enumerate() {
                if i > 0 {
                    w.write_all(b" ")?;
                }
                write!(w, "{u}-{v}")?;
            }
            w.write_all(b"\n")
        });
    }
}

/// Streams instances in the edge-list dialect of
/// [`subgraph_graph::io::write_edge_list`]: per instance a
/// `# instance <k>: nodes …` comment followed by one canonical `u v` line per
/// edge, so any tool (including this repo's own reader) that skips `#`
/// comments can re-read the union of the instances as a graph.
pub struct EdgeListSink<W: Write + Send> {
    inner: TextWriter<W>,
}

impl<W: Write + Send> EdgeListSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        EdgeListSink {
            inner: TextWriter::new(writer),
        }
    }
}

impl<W: Write + Send> SerializeSink for EdgeListSink<W> {
    fn finish(self) -> io::Result<usize> {
        self.inner.finish()
    }

    fn written(&self) -> usize {
        self.inner.written
    }
}

impl<W: Write + Send> OutputSink<Instance> for EdgeListSink<W> {
    fn accept(&mut self, instance: Instance) {
        let index = self.inner.written;
        self.inner.emit_record(|w| {
            write!(w, "# instance {index}: nodes")?;
            for node in instance.nodes() {
                write!(w, " {node}")?;
            }
            w.write_all(b"\n")?;
            for (u, v) in instance.edges() {
                writeln!(w, "{u} {v}")?;
            }
            Ok(())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(shift: u32) -> Instance {
        Instance::from_edge_set([
            (shift, shift + 1),
            (shift + 1, shift + 2),
            (shift, shift + 2),
        ])
    }

    #[test]
    fn engine_sinks_are_instance_sinks() {
        fn drive(sink: &mut dyn InstanceSink) {
            sink.accept(instance(0));
            sink.accept(instance(3));
        }
        let mut count = CountSink::new();
        drive(&mut count);
        assert_eq!(count.count(), 2);

        let mut collect = CollectSink::new();
        drive(&mut collect);
        assert_eq!(collect.items().len(), 2);

        let mut sample = SampleSink::new(1);
        drive(&mut sample);
        assert_eq!(sample.into_sorted(), vec![instance(0)]);

        let mut calls = 0usize;
        {
            let mut callback = FnSink::new(|_: Instance| calls += 1);
            drive(&mut callback);
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn instance_sinks_upcast_to_engine_sinks() {
        let mut collect: CollectSink<Instance> = CollectSink::new();
        let dyn_sink: &mut dyn InstanceSink = &mut collect;
        // The upcast the strategies rely on when handing the sink to the
        // engine's Pipeline::run_with_sink.
        let engine_sink: &mut dyn OutputSink<Instance> = dyn_sink;
        engine_sink.accept(instance(7));
        assert_eq!(collect.items().len(), 1);
    }

    #[test]
    fn ndjson_sink_writes_one_canonical_object_per_line() {
        let mut out = Vec::new();
        let mut sink = NdjsonSink::new(&mut out);
        sink.accept(instance(0));
        sink.accept(instance(5));
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.finish().unwrap(), 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"nodes\":[0,1,2],\"edges\":[[0,1],[0,2],[1,2]]}"
        );
        assert_eq!(
            lines[1],
            "{\"nodes\":[5,6,7],\"edges\":[[5,6],[5,7],[6,7]]}"
        );
    }

    #[test]
    fn csv_sink_writes_header_then_rows() {
        let mut out = Vec::new();
        let mut sink = CsvSink::new(&mut out);
        sink.accept(instance(1));
        sink.finish().unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "nodes,edges\n1 2 3,1-2 1-3 2-3\n"
        );
    }

    #[test]
    fn csv_sink_emits_the_header_even_with_no_rows() {
        let mut out = Vec::new();
        let sink = CsvSink::new(&mut out);
        assert_eq!(sink.finish().unwrap(), 0);
        assert_eq!(String::from_utf8(out).unwrap(), "nodes,edges\n");
    }

    #[test]
    fn edge_list_sink_numbers_instances_and_is_readable_back() {
        let mut out = Vec::new();
        let mut sink = EdgeListSink::new(&mut out);
        sink.accept(instance(0));
        sink.accept(instance(10));
        sink.finish().unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("# instance 0: nodes 0 1 2\n0 1\n0 2\n1 2\n"));
        assert!(text.contains("# instance 1: nodes 10 11 12\n"));
        // The repo's own reader skips the comments and sees the edge union.
        let g = subgraph_graph::io::read_edge_list(std::io::BufReader::new(&out[..])).unwrap();
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn serializing_sinks_latch_the_first_write_error() {
        /// Fails every write after the first `allow` bytes-calls.
        struct FailingWriter {
            allow: usize,
        }
        impl Write for FailingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.allow == 0 {
                    return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
                }
                self.allow -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut sink = NdjsonSink::new(FailingWriter { allow: 1 });
        sink.accept(instance(0)); // fails mid-record
        sink.accept(instance(3)); // skipped: error already latched
        assert_eq!(sink.written(), 0);
        let err = sink.finish().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn serializing_sinks_preserve_worker_fold_order() {
        // Drive the shard protocol the way the engine coordinator does.
        let mut out = Vec::new();
        {
            let mut sink = NdjsonSink::new(&mut out);
            let mut shard_a = OutputSink::<Instance>::new_shard(&sink);
            let mut shard_b = OutputSink::<Instance>::new_shard(&sink);
            shard_a.accept(instance(0));
            shard_b.accept(instance(5));
            sink.fold(shard_a);
            sink.fold(shard_b);
            assert_eq!(sink.finish().unwrap(), 2);
        }
        let text = String::from_utf8(out).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("[0,1,2]"), "worker order preserved: {first}");
    }
}
