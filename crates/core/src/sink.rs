//! Streaming instance sinks: the result path of every enumeration algorithm.
//!
//! The bucket-oriented schemes of the paper exist so that instance sets far
//! larger than memory can be enumerated under a fixed reducer budget; a
//! `Vec<Instance>` result API caps every run at the *output* size instead.
//! Every algorithm in this crate therefore streams its results into an
//! [`InstanceSink`] — the `Vec`-returning entry points are thin
//! [`CollectSink`] wrappers — so counting runs ([`CountSink`]) allocate no
//! per-instance storage at all.
//!
//! [`InstanceSink`] is the instance-specialized face of the engine's generic
//! [`subgraph_mapreduce::sink::OutputSink`]: any `OutputSink<Instance>`
//! implements it automatically, and a `&mut dyn InstanceSink` upcasts to the
//! `&mut dyn OutputSink<Instance>` the engine's
//! [`subgraph_mapreduce::Pipeline::run_with_sink`] consumes. The built-in
//! sinks:
//!
//! | sink | retains | memory |
//! |---|---|---|
//! | [`CountSink`] | a count | O(1) |
//! | [`CollectSink`]`<Instance>` | every instance (legacy `Vec` path) | O(output) |
//! | [`SampleSink`]`<Instance>` | the `k` smallest instances (order-independent) | O(k) |
//! | [`FnSink`] | nothing — invokes a callback per instance | O(1) + callback |
//!
//! Parallel delivery happens through per-reduce-worker shards folded back in
//! worker order, which preserves the deterministic output order of
//! [`subgraph_mapreduce::EngineConfig::deterministic`] runs — see the engine's
//! [`subgraph_mapreduce::sink`] module for the shard protocol.

pub use subgraph_mapreduce::sink::{
    BufferShard, CollectSink, CountSink, FnSink, OutputSink, SampleSink, SinkShard,
};
use subgraph_pattern::Instance;

/// A streaming receiver of enumeration results. Blanket-implemented for every
/// [`OutputSink`]`<Instance>`, so the engine's sinks and any custom sink work
/// unchanged; algorithms take `&mut dyn InstanceSink`.
pub trait InstanceSink: OutputSink<Instance> {}

impl<S: OutputSink<Instance> + ?Sized> InstanceSink for S {}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(shift: u32) -> Instance {
        Instance::from_edge_set([
            (shift, shift + 1),
            (shift + 1, shift + 2),
            (shift, shift + 2),
        ])
    }

    #[test]
    fn engine_sinks_are_instance_sinks() {
        fn drive(sink: &mut dyn InstanceSink) {
            sink.accept(instance(0));
            sink.accept(instance(3));
        }
        let mut count = CountSink::new();
        drive(&mut count);
        assert_eq!(count.count(), 2);

        let mut collect = CollectSink::new();
        drive(&mut collect);
        assert_eq!(collect.items().len(), 2);

        let mut sample = SampleSink::new(1);
        drive(&mut sample);
        assert_eq!(sample.into_sorted(), vec![instance(0)]);

        let mut calls = 0usize;
        {
            let mut callback = FnSink::new(|_: Instance| calls += 1);
            drive(&mut callback);
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn instance_sinks_upcast_to_engine_sinks() {
        let mut collect: CollectSink<Instance> = CollectSink::new();
        let dyn_sink: &mut dyn InstanceSink = &mut collect;
        // The upcast the strategies rely on when handing the sink to the
        // engine's Pipeline::run_with_sink.
        let engine_sink: &mut dyn OutputSink<Instance> = dyn_sink;
        engine_sink.accept(instance(7));
        assert_eq!(collect.items().len(), 1);
    }
}
