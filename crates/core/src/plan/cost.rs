//! [`CostEstimate`]: what the planner predicts for one strategy before
//! anything runs.

use crate::plan::strategy::StrategyKind;

/// The planner's per-round communication prediction: what the mappers emit,
/// what actually crosses the shuffle after map-side combining, and the
/// shuffled payload in bytes.
#[derive(Clone, Debug)]
pub struct RoundCost {
    /// Round (or, for CQ-oriented processing, parallel job) name.
    pub name: String,
    /// Predicted key-value pairs emitted by the round's mappers.
    pub emitted: f64,
    /// Predicted key-value pairs shipped through the shuffle — equals
    /// `emitted` for rounds without a combiner, less with one (e.g. the
    /// multiway join's `3b − 2` vs the naive `3b`).
    pub shuffled: f64,
    /// Predicted shuffled payload bytes (`shuffled` × per-record bytes, with
    /// the same record weigher the engine uses).
    pub shuffle_bytes: f64,
}

impl RoundCost {
    /// A round without a combiner: everything emitted is shipped, at
    /// `bytes_per_record` bytes each.
    pub fn without_combiner(
        name: impl Into<String>,
        records: f64,
        bytes_per_record: usize,
    ) -> Self {
        RoundCost {
            name: name.into(),
            emitted: records,
            shuffled: records,
            shuffle_bytes: records * bytes_per_record as f64,
        }
    }

    /// A round whose combiner discounts the emitted pairs down to `shuffled`.
    pub fn with_combiner(
        name: impl Into<String>,
        emitted: f64,
        shuffled: f64,
        bytes_per_record: usize,
    ) -> Self {
        RoundCost {
            name: name.into(),
            emitted,
            shuffled,
            shuffle_bytes: shuffled * bytes_per_record as f64,
        }
    }
}

/// The planner's prediction for running one strategy on one request. All
/// quantities are in the paper's cost model (Section 1.2): communication is
/// key-value pairs shipped from mappers to reducers, computation is total
/// reducer work in the serial algorithm's natural unit.
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// The strategy this estimate is for.
    pub strategy: StrategyKind,
    /// Paper section the strategy implements (for `explain()` output).
    pub paper_section: &'static str,
    /// Map-reduce rounds the strategy needs (0 = serial).
    pub rounds: usize,
    /// Per-variable shares the strategy would use. For bucket schemes every
    /// variable has the same share `b`; serial strategies have no shares.
    pub shares: Vec<f64>,
    /// The single bucket count `b` for hash-ordered schemes, if applicable.
    pub buckets: Option<usize>,
    /// Per-round communication predictions (one entry per round, or per
    /// parallel job for CQ-oriented processing; empty for serial strategies).
    pub round_costs: Vec<RoundCost>,
    /// Predicted copies of each data edge shipped to reducers after combiner
    /// discounts (the paper's per-edge replication formulas: `b`, `3b − 2`,
    /// `C(b+p-3, p-2)`, ...).
    pub replication_per_edge: f64,
    /// Predicted total communication cost: the sum of the per-round shipped
    /// pairs (`replication_per_edge x m`).
    pub communication: f64,
    /// Predicted number of reducers that receive data.
    pub reducers: f64,
    /// Predicted total reducer work (Theorem 6.1 accounting via
    /// [`crate::convertible::predicted_parallel_work`]); for serial strategies
    /// this is the predicted serial running-time bound.
    pub reducer_work: f64,
    /// CQ order classes whose cost the estimator established with a solver
    /// call ([`crate::plan::search`]); 0 for strategies that do not search
    /// order classes. Exhaustive search scores every class; branch-and-bound
    /// scores the classes its lower bound could not prune.
    pub classes_scored: usize,
    /// CQ order classes the branch-and-bound lower bound eliminated without
    /// scoring; always 0 under exhaustive search. When a search ran,
    /// `classes_scored + classes_pruned = p!/|Aut(S)|`.
    pub classes_pruned: usize,
}

impl CostEstimate {
    /// Predicted key-value pairs emitted by the mappers across all rounds
    /// (before combiner discounts).
    pub fn emitted_communication(&self) -> f64 {
        self.round_costs.iter().map(|r| r.emitted).sum()
    }

    /// Predicted shuffled payload bytes across all rounds.
    pub fn predicted_shuffle_bytes(&self) -> f64 {
        self.round_costs.iter().map(|r| r.shuffle_bytes).sum()
    }

    /// True when a map-side combiner is predicted to remove pairs before the
    /// shuffle.
    pub fn has_combiner_discount(&self) -> bool {
        self.round_costs.iter().any(|r| r.shuffled < r.emitted)
    }
    /// The planner's ranking key: communication first (the paper's primary
    /// cost), predicted computation as the tie-breaker, strategy order as the
    /// final deterministic tie-breaker.
    pub fn score(&self) -> (f64, f64) {
        (self.communication, self.reducer_work)
    }

    /// One aligned row for [`crate::plan::ExecutionPlan::explain`].
    pub(crate) fn explain_row(&self, marker: char) -> String {
        let shares = if self.shares.is_empty() {
            "-".to_string()
        } else if let Some(b) = self.buckets {
            format!("b={b}")
        } else {
            let rendered: Vec<String> = self.shares.iter().map(|s| format!("{s:.1}")).collect();
            format!("[{}]", rendered.join(", "))
        };
        format!(
            "{marker} {:<28} {:<10} {:>12} {:>14} {:>10} {:>14}",
            format!("{} ({})", self.strategy, self.paper_section),
            shares,
            format_value(self.replication_per_edge),
            format_value(self.communication),
            format_value(self.reducers),
            format_value(self.reducer_work),
        )
    }
}

/// Compact numeric rendering for explain tables.
pub(crate) fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e7 {
        format!("{v:.2e}")
    } else if v.fract().abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_orders_by_communication_then_work() {
        let mk = |comm: f64, work: f64| CostEstimate {
            strategy: StrategyKind::BucketOriented,
            paper_section: "4.5",
            rounds: 1,
            shares: vec![],
            buckets: None,
            round_costs: vec![],
            replication_per_edge: 0.0,
            communication: comm,
            reducers: 0.0,
            reducer_work: work,
            classes_scored: 0,
            classes_pruned: 0,
        };
        assert!(mk(10.0, 99.0).score() < mk(11.0, 1.0).score());
        assert!(mk(10.0, 1.0).score() < mk(10.0, 2.0).score());
    }

    #[test]
    fn round_costs_expose_combiner_discounts_and_byte_totals() {
        let estimate = CostEstimate {
            strategy: StrategyKind::MultiwayTriangles,
            paper_section: "2.2",
            rounds: 1,
            shares: vec![],
            buckets: Some(6),
            round_costs: vec![
                RoundCost::with_combiner("multiway", 1800.0, 1600.0, 24),
                RoundCost::without_combiner("extra", 100.0, 16),
            ],
            replication_per_edge: 17.0,
            communication: 1700.0,
            reducers: 216.0,
            reducer_work: 0.0,
            classes_scored: 0,
            classes_pruned: 0,
        };
        assert_eq!(estimate.emitted_communication(), 1900.0);
        assert_eq!(estimate.predicted_shuffle_bytes(), 1600.0 * 24.0 + 1600.0);
        assert!(estimate.has_combiner_discount());
        let plain = RoundCost::without_combiner("r", 10.0, 8);
        assert_eq!(plain.emitted, plain.shuffled);
        assert_eq!(plain.shuffle_bytes, 80.0);
    }

    #[test]
    fn values_format_compactly() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(55.0), "55");
        assert_eq!(format_value(13.75), "13.75");
        assert_eq!(format_value(3.2e9), "3.20e9");
    }
}
