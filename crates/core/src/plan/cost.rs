//! [`CostEstimate`]: what the planner predicts for one strategy before
//! anything runs.

use crate::plan::strategy::StrategyKind;

/// The planner's prediction for running one strategy on one request. All
/// quantities are in the paper's cost model (Section 1.2): communication is
/// key-value pairs shipped from mappers to reducers, computation is total
/// reducer work in the serial algorithm's natural unit.
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// The strategy this estimate is for.
    pub strategy: StrategyKind,
    /// Paper section the strategy implements (for `explain()` output).
    pub paper_section: &'static str,
    /// Map-reduce rounds the strategy needs (0 = serial).
    pub rounds: usize,
    /// Per-variable shares the strategy would use. For bucket schemes every
    /// variable has the same share `b`; serial strategies have no shares.
    pub shares: Vec<f64>,
    /// The single bucket count `b` for hash-ordered schemes, if applicable.
    pub buckets: Option<usize>,
    /// Predicted copies of each data edge shipped to reducers (the paper's
    /// per-edge replication formulas: `b`, `3b - 2`, `C(b+p-3, p-2)`, ...).
    pub replication_per_edge: f64,
    /// Predicted total communication cost: `replication_per_edge x m`.
    pub communication: f64,
    /// Predicted number of reducers that receive data.
    pub reducers: f64,
    /// Predicted total reducer work (Theorem 6.1 accounting via
    /// [`crate::convertible::predicted_parallel_work`]); for serial strategies
    /// this is the predicted serial running-time bound.
    pub reducer_work: f64,
}

impl CostEstimate {
    /// The planner's ranking key: communication first (the paper's primary
    /// cost), predicted computation as the tie-breaker, strategy order as the
    /// final deterministic tie-breaker.
    pub fn score(&self) -> (f64, f64) {
        (self.communication, self.reducer_work)
    }

    /// One aligned row for [`crate::plan::ExecutionPlan::explain`].
    pub(crate) fn explain_row(&self, marker: char) -> String {
        let shares = if self.shares.is_empty() {
            "-".to_string()
        } else if let Some(b) = self.buckets {
            format!("b={b}")
        } else {
            let rendered: Vec<String> = self.shares.iter().map(|s| format!("{s:.1}")).collect();
            format!("[{}]", rendered.join(", "))
        };
        format!(
            "{marker} {:<28} {:<10} {:>12} {:>14} {:>10} {:>14}",
            format!("{} ({})", self.strategy, self.paper_section),
            shares,
            format_value(self.replication_per_edge),
            format_value(self.communication),
            format_value(self.reducers),
            format_value(self.reducer_work),
        )
    }
}

/// Compact numeric rendering for explain tables.
pub(crate) fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e7 {
        format!("{v:.2e}")
    } else if v.fract().abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_orders_by_communication_then_work() {
        let mk = |comm: f64, work: f64| CostEstimate {
            strategy: StrategyKind::BucketOriented,
            paper_section: "4.5",
            rounds: 1,
            shares: vec![],
            buckets: None,
            replication_per_edge: 0.0,
            communication: comm,
            reducers: 0.0,
            reducer_work: work,
        };
        assert!(mk(10.0, 99.0).score() < mk(11.0, 1.0).score());
        assert!(mk(10.0, 1.0).score() < mk(10.0, 2.0).score());
    }

    #[test]
    fn values_format_compactly() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(55.0), "55");
        assert_eq!(format_value(13.75), "13.75");
        assert_eq!(format_value(3.2e9), "3.20e9");
    }
}
