//! [`RunReport`]: the unified result type every strategy returns.

use crate::plan::strategy::StrategyKind;
use crate::result::{count_distinct, MapReduceRun, RunStats, SerialRun, SerialStats};
use std::sync::OnceLock;
use subgraph_mapreduce::{JobMetrics, RoundMetrics};
use subgraph_pattern::Instance;

/// Where a run's instances went.
#[derive(Clone, Debug)]
enum ReportOutput {
    /// The legacy path: every instance was collected into the report.
    Collected {
        instances: Vec<Instance>,
        distinct: OnceLock<usize>,
    },
    /// The instances were streamed into a caller-provided
    /// [`crate::sink::InstanceSink`]; only the count crossed back. The report
    /// holds no per-instance storage.
    Streamed { count: usize },
}

/// Output of executing an [`crate::plan::ExecutionPlan`], subsuming the older
/// [`MapReduceRun`] / [`SerialRun`] split: serial strategies simply have no
/// job metrics and zero rounds.
///
/// A report is either *collected* ([`crate::plan::ExecutionPlan::execute`] —
/// the instances live in the report) or *streamed*
/// ([`crate::plan::ExecutionPlan::run_with_sink`] — the instances went to the
/// caller's sink and only the count is retained). [`RunReport::count`] is
/// correct in both modes; [`RunReport::instances`] is empty for streamed
/// reports, and duplicate *verification* ([`RunReport::verified_duplicates`])
/// is only possible in collect mode.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The strategy that produced the result.
    pub strategy: StrategyKind,
    /// Number of map-reduce rounds executed (0 for serial strategies, 1 for
    /// the paper's single-round algorithms, 2 for the cascade baseline).
    /// CQ-oriented processing counts as 1 round even though it runs one
    /// parallel job per query — see `round_metrics` for the breakdown.
    pub rounds: usize,
    output: ReportOutput,
    /// Measured cost metrics combined over all round(s); `None` for serial
    /// strategies.
    pub metrics: Option<JobMetrics>,
    /// Measured metrics per round (per parallel job for CQ-oriented
    /// processing); empty for serial strategies.
    pub round_metrics: Vec<RoundMetrics>,
    /// Total computation cost in the algorithm's natural unit: the summed
    /// reducer work for map-reduce strategies, the serial `work` counter
    /// otherwise (the quantity the `O(n^α m^β)` bounds of Sections 6-7
    /// describe).
    pub work: u64,
}

impl RunReport {
    /// Wraps a collect-mode map-reduce result. `rounds` is the strategy's
    /// logical round count (CQ-oriented passes 1 even with several parallel
    /// jobs).
    pub fn from_map_reduce(strategy: StrategyKind, rounds: usize, run: MapReduceRun) -> Self {
        let metrics = run.metrics.clone();
        let round_metrics = run.round_metrics.clone();
        RunReport {
            strategy,
            rounds,
            work: metrics.reducer_work,
            metrics: Some(metrics),
            round_metrics,
            output: ReportOutput::Collected {
                instances: run.into_instances(),
                distinct: OnceLock::new(),
            },
        }
    }

    /// Wraps a collect-mode serial result.
    pub fn from_serial(strategy: StrategyKind, run: SerialRun) -> Self {
        let work = run.work;
        RunReport {
            strategy,
            rounds: 0,
            output: ReportOutput::Collected {
                instances: run.into_instances(),
                distinct: OnceLock::new(),
            },
            metrics: None,
            round_metrics: Vec::new(),
            work,
        }
    }

    /// Wraps a sink-mode map-reduce result: the instances went to the
    /// caller's sink, the report carries only their count and the metrics.
    pub fn streamed_map_reduce(strategy: StrategyKind, rounds: usize, stats: RunStats) -> Self {
        RunReport {
            strategy,
            rounds,
            output: ReportOutput::Streamed {
                count: stats.outputs,
            },
            work: stats.metrics.reducer_work,
            metrics: Some(stats.metrics),
            round_metrics: stats.round_metrics,
        }
    }

    /// Wraps a sink-mode serial result.
    pub fn streamed_serial(strategy: StrategyKind, stats: SerialStats) -> Self {
        RunReport {
            strategy,
            rounds: 0,
            output: ReportOutput::Streamed {
                count: stats.outputs,
            },
            metrics: None,
            round_metrics: Vec::new(),
            work: stats.work,
        }
    }

    /// Upgrades a streamed report to a collected one by attaching the
    /// instances a [`crate::sink::CollectSink`] gathered during the same run
    /// (the `Vec`-returning `execute()` path).
    pub(crate) fn with_collected(mut self, instances: Vec<Instance>) -> Self {
        debug_assert_eq!(
            self.count(),
            instances.len(),
            "collected instances must match the streamed count"
        );
        self.output = ReportOutput::Collected {
            instances,
            distinct: OnceLock::new(),
        };
        self
    }

    /// True when the instances were streamed to a sink instead of collected
    /// into the report.
    pub fn is_streamed(&self) -> bool {
        matches!(self.output, ReportOutput::Streamed { .. })
    }

    /// Number of instances found — the collected length, or the streamed
    /// count for sink-mode runs (never a misleading 0).
    pub fn count(&self) -> usize {
        match &self.output {
            ReportOutput::Collected { instances, .. } => instances.len(),
            ReportOutput::Streamed { count } => *count,
        }
    }

    /// The collected instances. Empty for streamed reports — check
    /// [`RunReport::is_streamed`] before concluding "no results" from an
    /// empty slice; [`RunReport::count`] is always accurate.
    pub fn instances(&self) -> &[Instance] {
        match &self.output {
            ReportOutput::Collected { instances, .. } => instances,
            ReportOutput::Streamed { .. } => &[],
        }
    }

    /// Consumes the report and returns the collected instances (empty for
    /// streamed reports).
    pub fn into_instances(self) -> Vec<Instance> {
        match self.output {
            ReportOutput::Collected { instances, .. } => instances,
            ReportOutput::Streamed { .. } => Vec::new(),
        }
    }

    /// Number of *distinct* instances (equals `count()` when the exactly-once
    /// invariant holds). Collect mode computes (and caches) the true value;
    /// streamed reports return the count, since distinctness can only be
    /// verified when the instances are retained — see
    /// [`RunReport::verified_duplicates`].
    pub fn distinct(&self) -> usize {
        match &self.output {
            ReportOutput::Collected {
                instances,
                distinct,
            } => *distinct.get_or_init(|| count_distinct(instances)),
            ReportOutput::Streamed { count } => *count,
        }
    }

    /// Duplicate discoveries. In collect mode this is measured
    /// (`count() - distinct()`); streamed reports return 0 *by trust in the
    /// exactly-once guarantee*, not by measurement — use
    /// [`RunReport::verified_duplicates`] to distinguish.
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }

    /// Measured duplicate count: `Some` when the instances were collected and
    /// could be checked, `None` for streamed runs (nothing was retained to
    /// check against).
    pub fn verified_duplicates(&self) -> Option<usize> {
        match &self.output {
            ReportOutput::Collected { .. } => Some(self.duplicates()),
            ReportOutput::Streamed { .. } => None,
        }
    }

    /// One honest line about the result for tables and summaries:
    /// `"N instances collected"` or `"N instances streamed to a sink (not
    /// retained)"` — so count-only runs never render as if nothing was found.
    pub fn describe_output(&self) -> String {
        match &self.output {
            ReportOutput::Collected { instances, .. } => {
                format!("{} instances collected", instances.len())
            }
            ReportOutput::Streamed { count } => {
                format!("{count} instances streamed to a sink (not retained)")
            }
        }
    }

    /// A human-readable multi-line summary of the run — what the `subgraph`
    /// CLI prints after a `count`/`enumerate` and what table generators embed.
    /// Serial strategies render without the map-reduce counters; streamed and
    /// collected runs both describe their output honestly (via
    /// [`RunReport::describe_output`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "strategy: {} ({} round{})\n",
            self.strategy,
            self.rounds,
            if self.rounds == 1 { "" } else { "s" },
        ));
        out.push_str(&format!("output:   {}\n", self.describe_output()));
        if let Some(verified) = self.verified_duplicates() {
            out.push_str(&format!("          {verified} duplicate discoveries\n"));
        }
        if let Some(metrics) = &self.metrics {
            out.push_str(&format!(
                "shuffle:  {} pairs shipped ({} emitted before combining, {} bytes)\n",
                metrics.shuffle_records, metrics.key_value_pairs, metrics.shuffle_bytes,
            ));
            for round in &self.round_metrics {
                out.push_str(&format!(
                    "          round {}: {} pairs shipped, {} outputs\n",
                    round.name, round.metrics.shuffle_records, round.metrics.outputs,
                ));
            }
        }
        out.push_str(&format!("work:     {}\n", self.work));
        out
    }

    /// Measured communication cost: key-value pairs actually shipped through
    /// the shuffle(s), i.e. after map-side combining. 0 for serial strategies,
    /// which ship nothing; identical to [`RunReport::emitted_communication`]
    /// for strategies without a combiner.
    pub fn communication(&self) -> usize {
        self.metrics.as_ref().map_or(0, |m| m.shuffle_records)
    }

    /// Key-value pairs emitted by the mappers before any combining.
    pub fn emitted_communication(&self) -> usize {
        self.metrics.as_ref().map_or(0, |m| m.key_value_pairs)
    }

    /// Measured shuffled payload bytes across all rounds.
    pub fn shuffle_bytes(&self) -> u64 {
        self.metrics.as_ref().map_or(0, |m| m.shuffle_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_map_reduce_reports_share_one_shape() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let serial = RunReport::from_serial(
            StrategyKind::SerialGeneric,
            SerialRun::new(vec![a.clone(), a.clone()], 9),
        );
        assert_eq!(serial.count(), 2);
        assert_eq!(serial.distinct(), 1);
        assert_eq!(serial.duplicates(), 1);
        assert_eq!(serial.verified_duplicates(), Some(1));
        assert_eq!(serial.work, 9);
        assert_eq!(serial.rounds, 0);
        assert_eq!(serial.communication(), 0);
        assert!(!serial.is_streamed());
        assert!(serial.metrics.is_none());
        assert!(serial.round_metrics.is_empty());

        let mr = RunReport::from_map_reduce(
            StrategyKind::BucketOriented,
            1,
            MapReduceRun::single_round(
                vec![a],
                "bucket-oriented",
                JobMetrics {
                    key_value_pairs: 45,
                    combiner_input_records: 45,
                    combiner_output_records: 42,
                    shuffle_records: 42,
                    shuffle_bytes: 840,
                    reducer_work: 7,
                    outputs: 1,
                    ..JobMetrics::default()
                },
            ),
        );
        assert_eq!(mr.count(), 1);
        assert_eq!(mr.instances().len(), 1);
        assert_eq!(mr.communication(), 42);
        assert_eq!(mr.emitted_communication(), 45);
        assert_eq!(mr.shuffle_bytes(), 840);
        assert_eq!(mr.work, 7);
        assert_eq!(mr.rounds, 1);
        assert_eq!(mr.round_metrics.len(), 1);
        assert_eq!(mr.round_metrics[0].name, "bucket-oriented");
    }

    #[test]
    fn streamed_reports_count_honestly_without_instances() {
        let stats = RunStats::single_round(
            "bucket-oriented",
            JobMetrics {
                shuffle_records: 600,
                outputs: 123,
                reducer_work: 40,
                ..JobMetrics::default()
            },
        );
        let report = RunReport::streamed_map_reduce(StrategyKind::BucketOriented, 1, stats);
        assert!(report.is_streamed());
        assert_eq!(report.count(), 123);
        assert!(report.instances().is_empty());
        assert_eq!(report.distinct(), 123);
        assert_eq!(report.duplicates(), 0);
        assert_eq!(report.verified_duplicates(), None);
        assert_eq!(report.work, 40);
        assert!(report.describe_output().contains("123 instances streamed"));
        assert_eq!(report.into_instances(), Vec::<Instance>::new());

        let serial = RunReport::streamed_serial(
            StrategyKind::SerialGeneric,
            SerialStats {
                outputs: 5,
                work: 50,
            },
        );
        assert_eq!(serial.count(), 5);
        assert_eq!(serial.rounds, 0);
        assert!(serial.describe_output().contains("streamed"));
    }

    #[test]
    fn render_summarizes_both_serial_and_map_reduce_runs() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let serial =
            RunReport::from_serial(StrategyKind::SerialGeneric, SerialRun::new(vec![a], 9));
        let text = serial.render();
        assert!(text.contains("strategy: serial-generic (0 rounds)"));
        assert!(text.contains("1 instances collected"));
        assert!(text.contains("0 duplicate discoveries"));
        assert!(text.contains("work:     9"));
        assert!(!text.contains("shuffle:"), "serial runs ship nothing");

        let streamed = RunReport::streamed_map_reduce(
            StrategyKind::BucketOriented,
            1,
            RunStats::single_round(
                "bucket-oriented",
                JobMetrics {
                    key_value_pairs: 45,
                    shuffle_records: 42,
                    shuffle_bytes: 840,
                    reducer_work: 7,
                    outputs: 3,
                    ..JobMetrics::default()
                },
            ),
        );
        let text = streamed.render();
        assert!(text.contains("strategy: bucket-oriented (1 round)"));
        assert!(text.contains("3 instances streamed"));
        assert!(text.contains("42 pairs shipped (45 emitted before combining, 840 bytes)"));
        assert!(text.contains("round bucket-oriented"));
        assert!(!text.contains("duplicate discoveries"));
    }
}
