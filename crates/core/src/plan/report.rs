//! [`RunReport`]: the unified result type every strategy returns.

use crate::plan::strategy::StrategyKind;
use crate::result::{MapReduceRun, SerialRun};
use subgraph_mapreduce::{JobMetrics, RoundMetrics};
use subgraph_pattern::Instance;

/// Output of executing an [`crate::plan::ExecutionPlan`], subsuming the older
/// [`MapReduceRun`] / [`SerialRun`] split: serial strategies simply have no
/// job metrics and zero rounds.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The strategy that produced the result.
    pub strategy: StrategyKind,
    /// Number of map-reduce rounds executed (0 for serial strategies, 1 for
    /// the paper's single-round algorithms, 2 for the cascade baseline).
    /// CQ-oriented processing counts as 1 round even though it runs one
    /// parallel job per query — see `round_metrics` for the breakdown.
    pub rounds: usize,
    /// Every instance found (exactly once each if the algorithm is correct).
    pub instances: Vec<Instance>,
    /// Measured cost metrics combined over all round(s); `None` for serial
    /// strategies.
    pub metrics: Option<JobMetrics>,
    /// Measured metrics per round (per parallel job for CQ-oriented
    /// processing); empty for serial strategies.
    pub round_metrics: Vec<RoundMetrics>,
    /// Total computation cost in the algorithm's natural unit: the summed
    /// reducer work for map-reduce strategies, the serial `work` counter
    /// otherwise (the quantity the `O(n^α m^β)` bounds of Sections 6-7
    /// describe).
    pub work: u64,
}

impl RunReport {
    /// Wraps a map-reduce result. `rounds` is the strategy's logical round
    /// count (CQ-oriented passes 1 even with several parallel jobs).
    pub fn from_map_reduce(strategy: StrategyKind, rounds: usize, run: MapReduceRun) -> Self {
        RunReport {
            strategy,
            rounds,
            work: run.metrics.reducer_work,
            metrics: Some(run.metrics),
            round_metrics: run.round_metrics,
            instances: run.instances,
        }
    }

    /// Wraps a serial result.
    pub fn from_serial(strategy: StrategyKind, run: SerialRun) -> Self {
        RunReport {
            strategy,
            rounds: 0,
            instances: run.instances,
            metrics: None,
            round_metrics: Vec::new(),
            work: run.work,
        }
    }

    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Number of *distinct* instances (equals `count()` when the exactly-once
    /// invariant holds).
    pub fn distinct(&self) -> usize {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Duplicate discoveries (0 when the exactly-once invariant holds).
    pub fn duplicates(&self) -> usize {
        self.count() - self.distinct()
    }

    /// Measured communication cost: key-value pairs actually shipped through
    /// the shuffle(s), i.e. after map-side combining. 0 for serial strategies,
    /// which ship nothing; identical to [`RunReport::emitted_communication`]
    /// for strategies without a combiner.
    pub fn communication(&self) -> usize {
        self.metrics.as_ref().map_or(0, |m| m.shuffle_records)
    }

    /// Key-value pairs emitted by the mappers before any combining.
    pub fn emitted_communication(&self) -> usize {
        self.metrics.as_ref().map_or(0, |m| m.key_value_pairs)
    }

    /// Measured shuffled payload bytes across all rounds.
    pub fn shuffle_bytes(&self) -> u64 {
        self.metrics.as_ref().map_or(0, |m| m.shuffle_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_map_reduce_reports_share_one_shape() {
        let a = Instance::from_edge_set([(0, 1), (1, 2), (0, 2)]);
        let serial = RunReport::from_serial(
            StrategyKind::SerialGeneric,
            SerialRun {
                instances: vec![a.clone(), a.clone()],
                work: 9,
            },
        );
        assert_eq!(serial.count(), 2);
        assert_eq!(serial.distinct(), 1);
        assert_eq!(serial.duplicates(), 1);
        assert_eq!(serial.work, 9);
        assert_eq!(serial.rounds, 0);
        assert_eq!(serial.communication(), 0);
        assert!(serial.metrics.is_none());
        assert!(serial.round_metrics.is_empty());

        let mr = RunReport::from_map_reduce(
            StrategyKind::BucketOriented,
            1,
            MapReduceRun::single_round(
                vec![a],
                "bucket-oriented",
                JobMetrics {
                    key_value_pairs: 45,
                    combiner_input_records: 45,
                    combiner_output_records: 42,
                    shuffle_records: 42,
                    shuffle_bytes: 840,
                    reducer_work: 7,
                    ..JobMetrics::default()
                },
            ),
        );
        assert_eq!(mr.count(), 1);
        assert_eq!(mr.communication(), 42);
        assert_eq!(mr.emitted_communication(), 45);
        assert_eq!(mr.shuffle_bytes(), 840);
        assert_eq!(mr.work, 7);
        assert_eq!(mr.rounds, 1);
        assert_eq!(mr.round_metrics.len(), 1);
        assert_eq!(mr.round_metrics[0].name, "bucket-oriented");
    }
}
