//! The [`Strategy`] trait and the built-in strategy catalog.
//!
//! Every enumeration algorithm of the paper is wrapped as a `Strategy`: it can
//! say whether it applies to a request, predict its communication and
//! computation cost (the two measures of Section 1.2), and execute. The
//! [`crate::plan::Planner`] ranks the predictions and the winning strategy
//! runs.

use crate::convertible::predicted_parallel_work;
use crate::enumerate::bucket_oriented::{run_bucket_oriented, vec_key_record_bytes};
use crate::enumerate::cq_oriented::run_cq_oriented;
use crate::enumerate::variable_oriented;
use crate::plan::cost::{CostEstimate, RoundCost};
use crate::plan::report::RunReport;
use crate::plan::request::EnumerationRequest;
use crate::plan::search::search_order_classes;
use crate::serial::{
    enumerate_bounded_degree_into, enumerate_by_decomposition_into, enumerate_generic_into,
    enumerate_triangles_into,
};
use crate::sink::{CollectSink, InstanceSink};
use crate::triangles::bucket_ordered::{
    run_bucket_ordered_triangles_into, triple_key_record_bytes,
};
use crate::triangles::cascade::{cascade_record_bytes, run_cascade_triangles_into};
use crate::triangles::multiway::{multiway_record_bytes, run_multiway_triangles_into};
use crate::triangles::partition::run_partition_triangles_into;
use std::fmt;
use subgraph_cq::cqs_for_sample;
use subgraph_pattern::decompose::decompose;
use subgraph_pattern::SampleGraph;
use subgraph_shares::counting::{
    binomial, bucket_oriented_replication, multiway_triangle_replication,
    partition_triangle_replication, useful_reducers,
};

/// Identifier of one enumeration strategy.
///
/// The variants are listed in the planner's tie-breaking order: when two
/// strategies predict identical communication and computation, the earlier
/// variant wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StrategyKind {
    /// Section 2.3 generalized: hash-ordered nodes, one reducer per
    /// non-decreasing bucket multiset (Section 4.5).
    BucketOriented,
    /// Section 4.3: all CQs in one job, one optimized share per variable.
    VariableOriented,
    /// Section 4.1: one job per conjunctive query (Theorem 4.4 baseline).
    CqOriented,
    /// Section 2.3: the hash-ordered triangle special case.
    BucketOrderedTriangles,
    /// Section 2.1: the Partition algorithm of Suri-Vassilvitskii.
    PartitionTriangles,
    /// Section 2.2: the plain multiway-join triangle algorithm.
    MultiwayTriangles,
    /// Section 2 motivation: the conventional two-round cascade of 2-way joins.
    CascadeTriangles,
    /// Section 2 baseline: Schank's degree-ordered serial triangle enumeration.
    SerialTriangles,
    /// Theorem 7.2: the serial decomposition join.
    SerialDecomposition,
    /// Theorem 7.3: the serial bounded-degree algorithm.
    SerialBoundedDegree,
    /// The serial backtracking matcher (correctness oracle, no cost bound).
    SerialGeneric,
}

impl StrategyKind {
    /// All strategy kinds in tie-breaking order.
    pub fn all() -> [StrategyKind; 11] {
        [
            StrategyKind::BucketOriented,
            StrategyKind::VariableOriented,
            StrategyKind::CqOriented,
            StrategyKind::BucketOrderedTriangles,
            StrategyKind::PartitionTriangles,
            StrategyKind::MultiwayTriangles,
            StrategyKind::CascadeTriangles,
            StrategyKind::SerialTriangles,
            StrategyKind::SerialDecomposition,
            StrategyKind::SerialBoundedDegree,
            StrategyKind::SerialGeneric,
        ]
    }

    /// True for the strategies that run on a single machine without a
    /// map-reduce round.
    pub fn is_serial(self) -> bool {
        matches!(
            self,
            StrategyKind::SerialTriangles
                | StrategyKind::SerialDecomposition
                | StrategyKind::SerialBoundedDegree
                | StrategyKind::SerialGeneric
        )
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StrategyKind::BucketOriented => "bucket-oriented",
            StrategyKind::VariableOriented => "variable-oriented",
            StrategyKind::CqOriented => "cq-oriented",
            StrategyKind::BucketOrderedTriangles => "bucket-ordered-triangles",
            StrategyKind::PartitionTriangles => "partition-triangles",
            StrategyKind::MultiwayTriangles => "multiway-triangles",
            StrategyKind::CascadeTriangles => "cascade-triangles",
            StrategyKind::SerialTriangles => "serial-triangles",
            StrategyKind::SerialDecomposition => "serial-decomposition",
            StrategyKind::SerialBoundedDegree => "serial-bounded-degree",
            StrategyKind::SerialGeneric => "serial-generic",
        };
        f.write_str(name)
    }
}

/// One enumeration strategy behind the planner.
///
/// Strategies are `Send + Sync`: a [`crate::plan::Planner`] (and every
/// [`crate::plan::ExecutionPlan`] it produces) can be shared across threads,
/// which is what lets a long-lived service plan and execute queries
/// concurrently over one strategy catalog. Implementations hold no per-query
/// state — everything a run needs travels through the request and the chosen
/// estimate — so the bound costs nothing.
pub trait Strategy: Send + Sync {
    /// Which strategy this is.
    fn kind(&self) -> StrategyKind;

    /// `Ok(())` when the strategy can run the request, `Err(reason)` when it
    /// cannot (wrong pattern shape, disconnected pattern, ...). The reducer
    /// budget is *not* part of applicability — every strategy degrades
    /// gracefully to small budgets — the planner decides between the serial
    /// and map-reduce families based on the budget instead.
    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String>;

    /// Predicts communication and computation cost for the request. Only
    /// meaningful when [`Strategy::applicability`] returned `Ok`.
    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate;

    /// Runs the strategy, streaming every instance into `sink` as it is
    /// found — the report carries metrics and the streamed count, never the
    /// instances. `chosen` is this strategy's own estimate for the same
    /// request (as returned by [`Strategy::estimate`]); implementations reuse
    /// its derived parameters — shares, bucket counts — instead of re-deriving
    /// them, so planning work (e.g. the share solver) is not paid twice.
    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport;

    /// Runs the strategy and collects every instance into the report — a
    /// thin [`CollectSink`] wrapper over [`Strategy::execute_into`].
    fn execute(&self, request: &EnumerationRequest<'_>, chosen: &CostEstimate) -> RunReport {
        let mut collected = CollectSink::new();
        let report = self.execute_into(request, chosen, &mut collected);
        report.with_collected(collected.into_items())
    }
}

/// The full built-in strategy catalog, in tie-breaking order.
pub(crate) fn builtin_strategies() -> Vec<std::sync::Arc<dyn Strategy>> {
    vec![
        std::sync::Arc::new(BucketOriented),
        std::sync::Arc::new(VariableOriented),
        std::sync::Arc::new(CqOriented),
        std::sync::Arc::new(BucketOrderedTriangles),
        std::sync::Arc::new(PartitionTriangles),
        std::sync::Arc::new(MultiwayTriangles),
        std::sync::Arc::new(CascadeTriangles),
        std::sync::Arc::new(SerialTriangles),
        std::sync::Arc::new(SerialDecomposition),
        std::sync::Arc::new(SerialBoundedDegree),
        std::sync::Arc::new(SerialGeneric),
    ]
}

// ---- shared helpers --------------------------------------------------------

/// True when the sample graph is exactly the triangle, enabling the Section 2
/// special-case algorithms.
fn is_triangle(sample: &SampleGraph) -> bool {
    sample.num_nodes() == 3 && sample.num_edges() == 3
}

/// Largest `b >= 1` such that the hash-ordered scheme's useful-reducer count
/// `C(b + p - 1, p)` (Theorem 4.2) stays within the budget `k`.
pub(crate) fn buckets_for_budget(p: usize, k: usize) -> usize {
    let k = k.max(1) as u128;
    let mut b = 1u64;
    while useful_reducers(b + 1, p as u64) <= k {
        b += 1;
    }
    b as usize
}

/// Largest `b >= 3` such that Partition's `C(b, 3)` reducer triples stay
/// within the budget `k`.
fn partition_groups_for_budget(k: usize) -> usize {
    let k = k.max(1) as u128;
    let mut b = 3u64;
    while binomial(b + 1, 3) <= k {
        b += 1;
    }
    b as usize
}

/// Largest `b >= 1` with `b^3 <= k` (the plain multiway join's reducer cube).
fn cube_root_budget(k: usize) -> usize {
    let mut b = 1usize;
    while (b + 1).pow(3) <= k.max(1) {
        b += 1;
    }
    b
}

/// Theorem 6.1's total-reducer-work prediction for a strategy whose effective
/// per-variable share is `buckets`, using the exponents of the sample graph's
/// best decomposition (Theorem 7.2) as the serial baseline.
fn decomposition_work(sample: &SampleGraph, graph_n: usize, graph_m: usize, buckets: f64) -> f64 {
    let d = decompose(sample);
    predicted_parallel_work(
        buckets.round().max(1.0) as usize,
        sample.num_nodes(),
        d.alpha as f64,
        d.beta(),
        graph_n,
        graph_m,
    )
}

/// Upper bound on the wedge (2-path) count from the degree sequence:
/// `sum_v C(d_v, 2)`.
fn wedge_bound(request: &EnumerationRequest<'_>) -> f64 {
    let graph = request.graph();
    graph
        .nodes()
        .map(|v| {
            let d = graph.degree(v) as f64;
            d * (d - 1.0) / 2.0
        })
        .sum()
}

/// The common part of every map-reduce estimate: total communication and the
/// per-edge replication are derived from the per-round shipped-pair
/// predictions, so combiner discounts automatically propagate into the
/// planner's ranking.
#[allow(clippy::too_many_arguments)]
fn mr_estimate(
    kind: StrategyKind,
    paper_section: &'static str,
    rounds: usize,
    shares: Vec<f64>,
    buckets: Option<usize>,
    round_costs: Vec<RoundCost>,
    reducers: f64,
    reducer_work: f64,
    m: usize,
) -> CostEstimate {
    let communication: f64 = round_costs.iter().map(|r| r.shuffled).sum();
    CostEstimate {
        strategy: kind,
        paper_section,
        rounds,
        shares,
        buckets,
        round_costs,
        replication_per_edge: if m == 0 {
            0.0
        } else {
            communication / m as f64
        },
        communication,
        reducers,
        reducer_work,
        classes_scored: 0,
        classes_pruned: 0,
    }
}

// ---- map-reduce strategies -------------------------------------------------

/// Section 4.5 bucket-oriented processing for arbitrary sample graphs.
pub struct BucketOriented;

impl Strategy for BucketOriented {
    fn kind(&self) -> StrategyKind {
        StrategyKind::BucketOriented
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if request.sample().num_edges() == 0 {
            return Err("the sample graph has no edges".into());
        }
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let p = request.sample().num_nodes();
        let b = buckets_for_budget(p, request.reducer_budget());
        let m = request.graph().num_edges();
        let records = bucket_oriented_replication(b as u64, p as u64) as f64 * m as f64;
        mr_estimate(
            self.kind(),
            "§4.5",
            1,
            vec![b as f64; p],
            Some(b),
            vec![RoundCost::without_combiner(
                "bucket-oriented",
                records,
                vec_key_record_bytes(p),
            )],
            useful_reducers(b as u64, p as u64) as f64,
            decomposition_work(request.sample(), request.graph().num_nodes(), m, b as f64),
            m,
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let b = chosen.buckets.unwrap_or_else(|| {
            buckets_for_budget(request.sample().num_nodes(), request.reducer_budget())
        });
        let stats =
            run_bucket_oriented(request.sample(), request.graph(), b, request.config(), sink);
        RunReport::streamed_map_reduce(self.kind(), 1, stats)
    }
}

/// Section 4.3 variable-oriented processing (one job, optimized shares).
pub struct VariableOriented;

impl Strategy for VariableOriented {
    fn kind(&self) -> StrategyKind {
        StrategyKind::VariableOriented
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if request.sample().num_edges() == 0 {
            return Err("the sample graph has no edges".into());
        }
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let plan = variable_oriented::plan(request.sample(), request.reducer_budget());
        let p = request.sample().num_nodes();
        let m = request.graph().num_edges();
        let reducers: f64 = plan.shares.iter().map(|&s| s as f64).product();
        let effective_share = reducers.powf(1.0 / p as f64);
        mr_estimate(
            self.kind(),
            "§4.3",
            1,
            plan.shares.iter().map(|&s| s as f64).collect(),
            None,
            vec![RoundCost::without_combiner(
                "variable-oriented",
                plan.predicted_replication * m as f64,
                vec_key_record_bytes(p),
            )],
            reducers,
            decomposition_work(
                request.sample(),
                request.graph().num_nodes(),
                m,
                effective_share,
            ),
            m,
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        // The estimate already paid for the share optimization; rebuild the
        // job plan from its integer shares instead of solving again.
        let stats = if chosen.shares.len() == request.sample().num_nodes() {
            let plan = variable_oriented::VariableOrientedPlan {
                cqs: cqs_for_sample(request.sample()),
                optimal_shares: chosen.shares.clone(),
                shares: chosen
                    .shares
                    .iter()
                    .map(|&s| s.round().max(1.0) as u32)
                    .collect(),
                predicted_replication: chosen.replication_per_edge,
            };
            variable_oriented::run_with_plan_into(request.graph(), &plan, request.config(), sink)
        } else {
            variable_oriented::run_variable_oriented(
                request.sample(),
                request.graph(),
                request.reducer_budget(),
                request.config(),
                sink,
            )
        };
        RunReport::streamed_map_reduce(self.kind(), 1, stats)
    }
}

/// Section 4.1 CQ-oriented processing (one job per conjunctive query).
///
/// The request's reducer budget `k` is a *per-query* budget here — each of
/// the |CQs| jobs gets its own k reducers, exactly the comparison of
/// Theorem 4.4 (which shows separate jobs are never cheaper even with that
/// advantage). The estimate's `reducers` field reports the |CQs| x k total so
/// `explain()` makes the unequal provisioning visible.
pub struct CqOriented;

impl Strategy for CqOriented {
    fn kind(&self) -> StrategyKind {
        StrategyKind::CqOriented
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if request.sample().num_edges() == 0 {
            return Err("the sample graph has no edges".into());
        }
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let k = request.reducer_budget().max(1) as f64;
        let p = request.sample().num_nodes();
        let m = request.graph().num_edges();
        // One RoundCost per parallel job: each CQ optimizes its own shares.
        // The search (branch-and-bound by default, exhaustive as the oracle)
        // establishes each class's cost without necessarily solving each one:
        // single-CQ expressions are orientation-independent, so pruned
        // classes inherit the winner's cost bitwise.
        let search = search_order_classes(request.sample(), k, request.order_class_search());
        let round_costs: Vec<RoundCost> = search
            .per_class_costs
            .iter()
            .enumerate()
            .map(|(job, &cost_per_edge)| {
                RoundCost::without_combiner(
                    format!("cq-job-{job}"),
                    cost_per_edge * m as f64,
                    vec_key_record_bytes(p),
                )
            })
            .collect();
        let jobs = search.total_classes as f64;
        let per_job_share = k.powf(1.0 / p as f64);
        let mut estimate = mr_estimate(
            self.kind(),
            "§4.1",
            1,
            // Every job optimizes its own shares, so no single share vector
            // describes the strategy; explain() renders this as "-".
            Vec::new(),
            None,
            round_costs,
            jobs * k,
            jobs * decomposition_work(
                request.sample(),
                request.graph().num_nodes(),
                m,
                per_job_share,
            ),
            m,
        );
        estimate.classes_scored = search.classes_scored;
        estimate.classes_pruned = search.classes_pruned;
        estimate
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        _chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        // Per-job shares are not carried in the estimate (each CQ has its
        // own), so the runner re-optimizes per query.
        let stats = run_cq_oriented(
            request.sample(),
            request.graph(),
            request.reducer_budget(),
            request.config(),
            sink,
        );
        RunReport::streamed_map_reduce(self.kind(), 1, stats)
    }
}

/// Section 2.3 hash-ordered triangle algorithm.
pub struct BucketOrderedTriangles;

impl Strategy for BucketOrderedTriangles {
    fn kind(&self) -> StrategyKind {
        StrategyKind::BucketOrderedTriangles
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if is_triangle(request.sample()) {
            Ok(())
        } else {
            Err("specialized to the triangle sample graph".into())
        }
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let b = buckets_for_budget(3, request.reducer_budget());
        let (n, m) = (request.graph().num_nodes(), request.graph().num_edges());
        mr_estimate(
            self.kind(),
            "§2.3",
            1,
            vec![b as f64; 3],
            Some(b),
            vec![RoundCost::without_combiner(
                "bucket-ordered",
                b as f64 * m as f64,
                triple_key_record_bytes(),
            )],
            useful_reducers(b as u64, 3) as f64,
            predicted_parallel_work(b, 3, 0.0, 1.5, n, m),
            m,
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let b = chosen
            .buckets
            .unwrap_or_else(|| buckets_for_budget(3, request.reducer_budget()));
        let stats = run_bucket_ordered_triangles_into(request.graph(), b, request.config(), sink);
        RunReport::streamed_map_reduce(self.kind(), 1, stats)
    }
}

/// Section 2.1 Partition algorithm.
pub struct PartitionTriangles;

impl Strategy for PartitionTriangles {
    fn kind(&self) -> StrategyKind {
        StrategyKind::PartitionTriangles
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if is_triangle(request.sample()) {
            Ok(())
        } else {
            Err("specialized to the triangle sample graph".into())
        }
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let b = partition_groups_for_budget(request.reducer_budget());
        let (n, m) = (request.graph().num_nodes(), request.graph().num_edges());
        mr_estimate(
            self.kind(),
            "§2.1",
            1,
            vec![b as f64; 3],
            Some(b),
            vec![RoundCost::without_combiner(
                "partition",
                partition_triangle_replication(b as u64) * m as f64,
                triple_key_record_bytes(),
            )],
            binomial(b as u64, 3) as f64,
            predicted_parallel_work(b, 3, 0.0, 1.5, n, m),
            m,
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let b = chosen
            .buckets
            .unwrap_or_else(|| partition_groups_for_budget(request.reducer_budget()));
        let stats = run_partition_triangles_into(request.graph(), b, request.config(), sink);
        RunReport::streamed_map_reduce(self.kind(), 1, stats)
    }
}

/// Section 2.2 plain multiway-join triangle algorithm.
pub struct MultiwayTriangles;

impl Strategy for MultiwayTriangles {
    fn kind(&self) -> StrategyKind {
        StrategyKind::MultiwayTriangles
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if is_triangle(request.sample()) {
            Ok(())
        } else {
            Err("specialized to the triangle sample graph".into())
        }
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let b = cube_root_budget(request.reducer_budget());
        let m = request.graph().num_edges();
        // The reducer-side join examines |XY| x |XZ| candidate pairs per
        // reducer: about (m/b^2)^2 over b^3 reducers, i.e. m^2 / b.
        let join_work = (m as f64).powi(2) / b as f64;
        // Mappers emit all 3b copies per edge (footnote 1); the map-side
        // combiner merges an edge's coinciding role emissions, shipping the
        // paper's 3b − 2 — unless combiners are disabled in the engine config.
        let emitted = 3.0 * b as f64 * m as f64;
        let shuffled = if request.config().use_combiners {
            multiway_triangle_replication(b as u64) * m as f64
        } else {
            emitted
        };
        mr_estimate(
            self.kind(),
            "§2.2",
            1,
            vec![b as f64; 3],
            Some(b),
            vec![RoundCost::with_combiner(
                "multiway",
                emitted,
                shuffled,
                multiway_record_bytes(),
            )],
            (b as f64).powi(3),
            join_work,
            m,
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let b = chosen
            .buckets
            .unwrap_or_else(|| cube_root_budget(request.reducer_budget()));
        let stats = run_multiway_triangles_into(request.graph(), b, request.config(), sink);
        RunReport::streamed_map_reduce(self.kind(), 1, stats)
    }
}

/// The conventional two-round cascade of two-way joins (Section 2 motivation).
pub struct CascadeTriangles;

impl Strategy for CascadeTriangles {
    fn kind(&self) -> StrategyKind {
        StrategyKind::CascadeTriangles
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if is_triangle(request.sample()) {
            Ok(())
        } else {
            Err("specialized to the triangle sample graph".into())
        }
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let m = request.graph().num_edges();
        let wedges = wedge_bound(request);
        let (wedge_bytes, closing_bytes) = cascade_record_bytes();
        // Round 1 ships 2m; round 2 ships every wedge plus every edge.
        mr_estimate(
            self.kind(),
            "§2 (2-round)",
            2,
            Vec::new(),
            None,
            vec![
                RoundCost::without_combiner("wedge", 2.0 * m as f64, wedge_bytes),
                RoundCost::without_combiner("closing", m as f64 + wedges, closing_bytes),
            ],
            request.graph().num_nodes() as f64 + wedges.min(m as f64 * m as f64),
            2.0 * m as f64 + 2.0 * wedges,
            m,
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        _chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let stats = run_cascade_triangles_into(request.graph(), request.config(), sink);
        RunReport::streamed_map_reduce(self.kind(), 2, stats)
    }
}

// ---- serial strategies -----------------------------------------------------

/// The common part of every serial estimate (no communication, no reducers).
fn serial_estimate(
    kind: StrategyKind,
    paper_section: &'static str,
    predicted_work: f64,
) -> CostEstimate {
    CostEstimate {
        strategy: kind,
        paper_section,
        rounds: 0,
        shares: Vec::new(),
        buckets: None,
        round_costs: Vec::new(),
        replication_per_edge: 0.0,
        communication: 0.0,
        reducers: 0.0,
        reducer_work: predicted_work,
        classes_scored: 0,
        classes_pruned: 0,
    }
}

/// Section 2 baseline: Schank's degree-ordered triangle enumeration
/// (`O(m^{3/2})` worst case, far less on sparse graphs).
pub struct SerialTriangles;

impl Strategy for SerialTriangles {
    fn kind(&self) -> StrategyKind {
        StrategyKind::SerialTriangles
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if !is_triangle(request.sample()) {
            return Err("the Section 2 baseline enumerates triangles only".into());
        }
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        // The algorithm examines exactly the properly ordered 2-paths of the
        // degree order (Lemma 7.1), so count them instead of quoting the
        // `O(m^{3/2})` worst case: against Theorem 7.3's `m · Δ^{p-2}` bound
        // the adversarial estimate would lose on every graph whose maximum
        // degree is below `√m`, even though this algorithm does far less work
        // there. Reading the counts off the graph's cached orientation also
        // means planning builds the index execution runs on, so a plan-cache
        // hit skips both.
        let forward = request.graph().forward();
        let mut two_paths = 0.0;
        for v in request.graph().nodes() {
            let later = forward.later(v).len() as f64;
            two_paths += later * (later - 1.0) / 2.0;
        }
        serial_estimate(self.kind(), "§2 / Lemma 7.1", two_paths)
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        _chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let stats = enumerate_triangles_into(request.graph(), sink);
        RunReport::streamed_serial(self.kind(), stats)
    }
}

/// Theorem 7.2 decomposition join.
pub struct SerialDecomposition;

impl Strategy for SerialDecomposition {
    fn kind(&self) -> StrategyKind {
        StrategyKind::SerialDecomposition
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if request.sample().num_nodes() == 0 {
            return Err("the sample graph is empty".into());
        }
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let d = decompose(request.sample());
        let (n, m) = (request.graph().num_nodes(), request.graph().num_edges());
        serial_estimate(
            self.kind(),
            "Thm 7.2",
            (n as f64).powf(d.alpha as f64) * (m as f64).powf(d.beta()),
        )
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        _chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let stats = enumerate_by_decomposition_into(request.sample(), request.graph(), sink);
        RunReport::streamed_serial(self.kind(), stats)
    }
}

/// Theorem 7.3 bounded-degree algorithm.
pub struct SerialBoundedDegree;

impl Strategy for SerialBoundedDegree {
    fn kind(&self) -> StrategyKind {
        StrategyKind::SerialBoundedDegree
    }

    fn applicability(&self, request: &EnumerationRequest<'_>) -> Result<(), String> {
        if request.sample().num_nodes() < 2 {
            return Err("Theorem 7.3 needs at least two pattern nodes".into());
        }
        if !request.sample().is_connected() {
            return Err("Theorem 7.3 needs a connected pattern".into());
        }
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        let p = request.sample().num_nodes();
        let m = request.graph().num_edges() as f64;
        let delta = request.graph().max_degree().max(1) as f64;
        serial_estimate(self.kind(), "Thm 7.3", m * delta.powf(p as f64 - 2.0))
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        _chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let stats = enumerate_bounded_degree_into(request.sample(), request.graph(), sink);
        RunReport::streamed_serial(self.kind(), stats)
    }
}

/// The generic backtracking matcher (fallback / oracle; no worst-case bound).
pub struct SerialGeneric;

impl Strategy for SerialGeneric {
    fn kind(&self) -> StrategyKind {
        StrategyKind::SerialGeneric
    }

    fn applicability(&self, _request: &EnumerationRequest<'_>) -> Result<(), String> {
        Ok(())
    }

    fn estimate(&self, request: &EnumerationRequest<'_>) -> CostEstimate {
        // Same anchored-candidate structure as Theorem 7.3 but without the
        // guarantee; the planner therefore prefers the strategies with bounds
        // on ties (they register earlier).
        let p = request.sample().num_nodes().max(2);
        let m = request.graph().num_edges() as f64;
        let delta = request.graph().max_degree().max(1) as f64;
        serial_estimate(self.kind(), "§6 oracle", m * delta.powf(p as f64 - 2.0))
    }

    fn execute_into(
        &self,
        request: &EnumerationRequest<'_>,
        _chosen: &CostEstimate,
        sink: &mut dyn InstanceSink,
    ) -> RunReport {
        let stats = enumerate_generic_into(request.sample(), request.graph(), sink);
        RunReport::streamed_serial(self.kind(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    #[test]
    fn bucket_counts_respect_their_budgets() {
        // Theorem 4.2: C(b + p - 1, p) useful reducers.
        assert_eq!(buckets_for_budget(3, 220), 10); // C(12, 3) = 220
        assert_eq!(buckets_for_budget(3, 219), 9);
        assert_eq!(buckets_for_budget(4, 750), 10); // C(13, 4) = 715 <= 750 < C(14, 4)
        assert_eq!(buckets_for_budget(3, 1), 1);
        assert_eq!(partition_groups_for_budget(220), 12); // C(12, 3) = 220
        assert_eq!(partition_groups_for_budget(1), 3);
        assert_eq!(cube_root_budget(216), 6);
        assert_eq!(cube_root_budget(215), 5);
        assert_eq!(cube_root_budget(1), 1);
    }

    #[test]
    fn triangle_specializations_reject_other_patterns() {
        let g = generators::complete(5);
        let request = EnumerationRequest::new(catalog::square(), &g);
        for strategy in [
            Box::new(BucketOrderedTriangles) as Box<dyn Strategy>,
            Box::new(PartitionTriangles),
            Box::new(MultiwayTriangles),
            Box::new(CascadeTriangles),
        ] {
            assert!(strategy.applicability(&request).is_err());
        }
        let triangle_request = EnumerationRequest::new(catalog::triangle(), &g);
        assert!(BucketOrderedTriangles
            .applicability(&triangle_request)
            .is_ok());
    }

    #[test]
    fn bounded_degree_needs_connected_patterns() {
        let g = generators::complete(5);
        let disconnected = SampleGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let request = EnumerationRequest::new(disconnected, &g);
        assert!(SerialBoundedDegree.applicability(&request).is_err());
        assert!(SerialDecomposition.applicability(&request).is_ok());
        assert!(SerialGeneric.applicability(&request).is_ok());
    }

    #[test]
    fn estimates_carry_the_paper_formulas() {
        let g = generators::gnm(100, 600, 5);
        let request = EnumerationRequest::new(catalog::triangle(), &g).reducers(220);
        let ordered = BucketOrderedTriangles.estimate(&request);
        assert_eq!(ordered.buckets, Some(10));
        assert!((ordered.replication_per_edge - 10.0).abs() < 1e-12);
        assert!((ordered.communication - 6000.0).abs() < 1e-9);
        let partition = PartitionTriangles.estimate(&request);
        assert_eq!(partition.buckets, Some(12));
        assert!((partition.replication_per_edge - 13.75).abs() < 1e-12);
        // With combiners on (the default), multiway ships the paper's 3b − 2
        // per edge even though its mappers emit 3b (footnote 1).
        let multiway = MultiwayTriangles.estimate(&request);
        assert_eq!(multiway.buckets, Some(6));
        assert!((multiway.replication_per_edge - 16.0).abs() < 1e-12);
        assert!((multiway.emitted_communication() - 18.0 * 600.0).abs() < 1e-9);
        assert!(multiway.has_combiner_discount());
        // Figure 2's ordering at ~220 reducers.
        assert!(ordered.communication < partition.communication);
        assert!(partition.communication < multiway.communication);
    }

    #[test]
    fn combiner_discount_respects_the_engine_config() {
        let g = generators::gnm(100, 600, 5);
        let naive = EnumerationRequest::new(catalog::triangle(), &g)
            .reducers(220)
            .engine(subgraph_mapreduce::EngineConfig::default().combiners(false));
        let multiway = MultiwayTriangles.estimate(&naive);
        assert!((multiway.replication_per_edge - 18.0).abs() < 1e-12);
        assert!(!multiway.has_combiner_discount());
    }

    #[test]
    fn cascade_estimate_predicts_both_rounds() {
        let g = generators::gnm(100, 600, 5);
        let request = EnumerationRequest::new(catalog::triangle(), &g).reducers(220);
        let cascade = CascadeTriangles.estimate(&request);
        assert_eq!(cascade.rounds, 2);
        assert_eq!(cascade.round_costs.len(), 2);
        assert_eq!(cascade.round_costs[0].name, "wedge");
        assert_eq!(cascade.round_costs[1].name, "closing");
        assert!((cascade.round_costs[0].shuffled - 2.0 * 600.0).abs() < 1e-9);
        assert!(
            (cascade.communication
                - (cascade.round_costs[0].shuffled + cascade.round_costs[1].shuffled))
                .abs()
                < 1e-9
        );
        assert!(cascade.predicted_shuffle_bytes() > 0.0);
    }

    #[test]
    fn execution_matches_the_oracle_for_each_strategy_kind() {
        let g = generators::gnm(40, 220, 77);
        let expected = enumerate_generic(&catalog::triangle(), &g).count();
        for kind in StrategyKind::all() {
            let request = EnumerationRequest::new(catalog::triangle(), &g)
                .reducers(64)
                .engine(subgraph_mapreduce::EngineConfig::serial());
            let strategy = builtin_strategies()
                .into_iter()
                .find(|s| s.kind() == kind)
                .expect("every kind has a builtin");
            assert!(strategy.applicability(&request).is_ok(), "{kind}");
            let estimate = strategy.estimate(&request);
            let report = strategy.execute(&request, &estimate);
            assert_eq!(report.count(), expected, "{kind}");
            assert_eq!(report.duplicates(), 0, "{kind}");
            assert_eq!(report.strategy, kind);
            assert_eq!(kind.is_serial(), report.metrics.is_none(), "{kind}");
        }
    }
}
