//! The cost-driven planning layer: one entry point for every enumeration
//! strategy in the workspace.
//!
//! The paper's central contribution is *choosing* among single-round
//! strategies by comparing predicted communication and computation cost —
//! Partition vs. multiway vs. bucket-ordered for triangles (Section 2), CQ-,
//! variable- and bucket-oriented processing for general sample graphs
//! (Section 4), and the convertible serial algorithms (Sections 6-7). This
//! module packages that choice the way a query optimizer would:
//!
//! 1. Build an [`EnumerationRequest`] — the sample graph (or a named catalog
//!    pattern), the data-graph handle, the reducer budget `k`, an optional
//!    strategy override and the engine configuration.
//! 2. The [`Planner`] scores every applicable [`Strategy`] using the
//!    `subgraph-shares` cost expressions and the Theorem 6.1 work accounting
//!    ([`crate::convertible::predicted_parallel_work`]).
//! 3. The returned [`ExecutionPlan`] can be inspected
//!    ([`ExecutionPlan::explain`] prints the chosen strategy, per-variable
//!    shares, predicted replication and predicted reducer work for every
//!    candidate) and executed ([`ExecutionPlan::execute`] returns a unified
//!    [`RunReport`]).
//!
//! ```
//! use subgraph_core::plan::{EnumerationRequest, StrategyKind};
//! use subgraph_graph::generators;
//!
//! let graph = generators::gnm(200, 1_000, 42);
//! let plan = EnumerationRequest::named("lollipop", &graph)
//!     .unwrap()
//!     .reducers(750)
//!     .plan()
//!     .unwrap();
//! assert_eq!(plan.strategy(), StrategyKind::BucketOriented);
//! let report = plan.execute();
//! assert_eq!(report.duplicates(), 0); // every instance exactly once
//! ```

pub mod cost;
pub mod planner;
pub mod report;
pub mod request;
pub mod search;
pub mod strategy;

pub use cost::CostEstimate;
pub use planner::{ExecutionPlan, Planner};
pub use report::RunReport;
pub use request::{EnumerationRequest, PlanError, DEFAULT_REDUCERS};
pub use search::{search_order_classes, ClassSearch, SearchMode};
pub use strategy::{Strategy, StrategyKind};
