//! Branch-and-bound search over CQ order classes (the Theorem 3.1 quotient
//! `S_p / Aut(S)`), replacing the estimator's exhaustive score-everything
//! loop for CQ-oriented processing.
//!
//! An 8-node pattern like `hypercube3` has `8!/48 = 840` order classes, and
//! scoring each one means a full share optimization — the reason `explain`
//! on big patterns used to take seconds. The search here walks the canonical
//! prefix tree instead ([`subgraph_pattern::automorphism::is_canonical_prefix`]):
//! partial orderings grow one node at a time, each prefix is lower-bounded by
//! the Section-5 Shares communication expression of its decided edges
//! ([`subgraph_shares::partial_cost_expression`] — admissible and monotone,
//! see `subgraph_shares::bound`), branches whose bound cannot beat the
//! incumbent are pruned, and bound/leaf solves are memoized per automorphism
//! orbit by expression signature so symmetric prefixes are solved once.
//!
//! For single-CQ cost expressions the bound is *tight* — every completion of
//! every prefix has the same expression, because a term is keyed by its
//! undirected sample edge with coefficient 1 whatever the orientation — so
//! the search degenerates into its best case: the first (identity) leaf sets
//! the incumbent and every other branch prunes at its shallowest canonical
//! node, one solver call in total. The exhaustive path remains available as
//! [`SearchMode::Exhaustive`] and is the oracle the differential suite
//! (`tests/planner_search.rs`) compares against: identical winning class,
//! bitwise-identical costs.

use std::collections::HashMap;
use subgraph_cq::PartialCq;
use subgraph_pattern::automorphism::{
    automorphism_group, is_canonical_prefix, representatives_for_group, NodeOrdering, Permutation,
};
use subgraph_pattern::{PatternNode, SampleGraph};
use subgraph_shares::dominance::single_cq_expression_with_dominance;
use subgraph_shares::{
    expression_signature, optimize_shares, partial_cost_expression, ExpressionSignature,
};

/// How the planner explores the order classes of a pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SearchMode {
    /// Branch-and-bound over the canonical prefix tree with Shares
    /// lower-bound pruning and per-orbit memoization (the default).
    #[default]
    BranchAndBound,
    /// Score every class representative — the original estimator loop, kept
    /// as the test oracle behind this config flag.
    Exhaustive,
}

/// The outcome of searching a pattern's order classes at reducer budget `k`.
#[derive(Clone, Debug)]
pub struct ClassSearch {
    /// The winning class representative (lexicographically smallest ordering
    /// of the cheapest class; ties keep the earliest, matching the
    /// exhaustive loop's first-wins rule).
    pub winner: NodeOrdering,
    /// The winner's optimized per-edge communication cost.
    pub winner_cost: f64,
    /// Per-class optimized costs, indexed like
    /// [`subgraph_pattern::automorphism::order_representatives`]. For
    /// single-CQ expressions every class has the same expression and hence
    /// bitwise the same cost, which is what lets branch-and-bound fill this
    /// without solving each class.
    pub per_class_costs: Vec<f64>,
    /// Classes whose cost was established by a solver call at a leaf.
    pub classes_scored: usize,
    /// Classes eliminated by the lower bound without reaching a leaf.
    pub classes_pruned: usize,
    /// `p! / |Aut(S)|` — always `classes_scored + classes_pruned`.
    pub total_classes: usize,
}

/// `p! / |Aut|` without overflow worries (patterns are at most a few nodes).
fn quotient_size(p: usize, aut: usize) -> usize {
    (1..=p).product::<usize>() / aut
}

/// Searches the order classes of `sample` for the cheapest CQ at reducer
/// budget `k`, in the requested mode. Both modes visit class representatives
/// in lexicographic order and resolve cost ties toward the earlier class, so
/// they always agree on the winner; the differential suite additionally pins
/// their costs bitwise.
pub fn search_order_classes(sample: &SampleGraph, k: f64, mode: SearchMode) -> ClassSearch {
    let autos = automorphism_group(sample);
    let total = quotient_size(sample.num_nodes(), autos.len());
    match mode {
        SearchMode::Exhaustive => exhaustive(sample, k, &autos, total),
        SearchMode::BranchAndBound => branch_and_bound(sample, k, &autos, total),
    }
}

fn exhaustive(sample: &SampleGraph, k: f64, autos: &[Permutation], total: usize) -> ClassSearch {
    let reps = representatives_for_group(sample.num_nodes(), autos);
    debug_assert_eq!(reps.len(), total);
    let mut per_class_costs = Vec::with_capacity(reps.len());
    let mut winner = 0usize;
    let mut winner_cost = f64::INFINITY;
    for (i, rep) in reps.iter().enumerate() {
        let mut partial = PartialCq::new(sample);
        for &v in rep {
            partial.push(v);
        }
        let expr = single_cq_expression_with_dominance(&partial.complete());
        let cost = optimize_shares(&expr, k).cost_per_edge;
        if cost < winner_cost {
            winner_cost = cost;
            winner = i;
        }
        per_class_costs.push(cost);
    }
    ClassSearch {
        winner: reps[winner].clone(),
        winner_cost,
        per_class_costs,
        classes_scored: total,
        classes_pruned: 0,
        total_classes: total,
    }
}

struct BoundedSearch<'s> {
    sample: &'s SampleGraph,
    autos: &'s [Permutation],
    k: f64,
    /// Solver results keyed by expression signature — the per-orbit memo
    /// (symmetric prefixes share a signature, so each orbit's expression is
    /// solved once).
    memo: HashMap<ExpressionSignature, f64>,
    incumbent: Option<(NodeOrdering, f64)>,
    classes_scored: usize,
}

impl BoundedSearch<'_> {
    /// The Shares lower bound of the current prefix (exact cost at a leaf),
    /// memoized per expression orbit.
    fn bound(&mut self, partial: &PartialCq<'_>) -> f64 {
        let expr = partial_cost_expression(
            self.sample.num_nodes(),
            self.sample.edges(),
            partial.oriented_edges(),
        );
        let signature = expression_signature(&expr);
        if let Some(&cost) = self.memo.get(&signature) {
            return cost;
        }
        let cost = optimize_shares(&expr, self.k).cost_per_edge;
        self.memo.insert(signature, cost);
        cost
    }

    fn descend(&mut self, partial: &mut PartialCq<'_>) {
        if partial.is_complete() {
            // The prefix bound at a leaf *is* the leaf's true optimized cost
            // (every edge decided), so no separate solve is needed.
            let cost = self.bound(partial);
            self.classes_scored += 1;
            let improves = match &self.incumbent {
                Some((_, best)) => cost < *best,
                None => true,
            };
            if improves {
                self.incumbent = Some((partial.prefix().to_vec(), cost));
            }
            return;
        }
        for v in 0..self.sample.num_nodes() as PatternNode {
            if partial.prefix().contains(&v) {
                continue;
            }
            partial.push(v);
            // Only canonical prefixes can extend to class representatives
            // (the orbit pruning); among those, prune any branch whose lower
            // bound cannot strictly beat the incumbent — the `>=` mirrors the
            // exhaustive loop's first-wins tie-break, so an equal-cost later
            // class never displaces the winner there either.
            if is_canonical_prefix(self.autos, partial.prefix()) {
                let best = self.incumbent.as_ref().map(|(_, cost)| *cost);
                let prune = match best {
                    Some(best) => self.bound(partial) >= best,
                    None => false,
                };
                if !prune {
                    self.descend(partial);
                }
            }
            partial.pop();
        }
    }
}

fn branch_and_bound(
    sample: &SampleGraph,
    k: f64,
    autos: &[Permutation],
    total: usize,
) -> ClassSearch {
    let mut search = BoundedSearch {
        sample,
        autos,
        k,
        memo: HashMap::new(),
        incumbent: None,
        classes_scored: 0,
    };
    let mut partial = PartialCq::new(sample);
    search.descend(&mut partial);
    let (winner, winner_cost) = search
        .incumbent
        .expect("the leftmost canonical branch always reaches a leaf before any pruning");
    // Single-CQ cost expressions are orientation-independent (see the module
    // docs), so every class's cost equals the winner's — bitwise, because the
    // solver is deterministic over identical expressions. The differential
    // suite pins this against the exhaustive oracle.
    ClassSearch {
        per_class_costs: vec![winner_cost; total],
        winner,
        winner_cost,
        classes_scored: search.classes_scored,
        classes_pruned: total - search.classes_scored,
        total_classes: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_pattern::catalog;

    #[test]
    fn both_modes_agree_on_catalog_patterns() {
        for entry in catalog::entries() {
            // The exhaustive oracle solves every class; in debug builds the
            // solver is ~15x slower, so the 840-class hypercube3 comparison
            // is left to release runs (the full catalog is pinned in release
            // by this test, tests/planner_search.rs and the CI plan-gate).
            if cfg!(debug_assertions) && entry.order_classes() > 120 {
                continue;
            }
            for k in [16.0, 750.0] {
                let bb = search_order_classes(&entry.sample, k, SearchMode::BranchAndBound);
                let ex = search_order_classes(&entry.sample, k, SearchMode::Exhaustive);
                assert_eq!(bb.winner, ex.winner, "{} k={k}", entry.name);
                assert_eq!(
                    bb.winner_cost.to_bits(),
                    ex.winner_cost.to_bits(),
                    "{} k={k}",
                    entry.name
                );
                assert_eq!(bb.per_class_costs.len(), ex.per_class_costs.len());
                for (a, b) in bb.per_class_costs.iter().zip(&ex.per_class_costs) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} k={k}", entry.name);
                }
                assert_eq!(bb.total_classes, entry.order_classes(), "{}", entry.name);
                assert_eq!(
                    bb.classes_scored + bb.classes_pruned,
                    bb.total_classes,
                    "{}",
                    entry.name
                );
                assert_eq!(ex.classes_pruned, 0);
                assert_eq!(ex.classes_scored, ex.total_classes);
            }
        }
    }

    #[test]
    fn tight_bound_scores_one_class_and_prunes_the_rest() {
        // The single-CQ expression is the same for every ordering, so the
        // first leaf wins and everything else prunes at its shallowest
        // canonical prefix.
        let entry_counts = [("triangle", 1usize), ("square", 3), ("lollipop", 12)];
        for (name, classes) in entry_counts {
            let sample = catalog::by_name(name).unwrap();
            let search = search_order_classes(&sample, 64.0, SearchMode::BranchAndBound);
            assert_eq!(search.total_classes, classes, "{name}");
            assert_eq!(search.classes_scored, 1, "{name}");
            assert_eq!(search.classes_pruned, classes - 1, "{name}");
            // The identity ordering is always the lexicographically first
            // class representative, hence the first-wins winner.
            let identity: NodeOrdering = (0..sample.num_nodes() as PatternNode).collect();
            assert_eq!(search.winner, identity, "{name}");
        }
    }

    #[test]
    fn memo_collapses_the_orbit_solves() {
        // hypercube3: 840 classes, one expression orbit — the whole search
        // performs a single share optimization.
        let sample = catalog::by_name("hypercube3").unwrap();
        let autos = automorphism_group(&sample);
        let mut search = BoundedSearch {
            sample: &sample,
            autos: &autos,
            k: 750.0,
            memo: HashMap::new(),
            incumbent: None,
            classes_scored: 0,
        };
        let mut partial = PartialCq::new(&sample);
        search.descend(&mut partial);
        assert_eq!(search.memo.len(), 1);
        assert_eq!(search.classes_scored, 1);
    }
}
