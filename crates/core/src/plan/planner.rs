//! The [`Planner`]: scores every applicable strategy and returns an
//! inspectable [`ExecutionPlan`].

use crate::plan::cost::{format_value, CostEstimate};
use crate::plan::report::RunReport;
use crate::plan::request::{EnumerationRequest, PlanError};
use crate::plan::strategy::{builtin_strategies, Strategy, StrategyKind};
use crate::sink::{CountSink, InstanceSink};
use std::sync::Arc;

/// Chooses the cheapest strategy for an [`EnumerationRequest`].
///
/// The planner asks every registered strategy for a [`CostEstimate`] and ranks
/// them the way the paper compares algorithms: predicted communication cost
/// first (Sections 2 and 4), predicted computation cost as the tie-breaker
/// (Sections 6-7). A reducer budget of at most 1 plans among the serial
/// algorithms; a larger budget plans among the map-reduce strategies. A
/// strategy override in the request skips the ranking entirely (only the
/// applicability check runs).
pub struct Planner {
    strategies: Vec<Arc<dyn Strategy>>,
}

impl Planner {
    /// A planner over every built-in strategy.
    pub fn new() -> Self {
        Planner {
            strategies: builtin_strategies(),
        }
    }

    /// A planner restricted to an explicit strategy list (mainly for tests
    /// and ablation experiments). The plan executes exactly the instances
    /// registered here, so custom [`Strategy`] implementations run as given.
    pub fn with_strategies(strategies: Vec<Arc<dyn Strategy>>) -> Self {
        Planner { strategies }
    }

    /// Plans a request: estimates every applicable strategy, ranks, and
    /// returns the inspectable plan.
    pub fn plan<'g>(
        &self,
        request: EnumerationRequest<'g>,
    ) -> Result<ExecutionPlan<'g>, PlanError> {
        if request.sample().num_edges() == 0 {
            return Err(PlanError::EmptyPattern);
        }

        if let Some(kind) = request.strategy_override() {
            let strategy = self
                .strategies
                .iter()
                .find(|s| s.kind() == kind)
                .ok_or(PlanError::NoApplicableStrategy)?;
            strategy
                .applicability(&request)
                .map_err(|reason| PlanError::NotApplicable {
                    strategy: kind,
                    reason,
                })?;
            let chosen = strategy.estimate(&request);
            return Ok(ExecutionPlan {
                candidates: vec![chosen.clone()],
                chosen,
                chosen_impl: Arc::clone(strategy),
                request,
            });
        }

        // Budget <= 1 means "no cluster": plan among the serial algorithms.
        let want_serial = request.reducer_budget() <= 1;
        let mut scored: Vec<(CostEstimate, Arc<dyn Strategy>)> = self
            .strategies
            .iter()
            .filter(|s| s.kind().is_serial() == want_serial)
            .filter(|s| s.applicability(&request).is_ok())
            .map(|s| (s.estimate(&request), Arc::clone(s)))
            .collect();
        if scored.is_empty() {
            return Err(PlanError::NoApplicableStrategy);
        }
        // Stable sort: registration order breaks exact ties.
        scored.sort_by(|a, b| {
            a.0.score()
                .partial_cmp(&b.0.score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let chosen_impl = Arc::clone(&scored[0].1);
        let candidates: Vec<CostEstimate> = scored.into_iter().map(|(c, _)| c).collect();
        Ok(ExecutionPlan {
            chosen: candidates[0].clone(),
            candidates,
            chosen_impl,
            request,
        })
    }

    /// Rebuilds an [`ExecutionPlan`] from a previously computed decision
    /// without re-estimating anything: `chosen` (and the optional ranked
    /// `candidates` list for `explain()`) come from an earlier
    /// [`Planner::plan`] whose estimates the caller kept — a plan cache does
    /// exactly this. The strategy implementation is looked up by kind; every
    /// derived parameter (shares, bucket counts) is reused from `chosen`, so
    /// resuming performs zero planning work.
    ///
    /// The caller is responsible for keying cached estimates so `chosen` is
    /// valid for `request` — same pattern, same reducer budget, and a data
    /// graph the cost model cannot distinguish from the one the estimate was
    /// computed for (e.g. equal [`subgraph_graph::GraphStats::fingerprint`]).
    pub fn resume<'g>(
        &self,
        request: EnumerationRequest<'g>,
        chosen: CostEstimate,
        candidates: Vec<CostEstimate>,
    ) -> Result<ExecutionPlan<'g>, PlanError> {
        let strategy = self
            .strategies
            .iter()
            .find(|s| s.kind() == chosen.strategy)
            .ok_or(PlanError::NoApplicableStrategy)?;
        let candidates = if candidates.is_empty() {
            vec![chosen.clone()]
        } else {
            candidates
        };
        Ok(ExecutionPlan {
            chosen,
            chosen_impl: Arc::clone(strategy),
            candidates,
            request,
        })
    }
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

/// The outcome of planning: the chosen strategy, every candidate's predicted
/// costs, and the request itself — inspect it with
/// [`ExecutionPlan::explain`], run it with [`ExecutionPlan::execute`].
pub struct ExecutionPlan<'g> {
    request: EnumerationRequest<'g>,
    chosen: CostEstimate,
    /// The strategy instance that produced `chosen` — execution runs exactly
    /// this object, so custom strategies registered through
    /// [`Planner::with_strategies`] are honoured.
    chosen_impl: Arc<dyn Strategy>,
    candidates: Vec<CostEstimate>,
}

impl std::fmt::Debug for ExecutionPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionPlan")
            .field("request", &self.request)
            .field("chosen", &self.chosen)
            .field("candidates", &self.candidates)
            .finish_non_exhaustive()
    }
}

impl<'g> ExecutionPlan<'g> {
    /// The strategy the planner chose.
    pub fn strategy(&self) -> StrategyKind {
        self.chosen.strategy
    }

    /// The chosen strategy's predicted costs.
    pub fn chosen(&self) -> &CostEstimate {
        &self.chosen
    }

    /// Every candidate's predicted costs, cheapest first.
    pub fn candidates(&self) -> &[CostEstimate] {
        &self.candidates
    }

    /// The request this plan was built for.
    pub fn request(&self) -> &EnumerationRequest<'g> {
        &self.request
    }

    /// Predicted communication cost of the chosen strategy (key-value pairs).
    pub fn predicted_communication(&self) -> f64 {
        self.chosen.communication
    }

    /// Predicted per-edge replication of the chosen strategy.
    pub fn predicted_replication(&self) -> f64 {
        self.chosen.replication_per_edge
    }

    /// Predicted total reducer work of the chosen strategy.
    pub fn predicted_reducer_work(&self) -> f64 {
        self.chosen.reducer_work
    }

    /// A human-readable rendering of the whole plan: the request, the chosen
    /// strategy with its shares, predicted replication and predicted reducer
    /// work, and the ranked candidate table.
    pub fn explain(&self) -> String {
        let sample = self.request.sample();
        let graph = self.request.graph();
        let mut out = String::new();
        let pattern = match self.request.pattern_name() {
            Some(name) => format!("{name:?}"),
            None => "<custom>".to_string(),
        };
        out.push_str(&format!(
            "enumeration plan for pattern {pattern} (p = {}, {} edges) over data graph (n = {}, m = {})\n",
            sample.num_nodes(),
            sample.num_edges(),
            graph.num_nodes(),
            graph.num_edges(),
        ));
        out.push_str(&format!(
            "reducer budget k = {}{}\n",
            self.request.reducer_budget(),
            if self.request.strategy_override().is_some() {
                " (strategy forced by the caller)"
            } else {
                ""
            },
        ));
        out.push_str(&format!(
            "chosen strategy: {} ({})\n",
            self.chosen.strategy, self.chosen.paper_section
        ));
        let shares: Vec<String> = self
            .chosen
            .shares
            .iter()
            .map(|s| format_value(*s))
            .collect();
        out.push_str(&format!(
            "  shares: [{}]{}\n",
            shares.join(", "),
            match self.chosen.buckets {
                Some(b) => format!(" (uniform b = {b})"),
                None => String::new(),
            },
        ));
        out.push_str(&format!(
            "  predicted replication: {} per edge ({} key-value pairs)\n",
            format_value(self.chosen.replication_per_edge),
            format_value(self.chosen.communication),
        ));
        out.push_str(&format!(
            "  predicted reducers: {}\n",
            format_value(self.chosen.reducers)
        ));
        out.push_str(&format!(
            "  predicted reducer work: {}\n",
            format_value(self.chosen.reducer_work)
        ));
        // Order-class search counters (only strategies that search CQ order
        // classes set them — cq-oriented processing): how much of `p!/|Aut|`
        // the branch-and-bound lower bound pruned away. Reported even when
        // another strategy wins, because the search ran while estimating.
        for candidate in &self.candidates {
            let classes = candidate.classes_scored + candidate.classes_pruned;
            if classes > 0 {
                out.push_str(&format!(
                    "  order classes ({}): {classes} ({} scored, {} pruned by the Shares lower bound)\n",
                    candidate.strategy, candidate.classes_scored, candidate.classes_pruned,
                ));
            }
        }
        // The per-round breakdown earns its lines when there is something a
        // single total cannot show: several rounds, or a combiner discount.
        if self.chosen.round_costs.len() > 1 || self.chosen.has_combiner_discount() {
            out.push_str("  per-round communication:\n");
            for round in &self.chosen.round_costs {
                if round.shuffled < round.emitted {
                    out.push_str(&format!(
                        "    {}: {} pairs emitted, {} shipped after map-side combining ({} bytes)\n",
                        round.name,
                        format_value(round.emitted),
                        format_value(round.shuffled),
                        format_value(round.shuffle_bytes),
                    ));
                } else {
                    out.push_str(&format!(
                        "    {}: {} pairs shipped ({} bytes)\n",
                        round.name,
                        format_value(round.shuffled),
                        format_value(round.shuffle_bytes),
                    ));
                }
            }
        }
        out.push_str("candidates (cheapest first):\n");
        out.push_str(&format!(
            "  {:<30} {:<10} {:>12} {:>14} {:>10} {:>14}\n",
            "strategy", "shares", "repl/edge", "communication", "reducers", "work"
        ));
        for candidate in &self.candidates {
            let marker = if candidate.strategy == self.chosen.strategy {
                '*'
            } else {
                ' '
            };
            out.push_str("  ");
            out.push_str(&candidate.explain_row(marker));
            out.push('\n');
        }
        out
    }

    /// Executes the chosen strategy, collecting every instance into the
    /// returned [`RunReport`]. The chosen [`CostEstimate`] is handed back to
    /// the strategy so planning work (share optimization, bucket selection)
    /// is reused, not repeated.
    pub fn execute(&self) -> RunReport {
        self.chosen_impl.execute(&self.request, &self.chosen)
    }

    /// Executes the chosen strategy, streaming every instance into `sink`
    /// instead of collecting it: the engine's final-round reduce workers feed
    /// the sink's shards directly, so a constant-memory sink (e.g.
    /// [`crate::sink::CountSink`]) enumerates outputs far larger than memory.
    /// The returned report carries the metrics and the streamed count
    /// ([`RunReport::is_streamed`] is true, [`RunReport::count`] is
    /// accurate).
    pub fn run_with_sink(&self, sink: &mut dyn InstanceSink) -> RunReport {
        self.chosen_impl
            .execute_into(&self.request, &self.chosen, sink)
    }

    /// Executes the chosen strategy in count-only mode: instances flow
    /// through a [`CountSink`], so no per-instance storage is allocated
    /// anywhere — not in the engine, not in the report. Returns the streamed
    /// report; its [`RunReport::count`] is the instance count and all
    /// [`subgraph_mapreduce::JobMetrics`] counters are identical to what the
    /// collect path would have measured.
    pub fn count(&self) -> RunReport {
        let mut counter = CountSink::new();
        let report = self.run_with_sink(&mut counter);
        debug_assert_eq!(report.count(), counter.count());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_mapreduce::EngineConfig;
    use subgraph_pattern::{catalog, SampleGraph};

    fn serial() -> EngineConfig {
        EngineConfig::serial()
    }

    #[test]
    fn lollipop_prefers_bucket_oriented_over_cq_oriented() {
        // Theorem 4.4 / Section 4.5: evaluating all CQs in one hash-ordered
        // job beats one job per CQ. At k = 750 the bucket-oriented scheme uses
        // b = 10 buckets and ships C(11, 2) = 55 copies per edge, while the 12
        // lollipop CQs at ~65 copies each ship ~780.
        let g = generators::gnm(60, 300, 9);
        let plan = EnumerationRequest::named("lollipop", &g)
            .unwrap()
            .reducers(750)
            .plan()
            .unwrap();
        assert_eq!(plan.strategy(), StrategyKind::BucketOriented);
        let cq = plan
            .candidates()
            .iter()
            .find(|c| c.strategy == StrategyKind::CqOriented)
            .expect("cq-oriented was considered");
        assert!(plan.predicted_communication() < cq.communication);
        assert!((plan.predicted_replication() - 55.0).abs() < 1e-9);
        assert!(cq.replication_per_edge > 700.0);
    }

    #[test]
    fn explain_reports_shares_replication_and_work() {
        let g = generators::gnm(60, 300, 9);
        let plan = EnumerationRequest::named("lollipop", &g)
            .unwrap()
            .reducers(750)
            .plan()
            .unwrap();
        let text = plan.explain();
        assert!(text.contains("chosen strategy: bucket-oriented"));
        assert!(text.contains("shares: [10, 10, 10, 10]"));
        assert!(text.contains("predicted replication: 55 per edge"));
        assert!(text.contains("predicted reducer work:"));
        assert!(text.contains("cq-oriented"));
        assert!(text.contains("variable-oriented"));
    }

    #[test]
    fn budget_of_one_plans_a_serial_strategy() {
        let g = generators::gnm(30, 120, 3);
        let plan = EnumerationRequest::new(catalog::square(), &g)
            .reducers(1)
            .plan()
            .unwrap();
        assert!(plan.strategy().is_serial());
        assert_eq!(plan.predicted_communication(), 0.0);
        let report = plan.execute();
        assert_eq!(report.rounds, 0);
        assert_eq!(
            report.count(),
            enumerate_generic(&catalog::square(), &g).count()
        );
    }

    #[test]
    fn override_forces_the_strategy() {
        let g = generators::gnm(40, 200, 5);
        let plan = EnumerationRequest::new(catalog::triangle(), &g)
            .reducers(64)
            .strategy(StrategyKind::MultiwayTriangles)
            .engine(serial())
            .plan()
            .unwrap();
        assert_eq!(plan.strategy(), StrategyKind::MultiwayTriangles);
        let report = plan.execute();
        assert_eq!(
            report.count(),
            enumerate_generic(&catalog::triangle(), &g).count()
        );
    }

    #[test]
    fn override_of_inapplicable_strategy_errors() {
        let g = generators::complete(6);
        let err = EnumerationRequest::new(catalog::square(), &g)
            .strategy(StrategyKind::PartitionTriangles)
            .plan()
            .unwrap_err();
        match err {
            PlanError::NotApplicable { strategy, .. } => {
                assert_eq!(strategy, StrategyKind::PartitionTriangles)
            }
            other => panic!("expected NotApplicable, got {other:?}"),
        }
    }

    #[test]
    fn empty_patterns_are_rejected() {
        let g = generators::complete(4);
        let err = EnumerationRequest::new(SampleGraph::empty(3), &g)
            .plan()
            .unwrap_err();
        assert_eq!(err, PlanError::EmptyPattern);
    }

    #[test]
    fn triangle_requests_consider_the_specialized_algorithms() {
        let g = generators::gnm(80, 500, 6);
        let plan = EnumerationRequest::named("triangle", &g)
            .unwrap()
            .reducers(220)
            .plan()
            .unwrap();
        let kinds: Vec<StrategyKind> = plan.candidates().iter().map(|c| c.strategy).collect();
        assert!(kinds.contains(&StrategyKind::BucketOrderedTriangles));
        assert!(kinds.contains(&StrategyKind::PartitionTriangles));
        assert!(kinds.contains(&StrategyKind::MultiwayTriangles));
        assert!(kinds.contains(&StrategyKind::CascadeTriangles));
        // The paper's best one-round algorithm wins: b per edge beats every
        // alternative at equal reducer counts (Figure 2), and the generic
        // bucket-oriented scheme at p = 3 predicts the same replication, so
        // the tie-break keeps the generic strategy ahead only if it is not
        // worse. Either way the winner ships b = 10 copies per edge.
        assert!((plan.predicted_replication() - 10.0).abs() < 1e-9);
        let report = plan.execute();
        assert_eq!(report.duplicates(), 0);
    }

    #[test]
    fn resumed_plans_execute_without_replanning() {
        let g = generators::gnm(50, 250, 4);
        let planner = Planner::new();
        let first = planner
            .plan(
                EnumerationRequest::named("triangle", &g)
                    .unwrap()
                    .reducers(220)
                    .engine(serial()),
            )
            .unwrap();
        let expected = first.count().count();
        // Cache what a plan cache would keep: the chosen estimate and the
        // ranked candidates (both owned, no graph borrow).
        let chosen = first.chosen().clone();
        let candidates = first.candidates().to_vec();
        drop(first);
        let resumed = planner
            .resume(
                EnumerationRequest::named("triangle", &g)
                    .unwrap()
                    .reducers(220)
                    .engine(serial()),
                chosen,
                candidates,
            )
            .unwrap();
        assert_eq!(resumed.strategy(), resumed.chosen().strategy);
        assert_eq!(resumed.count().count(), expected);
        assert!(resumed.explain().contains("chosen strategy:"));
    }

    #[test]
    fn resume_with_empty_candidates_still_explains() {
        let g = generators::gnm(30, 120, 3);
        let planner = Planner::new();
        let plan = planner
            .plan(
                EnumerationRequest::named("triangle", &g)
                    .unwrap()
                    .reducers(64),
            )
            .unwrap();
        let chosen = plan.chosen().clone();
        let resumed = planner
            .resume(
                EnumerationRequest::named("triangle", &g)
                    .unwrap()
                    .reducers(64),
                chosen,
                Vec::new(),
            )
            .unwrap();
        assert_eq!(resumed.candidates().len(), 1);
    }

    #[test]
    fn restricted_planner_reports_no_applicable_strategy() {
        let g = generators::complete(5);
        let planner = Planner::with_strategies(vec![std::sync::Arc::new(
            crate::plan::strategy::PartitionTriangles,
        )]);
        let err = planner
            .plan(EnumerationRequest::new(catalog::square(), &g))
            .unwrap_err();
        assert_eq!(err, PlanError::NoApplicableStrategy);
    }
}
