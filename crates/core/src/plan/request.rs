//! [`EnumerationRequest`]: the single entry point every enumeration goes
//! through.

use crate::plan::planner::{ExecutionPlan, Planner};
use crate::plan::search::SearchMode;
use crate::plan::strategy::StrategyKind;
use std::fmt;
use subgraph_graph::DataGraph;
use subgraph_mapreduce::EngineConfig;
use subgraph_pattern::{catalog, SampleGraph};

/// Default reducer budget when the caller does not specify one.
pub const DEFAULT_REDUCERS: usize = 64;

/// Everything the planner needs to choose and run a strategy: the sample
/// graph, the data graph, the reducer budget, an optional strategy override
/// and the engine configuration.
///
/// Build one with [`EnumerationRequest::new`] (explicit sample graph) or
/// [`EnumerationRequest::named`] (catalog pattern by name), refine it with the
/// builder methods, then call [`EnumerationRequest::plan`].
///
/// A reducer budget of 1 (or 0) means "no cluster": the planner then chooses
/// among the serial algorithms of Sections 6-7 instead of the map-reduce
/// strategies.
#[derive(Clone, Debug)]
pub struct EnumerationRequest<'g> {
    sample: SampleGraph,
    pattern_name: Option<String>,
    graph: &'g DataGraph,
    reducers: usize,
    strategy_override: Option<StrategyKind>,
    search: SearchMode,
    config: EngineConfig,
}

impl<'g> EnumerationRequest<'g> {
    /// A request for an explicit sample graph with the default reducer budget.
    pub fn new(sample: SampleGraph, graph: &'g DataGraph) -> Self {
        EnumerationRequest {
            sample,
            pattern_name: None,
            graph,
            reducers: DEFAULT_REDUCERS,
            strategy_override: None,
            search: SearchMode::default(),
            config: EngineConfig::default(),
        }
    }

    /// A request for a named catalog pattern (`"triangle"`, `"lollipop"`,
    /// `"c5"`, `"k4"`, `"star5"`, ... — see [`catalog::by_name`]).
    pub fn named(name: &str, graph: &'g DataGraph) -> Result<Self, PlanError> {
        let sample =
            catalog::by_name(name).ok_or_else(|| PlanError::UnknownPattern(name.to_string()))?;
        let mut request = EnumerationRequest::new(sample, graph);
        request.pattern_name = Some(name.to_string());
        Ok(request)
    }

    /// A request for a pattern given as either a catalog name or an inline
    /// edge-list spec such as `a-b,b-c,c-a` ([`subgraph_pattern::parse_spec`]).
    ///
    /// Catalog names win: `pentagon-with-chord` is a catalog entry even
    /// though it would also parse as a (single-edge) spec. A string that is
    /// neither a known name nor spec-shaped reports [`PlanError::UnknownPattern`];
    /// a spec-shaped string that fails to parse reports the spec error.
    pub fn resolve(pattern: &str, graph: &'g DataGraph) -> Result<Self, PlanError> {
        if let Some(sample) = catalog::by_name(pattern) {
            let mut request = EnumerationRequest::new(sample, graph);
            request.pattern_name = Some(pattern.to_string());
            return Ok(request);
        }
        if !subgraph_pattern::spec::looks_like_spec(pattern) {
            return Err(PlanError::UnknownPattern(pattern.to_string()));
        }
        let sample =
            subgraph_pattern::parse_spec(pattern).map_err(|source| PlanError::InvalidSpec {
                spec: pattern.to_string(),
                reason: source.to_string(),
            })?;
        let mut request = EnumerationRequest::new(sample, graph);
        // Keep the spec as the display name so explain() and cache keys show
        // what the caller typed instead of "<custom>".
        request.pattern_name = Some(pattern.to_string());
        Ok(request)
    }

    /// Sets the reducer budget `k` (the paper's fixed number of reducers the
    /// communication cost is optimized against). One exception inherits the
    /// paper's own framing: CQ-oriented processing provisions `k` reducers
    /// *per conjunctive query* (Theorem 4.4 compares against exactly that,
    /// and separate jobs still never win); its estimate reports the
    /// `|CQs| x k` total.
    pub fn reducers(mut self, k: usize) -> Self {
        self.reducers = k;
        self
    }

    /// Forces a specific strategy instead of letting the planner choose.
    pub fn strategy(mut self, kind: StrategyKind) -> Self {
        self.strategy_override = Some(kind);
        self
    }

    /// Selects how the estimator explores CQ order classes: branch-and-bound
    /// (the default) or the exhaustive score-everything loop kept as the
    /// test oracle. Both modes choose the same plan with the same cost
    /// numbers — the differential suite pins them bitwise — so this never
    /// changes a planning decision, only how much work planning does.
    pub fn search_mode(mut self, mode: SearchMode) -> Self {
        self.search = mode;
        self
    }

    /// Sets the engine configuration (thread count, determinism).
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Plans the request with the default [`Planner`] (every built-in
    /// strategy).
    pub fn plan(self) -> Result<ExecutionPlan<'g>, PlanError> {
        Planner::new().plan(self)
    }

    /// Plans and executes the request in count-only mode: the instances flow
    /// through a [`crate::sink::CountSink`], so no per-instance storage is
    /// allocated anywhere. Returns the number of instances.
    pub fn count(self) -> Result<usize, PlanError> {
        Ok(self.plan()?.count().count())
    }

    /// Plans the request and streams every instance into `sink`; the returned
    /// [`crate::plan::RunReport`] carries metrics and the streamed count.
    pub fn run_with_sink(
        self,
        sink: &mut dyn crate::sink::InstanceSink,
    ) -> Result<crate::plan::RunReport, PlanError> {
        Ok(self.plan()?.run_with_sink(sink))
    }

    /// The sample graph being enumerated.
    pub fn sample(&self) -> &SampleGraph {
        &self.sample
    }

    /// The catalog name of the pattern, if the request was built from one.
    pub fn pattern_name(&self) -> Option<&str> {
        self.pattern_name.as_deref()
    }

    /// The data graph handle.
    pub fn graph(&self) -> &'g DataGraph {
        self.graph
    }

    /// The reducer budget `k`.
    pub fn reducer_budget(&self) -> usize {
        self.reducers
    }

    /// The forced strategy, if any.
    pub fn strategy_override(&self) -> Option<StrategyKind> {
        self.strategy_override
    }

    /// How the estimator explores CQ order classes.
    pub fn order_class_search(&self) -> SearchMode {
        self.search
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

/// Why a request could not be planned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// [`EnumerationRequest::named`] got a name [`catalog::by_name`] does not
    /// know.
    UnknownPattern(String),
    /// [`EnumerationRequest::resolve`] got a spec-shaped pattern that does
    /// not parse as an inline edge list.
    InvalidSpec {
        /// The spec as given.
        spec: String,
        /// The parse failure, rendered.
        reason: String,
    },
    /// The sample graph has no edges, so no edge-relation CQ can produce it.
    EmptyPattern,
    /// A strategy override cannot run this request (wrong pattern shape,
    /// disconnected pattern, ...).
    NotApplicable {
        /// The strategy that was forced.
        strategy: StrategyKind,
        /// Human-readable reason.
        reason: String,
    },
    /// No registered strategy can run the request (only possible with a
    /// custom, restricted [`Planner`]).
    NoApplicableStrategy,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownPattern(name) => {
                write!(f, "unknown catalog pattern {name:?}; see catalog::by_name")
            }
            PlanError::InvalidSpec { spec, reason } => {
                write!(f, "invalid pattern spec {spec:?}: {reason}")
            }
            PlanError::EmptyPattern => write!(f, "the sample graph has no edges"),
            PlanError::NotApplicable { strategy, reason } => {
                write!(f, "strategy {strategy} cannot run this request: {reason}")
            }
            PlanError::NoApplicableStrategy => {
                write!(f, "no registered strategy can run this request")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_graph::generators;

    #[test]
    fn builder_round_trips_every_field() {
        let g = generators::complete(5);
        let request = EnumerationRequest::named("lollipop", &g)
            .unwrap()
            .reducers(750)
            .strategy(StrategyKind::BucketOriented)
            .engine(EngineConfig::serial());
        assert_eq!(request.pattern_name(), Some("lollipop"));
        assert_eq!(request.sample().num_nodes(), 4);
        assert_eq!(request.reducer_budget(), 750);
        assert_eq!(
            request.strategy_override(),
            Some(StrategyKind::BucketOriented)
        );
        assert_eq!(request.config().num_threads, 1);
        assert_eq!(request.graph().num_edges(), 10);
    }

    #[test]
    fn unknown_names_are_reported() {
        let g = generators::complete(4);
        match EnumerationRequest::named("dodecahedron", &g) {
            Err(PlanError::UnknownPattern(name)) => assert_eq!(name, "dodecahedron"),
            other => panic!("expected UnknownPattern, got {other:?}"),
        }
    }

    #[test]
    fn resolve_accepts_catalog_names_and_inline_specs() {
        let g = generators::complete(4);
        let named = EnumerationRequest::resolve("triangle", &g).unwrap();
        assert_eq!(named.pattern_name(), Some("triangle"));
        let spec = EnumerationRequest::resolve("a-b,b-c,c-a", &g).unwrap();
        assert_eq!(spec.pattern_name(), Some("a-b,b-c,c-a"));
        assert_eq!(spec.sample(), named.sample());
    }

    #[test]
    fn resolve_prefers_the_catalog_over_spec_parsing() {
        // "pentagon-with-chord" would parse as a one-edge spec between labels
        // "pentagon" / "with" / ... if the catalog did not win.
        let g = generators::complete(6);
        let request = EnumerationRequest::resolve("pentagon-with-chord", &g).unwrap();
        assert_eq!(request.sample().num_nodes(), 5);
        assert_eq!(request.sample().num_edges(), 6);
    }

    #[test]
    fn resolve_reports_spec_errors_and_unknown_patterns_distinctly() {
        let g = generators::complete(4);
        match EnumerationRequest::resolve("a-a", &g) {
            Err(PlanError::InvalidSpec { spec, reason }) => {
                assert_eq!(spec, "a-a");
                assert!(reason.contains("self-loop"), "{reason}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        assert!(matches!(
            EnumerationRequest::resolve("dodecahedron", &g),
            Err(PlanError::UnknownPattern(_))
        ));
    }

    #[test]
    fn resolved_specs_plan_and_count() {
        let g = generators::complete(5);
        // The triangle as a spec: C(5, 3) = 10 instances in K5.
        let count = EnumerationRequest::resolve("x-y,y-z,z-x", &g)
            .unwrap()
            .engine(EngineConfig::serial())
            .count()
            .unwrap();
        assert_eq!(count, 10);
    }

    #[test]
    fn requests_and_plans_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnumerationRequest<'static>>();
        assert_send_sync::<crate::plan::ExecutionPlan<'static>>();
        assert_send_sync::<crate::plan::Planner>();
        assert_send_sync::<crate::plan::CostEstimate>();
    }
}
