//! Convertible algorithms (Section 6, Theorem 6.1).
//!
//! A serial algorithm with running time `O(n^α m^β)` is *convertible* (its
//! map-reduce version does the same total work, up to constants) whenever
//! `α + 2β ≥ p`, because hashing nodes into `b` buckets gives each of the
//! `O(b^p)` reducers a subgraph with `O(n/b)` nodes and `O(m/b²)` edges, so the
//! total reducer work is `O(b^{p−α−2β} · n^α m^β)`.

use subgraph_pattern::decompose::decompose;
use subgraph_pattern::SampleGraph;

/// The convertibility analysis for one sample graph / serial algorithm pair.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvertibilityReport {
    /// Number of pattern nodes `p`.
    pub pattern_nodes: usize,
    /// Exponent of `n` in the serial running time.
    pub alpha: f64,
    /// Exponent of `m` in the serial running time.
    pub beta: f64,
    /// `p − α − 2β`: non-positive means convertible.
    pub exponent_gap: f64,
}

impl ConvertibilityReport {
    /// True when the algorithm is convertible (Theorem 6.1).
    pub fn convertible(&self) -> bool {
        self.exponent_gap <= 1e-12
    }
}

/// Theorem 6.1's criterion for explicit exponents.
pub fn is_convertible(pattern_nodes: usize, alpha: f64, beta: f64) -> ConvertibilityReport {
    ConvertibilityReport {
        pattern_nodes,
        alpha,
        beta,
        exponent_gap: pattern_nodes as f64 - alpha - 2.0 * beta,
    }
}

/// The convertibility report for the decomposition-based algorithm of
/// Theorem 7.2 applied to `sample` — always convertible, with `α = q` (the
/// isolated nodes of the best decomposition) and `β = (p − q)/2`.
pub fn decomposition_report(sample: &SampleGraph) -> ConvertibilityReport {
    let d = decompose(sample);
    is_convertible(sample.num_nodes(), d.alpha as f64, d.beta())
}

/// Predicted total reducer work for a convertible algorithm: `b^{p−α−2β} · n^α m^β`
/// (Theorem 6.1's accounting). For a convertible algorithm the exponent of `b`
/// is non-positive, so more reducers never increase the total work.
pub fn predicted_parallel_work(
    buckets: usize,
    pattern_nodes: usize,
    alpha: f64,
    beta: f64,
    n: usize,
    m: usize,
) -> f64 {
    (buckets as f64).powf(pattern_nodes as f64 - alpha - 2.0 * beta)
        * (n as f64).powf(alpha)
        * (m as f64).powf(beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_pattern::catalog;

    #[test]
    fn triangle_serial_algorithm_is_convertible() {
        // Example 6.1: p = 3, α = 0, β = 3/2.
        let report = is_convertible(3, 0.0, 1.5);
        assert!(report.convertible());
        assert_eq!(report.exponent_gap, 0.0);
    }

    #[test]
    fn insufficient_exponents_are_not_convertible() {
        // A hypothetical O(m) algorithm for a 4-node pattern would not be
        // convertible (4 − 0 − 2 > 0).
        let report = is_convertible(4, 0.0, 1.0);
        assert!(!report.convertible());
        assert!(report.exponent_gap > 0.0);
    }

    #[test]
    fn decomposition_reports_are_always_convertible() {
        for sample in [
            catalog::triangle(),
            catalog::square(),
            catalog::lollipop(),
            catalog::cycle(5),
            catalog::cycle(6),
            catalog::star(5),
            catalog::k4(),
        ] {
            let report = decomposition_report(&sample);
            assert!(report.convertible(), "{sample:?} not convertible");
            // Theorem 7.2 decompositions meet the bound with equality.
            assert!(report.exponent_gap.abs() < 1e-9);
        }
    }

    #[test]
    fn predicted_work_is_monotone_in_buckets_only_when_not_convertible() {
        // Convertible: exponent of b is ≤ 0 ⇒ work does not grow with b.
        let w1 = predicted_parallel_work(2, 3, 0.0, 1.5, 1000, 10_000);
        let w2 = predicted_parallel_work(16, 3, 0.0, 1.5, 1000, 10_000);
        assert!(w2 <= w1 + 1e-6);
        // Not convertible: work grows with b.
        let bad1 = predicted_parallel_work(2, 4, 0.0, 1.0, 1000, 10_000);
        let bad2 = predicted_parallel_work(16, 4, 0.0, 1.0, 1000, 10_000);
        assert!(bad2 > bad1);
    }

    #[test]
    fn star_report_uses_isolated_nodes() {
        let report = decomposition_report(&catalog::star(4));
        assert_eq!(report.alpha, 2.0);
        assert_eq!(report.beta, 1.0);
        assert!(report.convertible());
    }
}
