//! Bucket-oriented processing (Section 4.5): the hash-ordered scheme of
//! Section 2.3 generalized to arbitrary sample graphs.
//!
//! Every variable uses the *same* number of buckets `b` and the *same* hash
//! function; nodes are ordered by (bucket, identifier). A reducer exists for
//! every non-decreasing sequence of `p` bucket numbers. The mapper sends edge
//! `(u, v)` to every reducer whose multiset contains the buckets of both
//! endpoints — `C(b + p − 3, p − 2)` reducers per edge. Each reducer evaluates
//! all CQs on its local subgraph and emits a solution only if the multiset of
//! its nodes' buckets equals the reducer's key, which makes every instance
//! come out of exactly one reducer.

use super::key::{BucketKey, INLINE_COORDS};
use super::nondecreasing_sequences;
use crate::result::{MapReduceRun, RunStats};
use crate::sink::{CollectSink, InstanceSink};
use subgraph_cq::{cqs_for_sample, evaluate_cqs, ConjunctiveQuery};
use subgraph_graph::{BucketThenIdOrder, DataGraph, Edge};
use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::{Instance, SampleGraph};

/// Bytes one shuffled record occupies for a `p`-variable bucket-multiset key
/// plus an edge value — shared by the engine weigher and the planner's byte
/// prediction, so predicted and measured `shuffle_bytes` agree exactly. The
/// key is *priced* as `p` logical `u32` coordinates whatever its in-memory
/// representation ([`BucketKey`] inlines `p ≤ 4` into a single word), so the
/// planner's predicted byte costs are unchanged by the inline encoding.
pub(crate) fn vec_key_record_bytes(p: usize) -> usize {
    p * std::mem::size_of::<u32>() + std::mem::size_of::<Edge>()
}

/// Runs bucket-oriented enumeration of `sample` over `graph` with `b`
/// buckets, streaming every instance into `sink`.
///
/// This is the internal runner behind
/// [`crate::plan::StrategyKind::BucketOriented`]; external callers go through
/// the planner, which also derives `b` from a reducer budget.
pub(crate) fn run_bucket_oriented(
    sample: &SampleGraph,
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    let cqs = cqs_for_sample(sample);
    bucket_oriented_with_cqs_into(sample.num_nodes(), &cqs, graph, b, config, sink)
}

/// Same, with an explicit CQ collection (the cycle CQs of Section 5 plug in
/// here directly), collecting the instances.
pub fn bucket_oriented_with_cqs(
    p: usize,
    cqs: &[ConjunctiveQuery],
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
) -> MapReduceRun {
    let mut collected = CollectSink::new();
    let stats = bucket_oriented_with_cqs_into(p, cqs, graph, b, config, &mut collected);
    stats.into_run(collected.into_items())
}

/// Streaming variant of [`bucket_oriented_with_cqs`]: the final reducers feed
/// `sink` directly through the engine's sharded delivery.
pub fn bucket_oriented_with_cqs_into(
    p: usize,
    cqs: &[ConjunctiveQuery],
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    assert!(b >= 1, "at least one bucket is required");
    assert!(p >= 2, "patterns need at least one edge");
    let order = BucketThenIdOrder::new(b);
    let num_nodes = graph.num_nodes();

    let mapper = move |edge: &Edge, ctx: &mut MapContext<BucketKey, Edge>| {
        let bu = order.bucket(edge.lo()) as u32;
        let bv = order.bucket(edge.hi()) as u32;
        // Stack buffer for the common inline-width keys; heap for wide ones.
        let mut small = [0u32; INLINE_COORDS];
        let mut large = vec![0u32; if p > INLINE_COORDS { p } else { 0 }];
        nondecreasing_sequences(b as u32, p - 2, &mut |extra| {
            let coords: &mut [u32] = if p <= INLINE_COORDS {
                &mut small[..p]
            } else {
                &mut large[..]
            };
            coords[0] = bu;
            coords[1] = bv;
            coords[2..].copy_from_slice(extra);
            coords.sort_unstable();
            ctx.emit(BucketKey::new(coords), *edge);
        });
    };

    let cqs_for_reducer = cqs.to_vec();
    let reducer = move |key: &BucketKey, edges: &[Edge], ctx: &mut ReduceContext<Instance>| {
        let local = DataGraph::from_edges(num_nodes, edges.iter().map(|e| e.endpoints()));
        ctx.add_work(edges.len() as u64);
        let outcome = evaluate_cqs(&cqs_for_reducer, &local, &order);
        ctx.add_work(outcome.assignments as u64);
        for instance in outcome.instances {
            // Emit only from the reducer whose key is the instance's bucket multiset.
            let mut buckets: Vec<u32> = instance
                .nodes()
                .iter()
                .map(|&v| order.bucket(v) as u32)
                .collect();
            buckets.sort_unstable();
            if key.matches(&buckets) {
                ctx.emit(instance);
            }
        }
    };

    let report = crate::stream::run_streamed_with_sink(
        Pipeline::new().round(
            Round::new("bucket-oriented", mapper, reducer)
                .record_bytes(|key: &BucketKey, _edge: &Edge| vec_key_record_bytes(key.len()))
                .arena(),
        ),
        graph.edges(),
        config,
        sink,
    );
    RunStats::from_pipeline(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_cq::cycle_cqs;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;
    use subgraph_shares::counting::{bucket_oriented_replication, useful_reducers};

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    /// Collect-mode driver over the streaming runner.
    fn collect_run(sample: &SampleGraph, graph: &DataGraph, b: usize) -> MapReduceRun {
        let mut collected = CollectSink::new();
        let stats = run_bucket_oriented(sample, graph, b, &config(), &mut collected);
        stats.into_run(collected.into_items())
    }

    fn agree(sample: &SampleGraph, graph: &DataGraph, b: usize) {
        let run = collect_run(sample, graph, b);
        let oracle = enumerate_generic(sample, graph);
        assert_eq!(run.count(), oracle.count(), "pattern {sample:?} b={b}");
        assert_eq!(run.duplicates(), 0, "pattern {sample:?} b={b}");
    }

    #[test]
    fn triangles_squares_lollipops_match_the_oracle() {
        let g = generators::gnm(40, 220, 21);
        for b in [1usize, 3, 5] {
            agree(&catalog::triangle(), &g, b);
            agree(&catalog::square(), &g, b);
            agree(&catalog::lollipop(), &g, b);
        }
    }

    #[test]
    fn pentagons_match_the_oracle() {
        let g = generators::gnm(20, 70, 22);
        agree(&catalog::cycle(5), &g, 4);
    }

    #[test]
    fn replication_matches_the_formula() {
        // Each edge goes to exactly C(b + p − 3, p − 2) reducers.
        let g = generators::gnm(60, 400, 23);
        for (sample, p) in [
            (catalog::triangle(), 3usize),
            (catalog::square(), 4),
            (catalog::cycle(5), 5),
        ] {
            for b in [2usize, 4] {
                let run = collect_run(&sample, &g, b);
                let expected =
                    bucket_oriented_replication(b as u64, p as u64) as usize * g.num_edges();
                assert_eq!(run.metrics.key_value_pairs, expected, "p={p} b={b}");
                let max = useful_reducers(b as u64, p as u64);
                assert!((run.metrics.reducers_used as u128) <= max);
            }
        }
    }

    #[test]
    fn section_5_cycle_cqs_plug_into_the_same_scheme() {
        let g = generators::gnm(18, 60, 24);
        let queries: Vec<ConjunctiveQuery> = cycle_cqs(5).into_iter().map(|c| c.query).collect();
        let run = bucket_oriented_with_cqs(5, &queries, &g, 3, &config());
        let oracle = enumerate_generic(&catalog::cycle(5), &g);
        assert_eq!(run.count(), oracle.count());
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn one_bucket_equals_a_single_reducer() {
        let g = generators::gnm(25, 100, 25);
        let run = collect_run(&catalog::square(), &g, 1);
        assert_eq!(run.metrics.reducers_used, 1);
        assert_eq!(run.metrics.key_value_pairs, g.num_edges());
        assert_eq!(
            run.count(),
            enumerate_generic(&catalog::square(), &g).count()
        );
    }
}
