//! Single-round map-reduce enumeration of arbitrary sample graphs (Section 4).
//!
//! Three processing strategies, mirroring Section 4's taxonomy:
//!
//! * [`cq_oriented`] — one map-reduce job per conjunctive query, each with its
//!   own optimized shares (Section 4.1). Never better than the other two
//!   (Theorem 4.4) but the natural baseline.
//! * [`variable_oriented`] — all CQs evaluated in a single job; one share per
//!   variable, optimized over the combined cost expression where edges used in
//!   both orientations count twice (Section 4.3).
//! * [`bucket_oriented`] — one hash function, nodes ordered by bucket, one
//!   reducer per non-decreasing bucket multiset (Section 4.5, generalizing the
//!   Section 2.3 triangle algorithm).

pub mod bucket_oriented;
pub mod cq_oriented;
pub mod key;
pub mod variable_oriented;

pub use key::BucketKey;

// The pre-planner free functions (`bucket_oriented_enumerate`,
// `variable_oriented_enumerate`, `cq_oriented_enumerate`) are gone: build an
// `EnumerationRequest`, force the strategy if needed, and `plan()/execute()`
// (or `run_with_sink()` for streaming results). The CQ-parameterized entry
// points (`bucket_oriented_with_cqs`, `single_cq_job`, `run_with_plan`) and
// their `_into` streaming variants remain public.

use subgraph_graph::NodeId;

/// Per-variable hash of a data node into one of `share` buckets. Each variable
/// uses a different seed so the hash functions are independent, as the share
/// optimization assumes.
pub(crate) fn variable_bucket(node: NodeId, variable: u8, share: u32) -> u32 {
    if share <= 1 {
        return 0;
    }
    let mut x = (node as u64)
        .wrapping_add(0xa076_1d64_78bd_642f)
        .wrapping_add((variable as u64) << 32);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % share as u64) as u32
}

/// Rounds the real-valued optimal shares to integers (at least 1 each), the
/// form the engine needs.
pub(crate) fn integer_shares(shares: &[f64]) -> Vec<u32> {
    shares.iter().map(|&s| s.round().max(1.0) as u32).collect()
}

/// Enumerates every non-decreasing sequence of `len` bucket numbers in
/// `0..buckets`, calling `visit` for each.
pub(crate) fn nondecreasing_sequences(buckets: u32, len: usize, visit: &mut dyn FnMut(&[u32])) {
    fn recurse(
        buckets: u32,
        len: usize,
        start: u32,
        prefix: &mut Vec<u32>,
        visit: &mut dyn FnMut(&[u32]),
    ) {
        if prefix.len() == len {
            visit(prefix);
            return;
        }
        for next in start..buckets {
            prefix.push(next);
            recurse(buckets, len, next, prefix, visit);
            prefix.pop();
        }
    }
    let mut prefix = Vec::with_capacity(len);
    recurse(buckets, len, 0, &mut prefix, visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_bucket_is_within_range_and_seeded_per_variable() {
        for node in 0..200u32 {
            for var in 0..6u8 {
                assert!(variable_bucket(node, var, 7) < 7);
            }
        }
        // Different variables use genuinely different hash functions.
        let same = (0..200u32)
            .filter(|&n| variable_bucket(n, 0, 16) == variable_bucket(n, 1, 16))
            .count();
        assert!(same < 60, "hashes for different variables look identical");
        assert_eq!(variable_bucket(42, 3, 1), 0);
    }

    #[test]
    fn integer_share_rounding() {
        assert_eq!(integer_shares(&[0.4, 1.0, 2.5, 9.7]), vec![1, 1, 3, 10]);
    }

    #[test]
    fn nondecreasing_sequence_counts_match_the_binomial() {
        for (b, len, expected) in [(3u32, 2usize, 6usize), (5, 3, 35), (4, 0, 1), (10, 2, 55)] {
            let mut count = 0usize;
            nondecreasing_sequences(b, len, &mut |seq| {
                assert!(seq.windows(2).all(|w| w[0] <= w[1]));
                count += 1;
            });
            assert_eq!(count, expected, "b={b} len={len}");
        }
    }
}
