//! Fixed-width inline reducer keys for the bucket-multiset strategies.
//!
//! The reducer keys of the three Section 4 strategies are short sequences of
//! bucket numbers — `p` coordinates for a `p`-variable pattern, each smaller
//! than the share/bucket count. Shipping them as `Vec<u32>` puts a heap
//! allocation behind every shuffled record; [`BucketKey`] instead packs up to
//! [`INLINE_COORDS`] coordinates of 16 bits each into a single `u64`, so the
//! common patterns (triangle, square, lollipop, any `p ≤ 4` CQ) shuffle a
//! plain 8-byte key: no allocation, one-word hashing and comparison.
//!
//! Longer or larger-valued keys fall back to the heap representation; the
//! encoding is canonical (a coordinate sequence always maps to the same
//! variant) and round-trips are debug-asserted at construction. The derived
//! `Ord` matches the lexicographic order of the coordinate sequences within a
//! variant — the inline packing is big-endian (first coordinate in the
//! highest bits) with a length tiebreak — so the engine's deterministic
//! sorted-key reduce order is well-defined.
//!
//! The byte *pricing* of a shuffled record is unchanged by the encoding: the
//! rounds keep charging `4 · p + size_of::<Edge>()` per record (see
//! `vec_key_record_bytes` in the bucket-oriented module), so the planner's
//! predicted `shuffle_bytes` still match measurement exactly.

/// Maximum number of coordinates the inline representation can hold.
pub const INLINE_COORDS: usize = 4;

/// Largest coordinate value the inline representation can hold.
const INLINE_MAX_COORD: u32 = u16::MAX as u32;

/// A reducer key: a sequence of bucket coordinates, stored inline when small.
///
/// Construct with [`BucketKey::new`]; the constructor picks the
/// representation canonically, so `Eq`/`Ord`/`Hash` (all derived) agree with
/// coordinate-sequence equality and lexicographic order for any two keys
/// built from sequences of the same length and coordinate range.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BucketKey {
    /// Up to [`INLINE_COORDS`] coordinates `≤ u16::MAX`, packed big-endian:
    /// coordinate `i` occupies bits `[48 − 16i, 64 − 16i)`, unused low bits
    /// are zero. Field order matters: comparing `packed` first and `len`
    /// second is exactly the lexicographic order of the sequences (a proper
    /// prefix packs to the same word and wins on the shorter length).
    Inline {
        /// The packed coordinates.
        packed: u64,
        /// How many coordinates are packed.
        len: u8,
    },
    /// Fallback for keys with more than [`INLINE_COORDS`] coordinates or a
    /// coordinate above `u16::MAX`.
    Heap(Vec<u32>),
}

impl BucketKey {
    /// Encodes a coordinate sequence, inlining it when it fits.
    #[inline]
    pub fn new(coords: &[u32]) -> Self {
        if coords.len() <= INLINE_COORDS && coords.iter().all(|&c| c <= INLINE_MAX_COORD) {
            let mut packed = 0u64;
            for (i, &coord) in coords.iter().enumerate() {
                packed |= (coord as u64) << (48 - 16 * i);
            }
            let key = BucketKey::Inline {
                packed,
                len: coords.len() as u8,
            };
            debug_assert!(
                key.matches(coords),
                "inline encoding must round-trip: {coords:?} -> {key:?}"
            );
            key
        } else {
            BucketKey::Heap(coords.to_vec())
        }
    }

    /// Number of coordinates in the key.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            BucketKey::Inline { len, .. } => *len as usize,
            BucketKey::Heap(coords) => coords.len(),
        }
    }

    /// True when the key holds no coordinates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The coordinate at position `i` (panics when out of bounds).
    #[inline]
    pub fn coord(&self, i: usize) -> u32 {
        match self {
            BucketKey::Inline { packed, len } => {
                assert!(i < *len as usize, "coordinate {i} out of bounds");
                ((packed >> (48 - 16 * i)) & 0xffff) as u32
            }
            BucketKey::Heap(coords) => coords[i],
        }
    }

    /// Decodes the key back into its coordinate sequence.
    pub fn to_vec(&self) -> Vec<u32> {
        match self {
            BucketKey::Inline { len, .. } => (0..*len as usize).map(|i| self.coord(i)).collect(),
            BucketKey::Heap(coords) => coords.clone(),
        }
    }

    /// True when the key encodes exactly `coords` — equality against a slice
    /// without decoding or allocating.
    pub fn matches(&self, coords: &[u32]) -> bool {
        match self {
            BucketKey::Inline { len, .. } => {
                *len as usize == coords.len()
                    && coords.iter().enumerate().all(|(i, &c)| self.coord(i) == c)
            }
            BucketKey::Heap(stored) => stored == coords,
        }
    }
}

/// Arena-shuffle encoding: a variant tag, the length, then each coordinate
/// as a varint (bucket numbers are small, so an inline triangle key costs
/// ~5 bytes on the wire instead of the 8-byte packed word). The tag keeps
/// the decoded variant identical to the encoded one, so `Eq`/`Ord`/`Hash`
/// survive the round trip bit-for-bit.
impl subgraph_codec::ArenaCodec for BucketKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BucketKey::Inline { len, .. } => {
                out.push(0);
                out.push(*len);
                for i in 0..*len as usize {
                    subgraph_codec::write_varint(out, u64::from(self.coord(i)));
                }
            }
            BucketKey::Heap(coords) => {
                out.push(1);
                coords.encode(out);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let tag = u8::decode(buf, pos);
        match tag {
            0 => {
                let len = u8::decode(buf, pos);
                let mut packed = 0u64;
                for i in 0..len as usize {
                    let coord = subgraph_codec::read_varint(buf, pos);
                    packed |= coord << (48 - 16 * i);
                }
                BucketKey::Inline { packed, len }
            }
            1 => BucketKey::Heap(Vec::<u32>::decode(buf, pos)),
            other => panic!("corrupt BucketKey tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_codec::ArenaCodec;
    use subgraph_graph::rng::Rng;

    fn random_coords(rng: &mut Rng, max_len: usize, max_coord: u32) -> Vec<u32> {
        let len = rng.gen_index(max_len + 1);
        (0..len)
            .map(|_| rng.gen_index(max_coord as usize + 1) as u32)
            .collect()
    }

    #[test]
    fn small_keys_inline_and_large_keys_spill() {
        assert!(matches!(
            BucketKey::new(&[1, 2, 3, 4]),
            BucketKey::Inline { .. }
        ));
        assert!(matches!(BucketKey::new(&[]), BucketKey::Inline { .. }));
        assert!(matches!(
            BucketKey::new(&[1, 2, 3, 4, 5]),
            BucketKey::Heap(_)
        ));
        assert!(matches!(BucketKey::new(&[0, 70_000]), BucketKey::Heap(_)));
    }

    /// Proptest: round-trip through the encoding for random sequences across
    /// both representations (inline-range and spilled).
    #[test]
    fn encoding_round_trips_for_random_sequences() {
        let mut rng = Rng::seed_from_u64(0x5eed_0001);
        for _ in 0..2_000 {
            let coords = random_coords(&mut rng, 8, 9);
            let key = BucketKey::new(&coords);
            assert_eq!(key.to_vec(), coords);
            assert_eq!(key.len(), coords.len());
            assert!(key.matches(&coords));
            for (i, &c) in coords.iter().enumerate() {
                assert_eq!(key.coord(i), c, "coords {coords:?} index {i}");
            }
        }
        // Sweep the inline/heap coordinate-value boundary explicitly.
        for coord in [0u32, 1, 255, 65_534, 65_535, 65_536, u32::MAX] {
            let coords = vec![coord; 3];
            assert_eq!(BucketKey::new(&coords).to_vec(), coords);
        }
    }

    /// Proptest: `Eq` and `Ord` on encoded keys agree with slice equality and
    /// lexicographic order for same-regime sequences (fixed length, small
    /// coordinates — the shape every strategy emits within one round).
    #[test]
    fn ordering_matches_the_coordinate_sequences() {
        let mut rng = Rng::seed_from_u64(0x5eed_0002);
        for len in [0usize, 1, 2, 3, 4] {
            for _ in 0..400 {
                let a: Vec<u32> = (0..len).map(|_| rng.gen_index(10) as u32).collect();
                let b: Vec<u32> = (0..len).map(|_| rng.gen_index(10) as u32).collect();
                let (ka, kb) = (BucketKey::new(&a), BucketKey::new(&b));
                assert_eq!(ka == kb, a == b, "{a:?} vs {b:?}");
                assert_eq!(ka.cmp(&kb), a.cmp(&b), "{a:?} vs {b:?}");
            }
        }
        // Prefixes sort first, exactly like the Vec<u32> keys they replace.
        assert!(BucketKey::new(&[1, 2]) < BucketKey::new(&[1, 2, 0]));
        assert!(BucketKey::new(&[0, 5]) < BucketKey::new(&[1]));
    }

    /// Proptest: the arena codec round-trips both representations exactly
    /// (same variant, same coordinates, buffer fully consumed).
    #[test]
    fn arena_codec_round_trips_both_variants() {
        let mut rng = Rng::seed_from_u64(0x5eed_0003);
        let mut keys = Vec::new();
        for _ in 0..500 {
            keys.push(BucketKey::new(&random_coords(&mut rng, 8, 9)));
            keys.push(BucketKey::new(&random_coords(&mut rng, 6, 100_000)));
        }
        let mut buf = Vec::new();
        for key in &keys {
            key.encode(&mut buf);
        }
        let mut pos = 0;
        for key in &keys {
            let decoded = BucketKey::decode(&buf, &mut pos);
            assert_eq!(&decoded, key);
            assert_eq!(
                std::mem::discriminant(&decoded),
                std::mem::discriminant(key),
                "variant must survive the round trip: {key:?}"
            );
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn matches_rejects_different_sequences() {
        let key = BucketKey::new(&[3, 1, 4]);
        assert!(key.matches(&[3, 1, 4]));
        assert!(!key.matches(&[3, 1]));
        assert!(!key.matches(&[3, 1, 5]));
        assert!(!key.matches(&[3, 1, 4, 0]));
        assert!(!BucketKey::new(&[]).matches(&[0]));
        assert!(BucketKey::new(&[]).is_empty());
    }
}
