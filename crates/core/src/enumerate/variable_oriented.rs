//! Variable-oriented processing (Section 4.3): all CQs for the sample graph
//! are evaluated by a single map-reduce job whose reducers are identified by
//! one bucket number per variable.

use super::key::BucketKey;
use super::{integer_shares, variable_bucket};
use crate::enumerate::bucket_oriented::vec_key_record_bytes;
use crate::result::{MapReduceRun, RunStats};
use crate::sink::{CollectSink, InstanceSink};
use std::collections::BTreeSet;
use subgraph_cq::{cqs_for_sample, evaluate_cq_filtered, ConjunctiveQuery, Var};
use subgraph_graph::{DataGraph, Edge, IdOrder};
use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::{Instance, SampleGraph};
use subgraph_shares::{optimize_shares, CostExpression};

/// Plan for a variable-oriented run: the CQ collection, the optimized shares
/// (real-valued and rounded), and the distinct subgoal orientations that
/// determine how edges are replicated.
#[derive(Clone, Debug)]
pub struct VariableOrientedPlan {
    /// The CQ collection of Theorem 3.1.
    pub cqs: Vec<ConjunctiveQuery>,
    /// The optimal real-valued shares for the requested reducer budget.
    pub optimal_shares: Vec<f64>,
    /// The integer shares actually used by the engine.
    pub shares: Vec<u32>,
    /// The per-edge communication cost predicted by the cost expression at the
    /// integer shares.
    pub predicted_replication: f64,
}

/// Builds the plan: generate the CQs, build the combined cost expression with
/// the dominance rule applied (dominated variables keep share 1, which also
/// keeps the optimum finite for patterns like the lollipop whose pendant
/// variable appears in a single term), optimize the shares for `k` reducers,
/// round them.
pub fn plan(sample: &SampleGraph, k: usize) -> VariableOrientedPlan {
    let cqs = cqs_for_sample(sample);
    let mut expr = CostExpression::from_cq_collection(&cqs);
    expr.fix_dominated_to_one();
    let solution = optimize_shares(&expr, (k.max(1)) as f64);
    let shares = integer_shares(&solution.shares);
    let predicted = expr.evaluate(&shares.iter().map(|&s| s as f64).collect::<Vec<_>>());
    VariableOrientedPlan {
        cqs,
        optimal_shares: solution.shares,
        shares,
        predicted_replication: predicted,
    }
}

/// Runs variable-oriented enumeration of `sample` over `graph` with a budget
/// of (approximately) `k` reducers, streaming instances into `sink`.
///
/// Internal runner behind [`crate::plan::StrategyKind::VariableOriented`].
pub(crate) fn run_variable_oriented(
    sample: &SampleGraph,
    graph: &DataGraph,
    k: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    let plan = plan(sample, k);
    run_with_plan_into(graph, &plan, config, sink)
}

/// Runs the job for an explicit plan (exposed for benches that sweep shares),
/// collecting the instances.
pub fn run_with_plan(
    graph: &DataGraph,
    plan: &VariableOrientedPlan,
    config: &EngineConfig,
) -> MapReduceRun {
    let mut collected = CollectSink::new();
    let stats = run_with_plan_into(graph, plan, config, &mut collected);
    stats.into_run(collected.into_items())
}

/// Streaming variant of [`run_with_plan`].
pub fn run_with_plan_into(
    graph: &DataGraph,
    plan: &VariableOrientedPlan,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    let p = plan.shares.len();
    let shares = plan.shares.clone();
    // Distinct subgoal orientations across the CQ collection: these determine
    // the roles in which each edge must be shipped.
    let roles: BTreeSet<(Var, Var)> = plan
        .cqs
        .iter()
        .flat_map(|q| q.subgoals().iter().copied())
        .collect();
    let roles: Vec<(Var, Var)> = roles.into_iter().collect();

    let shares_for_mapper = shares.clone();
    let roles_for_mapper = roles.clone();
    let mapper = move |edge: &Edge, ctx: &mut MapContext<BucketKey, Edge>| {
        let (u, v) = edge.endpoints(); // u < v: the tuple E(u, v).
        for &(a, b) in &roles_for_mapper {
            // The tuple E(u, v) serves subgoal E(a, b) with a → u, b → v.
            let mut key = vec![0u32; p];
            key[a as usize] = variable_bucket(u, a, shares_for_mapper[a as usize]);
            key[b as usize] = variable_bucket(v, b, shares_for_mapper[b as usize]);
            emit_over_free_dimensions(&mut key, &shares_for_mapper, a, b, 0, &mut |key| {
                ctx.emit(BucketKey::new(key), *edge)
            });
        }
    };

    let cqs = plan.cqs.clone();
    let shares_for_reducer = shares.clone();
    let num_nodes = graph.num_nodes();
    let reducer = move |key: &BucketKey, edges: &[Edge], ctx: &mut ReduceContext<Instance>| {
        let local = DataGraph::from_edges(num_nodes, edges.iter().map(|e| e.endpoints()));
        ctx.add_work(edges.len() as u64);
        let key = key.to_vec();
        let shares = shares_for_reducer.clone();
        let filter = move |var: Var, node: subgraph_graph::NodeId| -> bool {
            variable_bucket(node, var, shares[var as usize]) == key[var as usize]
        };
        for cq in &cqs {
            let outcome = evaluate_cq_filtered(cq, &local, &IdOrder, &filter);
            ctx.add_work(outcome.assignments as u64);
            for instance in outcome.instances {
                ctx.emit(instance);
            }
        }
    };

    let report = crate::stream::run_streamed_with_sink(
        Pipeline::new().round(
            Round::new("variable-oriented", mapper, reducer)
                .record_bytes(|key: &BucketKey, _edge: &Edge| vec_key_record_bytes(key.len()))
                .arena(),
        ),
        graph.edges(),
        config,
        sink,
    );
    RunStats::from_pipeline(report)
}

/// Emits one key per combination of buckets for the variables other than `a`
/// and `b` (whose buckets are already fixed in `key`).
fn emit_over_free_dimensions(
    key: &mut Vec<u32>,
    shares: &[u32],
    a: Var,
    b: Var,
    dimension: usize,
    emit: &mut dyn FnMut(&[u32]),
) {
    if dimension == shares.len() {
        emit(key);
        return;
    }
    if dimension == a as usize || dimension == b as usize {
        emit_over_free_dimensions(key, shares, a, b, dimension + 1, emit);
        return;
    }
    for bucket in 0..shares[dimension] {
        key[dimension] = bucket;
        emit_over_free_dimensions(key, shares, a, b, dimension + 1, emit);
    }
    key[dimension] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    /// Collect-mode driver over the streaming runner.
    fn collect_run(sample: &SampleGraph, graph: &DataGraph, k: usize) -> MapReduceRun {
        let mut collected = CollectSink::new();
        let stats = run_variable_oriented(sample, graph, k, &config(), &mut collected);
        stats.into_run(collected.into_items())
    }

    fn agree(sample: &SampleGraph, graph: &DataGraph, k: usize) {
        let run = collect_run(sample, graph, k);
        let oracle = enumerate_generic(sample, graph);
        assert_eq!(run.count(), oracle.count(), "pattern {sample:?} k={k}");
        assert_eq!(run.duplicates(), 0);
        let mut a = run.instances().to_vec();
        let mut b = oracle.instances().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn squares_match_the_oracle() {
        let g = generators::gnm(40, 220, 1);
        agree(&catalog::square(), &g, 64);
        agree(&catalog::square(), &g, 1);
    }

    #[test]
    fn lollipops_match_the_oracle() {
        let g = generators::gnm(35, 180, 2);
        agree(&catalog::lollipop(), &g, 100);
    }

    #[test]
    fn triangles_match_the_oracle() {
        let g = generators::gnm(50, 300, 3);
        agree(&catalog::triangle(), &g, 27);
    }

    #[test]
    fn pentagons_match_the_oracle() {
        let g = generators::gnm(22, 80, 4);
        agree(&catalog::cycle(5), &g, 32);
    }

    #[test]
    fn communication_matches_the_cost_expression_prediction() {
        let g = generators::gnm(120, 900, 5);
        let plan = plan(&catalog::square(), 256);
        let run = run_with_plan(&g, &plan, &config());
        let predicted_total = plan.predicted_replication * g.num_edges() as f64;
        let measured = run.metrics.key_value_pairs as f64;
        assert!(
            (measured - predicted_total).abs() / predicted_total < 1e-9,
            "measured {measured} vs predicted {predicted_total}"
        );
    }

    #[test]
    fn plan_reports_share_structure_for_the_square() {
        // Example 4.2: the optimum satisfies x = z and y = 2w; integer rounding
        // keeps the shares within one of each other.
        let plan = plan(&catalog::square(), 512);
        let product: u32 = plan.shares.iter().product();
        assert!(product >= 1);
        assert_eq!(plan.shares.len(), 4);
        assert!((plan.optimal_shares[1] - plan.optimal_shares[3]).abs() < 0.1);
    }
}
