//! CQ-oriented processing (Section 4.1): each conjunctive query is evaluated
//! by its own map-reduce job with its own optimized shares.
//!
//! Theorem 4.4 shows this is never better than evaluating the whole CQ group
//! at once; it is provided as the baseline the benchmark harness compares
//! variable-oriented processing against.

use super::key::BucketKey;
use super::{integer_shares, variable_bucket};
use crate::enumerate::bucket_oriented::vec_key_record_bytes;
use crate::result::{MapReduceRun, RunStats};
use crate::sink::{CollectSink, InstanceSink};
use subgraph_cq::{cqs_for_sample, evaluate_cq_filtered, ConjunctiveQuery, Var};
use subgraph_graph::{DataGraph, Edge, IdOrder};
use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::{Instance, SampleGraph};
use subgraph_shares::dominance::single_cq_expression_with_dominance;
use subgraph_shares::optimize_shares;

/// Runs one map-reduce job per CQ, each with a budget of `k_per_query`
/// reducers, and combines the results. The returned metrics are the sums over
/// all jobs (communication cost adds up, exactly as in Theorem 4.4's
/// comparison); the per-job breakdown lands in `round_metrics` (the jobs are
/// independent, not chained rounds, but share the same reporting shape).
///
/// Internal runner behind [`crate::plan::StrategyKind::CqOriented`]: every
/// job streams into the same `sink`, so the combined instance stream is the
/// job-order concatenation (deterministic under a deterministic engine
/// config).
pub(crate) fn run_cq_oriented(
    sample: &SampleGraph,
    graph: &DataGraph,
    k_per_query: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    let cqs = cqs_for_sample(sample);
    let mut combined = RunStats::default();
    for (job, cq) in cqs.iter().enumerate() {
        let mut stats = single_cq_job_into(cq, graph, k_per_query, config, sink);
        for round in &mut stats.round_metrics {
            round.name = format!("cq-job-{job}");
        }
        combined.absorb(stats);
    }
    combined
}

/// Evaluates a single CQ in one map-reduce job with optimized shares,
/// collecting the instances.
pub fn single_cq_job(
    cq: &ConjunctiveQuery,
    graph: &DataGraph,
    k: usize,
    config: &EngineConfig,
) -> MapReduceRun {
    let mut collected = CollectSink::new();
    let stats = single_cq_job_into(cq, graph, k, config, &mut collected);
    stats.into_run(collected.into_items())
}

/// Streaming variant of [`single_cq_job`].
pub fn single_cq_job_into(
    cq: &ConjunctiveQuery,
    graph: &DataGraph,
    k: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    let expr = single_cq_expression_with_dominance(cq);
    let solution = optimize_shares(&expr, k.max(1) as f64);
    let shares = integer_shares(&solution.shares);
    let p = cq.num_vars();

    let subgoals: Vec<(Var, Var)> = cq.subgoals().to_vec();
    let shares_for_mapper = shares.clone();
    let mapper = move |edge: &Edge, ctx: &mut MapContext<BucketKey, Edge>| {
        let (u, v) = edge.endpoints();
        for &(a, b) in &subgoals {
            let mut key = vec![0u32; p];
            key[a as usize] = variable_bucket(u, a, shares_for_mapper[a as usize]);
            key[b as usize] = variable_bucket(v, b, shares_for_mapper[b as usize]);
            emit_free(&mut key, &shares_for_mapper, a, b, 0, &mut |k| {
                ctx.emit(BucketKey::new(k), *edge)
            });
        }
    };

    let cq_for_reducer = cq.clone();
    let shares_for_reducer = shares.clone();
    let num_nodes = graph.num_nodes();
    let reducer = move |key: &BucketKey, edges: &[Edge], ctx: &mut ReduceContext<Instance>| {
        let local = DataGraph::from_edges(num_nodes, edges.iter().map(|e| e.endpoints()));
        ctx.add_work(edges.len() as u64);
        let key = key.to_vec();
        let shares = shares_for_reducer.clone();
        let filter = move |var: Var, node: subgraph_graph::NodeId| -> bool {
            variable_bucket(node, var, shares[var as usize]) == key[var as usize]
        };
        let outcome = evaluate_cq_filtered(&cq_for_reducer, &local, &IdOrder, &filter);
        ctx.add_work(outcome.assignments as u64);
        for instance in outcome.instances {
            ctx.emit(instance);
        }
    };

    let report = crate::stream::run_streamed_with_sink(
        Pipeline::new().round(
            Round::new("cq-job", mapper, reducer)
                .record_bytes(|key: &BucketKey, _edge: &Edge| vec_key_record_bytes(key.len()))
                .arena(),
        ),
        graph.edges(),
        config,
        sink,
    );
    RunStats::from_pipeline(report)
}

fn emit_free(
    key: &mut Vec<u32>,
    shares: &[u32],
    a: Var,
    b: Var,
    dimension: usize,
    emit: &mut dyn FnMut(&[u32]),
) {
    if dimension == shares.len() {
        emit(key);
        return;
    }
    if dimension == a as usize || dimension == b as usize {
        emit_free(key, shares, a, b, dimension + 1, emit);
        return;
    }
    for bucket in 0..shares[dimension] {
        key[dimension] = bucket;
        emit_free(key, shares, a, b, dimension + 1, emit);
    }
    key[dimension] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::variable_oriented::run_variable_oriented;
    use crate::serial::generic::enumerate_generic;
    use subgraph_graph::generators;
    use subgraph_pattern::catalog;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    /// Collect-mode driver over the streaming runner.
    fn collect_run(sample: &SampleGraph, graph: &DataGraph, k: usize) -> MapReduceRun {
        let mut collected = CollectSink::new();
        let stats = run_cq_oriented(sample, graph, k, &config(), &mut collected);
        stats.into_run(collected.into_items())
    }

    #[test]
    fn squares_match_the_oracle() {
        let g = generators::gnm(30, 140, 8);
        let run = collect_run(&catalog::square(), &g, 64);
        let oracle = enumerate_generic(&catalog::square(), &g);
        assert_eq!(run.count(), oracle.count());
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn lollipops_match_the_oracle() {
        let g = generators::gnm(28, 130, 9);
        let run = collect_run(&catalog::lollipop(), &g, 60);
        let oracle = enumerate_generic(&catalog::lollipop(), &g);
        assert_eq!(run.count(), oracle.count());
        assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn single_cq_job_respects_its_own_optimum() {
        // Example 4.1: the lollipop's identity-order CQ at k = 750 ships about
        // 65 copies of each edge (the integer rounding keeps it close).
        let cq = cqs_for_sample(&catalog::lollipop())
            .into_iter()
            .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let g = generators::gnm(60, 350, 10);
        let run = single_cq_job(&cq, &g, 750, &config());
        let per_edge = run.metrics.replication_per_input();
        assert!(
            (per_edge - 65.0).abs() < 8.0,
            "replication per edge {per_edge} far from the predicted 65"
        );
    }

    #[test]
    fn separate_jobs_never_beat_the_combined_job_on_communication() {
        // Theorem 4.4 at equal total reducer budget.
        let g = generators::gnm(60, 320, 11);
        let sample = catalog::square();
        let combined = {
            let mut collected = CollectSink::new();
            let stats = run_variable_oriented(&sample, &g, 128, &config(), &mut collected);
            stats.into_run(collected.into_items())
        };
        let separate = collect_run(&sample, &g, 128);
        assert!(
            separate.metrics.key_value_pairs >= combined.metrics.key_value_pairs,
            "separate {} vs combined {}",
            separate.metrics.key_value_pairs,
            combined.metrics.key_value_pairs
        );
        assert_eq!(separate.count(), combined.count());
    }
}
