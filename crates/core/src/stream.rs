//! Streamed map input for the strategy runners.
//!
//! Every single-round strategy feeds the engine the graph's edge slice. On
//! the arena path the engine can consume that input as an
//! [`InputChunk`] iterator instead of one borrowed slice
//! ([`Pipeline::run_chunked_with_sink`]): mmap-loaded `.sgr` graphs yield
//! zero-copy sub-slices, and upstream callers (the CLI's text reader) can
//! substitute owned batches without the strategies changing. The chunk
//! boundaries are exactly the slice path's shard boundaries
//! (`len.div_ceil(threads)`), which pins byte-identical outputs and counters
//! — the cross-executor parity suites compare runs routed through both entry
//! points.

use subgraph_mapreduce::{EngineConfig, InputChunk, OutputSink, Pipeline, PipelineReport};

/// Runs `pipeline` over `inputs`, streaming them as shard-sized
/// [`InputChunk::Slice`]s when the arena path is active (worker pool + arena
/// shuffle) and falling back to the borrowed-slice entry point otherwise.
pub(crate) fn run_streamed_with_sink<'a, I, T>(
    pipeline: Pipeline<'a, I, T>,
    inputs: &[I],
    config: &EngineConfig,
    sink: &mut dyn OutputSink<T>,
) -> PipelineReport
where
    I: Clone + Send + Sync + 'static,
    T: Clone + Send + 'static,
{
    if config.uses_pool() && config.use_arena {
        let chunk_size = inputs.len().div_ceil(config.num_threads.max(1)).max(1);
        pipeline.run_chunked_with_sink(
            inputs.chunks(chunk_size).map(InputChunk::Slice),
            config,
            sink,
        )
    } else {
        pipeline.run_with_sink(inputs, config, sink)
    }
}

#[cfg(test)]
mod tests {
    use crate::triangles::bucket_ordered::run_bucket_ordered_triangles;
    use subgraph_graph::generators;
    use subgraph_mapreduce::EngineConfig;

    /// The strategies route through the chunked entry point; a forced budget
    /// must spill without changing the answer, and the scoped-thread fallback
    /// (which skips the chunked path entirely) must agree.
    #[test]
    fn streamed_strategy_runs_agree_across_budgets_and_executors() {
        // b = 10 ships ~30k records (~350 KiB of arena bytes) — comfortably
        // past a 64 KiB budget.
        let g = generators::gnm(200, 3000, 7);
        let base = run_bucket_ordered_triangles(&g, 10, &EngineConfig::with_threads(4));
        let budgeted = run_bucket_ordered_triangles(
            &g,
            10,
            &EngineConfig::with_threads(4).memory_budget(64 << 10),
        );
        assert_eq!(budgeted.count(), base.count());
        assert!(
            budgeted.metrics.spilled_bytes > 0,
            "a 64 KiB budget must spill this workload"
        );
        assert_eq!(base.metrics.spilled_bytes, 0);
        let scoped =
            run_bucket_ordered_triangles(&g, 10, &EngineConfig::with_threads(4).scoped_threads());
        assert_eq!(scoped.count(), base.count());
    }
}
