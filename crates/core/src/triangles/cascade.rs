//! The two-round baseline: a cascade of two-way joins.
//!
//! Section 2 motivates the single-round multiway join by comparing it against
//! the conventional alternative — evaluating
//! `E(X,Y) ⋈ E(Y,Z) ⋈ E(X,Z)` as a cascade of two-way joins, each in its own
//! map-reduce round:
//!
//! * **Round 1** joins `E(X,Y)` with `E(Y,Z)` on `Y`, producing every *wedge*
//!   (2-path) `X < Y < Z`.
//! * **Round 2** joins the wedges with `E(X,Z)` on `(X, Z)`, keeping the
//!   wedges whose endpoints are adjacent.
//!
//! The cascade runs as a true two-round [`Pipeline`]: the wedge round's
//! reducer outputs flow through a [`Pipeline::prepare`] stage (which mixes in
//! the closing edges) into the second round, and the returned
//! [`crate::result::RunStats`] carries per-round metrics for both rounds.
//!
//! Its communication cost is `2m` in round 1 plus `m +` (number of wedges) in
//! round 2; on skewed graphs the wedge count is far larger than the `O(bm)`
//! the one-round algorithms ship, which is exactly the paper's argument for
//! the multiway join. The implementation exists so the benchmark harness can
//! measure that comparison.

use crate::result::RunStats;
use crate::sink::InstanceSink;
use subgraph_graph::{DataGraph, Edge, NodeId};
use subgraph_mapreduce::{EngineConfig, JobMetrics, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::Instance;

/// A wedge `x − y − z` with `x < y < z` produced by the first round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Wedge {
    /// Smallest node (plays `X`).
    pub x: NodeId,
    /// Middle node (plays `Y`).
    pub y: NodeId,
    /// Largest node (plays `Z`).
    pub z: NodeId,
}

/// Input type of the second round: a wedge from round 1 or a closing edge.
#[derive(Clone, Copy)]
enum Round2Input {
    Wedge(Wedge),
    Edge(Edge),
}

/// Value type of the second round: either a wedge waiting for its closing edge
/// or the closing edge itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Round2Value {
    MiddleNode(NodeId),
    ClosingEdge,
}

/// Bytes per shuffled record of the wedge round (node key + side-tagged
/// neighbour) and of the closing round (node-pair key + tagged middle node) —
/// shared with the planner's per-round byte prediction.
pub(crate) fn cascade_record_bytes() -> (usize, usize) {
    (
        std::mem::size_of::<NodeId>() + std::mem::size_of::<Side>(),
        std::mem::size_of::<(NodeId, NodeId)>() + std::mem::size_of::<Round2Value>(),
    )
}

/// Which side of its reducer's centre node an edge endpoint lies on.
#[derive(Clone, Copy)]
enum Side {
    Lower(NodeId),
    Upper(NodeId),
}

/// Arena-shuffle encodings for the cascade's value types: a one-byte side /
/// role tag plus a varint node id where the variant carries one.
impl subgraph_codec::ArenaCodec for Side {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Side::Lower(v) => {
                out.push(0);
                subgraph_codec::write_varint(out, u64::from(*v));
            }
            Side::Upper(v) => {
                out.push(1);
                subgraph_codec::write_varint(out, u64::from(*v));
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let tag = u8::decode(buf, pos);
        let v = subgraph_codec::read_varint(buf, pos) as NodeId;
        match tag {
            0 => Side::Lower(v),
            1 => Side::Upper(v),
            other => panic!("corrupt Side tag {other}"),
        }
    }
}

impl subgraph_codec::ArenaCodec for Round2Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Round2Value::MiddleNode(y) => {
                out.push(0);
                subgraph_codec::write_varint(out, u64::from(*y));
            }
            Round2Value::ClosingEdge => out.push(1),
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        match u8::decode(buf, pos) {
            0 => Round2Value::MiddleNode(subgraph_codec::read_varint(buf, pos) as NodeId),
            1 => Round2Value::ClosingEdge,
            other => panic!("corrupt Round2Value tag {other}"),
        }
    }
}

/// The wedge round as a declarative [`Round`]: every edge is shipped twice
/// (once as `E(X,Y)` keyed by its upper endpoint, once as `E(Y,Z)` keyed by
/// its lower endpoint); the reducer for node `y` pairs its lower neighbours
/// with its upper neighbours.
fn wedge_round_spec() -> Round<'static, Edge, NodeId, Side, Wedge> {
    let mapper = |edge: &Edge, ctx: &mut MapContext<NodeId, Side>| {
        // E(X,Y) with Y = hi: contributes a lower neighbour to hi.
        ctx.emit(edge.hi(), Side::Lower(edge.lo()));
        // E(Y,Z) with Y = lo: contributes an upper neighbour to lo.
        ctx.emit(edge.lo(), Side::Upper(edge.hi()));
    };
    let reducer = |y: &NodeId, values: &[Side], ctx: &mut ReduceContext<Wedge>| {
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for value in values {
            match *value {
                Side::Lower(x) => lower.push(x),
                Side::Upper(z) => upper.push(z),
            }
        }
        ctx.add_work((lower.len() * upper.len()) as u64);
        for &x in &lower {
            for &z in &upper {
                ctx.emit(Wedge { x, y: *y, z });
            }
        }
    };
    Round::new("wedge", mapper, reducer).arena()
}

/// The closing round as a declarative [`Round`]: wedges and edges are keyed by
/// the endpoint pair `(x, z)`; a wedge becomes a triangle when the closing
/// edge shares its key.
fn closing_round_spec() -> Round<'static, Round2Input, (NodeId, NodeId), Round2Value, Instance> {
    let mapper =
        |input: &Round2Input, ctx: &mut MapContext<(NodeId, NodeId), Round2Value>| match input {
            Round2Input::Wedge(w) => ctx.emit((w.x, w.z), Round2Value::MiddleNode(w.y)),
            Round2Input::Edge(e) => ctx.emit(e.endpoints(), Round2Value::ClosingEdge),
        };
    let reducer =
        |key: &(NodeId, NodeId), values: &[Round2Value], ctx: &mut ReduceContext<Instance>| {
            ctx.add_work(values.len() as u64);
            let closed = values.iter().any(|v| matches!(v, Round2Value::ClosingEdge));
            if !closed {
                return;
            }
            let (x, z) = *key;
            for value in values {
                if let Round2Value::MiddleNode(y) = value {
                    ctx.emit(Instance::from_edge_set([(x, *y), (*y, z), (x, z)]));
                }
            }
        };
    Round::new("closing", mapper, reducer).arena()
}

/// Runs the two-round cascade pipeline, streaming the triangles of the
/// closing round into `sink`; the wedge round still materializes (its output
/// feeds round 2), but the final round's reducers feed the sink directly.
///
/// Internal runner behind [`crate::plan::StrategyKind::CascadeTriangles`].
pub(crate) fn run_cascade_triangles_into(
    graph: &DataGraph,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    let report = crate::stream::run_streamed_with_sink(
        Pipeline::new()
            .round(wedge_round_spec())
            .prepare(|wedges: Vec<Wedge>| {
                // The second round joins the wedge stream with the edge
                // relation: feed it both, tagged by origin.
                wedges
                    .into_iter()
                    .map(Round2Input::Wedge)
                    .chain(graph.edges().iter().copied().map(Round2Input::Edge))
                    .collect()
            })
            .round(closing_round_spec()),
        graph.edges(),
        config,
        sink,
    );
    RunStats::from_pipeline(report)
}

/// Collect-mode wrapper over [`run_cascade_triangles_into`] (tests and
/// in-crate comparisons).
#[cfg(test)]
pub(crate) fn run_cascade_triangles(
    graph: &DataGraph,
    config: &EngineConfig,
) -> crate::result::MapReduceRun {
    let mut collected = crate::sink::CollectSink::new();
    let stats = run_cascade_triangles_into(graph, config, &mut collected);
    stats.into_run(collected.into_items())
}

/// Runs only the first (wedge) round — exposed for tests and experiments that
/// inspect the intermediate wedge stream.
pub fn wedge_round(graph: &DataGraph, config: &EngineConfig) -> (Vec<Wedge>, JobMetrics) {
    let (wedges, report) = Pipeline::new()
        .round(wedge_round_spec())
        .run(graph.edges(), config);
    let metrics = report.rounds.into_iter().next().expect("one round").metrics;
    (wedges, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangles::enumerate_triangles_serial;
    use crate::triangles::bucket_ordered::run_bucket_ordered_triangles;
    use subgraph_graph::generators;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    #[test]
    fn finds_every_triangle_exactly_once() {
        for seed in 0..3 {
            let g = generators::gnm(70, 420, seed);
            let serial = enumerate_triangles_serial(&g);
            let run = run_cascade_triangles(&g, &config());
            assert_eq!(run.count(), serial.count(), "seed {seed}");
            assert_eq!(run.duplicates(), 0);
        }
    }

    #[test]
    fn runs_as_a_two_round_pipeline_with_per_round_metrics() {
        let g = generators::gnm(60, 360, 8);
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(run.round_metrics.len(), 2);
        assert_eq!(run.round_metrics[0].name, "wedge");
        assert_eq!(run.round_metrics[1].name, "closing");
        // Round 1 maps the m edges and ships two pairs per edge.
        assert_eq!(run.round_metrics[0].metrics.input_records, g.num_edges());
        assert_eq!(
            run.round_metrics[0].metrics.key_value_pairs,
            2 * g.num_edges()
        );
        // Round 2 maps every wedge plus every edge, one pair each.
        let wedges = run.round_metrics[0].metrics.outputs;
        assert_eq!(
            run.round_metrics[1].metrics.input_records,
            wedges + g.num_edges()
        );
        // No combiner: shipped equals emitted, and bytes follow the weigher.
        let (r1_bytes, r2_bytes) = cascade_record_bytes();
        for (round, bytes) in run.round_metrics.iter().zip([r1_bytes, r2_bytes]) {
            assert_eq!(round.metrics.shuffle_records, round.metrics.key_value_pairs);
            assert_eq!(
                round.metrics.shuffle_bytes,
                (round.metrics.shuffle_records * bytes) as u64
            );
        }
        // The combined metrics add the rounds.
        assert_eq!(
            run.metrics.key_value_pairs,
            run.round_metrics[0].metrics.key_value_pairs
                + run.round_metrics[1].metrics.key_value_pairs
        );
    }

    #[test]
    fn wedge_round_counts_ordered_two_paths() {
        // In K_n every ordered triple x < y < z is a wedge: C(n, 3) of them.
        let g = generators::complete(8);
        let (wedges, metrics) = wedge_round(&g, &config());
        assert_eq!(wedges.len(), 56);
        assert_eq!(metrics.key_value_pairs, 2 * g.num_edges());
        for w in &wedges {
            assert!(w.x < w.y && w.y < w.z);
        }
    }

    #[test]
    fn communication_cost_is_two_m_plus_wedges_plus_m() {
        let g = generators::gnm(90, 600, 4);
        let (wedges, _) = wedge_round(&g, &config());
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(
            run.metrics.key_value_pairs,
            2 * g.num_edges() + wedges.len() + g.num_edges()
        );
    }

    #[test]
    fn skewed_graphs_make_the_cascade_expensive() {
        // On a power-law graph the wedge count blows up, so the cascade ships
        // far more data than the one-round bucket-ordered algorithm with a
        // moderate b — the paper's motivation for multiway joins.
        let g = generators::power_law(800, 4_000, 2.2, 9);
        let cascade = run_cascade_triangles(&g, &config());
        let one_round = run_bucket_ordered_triangles(&g, 8, &config());
        assert_eq!(cascade.count(), one_round.count());
        assert!(
            cascade.metrics.key_value_pairs > one_round.metrics.key_value_pairs,
            "cascade {} vs one-round {}",
            cascade.metrics.key_value_pairs,
            one_round.metrics.key_value_pairs
        );
    }

    #[test]
    fn triangle_free_graph_produces_wedges_but_no_triangles() {
        // An even cycle is triangle-free but still has ordered wedges (every
        // interior node of the identifier order has one lower and one upper
        // neighbour), so round 1 does real work and round 2 discards it all.
        let g = generators::cycle(12);
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(run.count(), 0);
        assert!(run.metrics.key_value_pairs > 3 * g.num_edges());
    }

    #[test]
    fn complete_bipartite_graphs_have_no_ordered_wedges() {
        // With one side holding all the smaller identifiers, no node has both
        // a lower and an upper neighbour, so the wedge round is empty and the
        // cascade ships exactly 3m pairs.
        let g = generators::complete_bipartite(6, 6);
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(run.count(), 0);
        assert_eq!(run.metrics.key_value_pairs, 3 * g.num_edges());
    }
}
