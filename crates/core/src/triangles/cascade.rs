//! The two-round baseline: a cascade of two-way joins.
//!
//! Section 2 motivates the single-round multiway join by comparing it against
//! the conventional alternative — evaluating
//! `E(X,Y) ⋈ E(Y,Z) ⋈ E(X,Z)` as a cascade of two-way joins, each in its own
//! map-reduce round:
//!
//! * **Round 1** joins `E(X,Y)` with `E(Y,Z)` on `Y`, producing every *wedge*
//!   (2-path) `X < Y < Z`.
//! * **Round 2** joins the wedges with `E(X,Z)` on `(X, Z)`, keeping the
//!   wedges whose endpoints are adjacent.
//!
//! Its communication cost is `2m` in round 1 plus `m +` (number of wedges) in
//! round 2; on skewed graphs the wedge count is far larger than the `O(bm)`
//! the one-round algorithms ship, which is exactly the paper's argument for
//! the multiway join. The implementation exists so the benchmark harness can
//! measure that comparison.

use crate::result::MapReduceRun;
use subgraph_graph::{DataGraph, Edge, NodeId};
use subgraph_mapreduce::{run_job, EngineConfig, JobMetrics, MapContext, ReduceContext};
use subgraph_pattern::Instance;

/// A wedge `x − y − z` with `x < y < z` produced by the first round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Wedge {
    /// Smallest node (plays `X`).
    pub x: NodeId,
    /// Middle node (plays `Y`).
    pub y: NodeId,
    /// Largest node (plays `Z`).
    pub z: NodeId,
}

/// Value type of the second round: either a wedge waiting for its closing edge
/// or the closing edge itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Round2Value {
    MiddleNode(NodeId),
    ClosingEdge,
}

/// Runs the two-round cascade and returns the triangles plus the *combined*
/// metrics of both rounds (communication costs add).
///
/// Internal runner behind [`crate::plan::StrategyKind::CascadeTriangles`].
pub(crate) fn run_cascade_triangles(graph: &DataGraph, config: &EngineConfig) -> MapReduceRun {
    let (wedges, round1) = wedge_round(graph, config);
    let (instances, round2) = closing_round(graph, &wedges, config);
    MapReduceRun {
        instances,
        metrics: combine(round1, round2),
    }
}

/// Deprecated shim over the planner API.
#[deprecated(
    since = "0.2.0",
    note = "build an EnumerationRequest with StrategyKind::CascadeTriangles and call plan()/execute() instead"
)]
pub fn cascade_triangles(graph: &DataGraph, config: &EngineConfig) -> MapReduceRun {
    run_cascade_triangles(graph, config)
}

/// Round 1: every edge is shipped twice (once as `E(X,Y)` keyed by its upper
/// endpoint, once as `E(Y,Z)` keyed by its lower endpoint); the reducer for
/// node `y` pairs its lower neighbours with its upper neighbours.
pub fn wedge_round(graph: &DataGraph, config: &EngineConfig) -> (Vec<Wedge>, JobMetrics) {
    #[derive(Clone, Copy)]
    enum Side {
        Lower(NodeId),
        Upper(NodeId),
    }
    let mapper = |edge: &Edge, ctx: &mut MapContext<NodeId, Side>| {
        // E(X,Y) with Y = hi: contributes a lower neighbour to hi.
        ctx.emit(edge.hi(), Side::Lower(edge.lo()));
        // E(Y,Z) with Y = lo: contributes an upper neighbour to lo.
        ctx.emit(edge.lo(), Side::Upper(edge.hi()));
    };
    let reducer = |y: &NodeId, values: &[Side], ctx: &mut ReduceContext<Wedge>| {
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for value in values {
            match *value {
                Side::Lower(x) => lower.push(x),
                Side::Upper(z) => upper.push(z),
            }
        }
        ctx.add_work((lower.len() * upper.len()) as u64);
        for &x in &lower {
            for &z in &upper {
                ctx.emit(Wedge { x, y: *y, z });
            }
        }
    };
    run_job(graph.edges(), &mapper, &reducer, config)
}

/// Round 2: wedges and edges are keyed by the endpoint pair `(x, z)`; a wedge
/// becomes a triangle when the closing edge shares its key.
fn closing_round(
    graph: &DataGraph,
    wedges: &[Wedge],
    config: &EngineConfig,
) -> (Vec<Instance>, JobMetrics) {
    // Inputs of the second round: all wedges then all edges.
    enum Round2Input {
        Wedge(Wedge),
        Edge(Edge),
    }
    let inputs: Vec<Round2Input> = wedges
        .iter()
        .map(|&w| Round2Input::Wedge(w))
        .chain(graph.edges().iter().map(|&e| Round2Input::Edge(e)))
        .collect();

    let mapper =
        |input: &Round2Input, ctx: &mut MapContext<(NodeId, NodeId), Round2Value>| match input {
            Round2Input::Wedge(w) => ctx.emit((w.x, w.z), Round2Value::MiddleNode(w.y)),
            Round2Input::Edge(e) => ctx.emit(e.endpoints(), Round2Value::ClosingEdge),
        };
    let reducer =
        |key: &(NodeId, NodeId), values: &[Round2Value], ctx: &mut ReduceContext<Instance>| {
            ctx.add_work(values.len() as u64);
            let closed = values.iter().any(|v| matches!(v, Round2Value::ClosingEdge));
            if !closed {
                return;
            }
            let (x, z) = *key;
            for value in values {
                if let Round2Value::MiddleNode(y) = value {
                    ctx.emit(Instance::from_edge_set([(x, *y), (*y, z), (x, z)]));
                }
            }
        };
    run_job(&inputs, &mapper, &reducer, config)
}

fn combine(a: JobMetrics, b: JobMetrics) -> JobMetrics {
    JobMetrics {
        input_records: a.input_records + b.input_records,
        key_value_pairs: a.key_value_pairs + b.key_value_pairs,
        reducers_used: a.reducers_used + b.reducers_used,
        max_reducer_input: a.max_reducer_input.max(b.max_reducer_input),
        reducer_work: a.reducer_work + b.reducer_work,
        outputs: b.outputs,
        map_time: a.map_time + b.map_time,
        shuffle_time: a.shuffle_time + b.shuffle_time,
        reduce_time: a.reduce_time + b.reduce_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangles::enumerate_triangles_serial;
    use crate::triangles::bucket_ordered::run_bucket_ordered_triangles;
    use subgraph_graph::generators;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    #[test]
    fn finds_every_triangle_exactly_once() {
        for seed in 0..3 {
            let g = generators::gnm(70, 420, seed);
            let serial = enumerate_triangles_serial(&g);
            let run = run_cascade_triangles(&g, &config());
            assert_eq!(run.count(), serial.count(), "seed {seed}");
            assert_eq!(run.duplicates(), 0);
        }
    }

    #[test]
    fn wedge_round_counts_ordered_two_paths() {
        // In K_n every ordered triple x < y < z is a wedge: C(n, 3) of them.
        let g = generators::complete(8);
        let (wedges, metrics) = wedge_round(&g, &config());
        assert_eq!(wedges.len(), 56);
        assert_eq!(metrics.key_value_pairs, 2 * g.num_edges());
        for w in &wedges {
            assert!(w.x < w.y && w.y < w.z);
        }
    }

    #[test]
    fn communication_cost_is_two_m_plus_wedges_plus_m() {
        let g = generators::gnm(90, 600, 4);
        let (wedges, _) = wedge_round(&g, &config());
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(
            run.metrics.key_value_pairs,
            2 * g.num_edges() + wedges.len() + g.num_edges()
        );
    }

    #[test]
    fn skewed_graphs_make_the_cascade_expensive() {
        // On a power-law graph the wedge count blows up, so the cascade ships
        // far more data than the one-round bucket-ordered algorithm with a
        // moderate b — the paper's motivation for multiway joins.
        let g = generators::power_law(800, 4_000, 2.2, 9);
        let cascade = run_cascade_triangles(&g, &config());
        let one_round = run_bucket_ordered_triangles(&g, 8, &config());
        assert_eq!(cascade.count(), one_round.count());
        assert!(
            cascade.metrics.key_value_pairs > one_round.metrics.key_value_pairs,
            "cascade {} vs one-round {}",
            cascade.metrics.key_value_pairs,
            one_round.metrics.key_value_pairs
        );
    }

    #[test]
    fn triangle_free_graph_produces_wedges_but_no_triangles() {
        // An even cycle is triangle-free but still has ordered wedges (every
        // interior node of the identifier order has one lower and one upper
        // neighbour), so round 1 does real work and round 2 discards it all.
        let g = generators::cycle(12);
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(run.count(), 0);
        assert!(run.metrics.key_value_pairs > 3 * g.num_edges());
    }

    #[test]
    fn complete_bipartite_graphs_have_no_ordered_wedges() {
        // With one side holding all the smaller identifiers, no node has both
        // a lower and an upper neighbour, so the wedge round is empty and the
        // cascade ships exactly 3m pairs.
        let g = generators::complete_bipartite(6, 6);
        let run = run_cascade_triangles(&g, &config());
        assert_eq!(run.count(), 0);
        assert_eq!(run.metrics.key_value_pairs, 3 * g.num_edges());
    }
}
