//! The plain multiway-join triangle algorithm (Section 2.2).
//!
//! Enumerating triangles is the join `E(X,Y) ⋈ E(Y,Z) ⋈ E(X,Z)` over the edge
//! relation that stores each edge once with its endpoints in increasing node
//! order. Each variable is hashed into `b` buckets, a reducer is an ordered
//! triple `[x, y, z]` of buckets (so there are `b³` reducers), and each edge
//! is sent in three roles: as an `(X,Y)` tuple to the `b` reducers
//! `[h(u), h(v), *]`, as `(Y,Z)` to `[*, h(u), h(v)]`, and as `(X,Z)` to
//! `[h(u), *, h(v)]` — `3b` key-value pairs per edge.
//!
//! The paper's `3b − 2` counts the two coinciding reducers once; its
//! footnote 1 notes that naive mappers ship all `3b`. Here the map-side
//! combiner realizes the `3b − 2` bound: an edge's role markers are bitmask
//! values, and the combiner ORs together the markers an edge sends to the
//! same reducer (the coinciding pairs are always emitted by the same map
//! shard, so the combiner sees them together). With combiners enabled the
//! measured `shuffle_records` per edge is exactly `3b − 2`; disabling them
//! ([`EngineConfig::combiners`]) restores the naive `3b`.

use crate::result::RunStats;
use crate::sink::InstanceSink;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use subgraph_graph::{DataGraph, Edge, NodeId};
use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::Instance;

/// Bitmask of the roles an edge plays at one reducer. Mappers emit single-bit
/// masks; the combiner ORs the masks of coinciding emissions together.
type Roles = u8;

/// The edge serves the `E(X,Y)` subgoal.
const ROLE_XY: Roles = 1;
/// The edge serves the `E(Y,Z)` subgoal.
const ROLE_YZ: Roles = 1 << 1;
/// The edge serves the `E(X,Z)` subgoal.
const ROLE_XZ: Roles = 1 << 2;

/// Bytes one shuffled record of this round occupies (ordered bucket-triple
/// key plus a role-tagged edge value) — shared by the engine weigher and the
/// planner's byte prediction.
pub(crate) fn multiway_record_bytes() -> usize {
    std::mem::size_of::<[u32; 3]>() + std::mem::size_of::<(Roles, NodeId, NodeId)>()
}

/// Runs the Section 2.2 multiway-join triangle algorithm with `b` buckets per
/// variable (`b³` potential reducers) as a declarative single-round
/// [`Pipeline`] whose combiner merges coinciding role emissions, streaming
/// each triangle into `sink`.
pub(crate) fn run_multiway_triangles_into(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    assert!(b >= 1, "at least one bucket per variable is required");
    let hash = move |v: NodeId| -> u32 { bucket_hash(v, b) };

    let mapper = move |edge: &Edge, ctx: &mut MapContext<[u32; 3], (Roles, NodeId, NodeId)>| {
        // The edge relation holds (lo, hi): lo < hi in the identifier order.
        let (u, v) = edge.endpoints();
        let (hu, hv) = (hash(u), hash(v));
        for other in 0..b as u32 {
            ctx.emit([hu, hv, other], (ROLE_XY, u, v));
            ctx.emit([other, hu, hv], (ROLE_YZ, u, v));
            ctx.emit([hu, other, hv], (ROLE_XZ, u, v));
        }
    };

    // Merge the role masks an edge ships to the same reducer; first-seen
    // order is preserved so deterministic runs stay deterministic.
    let combiner = |_key: &[u32; 3], values: Vec<(Roles, NodeId, NodeId)>| {
        let mut merged: Vec<(Roles, NodeId, NodeId)> = Vec::new();
        let mut index: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for (roles, u, v) in values {
            match index.entry((u, v)) {
                Entry::Occupied(slot) => merged[*slot.get()].0 |= roles,
                Entry::Vacant(slot) => {
                    slot.insert(merged.len());
                    merged.push((roles, u, v));
                }
            }
        }
        merged
    };

    let reducer =
        |_key: &[u32; 3], tuples: &[(Roles, NodeId, NodeId)], ctx: &mut ReduceContext<Instance>| {
            let mut xy: Vec<(NodeId, NodeId)> = Vec::new();
            let mut xz: Vec<(NodeId, NodeId)> = Vec::new();
            let mut yz: HashSet<(NodeId, NodeId)> = HashSet::new();
            for &(roles, u, v) in tuples {
                if roles & ROLE_XY != 0 {
                    xy.push((u, v));
                }
                if roles & ROLE_XZ != 0 {
                    xz.push((u, v));
                }
                if roles & ROLE_YZ != 0 {
                    yz.insert((u, v));
                }
            }
            // Canonical join order, so the output is identical whether or not
            // the combiner reordered the merged tuples.
            xy.sort_unstable();
            xz.sort_unstable();
            // Join on X between the XY and XZ tuples, then probe YZ.
            for &(x1, y) in &xy {
                for &(x2, z) in &xz {
                    if x1 != x2 {
                        continue;
                    }
                    ctx.add_work(1);
                    if y < z && yz.contains(&(y, z)) {
                        ctx.emit(Instance::from_edge_set([(x1, y), (y, z), (x1, z)]));
                    }
                }
            }
        };

    let report = Pipeline::new()
        .round(Round::new("multiway", mapper, reducer).combiner(combiner))
        .run_with_sink(graph.edges(), config, sink);
    RunStats::from_pipeline(report)
}

/// Collect-mode wrapper over [`run_multiway_triangles_into`] (tests and
/// in-crate comparisons).
#[cfg(test)]
pub(crate) fn run_multiway_triangles(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
) -> crate::result::MapReduceRun {
    let mut collected = crate::sink::CollectSink::new();
    let stats = run_multiway_triangles_into(graph, b, config, &mut collected);
    stats.into_run(collected.into_items())
}

fn bucket_hash(v: NodeId, b: usize) -> u32 {
    let mut x = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % b as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangles::enumerate_triangles_serial;
    use subgraph_graph::generators;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    #[test]
    fn finds_every_triangle_exactly_once() {
        for seed in 0..3 {
            let g = generators::gnm(70, 420, seed);
            let serial = enumerate_triangles_serial(&g);
            for b in [1usize, 2, 4, 6] {
                let run = run_multiway_triangles(&g, b, &config());
                assert_eq!(run.count(), serial.count(), "b={b} seed={seed}");
                assert_eq!(run.duplicates(), 0, "b={b} seed={seed}");
            }
        }
    }

    #[test]
    fn emission_is_3b_and_the_combiner_ships_3b_minus_2_per_edge() {
        let g = generators::gnm(100, 800, 5);
        for b in [2usize, 5, 8] {
            let run = run_multiway_triangles(&g, b, &config());
            // Mappers emit the naive 3b pairs per edge (footnote 1)...
            assert_eq!(run.metrics.key_value_pairs, 3 * b * g.num_edges());
            // ...and the combiner merges the two coinciding pairs per edge,
            // shipping exactly the paper's 3b − 2.
            assert_eq!(
                run.metrics.shuffle_records,
                (3 * b - 2) * g.num_edges(),
                "b={b}"
            );
            assert_eq!(
                run.metrics.shuffle_bytes,
                (run.metrics.shuffle_records * multiway_record_bytes()) as u64,
                "b={b}"
            );
            assert!(run.metrics.reducers_used <= b * b * b);
        }
    }

    #[test]
    fn disabling_the_combiner_ships_the_naive_3b_with_identical_output() {
        let g = generators::gnm(80, 500, 7);
        let b = 4;
        let with = run_multiway_triangles(&g, b, &config());
        let without = run_multiway_triangles(&g, b, &config().combiners(false));
        assert_eq!(without.metrics.shuffle_records, 3 * b * g.num_edges());
        assert_eq!(
            with.metrics.key_value_pairs,
            without.metrics.key_value_pairs
        );
        assert!(with.metrics.shuffle_records < without.metrics.shuffle_records);
        assert!(with.metrics.shuffle_bytes < without.metrics.shuffle_bytes);
        // Deterministic configs: byte-identical instance streams.
        assert_eq!(with.instances(), without.instances());
        assert_eq!(with.metrics.reducer_work, without.metrics.reducer_work);
    }

    #[test]
    fn single_bucket_degenerates_to_one_reducer() {
        let g = generators::gnm(30, 120, 2);
        let run = run_multiway_triangles(&g, 1, &config());
        assert_eq!(run.metrics.reducers_used, 1);
        assert_eq!(run.count(), enumerate_triangles_serial(&g).count());
        // 3b − 2 = 1 at b = 1: the combiner collapses all three role copies.
        assert_eq!(run.metrics.shuffle_records, g.num_edges());
    }

    #[test]
    fn complete_graph_counts() {
        let g = generators::complete(10);
        let run = run_multiway_triangles(&g, 3, &config());
        assert_eq!(run.count(), 120);
        assert_eq!(run.duplicates(), 0);
    }
}
