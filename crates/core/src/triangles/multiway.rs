//! The plain multiway-join triangle algorithm (Section 2.2).
//!
//! Enumerating triangles is the join `E(X,Y) ⋈ E(Y,Z) ⋈ E(X,Z)` over the edge
//! relation that stores each edge once with its endpoints in increasing node
//! order. Each variable is hashed into `b` buckets, a reducer is an ordered
//! triple `[x, y, z]` of buckets (so there are `b³` reducers), and each edge
//! is sent in three roles: as an `(X,Y)` tuple to the `b` reducers
//! `[h(u), h(v), *]`, as `(Y,Z)` to `[*, h(u), h(v)]`, and as `(X,Z)` to
//! `[h(u), *, h(v)]` — `3b` key-value pairs per edge (the paper's `3b − 2`
//! counts the two coinciding reducers once; its footnote 1 notes that real
//! implementations ship all `3b`).

use crate::result::MapReduceRun;
use subgraph_graph::{DataGraph, Edge, NodeId};
use subgraph_mapreduce::{run_job, EngineConfig, MapContext, ReduceContext};
use subgraph_pattern::Instance;

/// The role an edge plays when shipped to a reducer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Xy,
    Yz,
    Xz,
}

/// Runs the Section 2.2 multiway-join triangle algorithm with `b` buckets per
/// variable (`b³` potential reducers).
pub(crate) fn run_multiway_triangles(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
) -> MapReduceRun {
    assert!(b >= 1, "at least one bucket per variable is required");
    let hash = move |v: NodeId| -> u32 { bucket_hash(v, b) };

    let mapper = move |edge: &Edge, ctx: &mut MapContext<[u32; 3], (Role, NodeId, NodeId)>| {
        // The edge relation holds (lo, hi): lo < hi in the identifier order.
        let (u, v) = edge.endpoints();
        let (hu, hv) = (hash(u), hash(v));
        for other in 0..b as u32 {
            ctx.emit([hu, hv, other], (Role::Xy, u, v));
            ctx.emit([other, hu, hv], (Role::Yz, u, v));
            ctx.emit([hu, other, hv], (Role::Xz, u, v));
        }
    };

    let reducer =
        |_key: &[u32; 3], tuples: &[(Role, NodeId, NodeId)], ctx: &mut ReduceContext<Instance>| {
            use std::collections::HashSet;
            let mut xy: Vec<(NodeId, NodeId)> = Vec::new();
            let mut xz: Vec<(NodeId, NodeId)> = Vec::new();
            let mut yz: HashSet<(NodeId, NodeId)> = HashSet::new();
            for &(role, u, v) in tuples {
                match role {
                    Role::Xy => xy.push((u, v)),
                    Role::Xz => xz.push((u, v)),
                    Role::Yz => {
                        yz.insert((u, v));
                    }
                }
            }
            // Join on X between the XY and XZ tuples, then probe YZ.
            for &(x1, y) in &xy {
                for &(x2, z) in &xz {
                    if x1 != x2 {
                        continue;
                    }
                    ctx.add_work(1);
                    if y < z && yz.contains(&(y, z)) {
                        ctx.emit(Instance::from_edge_set([(x1, y), (y, z), (x1, z)]));
                    }
                }
            }
        };

    let (instances, metrics) = run_job(graph.edges(), &mapper, &reducer, config);
    MapReduceRun { instances, metrics }
}

fn bucket_hash(v: NodeId, b: usize) -> u32 {
    let mut x = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % b as u64) as u32
}

/// Deprecated shim over the planner API.
#[deprecated(
    since = "0.2.0",
    note = "build an EnumerationRequest with StrategyKind::MultiwayTriangles and call plan()/execute() instead"
)]
pub fn multiway_triangles(graph: &DataGraph, b: usize, config: &EngineConfig) -> MapReduceRun {
    run_multiway_triangles(graph, b, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangles::enumerate_triangles_serial;
    use subgraph_graph::generators;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    #[test]
    fn finds_every_triangle_exactly_once() {
        for seed in 0..3 {
            let g = generators::gnm(70, 420, seed);
            let serial = enumerate_triangles_serial(&g);
            for b in [1usize, 2, 4, 6] {
                let run = run_multiway_triangles(&g, b, &config());
                assert_eq!(run.count(), serial.count(), "b={b} seed={seed}");
                assert_eq!(run.duplicates(), 0, "b={b} seed={seed}");
            }
        }
    }

    #[test]
    fn communication_is_exactly_3b_per_edge() {
        let g = generators::gnm(100, 800, 5);
        for b in [2usize, 5, 8] {
            let run = run_multiway_triangles(&g, b, &config());
            assert_eq!(run.metrics.key_value_pairs, 3 * b * g.num_edges());
            assert!(run.metrics.reducers_used <= b * b * b);
        }
    }

    #[test]
    fn single_bucket_degenerates_to_one_reducer() {
        let g = generators::gnm(30, 120, 2);
        let run = run_multiway_triangles(&g, 1, &config());
        assert_eq!(run.metrics.reducers_used, 1);
        assert_eq!(run.count(), enumerate_triangles_serial(&g).count());
    }

    #[test]
    fn complete_graph_counts() {
        let g = generators::complete(10);
        let run = run_multiway_triangles(&g, 3, &config());
        assert_eq!(run.count(), 120);
        assert_eq!(run.duplicates(), 0);
    }
}
