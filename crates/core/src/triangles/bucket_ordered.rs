//! The bucket-ordered multiway-join triangle algorithm (Section 2.3) — the
//! paper's best one-round triangle algorithm.
//!
//! Nodes are ordered by `(hash bucket, identifier)`. Because the edge relation
//! now respects the bucket order, only reducers whose bucket triple is
//! non-decreasing can contain triangles: there are `C(b+2, 3) ≈ b³/6` of them
//! and each edge is shipped to exactly `b` reducers (the sorted triple formed
//! by its two endpoint buckets plus any third bucket), so the communication
//! cost is `b` per edge — a factor 3/2 better than Partition and 1.65 better
//! than the plain multiway join at equal reducer counts (Figure 1).

use crate::result::RunStats;
use crate::serial::triangles::enumerate_triangles_with_order_into;
use crate::sink::InstanceSink;
use subgraph_graph::{BucketThenIdOrder, DataGraph, Edge};
use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::Instance;

/// Bytes one shuffled record of this round occupies (bucket-triple key plus
/// an edge value) — used by both the engine weigher and the planner's byte
/// prediction, so predicted and measured `shuffle_bytes` agree exactly.
pub(crate) fn triple_key_record_bytes() -> usize {
    std::mem::size_of::<[u32; 3]>() + std::mem::size_of::<Edge>()
}

/// Runs the Section 2.3 algorithm with `b` buckets as a declarative
/// single-round [`Pipeline`], streaming each triangle into `sink`.
///
/// Internal runner behind [`crate::plan::StrategyKind::BucketOrderedTriangles`].
pub(crate) fn run_bucket_ordered_triangles_into(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    assert!(b >= 1, "at least one bucket is required");
    let order = BucketThenIdOrder::new(b);
    let num_nodes = graph.num_nodes();

    let mapper = move |edge: &Edge, ctx: &mut MapContext<[u32; 3], Edge>| {
        let bu = order.bucket(edge.lo()) as u32;
        let bv = order.bucket(edge.hi()) as u32;
        for extra in 0..b as u32 {
            let mut key = [bu, bv, extra];
            key.sort_unstable();
            ctx.emit(key, *edge);
        }
    };

    let reducer = move |key: &[u32; 3], edges: &[Edge], ctx: &mut ReduceContext<Instance>| {
        let local = DataGraph::from_edges(num_nodes, edges.iter().map(|e| e.endpoints()));
        // The local enumeration streams straight through to the round's
        // output: no per-reducer triangle buffer exists.
        let work = {
            let mut filter = crate::sink::FnSink::new(|instance: Instance| {
                // A triangle is emitted only by the reducer whose key is the
                // sorted bucket triple of its nodes. For triangles spanning
                // two or three distinct buckets that reducer is the only one
                // holding all three edges anyway; for triangles whose nodes
                // share a single bucket `a` every reducer [a, a, *] holds the
                // edges, and this check keeps the paper's "discovered by only
                // one reducer" guarantee.
                let mut triple: Vec<u32> = instance
                    .nodes()
                    .iter()
                    .map(|&v| order.bucket(v) as u32)
                    .collect();
                triple.sort_unstable();
                if triple.as_slice() == key {
                    ctx.emit(instance);
                }
            });
            enumerate_triangles_with_order_into(&local, &order, &mut filter).work
        };
        ctx.add_work(work);
    };

    let report = crate::stream::run_streamed_with_sink(
        Pipeline::new().round(Round::new("bucket-ordered", mapper, reducer).arena()),
        graph.edges(),
        config,
        sink,
    );
    RunStats::from_pipeline(report)
}

/// Collect-mode wrapper over [`run_bucket_ordered_triangles_into`] (tests and
/// in-crate comparisons).
#[cfg(test)]
pub(crate) fn run_bucket_ordered_triangles(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
) -> crate::result::MapReduceRun {
    let mut collected = crate::sink::CollectSink::new();
    let stats = run_bucket_ordered_triangles_into(graph, b, config, &mut collected);
    stats.into_run(collected.into_items())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangles::enumerate_triangles_serial;
    use subgraph_graph::generators;
    use subgraph_shares::counting::useful_reducers;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    #[test]
    fn finds_every_triangle_exactly_once() {
        for seed in 0..3 {
            let g = generators::gnm(80, 520, seed);
            let serial = enumerate_triangles_serial(&g);
            for b in [1usize, 3, 6, 10] {
                let run = run_bucket_ordered_triangles(&g, b, &config());
                assert_eq!(run.count(), serial.count(), "b={b} seed={seed}");
                assert_eq!(run.duplicates(), 0, "b={b} seed={seed}");
            }
        }
    }

    #[test]
    fn communication_is_exactly_b_per_edge() {
        let g = generators::gnm(150, 1500, 9);
        for b in [2usize, 5, 10, 16] {
            let run = run_bucket_ordered_triangles(&g, b, &config());
            assert_eq!(run.metrics.key_value_pairs, b * g.num_edges(), "b={b}");
            // Only non-decreasing triples are ever materialized.
            let max = useful_reducers(b as u64, 3);
            assert!((run.metrics.reducers_used as u128) <= max, "b={b}");
        }
    }

    #[test]
    fn beats_the_other_algorithms_on_communication_at_equal_reducers() {
        // Figure 2: at ≈220 reducers, Partition (b=12) ships 13.75m, the plain
        // multiway join (b=6, 216 reducers) ships ≈16m, and this algorithm
        // (b=10) ships 10m.
        let g = generators::gnm(200, 2400, 4);
        let ordered = run_bucket_ordered_triangles(&g, 10, &config());
        let partition = crate::triangles::partition::run_partition_triangles(&g, 12, &config());
        let multiway = crate::triangles::multiway::run_multiway_triangles(&g, 6, &config());
        assert!(
            ordered.metrics.key_value_pairs < partition.metrics.key_value_pairs,
            "ordered {} vs partition {}",
            ordered.metrics.key_value_pairs,
            partition.metrics.key_value_pairs
        );
        assert!(ordered.metrics.key_value_pairs < multiway.metrics.key_value_pairs);
        // All three agree on the answer.
        assert_eq!(ordered.count(), partition.count());
        assert_eq!(ordered.count(), multiway.count());
    }

    #[test]
    fn total_reducer_work_stays_near_the_serial_work() {
        // Theorem 6.1 / Section 2.3: the total computation at the reducers is
        // O(m^{3/2}), the same order as the serial algorithm.
        let g = generators::gnm(300, 2700, 11);
        let serial = enumerate_triangles_serial(&g);
        for b in [2usize, 4, 8] {
            let run = run_bucket_ordered_triangles(&g, b, &config());
            let ratio = run.metrics.reducer_work as f64 / serial.work.max(1) as f64;
            assert!(
                ratio < 12.0,
                "b={b}: parallel work {} vs serial {} (ratio {ratio})",
                run.metrics.reducer_work,
                serial.work
            );
        }
    }

    #[test]
    fn single_bucket_equals_serial() {
        let g = generators::gnm(40, 200, 3);
        let run = run_bucket_ordered_triangles(&g, 1, &config());
        assert_eq!(run.metrics.reducers_used, 1);
        assert_eq!(run.count(), enumerate_triangles_serial(&g).count());
        assert_eq!(run.metrics.key_value_pairs, g.num_edges());
    }
}
